"""Approximation-ratio measurement (validating Theorem 4's bound).

Theorem 4 bounds ``T_FDD / T_opt`` asymptotically; on instances small enough
for exact optimization we can *measure* the ratio.  FDD equals
GreedyPhysical (Theorem 4, asserted elsewhere), so the measured quantity is
``greedy_physical length / optimal length``, swept over small planned and
unplanned instances, against the theorem's closed-form bound for the same n.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import approximation_bound
from repro.analysis.stats import mean_ci
from repro.analysis.tables import TextTable
from repro.experiments.common import ExperimentProfile
from repro.routing import (
    aggregate_demand,
    build_routing_forest,
    planned_gateways,
    random_gateways,
    uniform_node_demand,
)
from repro.scheduling import (
    forest_link_set,
    greedy_physical,
    optimal_schedule,
    verify_schedule,
)
from repro.topology.network import grid_network, uniform_network
from repro.util.rng import spawn


def _instance(kind: str, rep: int, seed: int):
    if kind == "grid":
        network = grid_network(4, 4, density_per_km2=800.0)
        gws = planned_gateways(4, 4, 1)
    else:
        network = uniform_network(
            12, density_per_km2=1200.0, rng=spawn(seed, "net", kind, rep)
        )
        gws = random_gateways(12, 1, spawn(seed, "gw", kind, rep))
    forest = build_routing_forest(
        network.comm_adj, gws, rng=spawn(seed, "forest", kind, rep)
    )
    demand = uniform_node_demand(
        network.n_nodes, spawn(seed, "demand", kind, rep), low=1, high=3, gateways=gws
    )
    links = forest_link_set(forest, aggregate_demand(forest, demand))
    return network, links


def approximation_experiment(profile: ExperimentProfile) -> TextTable:
    """T5 — measured greedy/optimal ratio vs the Theorem 4 bound."""
    table = TextTable(
        [
            "scenario",
            "instances",
            "measured ratio",
            "worst ratio",
            "Thm 4 bound (alpha=3)",
        ],
        title="Approximation ratio: GreedyPhysical(≡FDD) vs exact optimum "
        "(small instances)",
    )
    reps = max(3, profile.repetitions)
    for kind in ("grid", "uniform"):
        ratios: list[float] = []
        n_nodes = 16 if kind == "grid" else 12
        for rep in range(reps):
            network, links = _instance(kind, rep, profile.seed)
            optimum = optimal_schedule(links, network.model)
            greedy = greedy_physical(links, network.model)
            assert verify_schedule(optimum.schedule, network.model).ok
            assert greedy.length >= optimum.schedule.length
            ratios.append(greedy.length / optimum.schedule.length)
        table.add_row(
            kind,
            reps,
            str(mean_ci(ratios)),
            f"{max(ratios):.3f}",
            f"{approximation_bound(n_nodes, alpha=3.0):.1f}",
        )
    return table
