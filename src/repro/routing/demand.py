"""Traffic demand generation and aggregation (Section II / VI-A).

Each node generates an integer demand (the paper draws it uniformly from
[1, 10]); the aggregated demand of a tree link equals the sum of the demands
generated in the subtree below it — equivalently, each node's demand is
counted on every link of its route to the gateway.
"""

from __future__ import annotations

import numpy as np

from repro.routing.forest import RoutingForest
from repro.util.validation import check_integer_in_range


def uniform_node_demand(
    n_nodes: int,
    rng: np.random.Generator,
    low: int = 1,
    high: int = 10,
    gateways: np.ndarray | None = None,
) -> np.ndarray:
    """Per-node integer demands ~ U[low, high]; gateways generate none."""
    check_integer_in_range("low", low, minimum=0)
    check_integer_in_range("high", high, minimum=low)
    demand = rng.integers(low, high + 1, size=n_nodes).astype(np.int64)
    if gateways is not None:
        demand[np.asarray(gateways, dtype=np.intp)] = 0
    return demand


def aggregate_demand(forest: RoutingForest, node_demand: np.ndarray) -> np.ndarray:
    """Aggregated demand per *link*, indexed by the link's head node.

    Returns an ``(n,)`` array where entry ``v`` is the demand on the tree
    edge ``(v, parent(v))`` — the total demand generated in the subtree
    rooted at ``v`` — and 0 for gateways (which own no edge).

    The computation processes nodes bottom-up (decreasing depth), so it runs
    in O(n) regardless of tree shape.
    """
    demand = np.asarray(node_demand, dtype=np.int64)
    if demand.shape != (forest.n_nodes,):
        raise ValueError(
            f"node_demand must have shape ({forest.n_nodes},), got {demand.shape}"
        )
    if np.any(demand < 0):
        raise ValueError("node demands must be non-negative")
    if np.any(demand[forest.gateways] != 0):
        raise ValueError("gateways must not generate demand")

    aggregated = demand.copy()
    for v in np.argsort(forest.depth)[::-1]:
        p = forest.parent[v]
        if p >= 0:
            aggregated[p] += aggregated[v]
    link_demand = aggregated.copy()
    link_demand[forest.gateways] = 0
    return link_demand


def total_demand(link_demand: np.ndarray) -> int:
    """Total traffic demand ``TD``: the length of the serialized schedule."""
    demand = np.asarray(link_demand)
    if np.any(demand < 0):
        raise ValueError("link demands must be non-negative")
    return int(demand.sum())
