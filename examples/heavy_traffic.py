"""Heavy traffic: stability regions under epoch-based online rescheduling.

The static pipeline schedules one demand snapshot; this example closes the
loop.  Poisson flows arrive at every mesh node slot after slot, packets
queue per link along the routing forest, and every epoch (T data slots) the
scheduler is re-run on the live backlogs — with the FDD distributed
protocol paying its measured air-time overhead in slots, while the
centralized GreedyPhysical oracle computes for free.

Sweeping the arrival rate lambda locates each scheduler's stability knee —
the highest rate at which backlogs stay bounded:

* Serialized (TDMA round-robin): no spatial reuse, knee lowest;
* FDD: spatial reuse minus protocol overhead — knee strictly above
  serialized on the 8x8 grid (the claim this example asserts);
* GreedyPhysical: the free-oracle upper bound.

A second, lighter sweep on an unplanned uniform topology shows the same
ordering holds off the planned grid, and a bursty Pareto on-off workload
shows what burstiness costs at equal mean rate: far heavier delay tails
near the knee.

Finally, the incremental-rescheduling layer (DESIGN.md §7): re-running FDD
every epoch pays its protocol overhead T times for near-identical demand
vectors.  With ``reschedule_policy="patch"`` the epoch loop reuses the
cached schedule while backlogs drift little and locally repairs it when
they don't, recomputing only as a last resort — the example measures the
amortization (an order of magnitude fewer overhead slots at the same
operating point, stability intact).

Run:  python examples/heavy_traffic.py        (~2-3 minutes; FDD dominates)
"""

from dataclasses import replace

from repro import (
    EpochConfig,
    ParetoOnOff,
    PoissonArrivals,
    aggregate_demand,
    build_routing_forest,
    centralized_scheduler,
    distributed_scheduler,
    fdd_on_network,
    forest_link_set,
    grid_network,
    planned_gateways,
    random_gateways,
    run_epochs,
    serialized_scheduler,
    stability_knee,
    stability_sweep,
    uniform_network,
    uniform_node_demand,
)
from repro.analysis.tables import TextTable
from repro.util.rng import spawn

SEED = 20080617
LAMBDAS = (0.006, 0.0145, 0.019)


def build_mesh(kind: str):
    """A deployed network, its gateways, and the forest link set to queue on."""
    if kind == "grid":
        network = grid_network(8, 8, density_per_km2=1000.0)
        gateways = planned_gateways(8, 8, 4)
    else:
        network = uniform_network(32, density_per_km2=1500.0, rng=spawn(SEED, "net"))
        gateways = random_gateways(32, 2, spawn(SEED, "gw"))
    forest = build_routing_forest(network.comm_adj, gateways, rng=spawn(SEED, kind))
    demand = uniform_node_demand(
        network.n_nodes, spawn(SEED, kind, "d"), gateways=gateways
    )
    links = forest_link_set(forest, aggregate_demand(forest, demand))
    return network, gateways, links


def sweep(network, gateways, links, schedulers, config, make_generator):
    """Stability sweep for every scheduler; returns {name: (points, knee)}."""
    results = {}
    for name, scheduler in schedulers:

        def run_at(rate, scheduler=scheduler):
            return run_epochs(links, make_generator(rate), scheduler, config)

        points = stability_sweep(LAMBDAS, run_at)
        results[name] = (points, stability_knee(points))
    return results


def render(title: str, results) -> None:
    table = TextTable(
        [
            "scheduler",
            "lambda",
            "throughput (pkt/slot)",
            "mean delay",
            "p99 delay",
            "backlog growth/epoch",
            "stable",
        ],
        title=title,
    )
    for name, (points, _) in results.items():
        for p in points:
            table.add_row(
                name,
                f"{p.offered_rate:g}",
                f"{p.throughput:.3f}",
                f"{p.mean_delay:.1f}",
                f"{p.p99_delay:.0f}",
                f"{p.backlog_slope:+.1f}",
                "yes" if p.stable else "NO",
            )
    print(table.render())
    for name, (_, knee) in results.items():
        print(f"  {name} stability knee: lambda = {knee}")
    print()


def main() -> None:
    # ---- The paper's 8x8 planned grid, Poisson flows, all three schedulers.
    network, gateways, links = build_mesh("grid")
    config = EpochConfig(
        epoch_slots=300, n_epochs=10, slot_seconds=0.04, divergence_factor=4.0
    )
    schedulers = [
        ("Serialized", serialized_scheduler()),
        ("GreedyPhysical", centralized_scheduler(network.model)),
        ("FDD", distributed_scheduler(network, fdd_on_network, seed=spawn(SEED, "fdd"))),
    ]

    def poisson(rate):
        return PoissonArrivals(
            network.n_nodes, rate, gateways=gateways, seed=spawn(SEED, "poisson")
        )

    grid_results = sweep(network, gateways, links, schedulers, config, poisson)
    render(
        "Stability regions — 8x8 planned grid, Poisson arrivals, "
        "T=300 slots/epoch, online rescheduling",
        grid_results,
    )

    knee_linear = grid_results["Serialized"][1]
    knee_fdd = grid_results["FDD"][1]
    assert knee_fdd is not None and knee_linear is not None
    assert knee_fdd > knee_linear, (
        f"expected FDD's knee ({knee_fdd}) above the serialized baseline's "
        f"({knee_linear}) on the 8x8 grid"
    )
    print(
        f"==> FDD sustains lambda={knee_fdd:g} vs serialized {knee_linear:g} "
        "on the grid: spatial reuse beats its protocol overhead.\n"
    )

    # ---- Incremental rescheduling: amortize FDD's protocol overhead by
    # reusing (and patching) cached schedules across low-drift epochs.
    reuse_rate = 0.0145  # stable for FDD on this grid under every policy
    print(
        "Incremental rescheduling — FDD at lambda="
        f"{reuse_rate:g}, policies vs overhead:"
    )
    overheads = {}
    for policy in ("always", "drift-threshold", "patch"):
        scheduler = distributed_scheduler(
            network, fdd_on_network, seed=spawn(SEED, "fdd")
        )
        trace = run_epochs(
            links,
            poisson(reuse_rate),
            scheduler,
            replace(config, reschedule_policy=policy),
            model=network.model,
        )
        overheads[policy] = trace.overhead_slots_total
        print(
            f"  {policy:<16} overhead={trace.overhead_slots_total:4d} slots, "
            f"cache hits={trace.cache_hits}, patched={trace.patched_epochs}, "
            f"delivered={trace.delivered_total}"
        )
    assert overheads["patch"] * 3 <= overheads["always"], (
        f"patching should amortize >= 3x: paid {overheads['patch']} vs "
        f"always {overheads['always']} overhead slots"
    )
    print(
        f"==> caching with patching pays {overheads['patch']} overhead slots "
        f"where re-running every epoch pays {overheads['always']} — "
        f"{overheads['always'] / max(overheads['patch'], 1):.0f}x cheaper.\n"
    )

    # ---- Same sweep, bursty heavy-tailed sources: at equal mean rate,
    # burstiness shows up in the delay tail near the knee.
    def bursty(rate):
        return ParetoOnOff(
            network.n_nodes, rate, gateways=gateways, seed=spawn(SEED, "pareto")
        )

    bursty_results = sweep(
        network,
        gateways,
        links,
        [("GreedyPhysical", centralized_scheduler(network.model))],
        config,
        bursty,
    )
    render(
        "Workload sensitivity — same grid and scheduler, Pareto on-off bursts",
        bursty_results,
    )

    # ---- Unplanned uniform topology (lighter: centralized + serialized).
    network_u, gateways_u, links_u = build_mesh("uniform")
    uniform_results = sweep(
        network_u,
        gateways_u,
        links_u,
        [
            ("Serialized", serialized_scheduler()),
            ("GreedyPhysical", centralized_scheduler(network_u.model)),
        ],
        EpochConfig(epoch_slots=300, n_epochs=8, slot_seconds=0.04, divergence_factor=4.0),
        lambda rate: PoissonArrivals(
            network_u.n_nodes, rate, gateways=gateways_u, seed=spawn(SEED, "poisson-u")
        ),
    )
    render(
        "Stability regions — 32-node unplanned uniform deployment, "
        "Poisson arrivals",
        uniform_results,
    )


if __name__ == "__main__":
    main()
