"""Property tests for the incremental-rescheduling layer.

The two load-bearing guarantees:

1. *Zero-threshold equivalence*: with ``reschedule_policy="drift-threshold"``
   and drift threshold 0, a deterministic zero-overhead scheduler produces a
   trace epoch-for-epoch identical to ``always`` — the cache only ever
   reuses a schedule built for a byte-identical snapshot, so caching is
   observationally invisible.
2. *Patch feasibility*: whatever demand perturbation is thrown at it, a
   patched schedule never violates the exact physical-interference SINR
   model and always satisfies the new demand exactly.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.common import grid_scenario
from repro.scheduling.feasibility import schedule_is_feasible
from repro.scheduling.greedy_physical import greedy_physical
from repro.traffic import (
    EpochConfig,
    PoissonArrivals,
    ScheduleCache,
    centralized_scheduler,
    patch_schedule,
    run_epochs,
)


@pytest.fixture(scope="module")
def mesh():
    return grid_scenario(2000.0, rep=0, rows=4, cols=4, n_gateways=2)


def _functional_fields(record):
    """Everything in an EpochRecord except the cache-accounting fields."""
    return (
        record.epoch,
        record.arrivals,
        record.served,
        record.delivered,
        record.backlog_end,
        record.demand_scheduled,
        record.schedule_length,
        record.overhead_slots,
    )


@settings(max_examples=8, deadline=None)
@given(
    rate=st.floats(min_value=0.005, max_value=0.03),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_zero_threshold_drift_policy_is_equivalent_to_always(mesh, rate, seed):
    """Drift threshold 0 => the cached loop replays `always` exactly."""

    def trace_with(policy):
        generator = PoissonArrivals(
            mesh.network.n_nodes, rate, gateways=mesh.gateways, seed=seed
        )
        config = EpochConfig(
            epoch_slots=150,
            n_epochs=6,
            reschedule_policy=policy,
            drift_threshold=0.0,
        )
        scheduler = centralized_scheduler(mesh.network.model)
        return run_epochs(mesh.links, generator, scheduler, config)

    always = trace_with("always")
    cached = trace_with("drift-threshold")

    assert [_functional_fields(r) for r in cached.records] == [
        _functional_fields(r) for r in always.records
    ]
    assert np.array_equal(cached.backlog_series(), always.backlog_series())
    assert np.array_equal(
        cached.queues.delay_array(), always.queues.delay_array()
    )
    assert np.array_equal(cached.queues.backlog, always.queues.backlog)
    assert cached.diverged == always.diverged
    # Identical snapshots *do* occur (all-drained epochs repeat), so the run
    # is allowed cache hits — they just must not change anything observable.
    cached.queues.check_conservation()


@settings(max_examples=15, deadline=None)
@given(
    scale=st.floats(min_value=0.0, max_value=3.0),
    flip_fraction=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_patched_schedule_feasible_and_demand_exact(mesh, scale, flip_fraction, seed):
    """Any perturbed demand: the patch is SINR-feasible and demand-exact."""
    links, model = mesh.links, mesh.network.model
    cached = greedy_physical(links, model)

    rng = np.random.default_rng(seed)
    perturbed = np.round(links.demand * scale).astype(np.int64)
    flips = rng.random(links.n_links) < flip_fraction
    perturbed[flips] = rng.integers(0, 8, size=int(flips.sum()))
    new_links = replace(links, demand=perturbed)

    patched = patch_schedule(cached, new_links, model)
    assert patched is not None  # unbounded length: patching cannot fail here
    assert np.array_equal(patched.allocations(), perturbed)
    assert schedule_is_feasible(patched, model)
    # No slot is left empty.
    assert all(len(slot) > 0 for slot in patched.slots)


@settings(max_examples=8, deadline=None)
@given(
    rate=st.floats(min_value=0.01, max_value=0.04),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_cache_hits_charge_zero_overhead_and_stay_feasible(mesh, rate, seed):
    """Across a live cached run: hits/patches cost nothing, schedules stay
    feasible, and packet conservation holds."""
    generator = PoissonArrivals(
        mesh.network.n_nodes, rate, gateways=mesh.gateways, seed=seed
    )
    config = EpochConfig(
        epoch_slots=120,
        n_epochs=6,
        reschedule_policy="patch",
        drift_threshold=0.2,
    )
    scheduler = ScheduleCache(
        centralized_scheduler(mesh.network.model, overhead_seconds=0.8),
        policy="patch",
        drift_threshold=0.2,
        model=mesh.network.model,
        epoch_slots=config.epoch_slots,
    )
    trace = run_epochs(mesh.links, generator, scheduler, config)

    for record in trace.records:
        if record.cache_hit or record.patched:
            assert record.overhead_slots == 0
    # The cache's final schedule is still feasible under the exact model.
    if scheduler._cached is not None:
        assert schedule_is_feasible(scheduler._cached.schedule, mesh.network.model)
    assert scheduler.stats.requests == sum(
        1 for r in trace.records if r.demand_scheduled > 0
    )
    trace.queues.check_conservation()
