"""Analysis helpers (stats, bounds, tables) and util (rng, validation)."""

import numpy as np
import pytest

from repro.analysis.bounds import (
    approximation_bound,
    connectivity_range_uniform,
    fdd_step_complexity_bound,
    grid_id_bound,
    uniform_id_bound,
)
from repro.analysis.stats import mean_ci
from repro.analysis.tables import TextTable, format_series
from repro.util.rng import ensure_rng, iter_seeds, spawn, spawn_many
from repro.util.validation import (
    check_integer_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestStats:
    def test_single_sample_zero_width(self):
        ci = mean_ci([5.0])
        assert ci.mean == 5.0
        assert ci.half_width == 0.0

    def test_constant_samples_zero_width(self):
        ci = mean_ci([2.0, 2.0, 2.0])
        assert ci.half_width == pytest.approx(0.0)

    def test_interval_contains_mean_of_population(self):
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(200):
            samples = rng.normal(10.0, 2.0, size=12)
            if mean_ci(samples, 0.95).contains(10.0):
                hits += 1
        assert hits > 170  # ~95% coverage, allow sampling slack

    def test_higher_confidence_wider(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert mean_ci(samples, 0.99).half_width > mean_ci(samples, 0.9).half_width

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_str_format(self):
        assert "±" in str(mean_ci([1.0, 2.0]))


class TestBounds:
    def test_grid_bound_tight_for_aligned_square(self):
        # n-node square grid, step 1: diam = sqrt(2)*(sqrt(n)-1).
        for side in (4, 8, 12):
            diam = np.sqrt(2.0) * (side - 1)
            assert grid_id_bound(diam, 1.0) == pytest.approx(2.0 * (side - 1))

    def test_uniform_bound_scaling(self):
        # Theta(sqrt(n / log n)): quadrupling n scales by 2*sqrt(ln n/ln 4n).
        n = 10_000
        expected = 2.0 * np.sqrt(np.log(n) / np.log(4 * n))
        ratio = uniform_id_bound(4 * n) / uniform_id_bound(n)
        assert ratio == pytest.approx(expected, rel=1e-6)

    def test_connectivity_range_decreases(self):
        assert connectivity_range_uniform(1000) < connectivity_range_uniform(100)

    def test_approximation_bound_sublinear(self):
        for n in (100, 1000, 10_000):
            assert approximation_bound(n, alpha=3.0) < n

    def test_approximation_bound_rejects_alpha_at_most_two(self):
        with pytest.raises(ValueError):
            approximation_bound(100, alpha=1.9, eps=0.01)

    def test_complexity_bound_formula(self):
        assert fdd_step_complexity_bound(10, 5.0, 64) == pytest.approx(
            10 * 5.0 * 64 * np.log(64)
        )


class TestTables:
    def test_render_contains_all_cells(self):
        table = TextTable(["a", "b"], title="T")
        table.add_row(1, 2.5)
        table.add_row("x", "y")
        text = table.render()
        assert "T" in text and "a" in text and "2.50" in text and "y" in text

    def test_row_arity_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_format_series(self):
        out = format_series("s", [1, 2], [3.0, 4.0])
        assert out.startswith("s:")
        assert "(1, 3.00)" in out

    def test_redacted_masks_volatile_columns_only(self):
        table = TextTable(["k", "wall (s)"], title="T")
        table.add_row("a", 1.23)
        table.add_row("b", 4.56)
        masked = table.redacted(("wall (s)",))
        text = masked.render()
        assert "1.23" not in text and "4.56" not in text
        assert "a" in text and "b" in text and "~" in text
        # The original is untouched, and rendering stays deterministic.
        assert "1.23" in table.render()
        assert masked.render() == table.redacted(("wall (s)",)).render()

    def test_redacted_rejects_unknown_columns(self):
        table = TextTable(["k", "v"])
        with pytest.raises(ValueError, match="unknown columns"):
            table.redacted(("wall (s)",))


class TestRng:
    def test_spawn_deterministic(self):
        a = spawn(42, "x", 1).integers(0, 1_000_000)
        b = spawn(42, "x", 1).integers(0, 1_000_000)
        assert a == b

    def test_spawn_distinct_keys_distinct_streams(self):
        a = spawn(42, "x").integers(0, 2**40)
        b = spawn(42, "y").integers(0, 2**40)
        assert a != b

    def test_spawn_many_count(self):
        gens = spawn_many(1, 5, "w")
        assert len(gens) == 5
        draws = {g.integers(0, 2**40) for g in gens}
        assert len(draws) == 5

    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_ensure_rng_rejects_junk(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_iter_seeds_deterministic(self):
        assert list(iter_seeds(5, 4)) == list(iter_seeds(5, 4))


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ValueError):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))
        with pytest.raises(TypeError):
            check_positive("x", "1")

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0.0
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.2)

    def test_check_integer_in_range(self):
        assert check_integer_in_range("n", 5, minimum=1, maximum=10) == 5
        with pytest.raises(ValueError):
            check_integer_in_range("n", 0, minimum=1)
        with pytest.raises(ValueError):
            check_integer_in_range("n", 11, maximum=10)
        with pytest.raises(TypeError):
            check_integer_in_range("n", 1.5)
        with pytest.raises(TypeError):
            check_integer_in_range("n", True)
