"""Micro-benchmarks of the hot paths.

These are the operations whose cost dominates any large-scale use of the
library: SINR feasibility tests, incremental slot bookkeeping, SCREAM
floods, leader elections, the centralized scheduler, and full protocol runs.
"""

import time

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.fast_runtime import FastRuntime
from repro.core.fdd import run_fdd
from repro.core.pdd import run_pdd
from repro.core.scream import scream_flood
from repro.experiments.common import PAPER_PROTOCOL, grid_scenario
from repro.phy.sinr import sinr_for_links
from repro.phy.sparse import sparse_gain_model
from repro.routing import build_routing_forest, planned_gateways
from repro.scheduling.feasibility import SlotState
from repro.scheduling.greedy_physical import greedy_physical
from repro.scheduling.links import forest_link_set
from repro.topology.network import grid_network
from repro.util.rng import spawn


@pytest.fixture(scope="module")
def scenario():
    return grid_scenario(2500.0, rep=0, seed=13)


@pytest.mark.benchmark(group="micro")
def test_feasibility_check(benchmark, scenario):
    model = scenario.network.model
    links = scenario.links
    senders = links.heads[:8]
    receivers = links.tails[:8]
    benchmark(model.is_feasible, senders, receivers)


@pytest.mark.benchmark(group="micro")
def test_handshake_mask(benchmark, scenario):
    model = scenario.network.model
    links = scenario.links
    benchmark(model.handshake_mask, links.heads[:12], links.tails[:12])


@pytest.mark.benchmark(group="micro")
def test_slotstate_try_add_sequence(benchmark, scenario):
    model = scenario.network.model
    links = scenario.links

    def build_slot():
        state = SlotState(model)
        for k in range(links.n_links):
            state.try_add(int(links.heads[k]), int(links.tails[k]))
        return len(state)

    benchmark(build_slot)


@pytest.mark.benchmark(group="micro")
def test_scream_flood_64(benchmark, scenario):
    adj = scenario.network.sens_adj
    inputs = np.zeros(adj.shape[0], dtype=bool)
    inputs[0] = True
    benchmark(scream_flood, adj, inputs, 5)


@pytest.mark.benchmark(group="micro")
def test_leader_election_64(benchmark, scenario):
    runtime = FastRuntime.for_network(scenario.network, PAPER_PROTOCOL)
    participating = np.ones(scenario.network.n_nodes, dtype=bool)
    benchmark(runtime.leader_elect, participating)


@pytest.mark.benchmark(group="micro")
def test_greedy_physical_64(benchmark, scenario):
    benchmark(greedy_physical, scenario.links, scenario.network.model)


@pytest.mark.benchmark(group="micro")
def test_sparse_sinr_kernel_agreement_and_speedup():
    """The sparse scatter-add SINR kernel: exact-enough and genuinely faster.

    On a 64x64 grid (4096 nodes): (1) at ``cutoff=inf`` the value-dense
    sparse matrix reproduces the dense kernel *bit for bit* (same summation
    order by construction); (2) at the default finite cutoff the scatter-add
    fast path agrees with the reference mesh evaluated on the densified
    sparse matrix to float64 round-off (only the summation order differs);
    (3) on a full forest's worth of concurrent links the sparse kernel beats
    the dense ``O(L^2)`` mesh by >= 5x wall-clock — the per-slot win the E13
    sweep compounds across a whole schedule.
    """
    network = grid_network(64, 64, density_per_km2=1000.0)
    gateways = planned_gateways(64, 64, 16)
    forest = build_routing_forest(network.comm_adj, gateways, rng=spawn(17, "mk"))
    links = forest_link_set(forest, np.zeros(network.n_nodes, dtype=np.int64))
    snd, rcv = links.heads, links.tails
    noise = network.radio.noise_mw
    dense_power = network.power

    sgm_inf = sparse_gain_model(
        network.positions,
        network.tx_power_mw,
        network.propagation,
        network.radio,
        cutoff_m=float("inf"),
    )
    exact = sinr_for_links(dense_power, snd, rcv, noise)
    assert np.array_equal(sinr_for_links(sgm_inf.power, snd, rcv, noise), exact)

    sgm = sparse_gain_model(
        network.positions, network.tx_power_mw, network.propagation, network.radio
    )
    assert sgm.power.nnz < network.n_nodes**2 // 10
    fast = sinr_for_links(sgm.power, snd, rcv, noise, budget_mw=sgm.floor_mw)
    mesh = sinr_for_links(sgm.power.toarray(), snd, rcv, noise, budget_mw=sgm.floor_mw)
    np.testing.assert_allclose(fast, mesh, rtol=1e-9)

    def best_of(fn, repeats=5):
        walls = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            walls.append(time.perf_counter() - start)
        return min(walls)

    dense_wall = best_of(lambda: sinr_for_links(dense_power, snd, rcv, noise))
    sparse_wall = best_of(
        lambda: sinr_for_links(sgm.power, snd, rcv, noise, budget_mw=sgm.floor_mw)
    )
    speedup = dense_wall / max(sparse_wall, 1e-9)
    assert speedup >= 5.0, (
        f"sparse SINR kernel should be >= 5x faster than the dense mesh on "
        f"{snd.size} concurrent links at 4096 nodes, measured {speedup:.1f}x "
        f"(dense {dense_wall * 1e3:.1f} ms vs sparse {sparse_wall * 1e3:.1f} ms)"
    )


@pytest.mark.benchmark(group="protocols")
def test_fdd_full_run_64(benchmark, scenario):
    def run():
        runtime = FastRuntime.for_network(scenario.network, PAPER_PROTOCOL)
        return run_fdd(scenario.links, runtime, PAPER_PROTOCOL, rng=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.terminated


@pytest.mark.benchmark(group="protocols")
def test_pdd_full_run_64(benchmark, scenario):
    config = PAPER_PROTOCOL.with_p(0.2)

    def run():
        runtime = FastRuntime.for_network(scenario.network, config)
        return run_pdd(scenario.links, runtime, config, rng=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.terminated
