"""Shared experiment machinery: the paper's scenarios and sweep profiles.

Section VI-A setup: 64 nodes, 4 gateways, per-node demand ~ U[1, 10],
demand aggregated along nearest-gateway routes, density varied by scaling
the area with the node count fixed, SCREAM size 15 bytes, interference
diameter (K) 5, results with 95% confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ProtocolConfig
from repro.routing import (
    aggregate_demand,
    build_routing_forest,
    planned_gateways,
    random_gateways,
    uniform_node_demand,
)
from repro.scheduling.links import LinkSet, forest_link_set
from repro.topology.network import Network, grid_network, uniform_network
from repro.util.rng import DEFAULT_SEED, spawn


@dataclass(frozen=True)
class Scenario:
    """One concrete instance: a deployed network plus the links to schedule."""

    network: Network
    links: LinkSet
    gateways: np.ndarray
    label: str

    @property
    def total_demand(self) -> int:
        return self.links.total_demand


@dataclass(frozen=True)
class ExperimentProfile:
    """Sweep sizes for an experiment run (full fidelity vs quick smoke)."""

    name: str
    densities: tuple[float, ...] = (1000, 2500, 5000, 10000, 15000, 20000, 25000)
    repetitions: int = 5
    pdd_probabilities: tuple[float, ...] = (0.2, 0.6, 0.8)
    mote_screams: int = 2000
    mote_smbytes: tuple[int, ...] = (5, 6, 8, 10, 12, 15, 20, 24, 30)
    exec_time_sweep: tuple[int, ...] = (5, 10, 15, 20, 30, 40, 50, 60)
    skew_sweep_s: tuple[float, ...] = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    id_scaling_sizes: tuple[int, ...] = (16, 36, 64, 100, 144, 196)
    traffic_lambdas: tuple[float, ...] = (0.006, 0.0145, 0.019)
    traffic_epochs: int = 10
    traffic_epoch_slots: int = 300
    traffic_slot_seconds: float = 0.04
    traffic_density: float = 1000.0
    #: Independent arrival seeds for majority-resolving borderline stability
    #: verdicts (de-flakes operating points at utilization ~ 1).
    traffic_confirm_seeds: int = 3
    #: Rescheduling policies compared on the incremental-rescheduling axis.
    traffic_policies: tuple[str, ...] = ("always", "drift-threshold", "patch")
    #: Base drift threshold for the caching policies (headroom-scaled);
    #: None uses the library default (incremental.DEFAULT_DRIFT_THRESHOLD).
    traffic_drift_threshold: float | None = None
    #: Multi-region grids swept by the sharded-engine experiment (E9), with
    #: one arrival-rate sweep per grid (knees sit lower on deeper trees).
    sharded_grids: tuple[tuple[int, int], ...] = ((16, 16), (24, 24))
    sharded_lambdas: tuple[tuple[float, ...], ...] = (
        (0.0015, 0.002, 0.0025, 0.003),
        (0.0008, 0.0012, 0.0016),
    )
    #: Spatial shards (grid tiles) and pool workers for E9.
    sharded_shards: int = 4
    sharded_workers: int = 4
    #: Fan-out backend for the sharded sweep: "process" actually cashes the
    #: critical-path parallelism as wall-clock (GIL-free workers); the E9
    #: harness cross-checks one operating point per grid against "thread"
    #: for bit-identity whichever backend is selected here.
    sharded_executor: str = "process"
    #: Boundary-link detection radius and guard margin (x noise) for E9.
    sharded_radius_m: float = 80.0
    sharded_guard_factor: float = 1.0
    sharded_epochs: int = 8
    #: E10 admission-control axis: offered load as multiples of the
    #: uncontrolled FDD knee measured by E7 (``admission_knee_rate``), the
    #: controllers compared, and the flow-session population shape.
    admission_controllers: tuple[str, ...] = (
        "none",
        "static-cap",
        "knee-tracker",
        "backpressure",
    )
    admission_load_factors: tuple[float, ...] = (1.0, 1.5, 2.0, 3.0)
    admission_knee_rate: float = 0.019  # E7's FDD knee on the 8x8 grid
    admission_epochs: int = 12
    admission_mean_flow_size: int = 30
    admission_cbr_fraction: float = 0.3
    admission_elastic_rate: float = 0.08
    admission_max_size_factor: float = 10.0
    #: E11 in-band control-plane pricing: payload bytes per message class
    #: (0 disables a class — the free idealization), the E8-revisit arrival
    #: rate and policies, the E9-revisit sharded rate, and the E10-revisit
    #: overload factor.  See repro.core.controlplane and DESIGN.md §10.
    controlplane_patch_bytes: float = 8.0
    controlplane_report_bytes: float = 12.0
    controlplane_reconcile_bytes: float = 10.0
    controlplane_signal_bytes: float = 6.0
    controlplane_lambda: float = 0.0145
    controlplane_policies: tuple[str, ...] = ("always", "patch")
    controlplane_admission_factor: float = 2.0
    #: E12 adaptive multi-rate links (repro.phy.radio.RateTable): the MCS
    #: ladder swept against the seed's fixed-rate contract.  The defaults —
    #: 3 tiers, x2 SINR and x2 rate per tier, 1 dB hysteresis margin — are
    #: calibrated to the 8x8 grid at density 1000/km^2, where standalone
    #: link margins span ~1.2-3.4x beta: tiers at beta/2beta/4beta give
    #: ~45% of links one tier of headroom while the classic 6 dB ladder
    #: would never engage.  The lambda sweep brackets E7's fixed-rate FDD
    #: knee (0.019) from below and above so the knee *shift* is visible.
    multirate_lambdas: tuple[float, ...] = (0.0145, 0.019, 0.0265, 0.034)
    multirate_epochs: int = 10
    multirate_tiers: int = 3
    multirate_sinr_step: float = 2.0
    multirate_rate_step: float = 2.0
    multirate_hysteresis: float = 1.25
    #: E11 sensitivity satellite: factors applied via ControlPlaneModel.scaled
    #: to the E8-revisit pricing, looking for where patching's amortized
    #: overhead win flips sign.  Honest prices are milliseconds of air per
    #: epoch against 40 ms slots, so the flip only appears around three
    #: orders of magnitude above them (~2-8192x the 8-byte patch payload,
    #: i.e. ~16-64 kB per delta) — the sweep brackets it.
    controlplane_scale_factors: tuple[float, ...] = (1.0, 256.0, 2048.0, 8192.0)
    #: E13 scale sweep (repro.experiments.scale): square grid side lengths
    #: (node count = side^2; 316^2 ~ 10^5 nodes), the node-count ceiling for
    #: the dense O(n^2) baseline (beyond it only the sparse backend runs —
    #: the dense gain matrix alone is 8 GB at 10^5 nodes), deployment
    #: density, epochs/slots for the served workload, offered arrivals
    #: (packets per node per *epoch*), and gateway spacing (one gateway per
    #: ``stride x stride`` block of the grid).
    scale_grid_sides: tuple[int, ...] = (50, 100, 224, 316)
    scale_dense_max_nodes: int = 10_000
    scale_density_per_km2: float = 1000.0
    scale_epochs: int = 2
    scale_epoch_slots: int = 500
    scale_arrival_rate: float = 1.0
    scale_gateway_stride: int = 10
    #: Observability (repro.obs): instrumentation level for the engine runs
    #: an experiment performs ("off" | "metrics" | "spans") and, when set,
    #: the directory its JSONL run file (``<experiment>.jsonl``) is written
    #: to.  See :func:`obs_for` and DESIGN.md §11.
    obs_level: str = "off"
    obs_jsonl: str | None = None
    seed: int = DEFAULT_SEED


FULL = ExperimentProfile(name="full")

QUICK = ExperimentProfile(
    name="quick",
    densities=(1000, 5000, 25000),
    repetitions=2,
    pdd_probabilities=(0.2, 0.8),
    mote_screams=200,
    mote_smbytes=(5, 8, 10, 15, 24),
    exec_time_sweep=(5, 15, 30, 60),
    skew_sweep_s=(1e-6, 1e-4, 1e-2, 1.0),
    id_scaling_sizes=(16, 36, 64),
    traffic_lambdas=(0.006, 0.019),
    traffic_epochs=5,
    traffic_epoch_slots=200,
    sharded_grids=((12, 12),),
    sharded_lambdas=((0.002, 0.004),),
    sharded_epochs=5,
    admission_controllers=("none", "knee-tracker"),
    admission_load_factors=(1.0, 2.0),
    admission_epochs=8,
    controlplane_lambda=0.006,
    multirate_lambdas=(0.006, 0.019, 0.0265),
    multirate_epochs=5,
    controlplane_scale_factors=(1.0, 1024.0, 4096.0),
    scale_grid_sides=(20, 32),
    scale_dense_max_nodes=1100,
    scale_epoch_slots=200,
)

#: The paper's protocol constants (Section VI-A).
PAPER_PROTOCOL = ProtocolConfig(k=5, smbytes=15, id_bits=8)


def obs_for(profile: ExperimentProfile, experiment: str, **extra):
    """Build the Obs handle an experiment threads through its engine runs.

    Returns ``None`` when the profile's ``obs_level`` is ``off`` (engines
    take ``obs=None``), otherwise an :class:`repro.obs.Obs` at the
    profile's level.  With ``obs_jsonl`` set, the run streams to
    ``<obs_jsonl>/<experiment>.jsonl``; the experiment must call
    ``finish_obs(obs)`` after its last engine run to flush the metrics
    snapshot and summary line.  ``extra`` lands in the run file's config
    fingerprint alongside the profile name and seed.
    """
    from pathlib import Path

    from repro.obs import Obs, ObsConfig

    if profile.obs_level == "off":
        return None
    path = None
    if profile.obs_jsonl is not None:
        directory = Path(profile.obs_jsonl)
        directory.mkdir(parents=True, exist_ok=True)
        path = str(directory / f"{experiment}.jsonl")
    return Obs.create(
        ObsConfig(
            level=profile.obs_level,
            jsonl_path=path,
            run_name=experiment,
            config={
                "experiment": experiment,
                "profile": profile.name,
                "seed": profile.seed,
                **extra,
            },
        )
    )


def finish_obs(obs) -> None:
    """Flush an experiment's Obs (no-op for ``None`` / non-JSONL handles)."""
    if obs is not None:
        obs.export()


def grid_scenario(
    density_per_km2: float,
    rep: int,
    seed: int = DEFAULT_SEED,
    rows: int = 8,
    cols: int = 8,
    n_gateways: int = 4,
    demand_range: tuple[int, int] = (1, 10),
) -> Scenario:
    """The planned scenario: grid placement, planned gateways.

    The topology is deterministic given the density; routing tie-breaks and
    demands vary with the repetition index.
    """
    network = grid_network(rows, cols, density_per_km2=density_per_km2)
    gws = planned_gateways(rows, cols, n_gateways)
    forest = build_routing_forest(
        network.comm_adj, gws, rng=spawn(seed, "grid-forest", int(density_per_km2), rep)
    )
    demand = uniform_node_demand(
        network.n_nodes,
        spawn(seed, "grid-demand", int(density_per_km2), rep),
        low=demand_range[0],
        high=demand_range[1],
        gateways=gws,
    )
    links = forest_link_set(forest, aggregate_demand(forest, demand))
    return Scenario(
        network=network,
        links=links,
        gateways=gws,
        label=f"grid d={density_per_km2:g} rep={rep}",
    )


def uniform_scenario(
    density_per_km2: float,
    rep: int,
    seed: int = DEFAULT_SEED,
    n_nodes: int = 64,
    n_gateways: int = 4,
    demand_range: tuple[int, int] = (1, 10),
) -> Scenario:
    """The unplanned scenario: uniform placement, heterogeneous power,
    random gateways."""
    network = uniform_network(
        n_nodes,
        density_per_km2=density_per_km2,
        rng=spawn(seed, "uniform-net", int(density_per_km2), rep),
    )
    gws = random_gateways(
        n_nodes, n_gateways, spawn(seed, "uniform-gw", int(density_per_km2), rep)
    )
    forest = build_routing_forest(
        network.comm_adj,
        gws,
        rng=spawn(seed, "uniform-forest", int(density_per_km2), rep),
    )
    demand = uniform_node_demand(
        n_nodes,
        spawn(seed, "uniform-demand", int(density_per_km2), rep),
        low=demand_range[0],
        high=demand_range[1],
        gateways=gws,
    )
    links = forest_link_set(forest, aggregate_demand(forest, demand))
    return Scenario(
        network=network,
        links=links,
        gateways=gws,
        label=f"uniform d={density_per_km2:g} rep={rep}",
    )
