"""The Mica2 mote SCREAM testbed (Section V), end to end.

Reproduces both testbed figures — detection error vs SCREAM size and the
monitor's RSSI moving-average trace — and then closes the loop the paper
leaves implicit: it feeds the measured per-SCREAM miss probability into the
protocol fault model and shows what an under-sized SCREAM does to a real
schedule computation.

Run:  python examples/mote_testbed.py
"""

import numpy as np

from repro import FaultConfig, ProtocolConfig, verify_schedule
from repro.analysis.tables import TextTable
from repro.core.fdd import fdd_on_network
from repro.experiments.common import grid_scenario
from repro.mote import miss_probability, monitor_rssi_trace, run_detection_error_sweep

SEED = 3


def main() -> None:
    # --- Figure "error vs size" ------------------------------------------
    sizes = [5, 8, 10, 12, 15, 20, 24]
    results = run_detection_error_sweep(sizes, n_screams=500, rng=SEED)
    table = TextTable(
        ["SMBytes", "detected", "interval error (%)"],
        title="SCREAM detection on the 8-mote testbed (500 screams)",
    )
    for r in results:
        table.add_row(r.smbytes, f"{r.detections}/{r.n_screams}", f"{r.error_percent:.1f}")
    print(table.render())

    # --- Figure "RSSI moving average" -------------------------------------
    times, values = monitor_rssi_trace(smbytes=24, n_rounds=3, rng=SEED)
    print("\nmonitor RSSI moving average (24-byte screams, 3 rounds):")
    print(f"  {len(times)} logged samples over {times[-1]*1000:.0f} ms")
    print(f"  baseline {np.median(values[values < -80]):.1f} dBm, "
          f"peak {values.max():.1f} dBm, threshold -60 dBm")

    # --- Closing the loop: physical reliability -> protocol health --------
    print("\nprotocol impact of SCREAM sizing (64-node grid, FDD):")
    scenario = grid_scenario(2500.0, rep=0, seed=SEED)
    impact = TextTable(
        ["SMBytes", "per-slot miss prob", "schedule valid", "multi-winner elections"]
    )
    for smbytes in (8, 15, 24):
        miss = miss_probability(smbytes, n_trials=300, rng=SEED)
        config = ProtocolConfig(
            smbytes=smbytes, max_rounds=4 * scenario.total_demand
        )
        result = fdd_on_network(
            scenario.network,
            scenario.links,
            config,
            faults=FaultConfig(scream_miss_prob=miss),
            rng=SEED,
        )
        report = verify_schedule(result.schedule, scenario.network.model)
        impact.add_row(
            smbytes,
            f"{miss:.3f}",
            "yes" if (report.ok and result.terminated) else "NO",
            result.tally.multi_winner_elections,
        )
    print(impact.render())
    print(
        "\nReading: at 15+ bytes carrier sensing is reliable and the "
        "distributed schedule is exact; under-sized screams make floods "
        "lossy, elections split, and the verifier flags the damage."
    )


if __name__ == "__main__":
    main()
