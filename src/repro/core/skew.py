"""Uncompensated clock skew: what breaks when guards are too small.

The paper's implementations *compensate* for skew by stretching every
synchronized step (so skew costs time — Figures 8/9).  This module models
the alternative the paper implicitly argues against: keeping slots tight and
letting misaligned bursts fall outside listeners' windows.

With fixed per-node offsets (bounded by the skew bound) and a per-step guard
``g``, a listener reliably detects a SCREAM burst iff the pairwise
misalignment stays within ``g`` (see
:meth:`repro.simulation.clock.ClockModel.overlap_fraction`).  Degrading the
sensitivity graph accordingly and re-running the protocols shows exactly
when — and how — schedule computation collapses, detected by the verifier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.clock import ClockModel


@dataclass(frozen=True)
class SkewDegradation:
    """Summary of a sensitivity graph degraded by uncompensated skew."""

    sens_adj: np.ndarray
    edges_total: int
    edges_lost: int

    @property
    def loss_fraction(self) -> float:
        if self.edges_total == 0:
            return 0.0
        return self.edges_lost / self.edges_total


def degrade_sensitivity_graph(
    sens_adj: np.ndarray,
    clock: ClockModel,
    burst_s: float,
    guard_s: float,
    min_overlap: float = 1.0,
) -> SkewDegradation:
    """Remove sensitivity edges whose bursts slip out of the listen window.

    Parameters
    ----------
    sens_adj:
        The nominal directed sensitivity graph.
    clock:
        Per-node offsets (fixed for the computation's duration).
    burst_s:
        SCREAM burst duration (``8·SMBytes / bitrate``).
    guard_s:
        The guard actually budgeted per step (an *uncompensated* system
        keeps this below the skew bound).
    min_overlap:
        Required fraction of the burst inside the window; 1.0 (default)
        demands full containment, matching the reliability criterion of the
        compensated design.
    """
    adj = np.asarray(sens_adj, dtype=bool)
    n = adj.shape[0]
    degraded = adj.copy()
    lost = 0
    senders, listeners = np.nonzero(adj)
    for u, v in zip(senders, listeners):
        overlap = clock.overlap_fraction(int(u), int(v), burst_s, guard_s)
        if overlap < min_overlap:
            degraded[u, v] = False
            lost += 1
    return SkewDegradation(
        sens_adj=degraded, edges_total=int(adj.sum()), edges_lost=lost
    )


def critical_skew_estimate(guard_s: float) -> float:
    """The skew bound beyond which *some* pair can exceed the guard.

    Offsets are uniform on ``[-b, +b]``; the worst pairwise misalignment is
    ``2b``, so detection is guaranteed only while ``2b <= guard`` — i.e.
    degradation becomes possible at ``b = guard / 2``.
    """
    if guard_s < 0:
        raise ValueError("guard_s must be non-negative")
    return guard_s / 2.0
