"""Incremental SINR feasibility bookkeeping for slot construction.

Testing "can link e join this slot?" from scratch costs O(k²) in the number
of member links; greedy schedulers perform that test once per (link, slot)
pair, which dominates the centralized algorithm's running time.
:class:`SlotState` maintains per-member interference sums so each test is
O(k) and each accepted addition is O(k).

The arithmetic mirrors :mod:`repro.phy.interference` exactly — a property
test asserts the two always agree — but avoids rebuilding the full incidence
matrix per test.
"""

from __future__ import annotations

import numpy as np

from repro.phy.interference import PhysicalInterferenceModel
from repro.scheduling.schedule import Schedule


class SlotState:
    """Mutable feasibility state of one slot under construction.

    Tracks, for every member link ``k`` (sender ``s_k``, receiver ``r_k``):

    * ``data_interf[k]`` — total interference power at ``r_k`` from the
      *other* members' data transmissions;
    * ``ack_interf[k]`` — total interference power at ``s_k`` from the
      other members' ACK transmissions.

    All powers in mW; thresholds from the bound interference model.
    """

    def __init__(self, model: PhysicalInterferenceModel):
        self._model = model
        self._power = model.power
        self._noise = model.radio.noise_mw
        self._beta = model.radio.beta
        # Per-node far-field noise budget (sharded guard margins); None for
        # the exact monolithic model.  Receiving nodes pay their budget on
        # top of the thermal noise in every check below.
        self._budget = model.budget_mw
        self.senders: list[int] = []
        self.receivers: list[int] = []
        self._data_interf: list[float] = []
        self._ack_interf: list[float] = []

    def __len__(self) -> int:
        return len(self.senders)

    def members(self) -> tuple[np.ndarray, np.ndarray]:
        """(senders, receivers) arrays of the current members."""
        return (
            np.asarray(self.senders, dtype=np.intp),
            np.asarray(self.receivers, dtype=np.intp),
        )

    def can_add(self, sender: int, receiver: int) -> bool:
        """Would the slot stay feasible if ``sender -> receiver`` joined?

        Checks the new link's own data and ACK SINR against the members'
        interference, and every member's updated SINR against the new link's
        contribution.  The slot state is not modified.

        Links sharing a node with a member are rejected outright: a
        half-duplex node cannot transmit and receive in the same sub-slot
        (this mirrors the SINR-level masking in
        :func:`repro.phy.sinr.sinr_for_links`).
        """
        p = self._power
        noise = self._noise
        beta = self._beta
        budget = self._budget

        if sender == receiver:
            return False
        for s_k, r_k in zip(self.senders, self.receivers):
            if sender in (s_k, r_k) or receiver in (s_k, r_k):
                return False

        new_data_interf = 0.0
        new_ack_interf = 0.0
        for s_k, r_k in zip(self.senders, self.receivers):
            new_data_interf += p[s_k, receiver]
            new_ack_interf += p[r_k, sender]
        data_noise = noise if budget is None else noise + budget[receiver]
        ack_noise = noise if budget is None else noise + budget[sender]
        if p[sender, receiver] < beta * (data_noise + new_data_interf):
            return False
        if p[receiver, sender] < beta * (ack_noise + new_ack_interf):
            return False

        for k, (s_k, r_k) in enumerate(zip(self.senders, self.receivers)):
            data_interf = self._data_interf[k] + p[sender, r_k]
            member_data_noise = noise if budget is None else noise + budget[r_k]
            if p[s_k, r_k] < beta * (member_data_noise + data_interf):
                return False
            ack_interf = self._ack_interf[k] + p[receiver, s_k]
            member_ack_noise = noise if budget is None else noise + budget[s_k]
            if p[r_k, s_k] < beta * (member_ack_noise + ack_interf):
                return False
        return True

    def feasible_with(
        self, cand_senders: np.ndarray, cand_receivers: np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`can_add`: one bool per candidate, state untouched.

        Vectorizes over candidates while looping over members, so every
        float accumulation happens in exactly :meth:`can_add`'s member
        order — the verdicts are bit-identical, which the batched greedy
        and patch paths rely on.  Candidates are alternatives evaluated
        independently, not a set admitted together.
        """
        cs = np.asarray(cand_senders, dtype=np.intp)
        cr = np.asarray(cand_receivers, dtype=np.intp)
        if cs.shape != cr.shape or cs.ndim != 1:
            raise ValueError("candidate senders and receivers must be equal-length 1-D arrays")
        p = self._power
        noise = self._noise
        beta = self._beta
        budget = self._budget

        ok = cs != cr
        shared = np.zeros(cs.shape, dtype=bool)
        new_data_interf = np.zeros(cs.shape, dtype=float)
        new_ack_interf = np.zeros(cs.shape, dtype=float)
        for s_k, r_k in zip(self.senders, self.receivers):
            shared |= (cs == s_k) | (cs == r_k) | (cr == s_k) | (cr == r_k)
            new_data_interf += p[s_k, cr]
            new_ack_interf += p[r_k, cs]
        ok &= ~shared
        data_noise = noise if budget is None else noise + budget[cr]
        ack_noise = noise if budget is None else noise + budget[cs]
        ok &= ~(p[cs, cr] < beta * (data_noise + new_data_interf))
        ok &= ~(p[cr, cs] < beta * (ack_noise + new_ack_interf))

        for k, (s_k, r_k) in enumerate(zip(self.senders, self.receivers)):
            data_interf = self._data_interf[k] + p[cs, r_k]
            member_data_noise = noise if budget is None else noise + budget[r_k]
            ok &= ~(p[s_k, r_k] < beta * (member_data_noise + data_interf))
            ack_interf = self._ack_interf[k] + p[cr, s_k]
            member_ack_noise = noise if budget is None else noise + budget[s_k]
            ok &= ~(p[r_k, s_k] < beta * (member_ack_noise + ack_interf))
        return ok

    def add(self, sender: int, receiver: int) -> None:
        """Add the link unconditionally, updating interference sums."""
        p = self._power
        new_data_interf = 0.0
        new_ack_interf = 0.0
        for k, (s_k, r_k) in enumerate(zip(self.senders, self.receivers)):
            self._data_interf[k] += p[sender, r_k]
            self._ack_interf[k] += p[receiver, s_k]
            new_data_interf += p[s_k, receiver]
            new_ack_interf += p[r_k, sender]
        self.senders.append(int(sender))
        self.receivers.append(int(receiver))
        self._data_interf.append(new_data_interf)
        self._ack_interf.append(new_ack_interf)

    def try_add(self, sender: int, receiver: int) -> bool:
        """Add the link iff the slot stays feasible; report success."""
        if self.can_add(sender, receiver):
            self.add(sender, receiver)
            return True
        return False

    def is_feasible(self) -> bool:
        """Re-check the whole member set against the exact model."""
        snd, rcv = self.members()
        if snd.size == 0:
            return True
        return self._model.is_feasible(snd, rcv)

    def member_tiers(self, table) -> np.ndarray:
        """Per-member MCS tier (base-tier floor) under a ``RateTable``.

        Member order matches :attr:`senders` — the last entry is the most
        recently added link, which rate-aware packers use to read the rate
        actually granted to an insertion.
        """
        snd, rcv = self.members()
        if snd.size == 0:
            return np.empty(0, dtype=np.int64)
        return self._model.link_tiers(snd, rcv, table)

    def member_rates(self, table) -> np.ndarray:
        """Per-member packets-per-slot under a ``RateTable`` (>= base rate)."""
        snd, rcv = self.members()
        if snd.size == 0:
            return np.empty(0, dtype=np.int64)
        return self._model.link_rates(snd, rcv, table)

    def rate_sum(self, table) -> int:
        """Total packets per slot the current member set carries."""
        return int(self.member_rates(table).sum())


def slots_can_add(
    states: list[SlotState], sender: int, receiver: int
) -> np.ndarray:
    """One candidate against many slots: ``out[j] == states[j].can_add(...)``.

    The transpose of :meth:`SlotState.feasible_with` — vectorizes the
    per-(link, slot) admission test over the *slot* axis.  All member
    arrays are concatenated once and the per-slot interference sums fall
    out of ``np.bincount`` segment sums, whose C loop accumulates weights
    in input order — the same member order :meth:`SlotState.can_add` sums
    in, keeping the verdicts bit-identical.  Empty slots reduce to the
    standalone check, exactly as ``can_add`` on a fresh state does.

    All states must be bound to the same interference model (one power
    matrix / noise / β / budget); the schedulers that batch through here
    build every slot from a single model.
    """
    n = len(states)
    out = np.zeros(n, dtype=bool)
    if n == 0:
        return out
    if sender == receiver:
        return out
    st0 = states[0]
    p = st0._power
    noise = st0._noise
    beta = st0._beta
    budget = st0._budget

    sid: list[int] = []
    ms: list[int] = []
    mr: list[int] = []
    di: list[float] = []
    ai: list[float] = []
    for j, state in enumerate(states):
        count = len(state.senders)
        sid.extend([j] * count)
        ms.extend(state.senders)
        mr.extend(state.receivers)
        di.extend(state._data_interf)
        ai.extend(state._ack_interf)

    data_noise = noise if budget is None else noise + budget[receiver]
    ack_noise = noise if budget is None else noise + budget[sender]
    if not sid:
        # Every slot is empty: the verdict is the standalone check.
        alone = not (
            p[sender, receiver] < beta * data_noise
            or p[receiver, sender] < beta * ack_noise
        )
        out[:] = alone
        return out

    slot_id = np.asarray(sid, dtype=np.intp)
    msnd = np.asarray(ms, dtype=np.intp)
    mrcv = np.asarray(mr, dtype=np.intp)
    data_interf = np.asarray(di, dtype=float)
    ack_interf = np.asarray(ai, dtype=float)

    shared = (msnd == sender) | (msnd == receiver) | (mrcv == sender) | (mrcv == receiver)
    shared_per_slot = np.bincount(slot_id, weights=shared, minlength=n) > 0

    new_data_interf = np.bincount(slot_id, weights=p[msnd, receiver], minlength=n)
    new_ack_interf = np.bincount(slot_id, weights=p[mrcv, sender], minlength=n)
    cand_ok = ~(p[sender, receiver] < beta * (data_noise + new_data_interf))
    cand_ok &= ~(p[receiver, sender] < beta * (ack_noise + new_ack_interf))

    member_data_noise = noise if budget is None else noise + budget[mrcv]
    member_ack_noise = noise if budget is None else noise + budget[msnd]
    bad = p[msnd, mrcv] < beta * (member_data_noise + (data_interf + p[sender, mrcv]))
    bad |= p[mrcv, msnd] < beta * (member_ack_noise + (ack_interf + p[receiver, msnd]))
    member_bad = np.bincount(slot_id, weights=bad, minlength=n) > 0

    return cand_ok & ~shared_per_slot & ~member_bad


def schedule_is_feasible(
    schedule: Schedule, model: PhysicalInterferenceModel
) -> bool:
    """Is every slot of the schedule feasible under the exact model?"""
    for t in range(schedule.length):
        snd, rcv = schedule.slot_members(t)
        if snd.size and not model.is_feasible(snd, rcv):
            return False
    return True


def schedule_rates(
    schedule: Schedule, model: PhysicalInterferenceModel, table
) -> list[np.ndarray]:
    """Per-slot packets-per-slot arrays (member order) under a ``RateTable``.

    Stateless — no hysteresis; the epoch engines carry selection state in
    :class:`repro.traffic.epoch.RateAnnotator` instead.
    """
    rates = []
    for t in range(schedule.length):
        snd, rcv = schedule.slot_members(t)
        if snd.size == 0:
            rates.append(np.empty(0, dtype=np.int64))
        else:
            rates.append(model.link_rates(snd, rcv, table))
    return rates
