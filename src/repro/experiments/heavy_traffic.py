"""Heavy-traffic experiments: stability regions under online rescheduling.

The evaluation axis the static figures lack (cf. arXiv:1106.1590,
arXiv:1208.0902): sustained flow arrivals, per-link queue backlogs, and a
schedule recomputed every epoch from the live backlogs.

*E7 (stability regions)* — for each arrival rate ``lambda`` (packets per
node per slot) and each scheduler — the serialized TDMA baseline, the
centralized GreedyPhysical oracle, and the FDD distributed protocol
*charged its measured air-time overhead* — the harness runs the epoch loop
on the paper's 8x8 planned grid and reports throughput, delay, and backlog
growth.  The knee rows summarize each scheduler's stability region; the
expected ordering is

    serialized  <  FDD (overhead-priced)  <=  GreedyPhysical (free oracle)

because spatial reuse raises capacity and distributed computation costs a
slice of every epoch.  Borderline operating points (utilization ~ 1, where
a single arrival sample path decides the verdict) are re-evaluated over
``traffic_confirm_seeds`` independent seeds and majority-resolved, so the
reported knees are properties of the scheduler, not of one lucky draw.

*E8 (incremental rescheduling)* — the same FDD closed loop under the three
``reschedule_policy`` settings of :mod:`repro.traffic.incremental`:
re-run every epoch (``always``), reuse the cached schedule while backlog
drift stays under the headroom-scaled threshold (``drift-threshold``), and
additionally repair the cached schedule in place on a miss (``patch``).
The added columns price the economics: total overhead slots paid across
the run, amortized overhead per epoch, and the fraction of epochs served
from cache.  The expected headline is that caching with patching cuts
FDD's protocol overhead by an order of magnitude while leaving the
stability knee unchanged — recovering most of the free oracle's capacity
at distributed-protocol prices.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analysis.tables import TextTable
from repro.core.fdd import fdd_on_network
from repro.experiments.common import (
    PAPER_PROTOCOL,
    ExperimentProfile,
    finish_obs,
    obs_for,
)
from repro.routing import build_routing_forest, planned_gateways
from repro.scheduling.links import forest_link_set
from repro.topology.network import grid_network
from repro.traffic import (
    EpochConfig,
    PoissonArrivals,
    TrafficTrace,
    centralized_scheduler,
    distributed_scheduler,
    run_epochs,
    serialized_scheduler,
    stability_knee,
    stability_sweep,
)
from repro.util.rng import spawn


def _grid_mesh(profile: ExperimentProfile):
    """The planned 8x8 grid, its gateways, and the forest link set."""
    network = grid_network(8, 8, density_per_km2=profile.traffic_density)
    gateways = planned_gateways(8, 8, 4)
    forest = build_routing_forest(
        network.comm_adj, gateways, rng=spawn(profile.seed, "traffic-forest")
    )
    # The forest link set only defines the directed links and queues; the
    # epoch loop replaces its demand with the live backlog snapshot.
    links = forest_link_set(forest, np.zeros(network.n_nodes, dtype=np.int64))
    return network, gateways, links


def _generator(profile: ExperimentProfile, network, gateways, rate: float, seed_index: int):
    """Poisson arrivals for one (rate, seed) operating point.

    Seed index 0 keeps the PR-1 derivation path (common random numbers:
    every scheduler faces the identical arrival sample path, so knee
    differences are scheduler capacity, not workload luck); higher indices
    are the independent sample paths used to majority-resolve borderline
    verdicts.
    """
    key = ("traffic-gen",) if seed_index == 0 else ("traffic-gen", seed_index)
    return PoissonArrivals(
        network.n_nodes, rate, gateways=gateways, seed=spawn(profile.seed, *key)
    )


def heavy_traffic_experiment(profile: ExperimentProfile) -> TextTable:
    """E7: stability-region sweep on the planned 8x8 grid (Section VI-A layout)."""
    network, gateways, links = _grid_mesh(profile)
    obs = obs_for(profile, "heavy-traffic")
    config = EpochConfig(
        epoch_slots=profile.traffic_epoch_slots,
        n_epochs=profile.traffic_epochs,
        slot_seconds=profile.traffic_slot_seconds,
        divergence_factor=4.0,
    )
    schedulers = [
        ("Serialized", serialized_scheduler()),
        ("GreedyPhysical", centralized_scheduler(network.model)),
        (
            "FDD",
            distributed_scheduler(
                network,
                fdd_on_network,
                config=PAPER_PROTOCOL,
                seed=spawn(profile.seed, "traffic-fdd"),
            ),
        ),
    ]

    table = TextTable(
        [
            "scheduler",
            "lambda (pkt/node/slot)",
            "throughput (pkt/slot)",
            "mean delay (slots)",
            "p99 delay (slots)",
            "backlog growth (pkt/epoch)",
            "overhead (slots/epoch)",
            "stable",
        ],
        title="Heavy-traffic stability regions — 8x8 planned grid, "
        f"density {profile.traffic_density:g}/km^2, Poisson arrivals, "
        f"T={profile.traffic_epoch_slots} slots/epoch, borderline verdicts "
        f"majority-resolved over {profile.traffic_confirm_seeds} seeds",
    )
    knees: list[tuple[str, float | None]] = []
    for name, scheduler in schedulers:

        def run_at(rate: float, seed_index: int = 0, scheduler=scheduler) -> TrafficTrace:
            generator = _generator(profile, network, gateways, rate, seed_index)
            return run_epochs(links, generator, scheduler, config, obs=obs)

        points = stability_sweep(
            profile.traffic_lambdas,
            run_at,
            confirm_seeds=profile.traffic_confirm_seeds,
        )
        knees.append((name, stability_knee(points)))
        for point in points:
            stable = "yes" if point.stable else "NO"
            if point.confirm_seeds > 1:
                stable += f" ({point.confirm_seeds}-seed)"
            table.add_row(
                name,
                f"{point.offered_rate:g}",
                f"{point.throughput:.3f}",
                f"{point.mean_delay:.1f}",
                f"{point.p99_delay:.0f}",
                f"{point.backlog_slope:+.1f}",
                f"{point.overhead_slots:.1f}",
                stable,
            )
    for name, knee in knees:
        table.add_row(
            name, "knee", "-", "-", "-", "-", "-", "-" if knee is None else f"{knee:g}"
        )
    finish_obs(obs)
    return table


def incremental_experiment(profile: ExperimentProfile) -> TextTable:
    """E8: rescheduling-policy axis — caching and patching vs re-run-always.

    Runs the overhead-priced FDD protocol on the planned 8x8 grid under
    each ``reschedule_policy`` in ``profile.traffic_policies``, sweeping
    the same arrival rates as E7, and prices the amortization: overhead
    slots actually paid, hit rate, and the per-policy stability knee.
    """
    network, gateways, links = _grid_mesh(profile)
    obs = obs_for(profile, "incremental")
    base_config = EpochConfig(
        epoch_slots=profile.traffic_epoch_slots,
        n_epochs=profile.traffic_epochs,
        slot_seconds=profile.traffic_slot_seconds,
        divergence_factor=4.0,
        drift_threshold=profile.traffic_drift_threshold,
    )

    table = TextTable(
        [
            "policy",
            "lambda (pkt/node/slot)",
            "throughput (pkt/slot)",
            "mean delay (slots)",
            "overhead (slots total)",
            "overhead (slots/epoch)",
            "cache hits (%)",
            "backlog growth (pkt/epoch)",
            "stable",
        ],
        title="Incremental epoch rescheduling — FDD on the 8x8 planned grid, "
        f"density {profile.traffic_density:g}/km^2, Poisson arrivals, "
        f"T={profile.traffic_epoch_slots} slots/epoch, base drift threshold "
        f"{base_config.drift_threshold:g} (headroom-scaled)",
    )
    knees: list[tuple[str, float | None]] = []
    base_traces: dict[tuple[str, float], TrafficTrace] = {}
    for policy in profile.traffic_policies:
        config = replace(base_config, reschedule_policy=policy)

        def run_at(rate: float, seed_index: int = 0, config=config) -> TrafficTrace:
            # A fresh scheduler (and, inside run_epochs, a fresh cache) per
            # operating point: cache state must never leak across runs.
            scheduler = distributed_scheduler(
                network,
                fdd_on_network,
                config=PAPER_PROTOCOL,
                seed=spawn(profile.seed, "traffic-fdd"),
            )
            generator = _generator(profile, network, gateways, rate, seed_index)
            trace = run_epochs(
                links, generator, scheduler, config, model=network.model, obs=obs
            )
            if seed_index == 0:
                base_traces[(config.reschedule_policy, rate)] = trace
            return trace

        points = stability_sweep(
            profile.traffic_lambdas,
            run_at,
            confirm_seeds=profile.traffic_confirm_seeds,
        )
        knees.append((policy, stability_knee(points)))
        for point in points:
            stable = "yes" if point.stable else "NO"
            if point.confirm_seeds > 1:
                stable += f" ({point.confirm_seeds}-seed)"
            trace = base_traces[(policy, point.offered_rate)]
            table.add_row(
                policy,
                f"{point.offered_rate:g}",
                f"{point.throughput:.3f}",
                f"{point.mean_delay:.1f}",
                f"{trace.overhead_slots_total:d}",
                f"{point.overhead_slots:.1f}",
                f"{point.cache_hit_rate:.0%}",
                f"{point.backlog_slope:+.1f}",
                stable,
            )
    for policy, knee in knees:
        table.add_row(
            policy,
            "knee",
            "-",
            "-",
            "-",
            "-",
            "-",
            "-",
            "-" if knee is None else f"{knee:g}",
        )
    finish_obs(obs)
    return table
