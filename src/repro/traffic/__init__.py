"""Dynamic traffic workloads and epoch-based online rescheduling.

Turns the static demand -> schedule pipeline into a closed-loop system:
workload generators emit per-node packet arrivals each epoch, per-link FIFO
queues accumulate them along the routing forest, and the epoch loop
re-runs any scheduler on the live backlog snapshot — charging distributed
protocols their measured air-time overhead — then serves the queues with
the result.  Stability metrics locate each scheduler's capacity knee.
See DESIGN.md §6 for the subsystem inventory.
"""

from repro.traffic.generators import (
    TrafficGenerator,
    ConstantBitRate,
    PoissonArrivals,
    ParetoOnOff,
    DiurnalLoad,
)
from repro.traffic.queues import LinkQueues
from repro.traffic.epoch import (
    EpochConfig,
    EpochRecord,
    EpochSchedule,
    EpochSchedulerFn,
    TrafficTrace,
    play_schedule,
    run_epochs,
    serialized_scheduler,
    centralized_scheduler,
    distributed_scheduler,
)
from repro.traffic.incremental import (
    DEFAULT_DRIFT_THRESHOLD,
    DRIFT_METRICS,
    RESCHEDULE_POLICIES,
    CacheDecision,
    CacheStats,
    ScheduleCache,
    drift_l1,
    drift_linf,
    patch_schedule,
)
from repro.traffic.sharded import (
    DEFAULT_GUARD_FACTOR,
    LinkShard,
    ShardPlan,
    ShardSchedulerFactory,
    ShardedTrafficTrace,
    partition_links,
    plan_for_network,
    reconcile_round,
    run_epochs_sharded,
    sharded_centralized_factory,
    sharded_distributed_factory,
)
from repro.traffic.stability import (
    BACKLOG_GATE_FRACTION,
    BORDERLINE_HYSTERESIS,
    CONFIRM_SEEDS,
    STABILITY_TOLERANCE,
    StabilityMetrics,
    backlog_slope,
    find_knee,
    is_borderline,
    is_stable,
    majority_stable,
    stability_margin,
    summarize_trace,
    stability_sweep,
    stability_knee,
)

__all__ = [
    "TrafficGenerator",
    "ConstantBitRate",
    "PoissonArrivals",
    "ParetoOnOff",
    "DiurnalLoad",
    "LinkQueues",
    "EpochConfig",
    "EpochRecord",
    "EpochSchedule",
    "EpochSchedulerFn",
    "TrafficTrace",
    "play_schedule",
    "run_epochs",
    "serialized_scheduler",
    "centralized_scheduler",
    "distributed_scheduler",
    "DEFAULT_DRIFT_THRESHOLD",
    "DRIFT_METRICS",
    "RESCHEDULE_POLICIES",
    "CacheDecision",
    "CacheStats",
    "ScheduleCache",
    "drift_l1",
    "drift_linf",
    "patch_schedule",
    "DEFAULT_GUARD_FACTOR",
    "LinkShard",
    "ShardPlan",
    "ShardSchedulerFactory",
    "ShardedTrafficTrace",
    "partition_links",
    "plan_for_network",
    "reconcile_round",
    "run_epochs_sharded",
    "sharded_centralized_factory",
    "sharded_distributed_factory",
    "BACKLOG_GATE_FRACTION",
    "BORDERLINE_HYSTERESIS",
    "CONFIRM_SEEDS",
    "STABILITY_TOLERANCE",
    "StabilityMetrics",
    "backlog_slope",
    "find_knee",
    "is_borderline",
    "is_stable",
    "majority_stable",
    "stability_margin",
    "summarize_trace",
    "stability_sweep",
    "stability_knee",
]
