"""In-band control-plane accounting: pricing coordination into the data air.

SCREAM's headline is *overhead-efficient* distributed scheduling, and the
epoch engines already price the protocols' own execution
(:class:`~repro.core.timing.TimingModel`).  But three layers grown on top
of the protocols historically coordinated for free: incremental patching
assumed a free local controller (DESIGN.md §7), sharded reconciliation was
a free central post-pass (§8), and admission signaling plus observable
collection cost nothing (§9).  Real coordination rides the same air the
data uses — Halldórsson & Mitra (arXiv:1104.5200) and the heavy-traffic
schedulers of arXiv:1106.1590 both charge it — so this module supplies the
one shared cost model all layers now draw from:

* :class:`ControlPlaneModel` prices the four **message classes** the
  traffic layers exchange — ``patch`` deltas (schedule repairs distributed
  along the routing forest), backlog/observable ``report`` messages,
  ``reconcile`` round announcements, and session ``signal`` messages —
  each as a per-message payload size priced through
  :meth:`TimingModel.message_s`.  A class priced at **0 bytes is free**
  (the retired idealization, kept addressable), which is what makes the
  refactor differential-testable: with every price at zero, each engine
  reproduces its pre-refactor trace epoch-for-epoch (the
  ``with_budget``-style identity trick — a zero charge adds exactly
  ``0.0`` seconds to every overhead computation).
* :class:`ControlLedger` accumulates the charges of one engine run with
  per-epoch and per-layer attribution, so a trace can answer "how many
  slots of this epoch's overhead were control, and which layer spent
  them".  Engines convert the per-epoch ledger seconds into data slots on
  the same path as protocol air (``overhead_to_slots``), charged **on the
  critical path**: coordination messages serialize on shared air even when
  the regional computations they coordinate ran concurrently.
* :func:`forest_depths` measures each link's hop distance from its
  gateway along the routing forest — the in-band fan-out cost of
  controller-to-node distribution (a patch delta for a deep link relays
  through every hop between the gateway controller and the link's head).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.timing import TimingModel
from repro.util.validation import check_non_negative

#: Message classes the traffic layers exchange, each priced independently:
#:
#: * ``patch``     — one schedule-delta message per membership edit,
#:   relayed hop-by-hop down the routing forest (:mod:`repro.traffic.incremental`);
#: * ``report``    — one backlog/observable report per reporting link
#:   (admission observable collection, sharded boundary reports);
#: * ``reconcile`` — one serialized-round announcement per membership
#:   moved by cross-shard reconciliation (:mod:`repro.traffic.sharded`);
#: * ``signal``    — one session admit/deny or throttle-update message
#:   (:mod:`repro.traffic.flows`).
MESSAGE_CLASSES = ("patch", "report", "reconcile", "signal")

#: Layers that charge the ledger (attribution keys; informational).
CONTROL_LAYERS = ("incremental", "sharded", "admission")


@dataclass(frozen=True)
class ControlPlaneModel:
    """Per-class message prices for in-band control traffic.

    Attributes
    ----------
    timing:
        The :class:`~repro.core.timing.TimingModel` whose radio constants
        price a message's air time (same bitrate, turnaround, and skew
        guard as the protocol steps — control rides the same air).
    patch_bytes / report_bytes / reconcile_bytes / signal_bytes:
        Payload size of one message of each class.  **0 disables the
        class** (the free idealization): by convention a zero-byte message
        costs exactly ``0.0`` seconds, so an all-zero model reproduces the
        pre-pricing engines bit-for-bit.  The default model is all-free;
        :meth:`default_priced` returns the honest sizes E11 measures with.
    """

    timing: TimingModel = field(default_factory=TimingModel)
    patch_bytes: float = 0.0
    report_bytes: float = 0.0
    reconcile_bytes: float = 0.0
    signal_bytes: float = 0.0

    def __post_init__(self) -> None:
        for name in MESSAGE_CLASSES:
            check_non_negative(f"{name}_bytes", getattr(self, f"{name}_bytes"))

    def payload_bytes(self, message_class: str) -> float:
        """The configured payload size of one message of ``message_class``."""
        if message_class not in MESSAGE_CLASSES:
            raise ValueError(
                f"unknown message class {message_class!r}; "
                f"choose from {MESSAGE_CLASSES}"
            )
        return float(getattr(self, f"{message_class}_bytes"))

    def price_of(self, message_class: str) -> float:
        """Air seconds one message of ``message_class`` costs (0.0 if free)."""
        payload = self.payload_bytes(message_class)
        if payload <= 0.0:
            return 0.0
        return self.timing.message_s(payload)

    @property
    def is_free(self) -> bool:
        """True when every message class is priced at zero (the retired
        idealizations, kept addressable for differential tests)."""
        return all(self.payload_bytes(c) <= 0.0 for c in MESSAGE_CLASSES)

    def scaled(self, factor: float) -> "ControlPlaneModel":
        """A model with every payload size scaled by ``factor`` — the
        monotonicity axis the property tests sweep."""
        check_non_negative("factor", factor)
        return replace(
            self,
            **{f"{c}_bytes": factor * self.payload_bytes(c) for c in MESSAGE_CLASSES},
        )

    @classmethod
    def default_priced(cls, timing: TimingModel | None = None) -> "ControlPlaneModel":
        """The honest default prices E11 measures under.

        Sizes are SCREAM-scale control frames: a ``patch`` delta carries a
        link id, a slot index and an op code (8 bytes); a ``report``
        carries a link id plus backlog and delivered counters (12 bytes);
        a ``reconcile`` announcement carries a link id and its overflow
        slot (10 bytes); a ``signal`` carries a flow id and a verdict or
        throttle factor (6 bytes).  All are deliberately small — the point
        of in-band pricing is that even small messages are not free once
        counted honestly.
        """
        return cls(
            timing=timing or TimingModel(),
            patch_bytes=8.0,
            report_bytes=12.0,
            reconcile_bytes=10.0,
            signal_bytes=6.0,
        )


class ControlLedger:
    """Per-epoch, per-layer account of one engine run's control charges.

    Engines create one ledger per run (``run_epochs(..., control=model)``)
    and every layer books its messages through :meth:`charge`; the engine
    then reads :meth:`seconds_for` when converting the epoch's overhead to
    data slots.  Message *counts* are tracked even for free classes —
    the zero-price run reports exactly which messages the idealization was
    not paying for.
    """

    def __init__(self, model: ControlPlaneModel):
        self.model = model
        #: epoch -> {(layer, message_class): count}.  Counts are the only
        #: mutable state: every seconds figure is derived on read as
        #: count x price, summed in sorted key order, so ledger readings
        #: are exactly reproducible whatever order concurrent charges
        #: landed in (the sharded engine's per-shard caches charge one
        #: shared ledger from ThreadPool worker threads).  Bucketing per
        #: epoch keeps the engines' per-epoch reads proportional to that
        #: epoch's few entries, not the whole run's history.
        self._counts: dict[int, dict[tuple[str, str], int]] = {}
        self._lock = threading.Lock()
        self._obs = None

    def bind_obs(self, obs) -> None:
        """Mirror every charge into an observability registry.

        Once bound (the engines rebind per run; ``None`` unbinds), each
        :meth:`charge` also books ``control.messages`` and
        ``control.seconds`` counters labeled by layer and message class —
        the series the run-file summarizer renders as control-air
        attribution.  Observe-only: the ledger's own accounting is
        untouched, so bound and unbound runs stay bit-identical.
        """
        self._obs = obs

    def charge(self, epoch: int, layer: str, message_class: str, count: int) -> float:
        """Book ``count`` messages of ``message_class`` from ``layer`` to
        ``epoch``'s control budget; return the seconds charged.

        Thread-safe: concurrent charges (per-shard caches on worker
        threads) serialize on an internal lock, and since only integer
        counts accumulate, every derived figure is independent of the
        arrival order.
        """
        if count < 0:
            raise ValueError("message count must be non-negative")
        if not layer:
            raise ValueError("layer must be a non-empty attribution key")
        seconds = count * self.model.price_of(message_class)
        if count:
            key = (layer, message_class)
            with self._lock:
                bucket = self._counts.setdefault(epoch, {})
                bucket[key] = bucket.get(key, 0) + count
            if self._obs is not None:
                self._obs.counter(
                    "control.messages", count, layer=layer, cls=message_class
                )
                if seconds:
                    self._obs.counter(
                        "control.seconds", seconds, layer=layer, cls=message_class
                    )
        return seconds

    def _entries(self, layer=None, message_class=None):
        """Matching ``((epoch, layer, class), count)`` pairs in sorted key
        order (so float sums over them are deterministic)."""
        return [
            ((epoch, lay, cls), count)
            for epoch in sorted(self._counts)
            for (lay, cls), count in sorted(self._counts[epoch].items())
            if (layer is None or lay == layer)
            and (message_class is None or cls == message_class)
        ]

    def seconds_for(self, epoch: int) -> float:
        """Control air seconds booked to ``epoch`` so far (0.0 when none)."""
        return sum(
            count * self.model.price_of(cls)
            for (_lay, cls), count in sorted(self._counts.get(epoch, {}).items())
        )

    def messages_for(self, epoch: int) -> int:
        """Control messages booked to ``epoch`` so far."""
        return sum(self._counts.get(epoch, {}).values())

    @property
    def total_seconds(self) -> float:
        return sum(
            count * self.model.price_of(key[2]) for key, count in self._entries()
        )

    @property
    def total_messages(self) -> int:
        return sum(count for _key, count in self._entries())

    def messages(self, layer: str | None = None, message_class: str | None = None) -> int:
        """Messages booked, filtered by layer and/or class."""
        return sum(
            count
            for _key, count in self._entries(layer=layer, message_class=message_class)
        )

    def seconds(self, layer: str | None = None, message_class: str | None = None) -> float:
        """Seconds booked, filtered by layer and/or class."""
        return sum(
            count * self.model.price_of(key[2])
            for key, count in self._entries(layer=layer, message_class=message_class)
        )

    def by_layer(self) -> dict[str, tuple[int, float]]:
        """Per-layer ``(messages, seconds)`` attribution."""
        out: dict[str, list] = {}
        for key, count in self._entries():
            agg = out.setdefault(key[1], [0, 0.0])
            agg[0] += count
            agg[1] += count * self.model.price_of(key[2])
        return {layer: (agg[0], agg[1]) for layer, agg in out.items()}

    def summary(self) -> str:
        parts = ", ".join(
            f"{layer}={msgs} msgs/{secs * 1e3:.2f} ms"
            for layer, (msgs, secs) in sorted(self.by_layer().items())
        )
        return (
            f"ControlLedger(total={self.total_messages} msgs, "
            f"{self.total_seconds * 1e3:.2f} ms"
            + (f"; {parts}" if parts else "")
            + ")"
        )


def forest_depths(links) -> np.ndarray:
    """Hop distance of each link's head from its gateway, along the forest.

    ``depths[k]`` is the number of links on the route from link ``k``'s
    head node down to its gateway (gateway-adjacent links have depth 1) —
    the number of in-band relay transmissions a controller-to-node message
    for link ``k`` costs, which is how patch distribution is priced.

    ``links`` must be a forest :class:`~repro.scheduling.links.LinkSet`
    (one link per head node, acyclic toward the gateways), the same
    contract :class:`~repro.traffic.queues.LinkQueues` enforces.
    """
    next_link = links.next_links()  # raises for non-forest link sets
    n = links.n_links
    # Memoized walk: each link's depth is 1 + its next link's, so every
    # link is visited once (O(n) total, not O(n x depth) on deep chains).
    depths = np.full(n, -1, dtype=np.int64)
    for k in range(n):
        path: list[int] = []
        current = k
        while current >= 0 and depths[current] < 0:
            path.append(current)
            if len(path) > n:
                raise ValueError("routing loop detected while measuring depths")
            current = int(next_link[current])
        base = 0 if current < 0 else int(depths[current])
        for offset, link in enumerate(reversed(path), start=1):
            depths[link] = base + offset
    return depths
