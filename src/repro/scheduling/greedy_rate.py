"""Rate-aware greedy scheduling: maximize packets per slot, not members.

:func:`repro.scheduling.greedy_physical.greedy_physical` packs each slot
with as many *memberships* as stay feasible — the right objective when every
membership carries exactly one packet.  Under a multi-rate contract
(:class:`~repro.phy.radio.RateTable`) memberships are not equal: a link with
SINR headroom carries the packets of a higher MCS tier, and adding a
marginal member can demote other members' tiers, shrinking the slot's total
capacity even though the slot stays feasible.  :func:`greedy_rate` therefore
packs each slot by **total packets per slot**: a candidate joins only when
the slot's summed rate strictly increases (Zhou et al.'s
throughput-maximization objective, greedy instead of exact).

Demand is matched in *packets*, not memberships: a link stops receiving
slots once the rates of its memberships cover its demand, so the resulting
:class:`~repro.scheduling.schedule.Schedule` is generally **shorter** than a
fixed-rate schedule for the same demand and need not satisfy the
membership-count ``satisfies_demand`` test.  Under the degenerate
single-tier table every rate is 1 and both notions coincide.
"""

from __future__ import annotations

import numpy as np

from repro.phy.interference import PhysicalInterferenceModel
from repro.scheduling.feasibility import SlotState
from repro.scheduling.links import LinkSet
from repro.scheduling.schedule import Schedule, Slot


def standalone_rates(
    links: LinkSet, model: PhysicalInterferenceModel, table
) -> np.ndarray:
    """Each link's packets-per-slot when transmitting alone (0 if infeasible).

    The interference-free ceiling of every link's MCS: no concurrent set can
    grant more.  Stateless ``rate_for`` — a link below the base threshold
    even alone reports 0, i.e. it is not a communication edge.
    """
    rates = np.zeros(links.n_links, dtype=np.int64)
    for k in range(links.n_links):
        data, ack = model.link_sinrs(links.heads[k : k + 1], links.tails[k : k + 1])
        rates[k] = table.rate_for(np.minimum(data, ack))[0]
    return rates


def greedy_rate(
    links: LinkSet, model: PhysicalInterferenceModel, table
) -> Schedule:
    """Compute a schedule whose per-link *packet capacity* covers demand.

    Slot-centric greedy: candidates are visited in a fixed priority order
    (standalone rate descending, then head ID descending — the fast links
    seed slots, FDD's tie-break settles the rest) and a candidate is
    admitted iff the slot stays SINR-feasible **and** its total
    packets-per-slot strictly increases.  The admitted set's final rates are
    then charged against the members' residual demands and the next slot
    opens for whatever demand remains.

    Raises
    ------
    ValueError
        If a link with demand cannot be scheduled even alone (not a
        communication edge), mirroring
        :func:`~repro.scheduling.greedy_physical.greedy_physical`.
    """
    alone = standalone_rates(links, model, table)
    # lexsort keys: last key is primary.
    order = np.lexsort((-links.heads, -alone))
    residual = links.demand.astype(np.int64).copy()

    schedule = Schedule(link_set=links)
    while residual.sum() > 0:
        state = SlotState(model)
        slot = Slot()
        total_rate = 0
        for k in order:
            k = int(k)
            if residual[k] <= 0:
                continue
            sender = int(links.heads[k])
            receiver = int(links.tails[k])
            if len(state) == 0:
                if not state.can_add(sender, receiver):
                    raise ValueError(
                        f"link {sender}->{receiver} is infeasible even alone; "
                        "it is not a valid communication edge"
                    )
            elif not state.can_add(sender, receiver):
                continue
            # Feasible — but does it grow the slot's capacity?  Rates of
            # the would-be member set, evaluated concurrently.
            snd, rcv = state.members()
            candidate = int(
                model.link_rates(
                    np.append(snd, sender), np.append(rcv, receiver), table
                ).sum()
            )
            if candidate <= total_rate:
                continue
            state.add(sender, receiver)
            slot.add(k)
            total_rate = candidate
        granted = state.member_rates(table)
        for k, rate in zip(slot.links, granted):
            residual[k] = max(0, residual[k] - int(rate))
        schedule.slots.append(slot)
    return schedule
