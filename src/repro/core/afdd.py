"""AFDD — an *extension*, not part of the paper's specification.

Section VI of the paper mentions implementing "PDD, FDD and AFDD" but never
defines AFDD.  We do not invent the authors' design; this module provides a
clearly-marked extension with the most natural reading — an *Accelerated*
FDD that amortizes election cost: instead of a full ``id_bits``-round
election per construction step, nodes reuse the previous election's
elimination state so each subsequent step needs a single SCREAM "round-robin
pass" over remaining dormants.

Concretely, AFDD selects actives exactly like FDD (strictly decreasing
head-ID order — so Theorem 4's schedule equivalence still holds, which tests
assert), but books a reduced step cost: one full election for the first
active of a slot, then ``afdd_refresh_bits`` SCREAMs per subsequent active
(the bits that distinguish the next ID from the previous winner's, bounded
by ``id_bits`` and typically ~2 for dense ID spaces).

This gives FDD-quality schedules at an execution time between PDD and FDD.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import NO_FAULTS, FaultConfig, ProtocolConfig
from repro.core.protocol import ProtocolResult, run_on_network, run_protocol
from repro.core.runtime import Runtime
from repro.core.states import NodeState
from repro.phy.interference import PhysicalInterferenceModel
from repro.scheduling.links import LinkSet
from repro.topology.network import Network

#: SCREAM passes charged per follow-up selection (see module docstring).
AFDD_REFRESH_SCREAMS = 2


class _AfddSelector:
    """Stateful SelectActive: full election once per slot, cheap refreshes.

    The selection *outcome* is identical to FDD (max-ID dormant node); only
    the booked communication cost differs, because followers can continue
    the bitwise elimination from the previous winner's prefix instead of
    restarting it.
    """

    def __init__(self) -> None:
        self._slot_has_election = False

    def reset_slot(self) -> None:
        self._slot_has_election = False

    def __call__(
        self, state: np.ndarray, runtime: Runtime, rng: np.random.Generator
    ) -> np.ndarray:
        dormant = state == NodeState.DORMANT
        if not self._slot_has_election:
            self._slot_has_election = True
            return runtime.leader_elect(dormant)

        # Refresh pass: same winner as a full election, reduced cost.
        ids = getattr(runtime, "ids", None)
        if ids is None:
            return runtime.leader_elect(dormant)
        winners = np.zeros(state.shape[0], dtype=bool)
        if dormant.any():
            candidates = np.flatnonzero(dormant)
            winners[candidates[np.argmax(ids[candidates])]] = True
        for _ in range(AFDD_REFRESH_SCREAMS):
            runtime.scream(winners)
        return winners


def run_afdd(
    links: LinkSet,
    runtime: Runtime,
    config: ProtocolConfig,
    rng: np.random.Generator | int | None = None,
    record_rounds: bool = False,
) -> ProtocolResult:
    """Run the AFDD extension on an arbitrary runtime substrate.

    The produced schedule equals FDD's; the step tally is smaller.
    """
    selector = _AfddSelector()

    def select_active(
        state: np.ndarray, rt: Runtime, generator: np.random.Generator
    ) -> np.ndarray:
        # A fresh slot is detectable by the absence of ALLOCATED/ACTIVE/
        # TRIED nodes: everything was reset to DORMANT around the controller.
        in_progress = (
            (state == NodeState.ALLOCATED)
            | (state == NodeState.ACTIVE)
            | (state == NodeState.TRIED)
        )
        if not in_progress.any():
            selector.reset_slot()
        return selector(state, rt, generator)

    return run_protocol(
        links, runtime, config, select_active, rng=rng, record_rounds=record_rounds
    )


def afdd_on_network(
    network: Network,
    links: LinkSet,
    config: ProtocolConfig | None = None,
    faults: FaultConfig = NO_FAULTS,
    rng: np.random.Generator | int | None = None,
    record_rounds: bool = False,
    model: "PhysicalInterferenceModel | None" = None,
) -> ProtocolResult:
    """Convenience wrapper: run AFDD over a fresh FastRuntime on ``network``.

    See :func:`~repro.core.protocol.run_on_network` for the shared
    semantics, including the optional feasibility-oracle ``model`` override.
    """
    return run_on_network(
        network,
        links,
        run_afdd,
        config=config,
        faults=faults,
        rng=rng,
        record_rounds=record_rounds,
        model=model,
    )
