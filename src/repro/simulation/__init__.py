"""Packet-level simulation substrate (the GTNetS stand-in).

A lock-step slot-synchronous engine in which every node runs its own
generator program and interacts with the world *only* through per-slot
actions (transmit / listen) and their locally observable outcomes (carrier
sense booleans, decoded packets).  This is the ground-truth substrate: the
vectorized :class:`~repro.core.fast_runtime.FastRuntime` is validated
against it in the integration tests.
"""

from repro.simulation.medium import Medium, Transmission, SlotOutcome
from repro.simulation.engine import SyncEngine, NodeProgram
from repro.simulation.clock import ClockModel
from repro.simulation.programs import scream_program, leader_elect_program
from repro.simulation.packet_runtime import PacketRuntime

__all__ = [
    "Medium",
    "Transmission",
    "SlotOutcome",
    "SyncEngine",
    "NodeProgram",
    "ClockModel",
    "scream_program",
    "leader_elect_program",
    "PacketRuntime",
]
