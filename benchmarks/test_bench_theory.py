"""Benches for the analytical-result validations (T1, T2, T4)."""

import pytest

from repro.experiments.theory import (
    complexity_experiment,
    fdd_equivalence_experiment,
    id_scaling_experiment,
)


@pytest.mark.benchmark(group="theory")
def test_t1_id_scaling(benchmark, bench_profile, save_table):
    table = benchmark.pedantic(
        id_scaling_experiment, args=(bench_profile,), rounds=1, iterations=1
    )
    save_table("t1_id_scaling", table)
    # Grid diameters achieve the Theorem 2 bound (tight case).
    for row in table._rows:
        assert float(row[1]) <= float(row[2]) + 1e-9


@pytest.mark.benchmark(group="theory")
def test_t2_fdd_equivalence(benchmark, bench_profile, save_table):
    table = benchmark.pedantic(
        fdd_equivalence_experiment, args=(bench_profile,), rounds=1, iterations=1
    )
    save_table("t2_fdd_equivalence", table)
    for row in table._rows:
        done, total = row[2].split("/")
        assert done == total


@pytest.mark.benchmark(group="theory")
def test_t4_complexity_scaling(benchmark, bench_profile, save_table):
    table = benchmark.pedantic(
        complexity_experiment, args=(bench_profile,), rounds=1, iterations=1
    )
    save_table("t4_complexity", table)
    ratios = [float(row[5]) for row in table._rows]
    assert all(r < 10.0 for r in ratios)
