"""Shared fixtures: small deterministic networks and link sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.routing import (
    aggregate_demand,
    build_routing_forest,
    planned_gateways,
    uniform_node_demand,
)
from repro.scheduling.links import LinkSet, forest_link_set
from repro.topology.network import Network, grid_network, uniform_network
from repro.util.rng import spawn


@pytest.fixture(scope="session")
def grid16() -> Network:
    """A 4x4 planned grid at moderate density (deterministic)."""
    return grid_network(4, 4, density_per_km2=2000)


@pytest.fixture(scope="session")
def grid64() -> Network:
    """The paper's 8x8 planned grid at 2500 nodes/km^2."""
    return grid_network(8, 8, density_per_km2=2500)


@pytest.fixture(scope="session")
def uniform32() -> Network:
    """A 32-node unplanned network (connected by construction)."""
    return uniform_network(32, density_per_km2=3000, rng=101)


def make_links(network: Network, n_gateways: int, seed: int, demand_high: int = 3):
    """Forest link set with small demands on a given network."""
    side = int(round(np.sqrt(network.n_nodes)))
    if side * side == network.n_nodes:
        gws = planned_gateways(side, side, n_gateways)
    else:
        from repro.routing import random_gateways

        gws = random_gateways(network.n_nodes, n_gateways, spawn(seed, "gw"))
    forest = build_routing_forest(network.comm_adj, gws, rng=spawn(seed, "forest"))
    demand = uniform_node_demand(
        network.n_nodes, spawn(seed, "demand"), low=1, high=demand_high, gateways=gws
    )
    return forest, forest_link_set(forest, aggregate_demand(forest, demand))


@pytest.fixture(scope="session")
def grid16_links(grid16) -> LinkSet:
    return make_links(grid16, 1, seed=5)[1]


@pytest.fixture(scope="session")
def grid64_links(grid64) -> LinkSet:
    return make_links(grid64, 4, seed=7, demand_high=10)[1]


@pytest.fixture(scope="session")
def small_config() -> ProtocolConfig:
    """Protocol constants sized for 16-node tests."""
    return ProtocolConfig(k=5, id_bits=5)


@pytest.fixture(scope="session")
def paper_config() -> ProtocolConfig:
    """The paper's constants (Section VI-A)."""
    return ProtocolConfig(k=5, smbytes=15, id_bits=8)
