"""Plain-text table rendering shared by all experiment harnesses.

Every experiment prints the same rows/series the paper's figures plot, in a
stable text format that diffs cleanly across runs and reads well in logs.
"""

from __future__ import annotations

from typing import Any, Sequence


class TextTable:
    """A fixed-column text table with alignment and title support."""

    def __init__(self, columns: Sequence[str], title: str | None = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self._rows: list[list[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self._rows.append([_fmt(c) for c in cells])

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    def redacted(self, columns: Sequence[str], placeholder: str = "~") -> "TextTable":
        """A copy with every cell of the named columns replaced.

        For persisting run-to-run snapshots: columns that carry wall-clock
        measurements (or anything else nondeterministic) are masked with a
        stable ``placeholder`` so re-running a bench never churns the
        committed snapshot's rows.  Unknown column names raise — a renamed
        column must not silently start leaking volatile cells again.
        """
        unknown = [c for c in columns if c not in self.columns]
        if unknown:
            raise ValueError(f"unknown columns to redact: {unknown}")
        masked = TextTable(self.columns, title=self.title)
        targets = [i for i, c in enumerate(self.columns) if c in columns]
        for row in self._rows:
            cells = list(row)
            for i in targets:
                cells[i] = placeholder
            masked._rows.append(cells)
        return masked

    def render(self) -> str:
        widths = [
            max(len(col), *(len(r[i]) for r in self._rows)) if self._rows else len(col)
            for i, col in enumerate(self.columns)
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(header))
        lines.append(header)
        lines.append(sep)
        for row in self._rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_series(name: str, xs: Sequence[Any], ys: Sequence[Any]) -> str:
    """One figure series as ``name: (x, y) (x, y) ...`` for compact logs."""
    pairs = " ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _fmt(value: Any) -> str:
    if value is None:
        # Unmeasured (e.g. a timing field on a host without a thread-CPU
        # clock) — render like a redacted cell, never as a fake 0.
        return "~"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
