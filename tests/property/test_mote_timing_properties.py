"""Property tests: mote RSSI processing and the timing model."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.events import StepTally
from repro.core.timing import TimingModel, reprice_scream_slots
from repro.mote.rssi import moving_average, rssi_dbm, threshold_crossings, TransmissionInterval


@given(
    st.lists(st.floats(min_value=-120, max_value=0), min_size=1, max_size=60),
    st.integers(min_value=1, max_value=12),
)
def test_moving_average_bounded_by_extremes(values, window):
    arr = np.asarray(values)
    out = moving_average(arr, window)
    assert (out >= arr.min() - 1e-9).all()
    assert (out <= arr.max() + 1e-9).all()


@given(
    st.lists(st.floats(min_value=-120, max_value=0), min_size=2, max_size=60)
)
def test_moving_average_window1_identity(values):
    arr = np.asarray(values)
    assert np.array_equal(moving_average(arr, 1), arr)


@given(
    st.lists(st.floats(min_value=-120, max_value=0), min_size=1, max_size=60),
    st.floats(min_value=-110, max_value=-10),
)
def test_crossings_alternate_with_dips(values, threshold):
    """Number of upward crossings <= number of maximal above-runs."""
    times = np.arange(len(values), dtype=float)
    arr = np.asarray(values)
    crossings = threshold_crossings(times, arr, threshold)
    above = arr >= threshold
    runs = int((above[1:] & ~above[:-1]).sum()) + int(above[0])
    assert crossings.size == runs


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_rssi_monotone_in_burst_power(seed):
    rng = np.random.default_rng(seed)
    times = np.linspace(0, 0.01, 12)
    weak = [TransmissionInterval(0.0, 0.01, -80.0)]
    strong = [TransmissionInterval(0.0, 0.01, -50.0)]
    r_weak = rssi_dbm(times, weak, -95.0, 0.0, rng)
    r_strong = rssi_dbm(times, strong, -95.0, 0.0, rng)
    assert (r_strong >= r_weak).all()


@st.composite
def tallies(draw):
    tally = StepTally()
    for _ in range(draw(st.integers(min_value=0, max_value=30))):
        tally.add_scream(draw(st.integers(min_value=1, max_value=1)) * 5)
    for _ in range(draw(st.integers(min_value=0, max_value=30))):
        tally.add_handshake()
    tally.add_sync(draw(st.integers(min_value=0, max_value=50)))
    return tally


@given(tallies(), st.floats(min_value=0, max_value=1e-2))
@settings(max_examples=60)
def test_execution_time_monotone_in_skew(tally, skew):
    base = TimingModel(skew_bound_s=0.0).execution_time(tally)
    skewed = TimingModel(skew_bound_s=skew).execution_time(tally)
    assert skewed >= base
    expected_slope = 2.0 * tally.total_steps
    assert skewed - base == (
        0.0 if tally.total_steps == 0 else np.float64(expected_slope * skew)
    ) or abs(skewed - base - expected_slope * skew) < 1e-12


@given(tallies(), st.integers(min_value=1, max_value=80))
@settings(max_examples=60)
def test_reprice_preserves_everything_but_scream_slots(tally, new_k):
    repriced = reprice_scream_slots(tally, old_k=5, new_k=new_k)
    original = tally.as_dict()
    changed = repriced.as_dict()
    for key in original:
        if key == "scream_slots":
            assert changed[key] == tally.scream_calls * new_k
        else:
            assert changed[key] == original[key]


@given(tallies())
@settings(max_examples=40)
def test_execution_time_additive_over_tallies(tally):
    timing = TimingModel()
    doubled = tally.merged_with(tally)
    assert timing.execution_time(doubled) == (
        2.0 * timing.execution_time(tally)
    ) or abs(
        timing.execution_time(doubled) - 2.0 * timing.execution_time(tally)
    ) < 1e-12
