"""Per-link FIFO backlogs along the routing forest.

Packets enter the network at their source node's own tree link (the paper's
one-to-one node/edge mapping), are relayed link-by-link toward the gateway,
and leave the system when the link into a gateway serves them.  The hot
state — the per-link backlog vector consulted every served slot — is a
single numpy ``int64`` array; arrivals enter through one push per *source
node with traffic* (a batch, however many packets it generated).  FIFO
order and per-packet delays are tracked beside the backlog vector in
per-link batch queues (``[birth_slot, count]`` pairs), which stay tiny
because same-birth packets coalesce.

Conservation invariant (asserted by the unit tests): at any time,
``arrivals_total == delivered_total + backlog.sum()`` — every packet is in
exactly one queue until the gateway link delivers it.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.scheduling.links import LinkSet


class LinkQueues:
    """FIFO queues, one per directed link of a forest :class:`LinkSet`.

    Parameters
    ----------
    links:
        A *forest* link set (one link per head node): relaying needs the
        unique next link up the tree, which is looked up through
        ``links.link_of_head``.
    delivery_stream:
        Optional O(1) streaming sink (:class:`~repro.obs.DeliveryStream`)
        for delivered packets.  When given, deliveries are recorded as
        ``stream.record(delay, source_link)`` **instead of** appending to
        the ``delays``/``births``/``sources`` logs, which then stay empty —
        the memory trade behind ``ObsConfig.stream_deliveries``.  Consumers
        that need the exact logs (per-flow delay attribution, regional
        delivered-share accounting) must not run in streaming mode; they
        check :attr:`delivery_stream` and fail loudly.
    """

    def __init__(self, links: LinkSet, delivery_stream=None):
        self.links = links
        self.delivery_stream = delivery_stream
        n = links.n_links
        self._by_head = links.link_of_head  # raises for non-forest link sets
        # next_link[k]: the link whose head is k's tail, or -1 when the tail
        # is a gateway (delivery).
        self.next_link = links.next_links()
        self.backlog = np.zeros(n, dtype=np.int64)
        #: Cumulative packets served (transmitted) per link — the spatial
        #: breakdown of ``served_total``.  Regional controllers difference
        #: it to attribute served work to their own links exactly instead
        #: of proxying by emission share.
        self.served_by_link = np.zeros(n, dtype=np.int64)
        # Batches are [birth_slot, count, source_link]: the entry link is
        # carried through every relay so deliveries can be attributed back
        # to the source that injected them (the flow-session layer's SLA
        # accounting keys on it).  Same-birth batches from different
        # sources stay separate, which changes nothing observable — all
        # same-birth packets at a link are interchangeable.
        self._fifo: list[deque[list[int]]] = [deque() for _ in range(n)]
        self.arrivals_total = 0
        self.delivered_total = 0
        self.served_total = 0  # packet-hops: every successful transmission
        #: Link-slot memberships that actually transmitted (>= 1 packet).
        #: ``served_total / plays_total`` is the realized mean service rate
        #: in packets per play — exactly 1.0 under fixed-rate serving.
        self.plays_total = 0
        self.delays: list[int] = []  # per delivered packet, in slots
        self.births: list[int] = []  # per delivered packet, its birth slot
        self.sources: list[int] = []  # per delivered packet, its entry link
        #: Set by :meth:`mark_unusable` when an engine aborted mid-epoch
        #: with this object half-mutated; ``None`` means healthy.
        self.unusable_reason: str | None = None

    def mark_unusable(self, reason: str) -> None:
        """Poison these queues: an engine died between booking arrivals and
        serving them, so the conservation invariant no longer describes a
        completed prefix of epochs.  Every subsequent :meth:`arrive` /
        :meth:`serve_slot` raises ``RuntimeError`` carrying ``reason``
        rather than quietly extending a corrupt trace."""
        self.unusable_reason = str(reason)

    def _check_usable(self) -> None:
        if self.unusable_reason is not None:
            raise RuntimeError(
                f"queues are unusable — a run aborted mid-epoch: {self.unusable_reason}"
            )

    @property
    def n_links(self) -> int:
        return self.links.n_links

    def total_backlog(self) -> int:
        return int(self.backlog.sum())

    def arrive(self, node_arrivals: np.ndarray, time: int) -> int:
        """Enqueue per-node arrivals at their source links; return the count.

        ``node_arrivals`` is indexed by node; nodes that head no link
        (gateways) must have zero arrivals.
        """
        self._check_usable()
        counts = np.asarray(node_arrivals, dtype=np.int64)
        if np.any(counts < 0):
            raise ValueError("arrival counts must be non-negative")
        by_head = self._by_head
        total = 0
        for node in np.flatnonzero(counts):
            k = by_head.get(int(node))
            if k is None:
                raise ValueError(
                    f"node {int(node)} heads no link but generated "
                    f"{int(counts[node])} packets (is it a gateway?)"
                )
            self._push(k, int(time), int(counts[node]))
            total += int(counts[node])
        self.arrivals_total += total
        return total

    def serve_slot(
        self,
        link_indices: np.ndarray,
        time: int,
        rates: np.ndarray | None = None,
    ) -> int:
        """Serve one slot: every listed backlogged link forwards packets.

        With ``rates=None`` (fixed-rate, the seed contract) every
        backlogged member forwards exactly one packet.  With a ``rates``
        array (aligned with ``link_indices``, packets per slot from the
        link's MCS tier) member ``k`` forwards ``min(rates[k],
        backlog[k])`` packets — the multi-rate serving contract.  An
        all-ones ``rates`` array is behaviourally identical to ``None``.

        All transmissions in the slot are simultaneous: packets are popped
        first and routed after, so a packet cannot traverse two hops within
        one slot.  Returns the number of packets served (packet-hops).
        """
        self._check_usable()
        idx = np.asarray(link_indices, dtype=np.intp)
        moves: list[tuple[int, int, int]] = []  # (next link or -1, birth, source)
        if rates is None:
            ready = idx[self.backlog[idx] > 0]
            self.served_by_link[ready] += 1  # member links are unique per slot
            for k in ready:
                birth, source = self._pop(int(k))
                moves.append((int(self.next_link[k]), birth, source))
            self.plays_total += len(ready)
        else:
            r = np.asarray(rates, dtype=np.int64)
            if r.shape != idx.shape:
                raise ValueError(
                    f"rates must align with link_indices: {r.shape} vs {idx.shape}"
                )
            if np.any(r < 0):
                raise ValueError("rates must be non-negative")
            counts = np.minimum(r, self.backlog[idx])
            active = counts > 0
            self.served_by_link[idx[active]] += counts[active]
            self.plays_total += int(active.sum())
            for k, count in zip(idx[active], counts[active]):
                nxt = int(self.next_link[k])
                for _ in range(int(count)):
                    birth, source = self._pop(int(k))
                    moves.append((nxt, birth, source))
        stream = self.delivery_stream
        for nxt, birth, source in moves:
            if nxt < 0:
                self.delivered_total += 1
                if stream is not None:
                    stream.record(int(time) - birth + 1, source)
                else:
                    self.delays.append(int(time) - birth + 1)
                    self.births.append(birth)
                    self.sources.append(source)
            else:
                self._push(nxt, birth, 1, source)
        self.served_total += len(moves)
        return len(moves)

    def delay_array(self) -> np.ndarray:
        """Delays of all delivered packets so far, in slots.

        Empty in streaming mode (``delivery_stream`` set) whatever was
        delivered — the exact per-packet log was deliberately not kept;
        read the stream's aggregates instead.
        """
        return np.asarray(self.delays, dtype=np.int64)

    def check_conservation(self) -> None:
        """Raise :class:`AssertionError` if any packet was lost or duplicated."""
        queued = self.total_backlog()
        if self.arrivals_total != self.delivered_total + queued:
            raise AssertionError(
                f"packet conservation violated: {self.arrivals_total} arrived, "
                f"{self.delivered_total} delivered, {queued} queued"
            )

    def _push(self, k: int, birth: int, count: int, source: int | None = None) -> None:
        src = k if source is None else source
        fifo = self._fifo[k]
        if fifo and fifo[-1][0] == birth and fifo[-1][2] == src:
            fifo[-1][1] += count
        else:
            fifo.append([birth, count, src])
        self.backlog[k] += count

    def _pop(self, k: int) -> tuple[int, int]:
        """Remove the oldest packet from queue ``k``; return (birth, source)."""
        fifo = self._fifo[k]
        if not fifo:
            raise IndexError(f"queue {k} is empty")
        head = fifo[0]
        head[1] -= 1
        birth = head[0]
        source = head[2]
        if head[1] == 0:
            fifo.popleft()
        self.backlog[k] -= 1
        return birth, source
