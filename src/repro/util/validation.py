"""Argument validation helpers with consistent error messages.

The library is configuration-heavy (radio parameters, protocol constants,
sweep definitions); these helpers keep constructor validation terse and the
error messages uniform, e.g. ``beta must be positive, got -1.0``.
"""

from __future__ import annotations

import math
from typing import Any


def check_positive(name: str, value: float) -> float:
    """Raise :class:`ValueError` unless ``value`` is a finite number > 0."""
    _check_finite_number(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return float(value)


def check_non_negative(name: str, value: float) -> float:
    """Raise :class:`ValueError` unless ``value`` is a finite number >= 0."""
    _check_finite_number(name, value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return float(value)


def check_probability(name: str, value: float) -> float:
    """Raise :class:`ValueError` unless ``value`` lies in [0, 1]."""
    _check_finite_number(name, value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return float(value)


def check_integer_in_range(
    name: str,
    value: Any,
    minimum: int | None = None,
    maximum: int | None = None,
) -> int:
    """Raise unless ``value`` is an integer inside ``[minimum, maximum]``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        try:
            import numpy as np

            if isinstance(value, np.integer):
                value = int(value)
            else:
                raise TypeError
        except TypeError:
            raise TypeError(f"{name} must be an integer, got {value!r}") from None
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ValueError(f"{name} must be <= {maximum}, got {value}")
    return int(value)


def _check_finite_number(name: str, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        try:
            import numpy as np

            if not isinstance(value, (np.integer, np.floating)):
                raise TypeError
        except TypeError:
            raise TypeError(f"{name} must be a number, got {value!r}") from None
    if not math.isfinite(float(value)):
        raise ValueError(f"{name} must be finite, got {value!r}")
