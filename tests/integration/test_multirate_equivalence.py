"""Degenerate-table equivalence: the multi-rate refactor must be invisible
until the table actually has tiers.

The load-bearing guarantee of the DESIGN.md §12 refactor is differential:
under the **degenerate** single-tier :class:`~repro.phy.radio.RateTable`
(threshold ``β``, rate 1) every engine — ``run_epochs`` under every
reschedule policy with a live FDD scheduler, ``run_epochs_sharded`` on a
real multi-shard plan, and the admission engine with an actively
controlling workload — reproduces its table-less (``rate_table=None``)
trace bit-for-bit: every :class:`EpochRecord` field, per-packet delays,
final backlogs.  Slot memberships are scheduled by the ``SINR >= β``
contract either way; the degenerate table's annotation grants every
membership exactly one packet per play, which must be *indistinguishable*
from the seed's rate-less serving path — including through the patching
cache (demand-matching in packets collapses to membership arithmetic) and
the sharded engine's guard-budgeted annotator.
"""

import numpy as np
import pytest

from repro.core.fdd import fdd_on_network
from repro.experiments.common import PAPER_PROTOCOL
from repro.phy.radio import RateTable
from repro.routing import build_routing_forest, planned_gateways
from repro.scheduling.links import forest_link_set
from repro.topology.network import grid_network
from repro.traffic import (
    EpochConfig,
    FlowConfig,
    FlowWorkload,
    KneeTracker,
    PoissonArrivals,
    centralized_scheduler,
    distributed_scheduler,
    plan_for_network,
    run_epochs,
    run_epochs_sharded,
    sharded_centralized_factory,
)
from repro.util.rng import spawn

#: Every behavioural field of an EpochRecord: a degenerate-table run must
#: match the table-less run on all of them, cache decisions included.
ALL_FIELDS = (
    "epoch",
    "arrivals",
    "served",
    "delivered",
    "backlog_end",
    "demand_scheduled",
    "schedule_length",
    "overhead_slots",
    "cache_hit",
    "patched",
    "drift",
    "control_slots",
    "n_shards",
    "reconciled",
)

DEGENERATE = RateTable.degenerate(10.0)


def _functional(record):
    return tuple(getattr(record, f) for f in ALL_FIELDS)


def assert_traces_identical(rated, bare):
    assert [_functional(r) for r in rated.records] == [
        _functional(r) for r in bare.records
    ]
    assert rated.diverged == bare.diverged
    assert np.array_equal(rated.queues.delay_array(), bare.queues.delay_array())
    assert np.array_equal(rated.queues.backlog, bare.queues.backlog)
    rated.queues.check_conservation()
    # The rated run really went through the rate-serving path: every play
    # was annotated, and the realized rate was exactly the seed's 1.0.
    assert rated.queues.plays_total > 0
    assert rated.queues.served_total == rated.queues.plays_total


@pytest.fixture(scope="module")
def mesh():
    network = grid_network(8, 8, density_per_km2=1000.0)
    gateways = planned_gateways(8, 8, 4)
    forest = build_routing_forest(network.comm_adj, gateways, rng=spawn(23, "f"))
    links = forest_link_set(forest, np.zeros(network.n_nodes, dtype=np.int64))
    assert DEGENERATE.is_degenerate
    assert DEGENERATE.beta == network.model.radio.beta
    return network, gateways, links


def _poisson(network, gateways, rate=0.012):
    return PoissonArrivals(
        network.n_nodes, rate, gateways=gateways, seed=spawn(23, "g")
    )


@pytest.mark.parametrize("policy", ["always", "drift-threshold", "patch"])
def test_degenerate_table_run_epochs_is_bit_identical(mesh, policy):
    """run_epochs x every reschedule policy, live FDD (stochastic,
    overhead-priced): rate_table=degenerate ≡ rate_table=None.  The patch
    policy exercises packet-valued demand matching end to end."""
    network, gateways, links = mesh
    config = EpochConfig(
        epoch_slots=200, n_epochs=5, divergence_factor=4.0, reschedule_policy=policy
    )

    def scheduler():
        return distributed_scheduler(
            network, fdd_on_network, config=PAPER_PROTOCOL, seed=23
        )

    def run(rate_table):
        from dataclasses import replace

        return run_epochs(
            links,
            _poisson(network, gateways),
            scheduler(),
            replace(config, rate_table=rate_table),
            model=network.model,
        )

    assert_traces_identical(run(DEGENERATE), run(None))


@pytest.mark.parametrize("policy", ["always", "patch"])
def test_degenerate_table_sharded_engine_is_bit_identical(mesh, policy):
    """run_epochs_sharded on a genuine 4-shard plan: the annotator sees the
    guard-budgeted oracle and per-shard caches patch in packets, yet the
    degenerate table reproduces the bare engine bit-for-bit."""
    network, gateways, links = mesh
    plan = plan_for_network(links, network, n_shards=4, interference_radius_m=80.0)
    assert plan.n_shards > 1

    def run(rate_table):
        config = EpochConfig(
            epoch_slots=200,
            n_epochs=5,
            divergence_factor=4.0,
            reschedule_policy=policy,
            rate_table=rate_table,
        )
        return run_epochs_sharded(
            plan,
            _poisson(network, gateways),
            sharded_centralized_factory(),
            network.model,
            config,
        )

    assert_traces_identical(run(DEGENERATE), run(None))


def test_degenerate_table_admission_engine_is_bit_identical(mesh):
    """An actively controlling knee tracker (blocking sessions, throttling
    flows) observes per-epoch records: identical trace, identical
    admission decisions under the degenerate table."""
    network, gateways, links = mesh

    def run(rate_table):
        cfg = FlowConfig.for_offered_rate(3.0 * 0.019, links.n_links, 200)
        workload = FlowWorkload(
            links, cfg, controller=KneeTracker(window=3), seed=spawn(23, "wl")
        )
        config = EpochConfig(
            epoch_slots=200, n_epochs=10, divergence_factor=8.0, rate_table=rate_table
        )
        trace = run_epochs(
            links,
            workload,
            centralized_scheduler(network.model),
            config,
            model=network.model,
            on_epoch=workload.observe,
        )
        return trace, workload

    rated, rated_wl = run(DEGENERATE)
    bare, bare_wl = run(None)
    assert_traces_identical(rated, bare)
    assert rated_wl.sessions_blocked == bare_wl.sessions_blocked > 0
    assert rated_wl.packets_throttled == bare_wl.packets_throttled


def test_degenerate_table_reconcile_peel_is_bit_identical(mesh):
    """The rate-aware peel inside ``reconcile_round`` collapses to the
    rate-blind margin order under the degenerate table — on *every* kind of
    conflicting round: shared-node (half-duplex) pairs, over-packed
    many-link slots, and already-feasible slots kept verbatim.  This is the
    reconciliation-local half of the sharded-engine equivalence above: the
    peel victim selection is the only table-dependent branch in the pass.
    """
    from repro.traffic import reconcile_round

    network, _, links = mesh
    model = network.model
    rng = np.random.default_rng(23)
    rounds = [
        # Singleton slots: nothing to peel either way.
        [np.array([k], dtype=np.intp) for k in range(3)],
        # Over-packed slots: random link subsets guaranteed to violate.
        [
            np.sort(rng.choice(links.n_links, size=size, replace=False)).astype(
                np.intp
            )
            for size in (4, 7, 10)
        ],
        # A whole-round stress: every link in one slot.
        [np.arange(links.n_links, dtype=np.intp)],
    ]
    peeled_any = False
    for combined in rounds:
        blind_kept, blind_moved = reconcile_round(
            [c.copy() for c in combined], links, model
        )
        rated_kept, rated_moved = reconcile_round(
            [c.copy() for c in combined], links, model, table=DEGENERATE
        )
        assert blind_moved == rated_moved
        assert [s.tolist() for s in blind_kept] == [
            s.tolist() for s in rated_kept
        ]
        peeled_any = peeled_any or blind_moved > 0
    assert peeled_any, "stress rounds never violated — no peel was exercised"


def test_rate_table_without_model_fails_loudly(mesh):
    """A rate table needs the interference oracle: forgetting model= must
    raise, not silently serve fixed-rate."""
    network, gateways, links = mesh
    config = EpochConfig(epoch_slots=50, n_epochs=2, rate_table=DEGENERATE)
    with pytest.raises(ValueError, match="model"):
        run_epochs(
            links,
            _poisson(network, gateways),
            centralized_scheduler(network.model),
            config,
        )


def test_multi_tier_table_changes_serving_but_conserves_packets(mesh):
    """The non-degenerate contract is *not* a no-op — it delivers at least
    as much, strictly more somewhere on this grid — and every extra packet
    is still conserved through the queues."""
    network, gateways, links = mesh
    table = RateTable.geometric(network.model.radio.beta)

    def run(rate_table):
        from dataclasses import replace

        config = EpochConfig(
            epoch_slots=200, n_epochs=5, divergence_factor=4.0, rate_table=rate_table
        )
        return run_epochs(
            links,
            _poisson(network, gateways, rate=0.019),
            centralized_scheduler(network.model),
            config,
            model=network.model,
        )

    rated, bare = run(table), run(None)
    rated.queues.check_conservation()
    assert rated.queues.served_total > rated.queues.plays_total
    assert rated.delivered_total >= bare.delivered_total
