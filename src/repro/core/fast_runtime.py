"""Vectorized slot-faithful runtime (the experiments' execution substrate).

Resolves each protocol primitive with numpy over the network's precomputed
matrices while preserving per-slot semantics:

* fault-free SCREAMs use the closed-form reachability result (node true iff
  a true source lies within K directed hops of the sensitivity graph), which
  equals the slot-by-slot flood exactly;
* faulty SCREAMs run the flood slot by slot with Bernoulli detection misses;
* handshakes evaluate the exact two-sub-slot SINR model;
* every primitive books the synchronized steps it would occupy on air.

This is the standard protocol-simulation fidelity level: behaviour is
bit-identical to the per-node packet engine (asserted by integration tests)
at a small fraction of the cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import NO_FAULTS, FaultConfig, ProtocolConfig
from repro.core.leader import leader_elect
from repro.core.runtime import Runtime
from repro.core.scream import scream_flood, scream_reach_exactly
from repro.phy.interference import PhysicalInterferenceModel
from repro.topology.diameter import hop_distance_matrix
from repro.topology.network import Network
from repro.util.rng import ensure_rng


class FastRuntime(Runtime):
    """Numpy-vectorized execution substrate bound to one network."""

    def __init__(
        self,
        model: PhysicalInterferenceModel,
        sens_adj: np.ndarray,
        ids: np.ndarray,
        config: ProtocolConfig,
        faults: FaultConfig = NO_FAULTS,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        self._model = model
        self._sens_adj = np.asarray(sens_adj, dtype=bool)
        self._ids = np.asarray(ids, dtype=np.int64)
        self.config = config
        self.faults = faults
        self._rng = ensure_rng(rng)
        if self._ids.shape != (model.n_nodes,):
            raise ValueError("ids must have one entry per node")
        if self._sens_adj.shape != (model.n_nodes, model.n_nodes):
            raise ValueError("sens_adj shape must match the model's node count")

        self._sens_dist: np.ndarray | None = None
        if faults.is_faultless:
            self._sens_dist = hop_distance_matrix(self._sens_adj)

    @classmethod
    def for_network(
        cls,
        network: Network,
        config: ProtocolConfig,
        faults: FaultConfig = NO_FAULTS,
        rng: np.random.Generator | int | None = None,
        ids: np.ndarray | None = None,
    ) -> "FastRuntime":
        """Construct from a :class:`~repro.topology.network.Network`."""
        node_ids = (
            np.arange(network.n_nodes, dtype=np.int64) if ids is None else ids
        )
        return cls(
            model=network.model,
            sens_adj=network.sens_adj,
            ids=node_ids,
            config=config,
            faults=faults,
            rng=rng,
        )

    @property
    def n_nodes(self) -> int:
        return self._model.n_nodes

    @property
    def ids(self) -> np.ndarray:
        return self._ids

    def scream(self, inputs: np.ndarray) -> np.ndarray:
        """One K-slot SCREAM; exact reachability or faulty flood."""
        self.tally.add_scream(self.config.k)
        arr = np.asarray(inputs, dtype=bool)
        if self.faults.is_faultless:
            return scream_reach_exactly(self._sens_dist, arr, self.config.k)
        return scream_flood(
            self._sens_adj,
            arr,
            self.config.k,
            rng=self._rng,
            miss_prob=self.faults.scream_miss_prob,
        )

    def leader_elect(self, participating: np.ndarray) -> np.ndarray:
        """Bitwise election; one SCREAM per ID bit."""
        self.tally.elections += 1
        winners = leader_elect(
            self._ids,
            np.asarray(participating, dtype=bool),
            self.config.id_bits,
            self.scream,
        )
        if int(winners.sum()) > 1:
            self.tally.multi_winner_elections += 1
        return winners

    def handshake(self, senders: np.ndarray, receivers: np.ndarray) -> np.ndarray:
        """Concurrent two-way handshakes under the exact SINR model.

        Uses the conditional-ACK semantics (a receiver that misses the data
        packet sends no ACK), matching the packet engine exactly.
        """
        self.tally.add_handshake()
        snd = np.asarray(senders, dtype=np.intp)
        rcv = np.asarray(receivers, dtype=np.intp)
        if snd.size == 0:
            return np.zeros(0, dtype=bool)
        return self._model.handshake_mask(snd, rcv)
