"""Vectorized SINR computation for sets of concurrently transmitting links.

The core operation of the whole system: given the received-power matrix and a
set of concurrent transmissions, compute each receiver's SINR.  Everything —
the centralized scheduler, the distributed handshakes, the schedule verifier —
funnels through :func:`sinr_for_links`.
"""

from __future__ import annotations

import numpy as np


def sinr_for_links(
    power: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    noise_mw: float,
) -> np.ndarray:
    """SINR at each receiver for concurrent transmissions ``senders[k] -> receivers[k]``.

    Parameters
    ----------
    power:
        ``(n, n)`` received-power matrix (mW); ``power[i, j]`` is what node
        ``j`` receives from node ``i``.
    senders, receivers:
        Equal-length integer index arrays describing the concurrent
        transmissions of one sub-slot.  All listed senders transmit
        simultaneously; interference at receiver ``k`` is the sum of the
        powers received from every *other* sender.
    noise_mw:
        Background noise power ``N``.

    Returns
    -------
    numpy.ndarray
        SINR (linear ratio) per link, same length as ``senders``.  A
        receiver that is itself transmitting in the sub-slot (appears among
        ``senders``) is deaf — half-duplex radios cannot receive while
        transmitting — and gets SINR 0.
    """
    snd = np.asarray(senders, dtype=np.intp)
    rcv = np.asarray(receivers, dtype=np.intp)
    if snd.shape != rcv.shape or snd.ndim != 1:
        raise ValueError("senders and receivers must be equal-length 1-D arrays")
    if snd.size == 0:
        return np.empty(0, dtype=float)
    if noise_mw <= 0:
        raise ValueError(f"noise_mw must be positive, got {noise_mw}")

    # incident[i, k]: power received at receiver of link k from sender of link i.
    incident = power[np.ix_(snd, rcv)]
    signal = np.diagonal(incident).astype(float, copy=True)
    interference = incident.sum(axis=0) - signal
    sinr = signal / (noise_mw + interference)
    sinr[np.isin(rcv, snd)] = 0.0
    return sinr


def min_sinr_margin(
    power: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    noise_mw: float,
    beta: float,
) -> float:
    """Smallest ``SINR / beta`` over the link set (>= 1 means all decode).

    Useful as a scalar "how close to infeasible is this slot" diagnostic in
    experiments and property tests.  Returns ``inf`` for an empty link set.
    """
    sinr = sinr_for_links(power, senders, receivers, noise_mw)
    if sinr.size == 0:
        return float("inf")
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    return float(sinr.min() / beta)


def carrier_sense_power(
    power: np.ndarray, transmitters: np.ndarray, n_nodes: int
) -> np.ndarray:
    """Total received power (mW) at every node given a set of transmitters.

    Transmitting nodes hear their own signal (entry left at the matrix's
    diagonal value); callers mask transmitters out when modelling half-duplex
    radios.  Powers *add* across concurrent transmitters — this additivity is
    exactly why the SCREAM primitive is collision-resilient.
    """
    tx = np.asarray(transmitters, dtype=np.intp)
    if tx.size == 0:
        return np.zeros(n_nodes, dtype=float)
    return power[tx, :].sum(axis=0)
