"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.phy.units
import repro.topology.regions

MODULES_WITH_DOCTESTS = [
    repro.phy.units,
    repro.topology.regions,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, (
        f"{module.__name__} advertises doctests but has none"
    )
    assert result.failed == 0
