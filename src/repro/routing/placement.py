"""Gateway placement optimization (an operator-facing extension).

The paper fixes gateway positions (planned grid slots or random nodes).
Mesh operators get to *choose* them, and the natural objective — minimizing
the maximum hop distance any node's traffic travels — is the k-center
problem on the communication graph.  We provide the classic greedy
2-approximation (farthest-point traversal) plus an exhaustive optimum for
small instances, so the benefit of placement over random choice can be
quantified (see the capacity-planning example).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.topology.diameter import hop_distance_matrix
from repro.util.validation import check_integer_in_range


def kcenter_gateways(
    comm_adj: np.ndarray,
    count: int,
    first: int | None = None,
) -> np.ndarray:
    """Greedy k-center gateway placement (2-approximation).

    Starts from ``first`` (default: a node minimizing eccentricity — a graph
    center) and repeatedly adds the node farthest from the chosen set.

    Returns sorted gateway indices.  Raises on disconnected graphs (hop
    distances must be finite for the objective to make sense).
    """
    dist = hop_distance_matrix(comm_adj)
    n = dist.shape[0]
    check_integer_in_range("count", count, minimum=1, maximum=n)
    if not np.isfinite(dist).all():
        raise ValueError("k-center placement requires a connected graph")

    if first is None:
        first = int(np.argmin(dist.max(axis=1)))
    chosen = [first]
    best = dist[first].copy()
    while len(chosen) < count:
        nxt = int(np.argmax(best))
        chosen.append(nxt)
        best = np.minimum(best, dist[nxt])
    return np.sort(np.asarray(chosen, dtype=np.intp))


def coverage_radius(comm_adj: np.ndarray, gateways: np.ndarray) -> int:
    """The k-center objective: max hop distance to the nearest gateway."""
    dist = hop_distance_matrix(comm_adj)
    gws = np.asarray(gateways, dtype=np.intp)
    if gws.size == 0:
        raise ValueError("at least one gateway required")
    radius = dist[gws].min(axis=0).max()
    if not np.isfinite(radius):
        raise ValueError("some node cannot reach any gateway")
    return int(radius)


def optimal_gateways(comm_adj: np.ndarray, count: int) -> np.ndarray:
    """Exhaustive k-center optimum (small n only: C(n, count) subsets)."""
    dist = hop_distance_matrix(comm_adj)
    n = dist.shape[0]
    check_integer_in_range("count", count, minimum=1, maximum=n)
    if not np.isfinite(dist).all():
        raise ValueError("optimal placement requires a connected graph")
    if n > 24:
        raise ValueError(f"exhaustive placement is limited to n <= 24, got {n}")
    best_subset: tuple[int, ...] | None = None
    best_radius = np.inf
    for subset in combinations(range(n), count):
        radius = dist[list(subset)].min(axis=0).max()
        if radius < best_radius:
            best_radius = radius
            best_subset = subset
    assert best_subset is not None
    return np.asarray(best_subset, dtype=np.intp)
