"""Vectorized SINR computation for sets of concurrently transmitting links.

The core operation of the whole system: given the received-power matrix and a
set of concurrent transmissions, compute each receiver's SINR.  Everything —
the centralized scheduler, the distributed handshakes, the schedule verifier —
funnels through :func:`sinr_for_links`.
"""

from __future__ import annotations

import numpy as np


def _sparse_fast(power) -> bool:
    """Route to the scatter-add kernels? True only for genuinely sparse
    matrices — a value-dense (``cutoff=inf``) sparse matrix must go through
    the exact mesh path so its floating-point summation *order*, not just
    its values, reproduces the dense pipeline bit-for-bit."""
    return bool(getattr(power, "is_sparse_power", False)) and not power.value_dense


def sinr_for_links(
    power: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    noise_mw: float,
    budget_mw: np.ndarray | None = None,
) -> np.ndarray:
    """SINR at each receiver for concurrent transmissions ``senders[k] -> receivers[k]``.

    Parameters
    ----------
    power:
        ``(n, n)`` received-power matrix (mW); ``power[i, j]`` is what node
        ``j`` receives from node ``i``.
    senders, receivers:
        Equal-length integer index arrays describing the concurrent
        transmissions of one sub-slot.  All listed senders transmit
        simultaneously; interference at receiver ``k`` is the sum of the
        powers received from every *other* sender.
    noise_mw:
        Background noise power ``N``.
    budget_mw:
        Optional ``(n,)`` per-node *far-field interference budget* (mW),
        added to the noise term at each receiving node: link ``k`` sees
        ``N + budget_mw[receivers[k]]`` instead of ``N``.  This is the
        margin-budgeted feasibility entry point of the sharded epoch engine
        (:mod:`repro.traffic.sharded`): interference from transmitters
        *outside* the local scheduling problem is budgeted as extra noise
        rather than recomputed globally (cf. arXiv:1104.5200's decomposition
        of SINR scheduling into near-field sets plus a far-field budget).
        ``None`` means no budget anywhere.

    Returns
    -------
    numpy.ndarray
        SINR (linear ratio) per link, same length as ``senders``.  A
        receiver that is itself transmitting in the sub-slot (appears among
        ``senders``) is deaf — half-duplex radios cannot receive while
        transmitting — and gets SINR 0.
    """
    snd = np.asarray(senders, dtype=np.intp)
    rcv = np.asarray(receivers, dtype=np.intp)
    if snd.shape != rcv.shape or snd.ndim != 1:
        raise ValueError("senders and receivers must be equal-length 1-D arrays")
    if snd.size == 0:
        return np.empty(0, dtype=float)
    if noise_mw <= 0:
        raise ValueError(f"noise_mw must be positive, got {noise_mw}")
    noise = noise_mw
    if budget_mw is not None:
        budget = np.asarray(budget_mw, dtype=float)
        if budget.ndim != 1 or budget.shape[0] != power.shape[0]:
            raise ValueError(
                f"budget_mw must have one entry per node ({power.shape[0]},), "
                f"got shape {budget.shape}"
            )
        # Entries must be non-negative; that invariant is enforced where
        # budgets are built (PhysicalInterferenceModel.__post_init__), not
        # re-scanned here — this function sits inside every handshake.
        noise = noise_mw + budget[rcv]

    if _sparse_fast(power):
        # Near-field path: total power landing on each receiver is a
        # scatter-add over the senders' stored (near) entries —
        # O(sum of sender neighborhoods) instead of the L x L mesh.
        # Only taken for genuinely sparse matrices: the value-dense
        # (cutoff=inf) case keeps the mesh below so its pairwise summation
        # order — hence every bit of the result — matches the dense model.
        signal = np.asarray(power[snd, rcv], dtype=float)
        interference = power.column_sums(snd)[rcv] - signal
        sinr = signal / (noise + interference)
        transmitting = np.zeros(power.shape[0], dtype=bool)
        transmitting[snd] = True
        sinr[transmitting[rcv]] = 0.0
        return sinr

    # incident[i, k]: power received at receiver of link k from sender of link i.
    incident = power[np.ix_(snd, rcv)]
    signal = np.diagonal(incident).astype(float, copy=True)
    interference = incident.sum(axis=0) - signal
    sinr = signal / (noise + interference)
    # Half-duplex: a receiver that also transmits is deaf.  A scratch mask
    # over the node axis beats np.isin's sort-based path on the small
    # per-slot index arrays this function sees millions of times.
    transmitting = np.zeros(power.shape[0], dtype=bool)
    transmitting[snd] = True
    sinr[transmitting[rcv]] = 0.0
    return sinr


def sinr_with_candidates(
    power: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    cand_senders: np.ndarray,
    cand_receivers: np.ndarray,
    noise_mw: float,
    budget_mw: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched what-if SINRs: each candidate joins the member set *alone*.

    The kernel behind the batched admission paths: given one sub-slot's
    current members ``senders[k] -> receivers[k]`` and ``n_c`` candidate
    links ``cand_senders[c] -> cand_receivers[c]``, evaluate every
    hypothetical slot ``members + {candidate c}`` in one pass of
    gain-matrix slices instead of ``n_c`` calls to :func:`sinr_for_links`.
    Candidates are independent of each other — candidate ``c`` never
    interferes with candidate ``c'``.

    Returns ``(cand_sinr, member_sinr)`` where ``cand_sinr[c]`` is the
    candidate's own SINR against the members' interference and
    ``member_sinr[c, k]`` is member ``k``'s SINR with candidate ``c``
    transmitting.  Half-duplex deafness (receiver transmits in the
    hypothetical slot) zeroes entries exactly as :func:`sinr_for_links`
    would.  ``budget_mw`` follows the same per-receiving-node convention.
    """
    snd = np.asarray(senders, dtype=np.intp)
    rcv = np.asarray(receivers, dtype=np.intp)
    cs = np.asarray(cand_senders, dtype=np.intp)
    cr = np.asarray(cand_receivers, dtype=np.intp)
    if snd.shape != rcv.shape or snd.ndim != 1:
        raise ValueError("senders and receivers must be equal-length 1-D arrays")
    if cs.shape != cr.shape or cs.ndim != 1:
        raise ValueError("candidate senders and receivers must be equal-length 1-D arrays")
    if noise_mw <= 0:
        raise ValueError(f"noise_mw must be positive, got {noise_mw}")
    member_noise: float | np.ndarray = noise_mw
    cand_noise: float | np.ndarray = noise_mw
    if budget_mw is not None:
        budget = np.asarray(budget_mw, dtype=float)
        if budget.ndim != 1 or budget.shape[0] != power.shape[0]:
            raise ValueError(
                f"budget_mw must have one entry per node ({power.shape[0]},), "
                f"got shape {budget.shape}"
            )
        member_noise = noise_mw + budget[rcv]
        cand_noise = noise_mw + budget[cr]

    transmitting = np.zeros(power.shape[0], dtype=bool)
    transmitting[snd] = True

    fast = _sparse_fast(power) and snd.size > 0
    totals = power.column_sums(snd) if fast else None

    # Candidate SINR: signal over members' aggregate interference.
    cand_signal = np.asarray(power[cs, cr], dtype=float).copy()
    if fast:
        cand_interf = totals[cr]
    elif snd.size:
        cand_interf = power[np.ix_(snd, cr)].sum(axis=0)
    else:
        cand_interf = np.zeros(cs.shape[0], dtype=float)
    cand_sinr = cand_signal / (cand_noise + cand_interf)
    cand_sinr[transmitting[cr] | (cr == cs)] = 0.0

    # Member SINRs: base interference plus the candidate's contribution
    # (the candidate cross term is genuinely per-pair — no aggregate
    # shortcut — so the mesh stays in both paths).
    if fast:
        signal = np.asarray(power[snd, rcv], dtype=float)
        base_interf = totals[rcv] - signal
        member_interf = base_interf[None, :] + power[np.ix_(cs, rcv)]
        member_sinr = signal[None, :] / (member_noise + member_interf)
        deaf = transmitting[rcv][None, :] | (rcv[None, :] == cs[:, None])
        member_sinr[deaf] = 0.0
    elif snd.size:
        incident = power[np.ix_(snd, rcv)]
        signal = np.diagonal(incident).astype(float, copy=True)
        base_interf = incident.sum(axis=0) - signal
        member_interf = base_interf[None, :] + power[np.ix_(cs, rcv)]
        member_sinr = signal[None, :] / (member_noise + member_interf)
        deaf = transmitting[rcv][None, :] | (rcv[None, :] == cs[:, None])
        member_sinr[deaf] = 0.0
    else:
        member_sinr = np.empty((cs.shape[0], 0), dtype=float)
    return cand_sinr, member_sinr


def min_sinr_margin(
    power: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    noise_mw: float,
    beta: float,
    budget_mw: np.ndarray | None = None,
) -> float:
    """Smallest ``SINR / beta`` over the link set (>= 1 means all decode).

    Useful as a scalar "how close to infeasible is this slot" diagnostic in
    experiments and property tests.  Returns ``inf`` for an empty link set.
    ``budget_mw`` is the same per-node far-field budget as
    :func:`sinr_for_links`; margin diagnostics on budgeted shards must pass
    it or they overstate headroom (budgeted noise lowers every SINR).
    """
    sinr = sinr_for_links(power, senders, receivers, noise_mw, budget_mw)
    if sinr.size == 0:
        return float("inf")
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    return float(sinr.min() / beta)


def rates_for_links(
    power: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    noise_mw: float,
    table,
    budget_mw: np.ndarray | None = None,
) -> np.ndarray:
    """Achievable packets-per-slot per link under a :class:`RateTable`.

    The rate-returning sibling of :func:`sinr_for_links`: the same
    vectorized SINR pass followed by a single ``searchsorted`` tier lookup
    (``table.rate_for``).  Stateless — SINR below the base tier yields rate
    0, exactly the old infeasibility verdict; callers that have already
    established slot membership and want the base-MCS floor use
    :meth:`repro.phy.interference.PhysicalInterferenceModel.link_tiers`.
    """
    sinr = sinr_for_links(power, senders, receivers, noise_mw, budget_mw)
    return table.rate_for(sinr)


def carrier_sense_power(
    power: np.ndarray, transmitters: np.ndarray, n_nodes: int
) -> np.ndarray:
    """Total received power (mW) at every node given a set of transmitters.

    Transmitting nodes hear their own signal (entry left at the matrix's
    diagonal value); callers mask transmitters out when modelling half-duplex
    radios.  Powers *add* across concurrent transmitters — this additivity is
    exactly why the SCREAM primitive is collision-resilient.
    """
    tx = np.asarray(transmitters, dtype=np.intp)
    if tx.size == 0:
        return np.zeros(n_nodes, dtype=float)
    if _sparse_fast(power):
        return power.column_sums(tx)
    return power[tx, :].sum(axis=0)
