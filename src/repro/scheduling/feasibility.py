"""Incremental SINR feasibility bookkeeping for slot construction.

Testing "can link e join this slot?" from scratch costs O(k²) in the number
of member links; greedy schedulers perform that test once per (link, slot)
pair, which dominates the centralized algorithm's running time.
:class:`SlotState` maintains per-member interference sums so each test is
O(k) and each accepted addition is O(k).

The arithmetic mirrors :mod:`repro.phy.interference` exactly — a property
test asserts the two always agree — but avoids rebuilding the full incidence
matrix per test.
"""

from __future__ import annotations

from itertools import chain

import numpy as np

from repro.phy.interference import PhysicalInterferenceModel
from repro.scheduling.schedule import Schedule


class SlotState:
    """Mutable feasibility state of one slot under construction.

    Tracks, for every member link ``k`` (sender ``s_k``, receiver ``r_k``):

    * ``data_interf[k]`` — total interference power at ``r_k`` from the
      *other* members' data transmissions;
    * ``ack_interf[k]`` — total interference power at ``s_k`` from the
      other members' ACK transmissions.

    All powers in mW; thresholds from the bound interference model.
    """

    def __init__(self, model: PhysicalInterferenceModel):
        self._model = model
        self._power = model.power
        self._noise = model.radio.noise_mw
        self._beta = model.radio.beta
        # Per-node far-field noise budget (sharded guard margins); None for
        # the exact monolithic model.  Receiving nodes pay their budget on
        # top of the thermal noise in every check below.
        self._budget = model.budget_mw
        self.senders: list[int] = []
        self.receivers: list[int] = []
        self._data_interf: list[float] = []
        self._ack_interf: list[float] = []

    def __len__(self) -> int:
        return len(self.senders)

    def members(self) -> tuple[np.ndarray, np.ndarray]:
        """(senders, receivers) arrays of the current members."""
        return (
            np.asarray(self.senders, dtype=np.intp),
            np.asarray(self.receivers, dtype=np.intp),
        )

    def can_add(self, sender: int, receiver: int) -> bool:
        """Would the slot stay feasible if ``sender -> receiver`` joined?

        Checks the new link's own data and ACK SINR against the members'
        interference, and every member's updated SINR against the new link's
        contribution.  The slot state is not modified.

        Links sharing a node with a member are rejected outright: a
        half-duplex node cannot transmit and receive in the same sub-slot
        (this mirrors the SINR-level masking in
        :func:`repro.phy.sinr.sinr_for_links`).
        """
        p = self._power
        noise = self._noise
        beta = self._beta
        budget = self._budget

        if sender == receiver:
            return False
        for s_k, r_k in zip(self.senders, self.receivers):
            if sender in (s_k, r_k) or receiver in (s_k, r_k):
                return False

        new_data_interf = 0.0
        new_ack_interf = 0.0
        for s_k, r_k in zip(self.senders, self.receivers):
            new_data_interf += p[s_k, receiver]
            new_ack_interf += p[r_k, sender]
        data_noise = noise if budget is None else noise + budget[receiver]
        ack_noise = noise if budget is None else noise + budget[sender]
        if p[sender, receiver] < beta * (data_noise + new_data_interf):
            return False
        if p[receiver, sender] < beta * (ack_noise + new_ack_interf):
            return False

        for k, (s_k, r_k) in enumerate(zip(self.senders, self.receivers)):
            data_interf = self._data_interf[k] + p[sender, r_k]
            member_data_noise = noise if budget is None else noise + budget[r_k]
            if p[s_k, r_k] < beta * (member_data_noise + data_interf):
                return False
            ack_interf = self._ack_interf[k] + p[receiver, s_k]
            member_ack_noise = noise if budget is None else noise + budget[s_k]
            if p[r_k, s_k] < beta * (member_ack_noise + ack_interf):
                return False
        return True

    def feasible_with(
        self, cand_senders: np.ndarray, cand_receivers: np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`can_add`: one bool per candidate, state untouched.

        Vectorizes over candidates while looping over members, so every
        float accumulation happens in exactly :meth:`can_add`'s member
        order — the verdicts are bit-identical, which the batched greedy
        and patch paths rely on.  Candidates are alternatives evaluated
        independently, not a set admitted together.
        """
        cs = np.asarray(cand_senders, dtype=np.intp)
        cr = np.asarray(cand_receivers, dtype=np.intp)
        if cs.shape != cr.shape or cs.ndim != 1:
            raise ValueError("candidate senders and receivers must be equal-length 1-D arrays")
        p = self._power
        noise = self._noise
        beta = self._beta
        budget = self._budget

        ok = cs != cr
        shared = np.zeros(cs.shape, dtype=bool)
        new_data_interf = np.zeros(cs.shape, dtype=float)
        new_ack_interf = np.zeros(cs.shape, dtype=float)
        for s_k, r_k in zip(self.senders, self.receivers):
            shared |= (cs == s_k) | (cs == r_k) | (cr == s_k) | (cr == r_k)
            new_data_interf += p[s_k, cr]
            new_ack_interf += p[r_k, cs]
        ok &= ~shared
        data_noise = noise if budget is None else noise + budget[cr]
        ack_noise = noise if budget is None else noise + budget[cs]
        ok &= ~(p[cs, cr] < beta * (data_noise + new_data_interf))
        ok &= ~(p[cr, cs] < beta * (ack_noise + new_ack_interf))

        for k, (s_k, r_k) in enumerate(zip(self.senders, self.receivers)):
            data_interf = self._data_interf[k] + p[cs, r_k]
            member_data_noise = noise if budget is None else noise + budget[r_k]
            ok &= ~(p[s_k, r_k] < beta * (member_data_noise + data_interf))
            ack_interf = self._ack_interf[k] + p[cr, s_k]
            member_ack_noise = noise if budget is None else noise + budget[s_k]
            ok &= ~(p[r_k, s_k] < beta * (member_ack_noise + ack_interf))
        return ok

    def add(self, sender: int, receiver: int) -> None:
        """Add the link unconditionally, updating interference sums."""
        p = self._power
        new_data_interf = 0.0
        new_ack_interf = 0.0
        for k, (s_k, r_k) in enumerate(zip(self.senders, self.receivers)):
            self._data_interf[k] += p[sender, r_k]
            self._ack_interf[k] += p[receiver, s_k]
            new_data_interf += p[s_k, receiver]
            new_ack_interf += p[r_k, sender]
        self.senders.append(int(sender))
        self.receivers.append(int(receiver))
        self._data_interf.append(new_data_interf)
        self._ack_interf.append(new_ack_interf)

    def try_add(self, sender: int, receiver: int) -> bool:
        """Add the link iff the slot stays feasible; report success."""
        if self.can_add(sender, receiver):
            self.add(sender, receiver)
            return True
        return False

    def is_feasible(self) -> bool:
        """Re-check the whole member set against the exact model."""
        snd, rcv = self.members()
        if snd.size == 0:
            return True
        return self._model.is_feasible(snd, rcv)

    def member_tiers(self, table) -> np.ndarray:
        """Per-member MCS tier (base-tier floor) under a ``RateTable``.

        Member order matches :attr:`senders` — the last entry is the most
        recently added link, which rate-aware packers use to read the rate
        actually granted to an insertion.
        """
        snd, rcv = self.members()
        if snd.size == 0:
            return np.empty(0, dtype=np.int64)
        return self._model.link_tiers(snd, rcv, table)

    def member_rates(self, table) -> np.ndarray:
        """Per-member packets-per-slot under a ``RateTable`` (>= base rate)."""
        snd, rcv = self.members()
        if snd.size == 0:
            return np.empty(0, dtype=np.int64)
        return self._model.link_rates(snd, rcv, table)

    def rate_sum(self, table) -> int:
        """Total packets per slot the current member set carries."""
        return int(self.member_rates(table).sum())


def slots_can_add(
    states: list[SlotState], sender: int, receiver: int
) -> np.ndarray:
    """One candidate against many slots: ``out[j] == states[j].can_add(...)``.

    The transpose of :meth:`SlotState.feasible_with` — vectorizes the
    per-(link, slot) admission test over the *slot* axis.  All member
    arrays are concatenated once and the per-slot interference sums fall
    out of ``np.bincount`` segment sums, whose C loop accumulates weights
    in input order — the same member order :meth:`SlotState.can_add` sums
    in, keeping the verdicts bit-identical.  Empty slots reduce to the
    standalone check, exactly as ``can_add`` on a fresh state does.

    All states must be bound to the same interference model (one power
    matrix / noise / β / budget); the schedulers that batch through here
    build every slot from a single model.
    """
    n = len(states)
    out = np.zeros(n, dtype=bool)
    if n == 0:
        return out
    if sender == receiver:
        return out
    st0 = states[0]
    p = st0._power
    noise = st0._noise
    beta = st0._beta
    budget = st0._budget

    sid: list[int] = []
    ms: list[int] = []
    mr: list[int] = []
    di: list[float] = []
    ai: list[float] = []
    for j, state in enumerate(states):
        count = len(state.senders)
        sid.extend([j] * count)
        ms.extend(state.senders)
        mr.extend(state.receivers)
        di.extend(state._data_interf)
        ai.extend(state._ack_interf)

    data_noise = noise if budget is None else noise + budget[receiver]
    ack_noise = noise if budget is None else noise + budget[sender]
    if not sid:
        # Every slot is empty: the verdict is the standalone check.
        alone = not (
            p[sender, receiver] < beta * data_noise
            or p[receiver, sender] < beta * ack_noise
        )
        out[:] = alone
        return out

    slot_id = np.asarray(sid, dtype=np.intp)
    msnd = np.asarray(ms, dtype=np.intp)
    mrcv = np.asarray(mr, dtype=np.intp)
    data_interf = np.asarray(di, dtype=float)
    ack_interf = np.asarray(ai, dtype=float)

    shared = (msnd == sender) | (msnd == receiver) | (mrcv == sender) | (mrcv == receiver)
    shared_per_slot = np.bincount(slot_id, weights=shared, minlength=n) > 0

    new_data_interf = np.bincount(slot_id, weights=p[msnd, receiver], minlength=n)
    new_ack_interf = np.bincount(slot_id, weights=p[mrcv, sender], minlength=n)
    cand_ok = ~(p[sender, receiver] < beta * (data_noise + new_data_interf))
    cand_ok &= ~(p[receiver, sender] < beta * (ack_noise + new_ack_interf))

    member_data_noise = noise if budget is None else noise + budget[mrcv]
    member_ack_noise = noise if budget is None else noise + budget[msnd]
    bad = p[msnd, mrcv] < beta * (member_data_noise + (data_interf + p[sender, mrcv]))
    bad |= p[mrcv, msnd] < beta * (member_ack_noise + (ack_interf + p[receiver, msnd]))
    member_bad = np.bincount(slot_id, weights=bad, minlength=n) > 0

    return cand_ok & ~shared_per_slot & ~member_bad


class SlotArena:
    """All slots of a schedule under construction, in flat numpy columns.

    :func:`slots_can_add` is bit-exact but rebuilds its concatenated member
    arrays from Python lists on *every* call — an O(total members) tax that
    caps the sparse backend's win, since the rebuild dominates once the
    arithmetic is pruned.  The arena keeps the same five columns
    (``slot_id``, member sender/receiver, data/ACK interference sums)
    persistently, appended in admission order with capacity doubling, so a
    batched admission test touches no Python-level per-member work.

    Two test paths, one verdict:

    * dense — the exact :func:`slots_can_add` formula over all member rows
      (same bincount segment sums, same order, bit-identical);
    * sparse (auto-selected when the model's power is a
      :class:`~repro.phy.sparse.SparsePowerMatrix`) — member rows are first
      pruned to those with a stored (near-field) interaction with the
      candidate, via per-node postings.  Pruned rows contribute *exactly*
      ``0.0`` to every sum and — because every admitted member is feasible
      at admission time and additions only recheck — can never flip a
      member-bad or shared-node predicate, so the pruned verdict is
      bit-identical to the dense one.  That member-feasibility invariant
      holds for every arena by construction: the only unconditional insert,
      :meth:`open_slot`'s first member, is screened standalone by the
      greedy caller.

    All powers in mW; thresholds from the bound interference model, exactly
    as :class:`SlotState`.
    """

    def __init__(self, model: PhysicalInterferenceModel, capacity: int = 256):
        self._model = model
        self._power = model.power
        self._noise = model.radio.noise_mw
        self._beta = model.radio.beta
        self._budget = model.budget_mw
        self._use_sparse = bool(getattr(model.power, "is_sparse_power", False))
        cap = max(int(capacity), 1)
        self._slot_id = np.empty(cap, dtype=np.intp)
        self._msnd = np.empty(cap, dtype=np.intp)
        self._mrcv = np.empty(cap, dtype=np.intp)
        self._di = np.empty(cap, dtype=float)
        self._ai = np.empty(cap, dtype=float)
        self._m = 0
        self.n_slots = 0
        self._slot_rows: list[list[int]] = []
        # Sparse pruning structure: node -> rows where it is an endpoint,
        # plus a reusable row-dedup scratch (False outside _near_rows).
        self._postings: dict[int, list[int]] = {}
        self._row_seen = np.zeros(cap, dtype=bool)

    def __len__(self) -> int:
        return self.n_slots

    @property
    def n_members(self) -> int:
        return self._m

    def members(self, slot: int) -> tuple[np.ndarray, np.ndarray]:
        """(senders, receivers) of one slot, in admission order."""
        rows = np.asarray(self._slot_rows[slot], dtype=np.intp)
        return self._msnd[rows], self._mrcv[rows]

    def _ensure_capacity(self) -> None:
        if self._m < self._slot_id.size:
            return
        cap = self._slot_id.size * 2
        for name in ("_slot_id", "_msnd", "_mrcv", "_di", "_ai"):
            old = getattr(self, name)
            new = np.empty(cap, dtype=old.dtype)
            new[: self._m] = old[: self._m]
            setattr(self, name, new)
        self._row_seen = np.zeros(cap, dtype=bool)

    def open_slot(self, sender: int, receiver: int) -> int:
        """Append a fresh slot seeded with one member; return its index.

        The insert is unconditional — callers screen the link standalone
        first (greedy does, batched), which is what keeps the
        member-feasibility invariant the sparse pruning relies on.
        """
        j = self.n_slots
        self.n_slots += 1
        self._slot_rows.append([])
        self.add(j, sender, receiver)
        return j

    def add(self, slot: int, sender: int, receiver: int) -> None:
        """Admit the link to a slot unconditionally (caller pre-approved).

        Mirrors :meth:`SlotState.add` bit-for-bit: existing members' sums
        grow element-wise by the newcomer's contribution, and the
        newcomer's own sums accumulate over members in admission order
        (single-bucket ``bincount`` — C-loop sequential, the same order the
        scalar loop adds in).
        """
        p = self._power
        rows = self._slot_rows[slot]
        if rows:
            r = np.asarray(rows, dtype=np.intp)
            ms = self._msnd[r]
            mr = self._mrcv[r]
            # One fused gather for all four member/newcomer power reads —
            # a pure gather, so splitting it differently never changes a
            # value, and the bincount sums below keep their exact order.
            k = r.size
            grows = np.empty(4 * k, dtype=np.intp)
            gcols = np.empty(4 * k, dtype=np.intp)
            grows[:k] = sender
            gcols[:k] = mr
            grows[k : 2 * k] = receiver
            gcols[k : 2 * k] = ms
            grows[2 * k : 3 * k] = ms
            gcols[2 * k : 3 * k] = receiver
            grows[3 * k :] = mr
            gcols[3 * k :] = sender
            vals = p[grows, gcols]
            self._di[r] += vals[:k]
            self._ai[r] += vals[k : 2 * k]
            zero = np.zeros(k, dtype=np.intp)
            new_di = float(
                np.bincount(zero, weights=vals[2 * k : 3 * k], minlength=1)[0]
            )
            new_ai = float(np.bincount(zero, weights=vals[3 * k :], minlength=1)[0])
        else:
            new_di = 0.0
            new_ai = 0.0
        self._ensure_capacity()
        row = self._m
        self._slot_id[row] = slot
        self._msnd[row] = sender
        self._mrcv[row] = receiver
        self._di[row] = new_di
        self._ai[row] = new_ai
        self._m += 1
        rows.append(row)
        if self._use_sparse:
            self._postings.setdefault(int(sender), []).append(row)
            self._postings.setdefault(int(receiver), []).append(row)

    def _near_rows(self, sender: int, receiver: int) -> np.ndarray:
        """Member rows with a stored (near-field) interaction with the
        candidate — every row the dense formula could read a nonzero power
        for, plus any row sharing one of the candidate's endpoints (the
        diagonal is stored, so endpoint nodes are their own neighbors and
        their postings are always included).

        Duplicate rows — the two neighbor lists overlap, and a row can have
        both endpoints near — are deduplicated through a reusable boolean
        scratch instead of ``np.unique``'s sort; the result is the same
        ascending (admission-order) row array."""
        post = self._postings
        p = self._power
        runs = []
        for v in p.neighbors(sender).tolist():
            r = post.get(v)
            if r is not None:
                runs.append(r)
        for v in p.neighbors(receiver).tolist():
            r = post.get(v)
            if r is not None:
                runs.append(r)
        if not runs:
            return np.empty(0, dtype=np.intp)
        cand = np.fromiter(chain.from_iterable(runs), dtype=np.intp)
        seen = self._row_seen
        seen[cand] = True
        rows = np.flatnonzero(seen[: self._m])
        seen[cand] = False
        return rows

    def can_add_all(self, sender: int, receiver: int) -> np.ndarray:
        """One candidate against every slot: ``out[j] == slot j can admit``.

        Bit-identical to :func:`slots_can_add` over equivalent states —
        the differential suite pins dense-vs-sparse and arena-vs-SlotState
        agreement.
        """
        n = self.n_slots
        out = np.zeros(n, dtype=bool)
        if n == 0 or sender == receiver:
            return out
        p = self._power
        noise = self._noise
        beta = self._beta
        budget = self._budget
        data_noise = noise if budget is None else noise + budget[receiver]
        ack_noise = noise if budget is None else noise + budget[sender]

        if self._use_sparse:
            rows = self._near_rows(sender, receiver)
            sid = self._slot_id[rows]
            msnd = self._msnd[rows]
            mrcv = self._mrcv[rows]
            di = self._di[rows]
            ai = self._ai[rows]
        else:
            m = self._m
            sid = self._slot_id[:m]
            msnd = self._msnd[:m]
            mrcv = self._mrcv[:m]
            di = self._di[:m]
            ai = self._ai[:m]

        if sid.size == 0:
            # No (near) members anywhere: every slot reduces to the
            # standalone check, exactly as the zero segment sums would.
            alone = not (
                p[sender, receiver] < beta * data_noise
                or p[receiver, sender] < beta * ack_noise
            )
            out[:] = alone
            return out

        shared = (msnd == sender) | (msnd == receiver) | (mrcv == sender) | (mrcv == receiver)
        shared_per_slot = np.bincount(sid, weights=shared, minlength=n) > 0

        # All six power reads — the candidate pair plus the four member
        # cross terms — in one fused gather (a pure gather: grouping the
        # lookups differently can never change a value, so the verdicts
        # below stay bit-identical to the unfused formula).
        k = sid.size
        grows = np.empty(6 * k + 2, dtype=np.intp)
        gcols = np.empty(6 * k + 2, dtype=np.intp)
        grows[0] = sender
        gcols[0] = receiver
        grows[1] = receiver
        gcols[1] = sender
        seg = [slice(i * k + 2, (i + 1) * k + 2) for i in range(6)]
        grows[seg[0]] = msnd
        gcols[seg[0]] = receiver
        grows[seg[1]] = mrcv
        gcols[seg[1]] = sender
        grows[seg[2]] = sender
        gcols[seg[2]] = mrcv
        grows[seg[3]] = receiver
        gcols[seg[3]] = msnd
        grows[seg[4]] = msnd
        gcols[seg[4]] = mrcv
        grows[seg[5]] = mrcv
        gcols[seg[5]] = msnd
        vals = p[grows, gcols]

        new_data_interf = np.bincount(sid, weights=vals[seg[0]], minlength=n)
        new_ack_interf = np.bincount(sid, weights=vals[seg[1]], minlength=n)
        cand_ok = ~(vals[0] < beta * (data_noise + new_data_interf))
        cand_ok &= ~(vals[1] < beta * (ack_noise + new_ack_interf))

        member_data_noise = noise if budget is None else noise + budget[mrcv]
        member_ack_noise = noise if budget is None else noise + budget[msnd]
        bad = vals[seg[4]] < beta * (member_data_noise + (di + vals[seg[2]]))
        bad |= vals[seg[5]] < beta * (member_ack_noise + (ai + vals[seg[3]]))
        member_bad = np.bincount(sid, weights=bad, minlength=n) > 0

        return cand_ok & ~shared_per_slot & ~member_bad


def schedule_is_feasible(
    schedule: Schedule, model: PhysicalInterferenceModel
) -> bool:
    """Is every slot of the schedule feasible under the exact model?"""
    for t in range(schedule.length):
        snd, rcv = schedule.slot_members(t)
        if snd.size and not model.is_feasible(snd, rcv):
            return False
    return True


def schedule_rates(
    schedule: Schedule, model: PhysicalInterferenceModel, table
) -> list[np.ndarray]:
    """Per-slot packets-per-slot arrays (member order) under a ``RateTable``.

    Stateless — no hysteresis; the epoch engines carry selection state in
    :class:`repro.traffic.epoch.RateAnnotator` instead.
    """
    rates = []
    for t in range(schedule.length):
        snd, rcv = schedule.slot_members(t)
        if snd.size == 0:
            rates.append(np.empty(0, dtype=np.int64))
        else:
            rates.append(model.link_rates(snd, rcv, table))
    return rates
