"""Schedule-length experiments (the paper's Figures 6 and 7).

Percentage schedule-length improvement over the serialized schedule, as a
function of node density, for the centralized GreedyPhysical baseline, FDD,
and PDD at several activation probabilities.  Expected qualitative result
(matching the paper): FDD tracks the centralized algorithm exactly; PDD
trails by roughly 5-15 percentage points, with its best probability at the
low end in the planned scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.stats import mean_ci
from repro.analysis.tables import TextTable
from repro.core.fdd import fdd_on_network
from repro.core.pdd import pdd_on_network
from repro.experiments.common import (
    PAPER_PROTOCOL,
    ExperimentProfile,
    Scenario,
    grid_scenario,
    uniform_scenario,
)
from repro.scheduling import greedy_physical, improvement_over_linear, verify_schedule
from repro.util.rng import spawn


@dataclass
class QualityCell:
    """One (algorithm, density) aggregate."""

    improvements: list[float]

    def summary(self) -> str:
        return str(mean_ci(self.improvements))


def _run_cell(
    scenario: Scenario, algorithm: str, p_active: float, seed_key: tuple
) -> float:
    """Improvement-over-linear of one algorithm on one scenario instance."""
    if algorithm == "central":
        schedule = greedy_physical(scenario.links, scenario.network.model)
    elif algorithm == "fdd":
        result = fdd_on_network(
            scenario.network, scenario.links, PAPER_PROTOCOL, rng=spawn(*seed_key)
        )
        schedule = result.schedule
    elif algorithm == "pdd":
        config = PAPER_PROTOCOL.with_p(p_active)
        result = pdd_on_network(
            scenario.network, scenario.links, config, rng=spawn(*seed_key)
        )
        schedule = result.schedule
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")

    report = verify_schedule(schedule, scenario.network.model)
    if not report.ok:
        raise AssertionError(f"{algorithm} produced an invalid schedule: {report}")
    return improvement_over_linear(schedule)


def _schedule_experiment(
    profile: ExperimentProfile,
    scenario_fn: Callable[..., Scenario],
    title: str,
) -> TextTable:
    algorithms: list[tuple[str, str, float]] = [("Centralized", "central", 0.0)]
    algorithms.append(("FDD", "fdd", 0.0))
    for p in profile.pdd_probabilities:
        algorithms.append((f"PDD p={p:g}", "pdd", p))

    table = TextTable(
        ["density (nodes/km^2)"] + [name for name, _, _ in algorithms],
        title=title,
    )
    for density in profile.densities:
        cells = {name: [] for name, _, _ in algorithms}
        for rep in range(profile.repetitions):
            scenario = scenario_fn(density, rep, seed=profile.seed)
            for name, algorithm, p in algorithms:
                value = _run_cell(
                    scenario,
                    algorithm,
                    p,
                    (profile.seed, title, name, int(density), rep),
                )
                cells[name].append(value)
        table.add_row(
            f"{density:g}",
            *(str(mean_ci(cells[name])) for name, _, _ in algorithms),
        )
    return table


def grid_schedule_experiment(profile: ExperimentProfile) -> TextTable:
    """E3 — schedule-length improvement vs density, planned grid (Fig. 6)."""
    return _schedule_experiment(
        profile,
        grid_scenario,
        "Schedule-length improvement over serialized schedule (%) — "
        "planned grid, homogeneous power",
    )


def uniform_schedule_experiment(profile: ExperimentProfile) -> TextTable:
    """E4 — improvement vs density, unplanned uniform placement (Fig. 7)."""
    return _schedule_experiment(
        profile,
        uniform_scenario,
        "Schedule-length improvement over serialized schedule (%) — "
        "unplanned uniform placement, heterogeneous power",
    )
