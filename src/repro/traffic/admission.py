"""Online admission control: estimate the stability knee, shed the rest.

The epoch engines serve whatever load the workload offers; past the
measured stability knee they simply diverge (E7–E9).  Real systems do not —
they *admit* the traffic the SINR-feasible schedule can carry and block or
throttle the rest (cf. heavy-traffic scheduling on interfering routes,
arXiv:1106.1590, and throughput maximization under physical interference,
arXiv:1208.0902).  This module supplies that missing layer as controllers a
:class:`~repro.traffic.flows.FlowWorkload` consults every epoch:

* ``none`` — admit everything, never throttle: the differential baseline,
  bit-identical to the uncontrolled engines.
* ``static-cap`` — a fixed admitted-rate cap (pkt/slot aggregate): the
  operator *tells* the controller the knee.
* ``knee-tracker`` — AIMD on the admitted-rate cap driven purely by
  *observable* signals from the per-epoch trace — offered arrivals,
  backlog slope over a sliding window (with a magnitude gate), and the
  measured delivered rate, the served-vs-offered pair in goodput form
  with protocol overhead already priced in: the controller *estimates*
  the knee online rather than being told λ*.  While the window reads
  stable the cap creeps up (additive probe); when backlog growth clears
  the slope-plus-magnitude test, the cap snaps down to the best
  delivered rate observed — the classic TCP-shaped hunt around the
  capacity it cannot directly see.
* ``backpressure`` — per-flow, not per-rate: flows whose route crosses the
  most-backlogged links are throttled (elastic) while flows through quiet
  regions run free; new sessions routed across a hot link are blocked.

Controllers see the network **only** through the per-epoch feedback hook
(``run_epochs(..., on_epoch=workload.observe)``): the
:class:`~repro.traffic.epoch.EpochRecord` just written and the live
:class:`~repro.traffic.queues.LinkQueues`.  No oracle state — no schedule
internals, no SINR maps, no knowledge of the offered rate — which is what
makes the knee estimate honest.

For the sharded engine, :class:`RegionalControllers` composes one
controller per shard of a :class:`~repro.traffic.sharded.ShardPlan`:
sessions are admitted against the cap of the region that sources them, and
each regional controller observes only its region's backlog (plus the
emissions the workload itself booked there) — per-region caps for
federated meshes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace

import numpy as np

from repro.traffic.flows import Flow, FlowWorkload
from repro.traffic.queues import LinkQueues
from repro.traffic.stability import series_slope

#: Controller names understood by :func:`make_controller` (and the E10
#: experiment's profile knobs).
ADMISSION_CONTROLLERS = ("none", "static-cap", "knee-tracker", "backpressure")

#: Sliding-window length (epochs) for the knee tracker's backlog-slope
#: estimate: long enough to smooth Poisson wiggle, short enough to react
#: within a few epochs of crossing the knee.
DEFAULT_WINDOW = 4

#: AIMD constants: additive probe per stable epoch (fraction of the
#: current cap) and multiplicative back-off on a growth signal.  The probe
#: is deliberately gentle — overshooting the knee costs epochs of backlog
#: drain, undershooting only delays goodput.
DEFAULT_INCREASE = 0.08
DEFAULT_DECREASE = 0.7

#: Epochs within which a standing (gated) backlog must be on course to
#: drain before the knee tracker dips its cap below the capacity estimate.
#: A standing queue at slope ~ 0 is *bounded* but not free: it taxes every
#: epoch's scheduler with stale demand and every packet with queueing delay.
DEFAULT_DRAIN_HORIZON = 16.0

#: Floor (pkt/slot) under the knee tracker's cap.  Both AIMD moves are
#: multiplicative in the cap, so a cap that ever reached exactly 0 — e.g.
#: a growth signal over a window in which nothing was delivered (a slow
#: scheduler eating whole epochs, or a regional tracker whose region went
#: silent) — could never recover and would block every future session
#: forever.  The floor keeps a probe trickle admitted: enough to observe
#: fresh deliveries and re-estimate capacity, the AIMD way out.
DEFAULT_CAP_FLOOR = 0.05

#: Backlog-slope test in the style of :mod:`repro.traffic.stability`:
#: growth above ``GROWTH_TOLERANCE`` of the per-epoch arrivals, with the
#: backlog itself past the magnitude gate, reads as "past the knee".  The
#: gate is deliberately *higher* than the offline verdict's (1.5 epochs of
#: arrivals vs 0.5): a controller observes the loop mid-flight, where the
#: in-transit pipeline alone holds roughly one epoch of arrivals (mean
#: delay ~ hundreds of slots), and capping on the fill transient would
#: lock the admitted rate to the fill-phase goodput.
GROWTH_TOLERANCE = 0.05
GROWTH_GATE_FRACTION = 1.5


class _GrowthWindow:
    """Sliding backlog/arrival window with the stability-style growth test.

    Fed one ``(arrivals, backlog)`` sample per epoch; :attr:`growing` is
    True when the backlog slope clears ``GROWTH_TOLERANCE`` of the mean
    per-epoch arrivals *and* the latest backlog clears the
    ``GROWTH_GATE_FRACTION`` magnitude gate — the same two-part test
    :func:`repro.traffic.stability.is_stable` applies to full traces,
    evaluated online over the window.
    """

    def __init__(self, window: int = DEFAULT_WINDOW):
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self._arrivals: deque[float] = deque(maxlen=window)
        self._backlog: deque[float] = deque(maxlen=window)

    def push(self, arrivals: float, backlog: float) -> None:
        self._arrivals.append(float(arrivals))
        self._backlog.append(float(backlog))

    @property
    def filled(self) -> bool:
        """True once the window holds its full complement of epochs —
        verdicts off a partial window are fill-transient noise."""
        return len(self._backlog) >= self.window

    @property
    def mean_arrivals(self) -> float:
        if not self._arrivals:
            return 0.0
        return float(np.mean(self._arrivals))

    @property
    def slope(self) -> float:
        return series_slope(list(self._backlog))

    @property
    def gate_level(self) -> float:
        return GROWTH_GATE_FRACTION * max(self.mean_arrivals, 1.0)

    @property
    def gated(self) -> bool:
        """Is the latest backlog past the magnitude gate?"""
        return bool(self._backlog) and self._backlog[-1] > self.gate_level

    @property
    def growing(self) -> bool:
        if not self.filled:
            return False
        slope_trips = self.slope > GROWTH_TOLERANCE * max(self.mean_arrivals, 1.0)
        return slope_trips and self.gated

    def draining_within(self, horizon: float) -> bool:
        """Is the gated backlog on course to clear the gate within
        ``horizon`` epochs at the window's measured slope?  (Trivially true
        when the gate is not tripped.)"""
        if not self.filled or not self.gated:
            return True
        needed = (self._backlog[-1] - self.gate_level) / max(horizon, 1.0)
        return self.slope <= -needed


class AdmissionController:
    """Base controller: admit everything, throttle nothing (``"none"``).

    Subclasses override :meth:`admit` (session arrival -> admit/reject),
    :meth:`throttle` (per-epoch elastic emission factor in [0, 1]) and
    :meth:`observe` (the feedback hook).  :meth:`fresh` returns an
    unobserved clone for sweeps that must not leak controller state across
    operating points; :meth:`reset` clears in-place (called by
    :meth:`FlowWorkload.reset`).
    """

    name = "none"

    #: Does this controller depend on the per-epoch feedback channel?  The
    #: workload refuses to run a feedback-hungry controller whose
    #: ``observe`` was never wired (``on_epoch=workload.observe``) — a
    #: knee tracker that never observes would silently degrade to ``none``
    #: and mislabel an uncontrolled run as controlled.
    needs_feedback = False

    def reset(self) -> None:
        """Forget all observed state (the workload rewound to epoch 0)."""

    def fresh(self) -> "AdmissionController":
        """A new controller of the same kind and knobs, with no history."""
        return type(self)()

    def admit(self, flow: Flow, session: FlowWorkload) -> bool:
        return True

    def throttle(self, flow: Flow, session: FlowWorkload) -> float:
        return 1.0

    def observe(
        self, record, queues: LinkQueues, session: FlowWorkload
    ) -> None:
        """Per-epoch feedback: the record just written and the live queues."""


class NoAdmission(AdmissionController):
    """The explicit differential baseline — identical to the base class."""


class _CapController(AdmissionController):
    """Shared cap enforcement: block sessions past the cap, split what is
    left of it between inelastic and elastic flows.

    The cap is an aggregate admitted rate in packets per slot.  Sessions
    are admitted while the active aggregate stays under it (arrival order
    breaks ties); when the active aggregate overshoots — the cap moved
    down after flows were admitted — elastic flows are throttled to the
    fraction of the cap the inelastic (cbr) flows leave over, never below
    zero.  CBR flows are inelastic by definition: once admitted they are
    never slowed, which is exactly why admitting them consumes cap.

    The throttle factor is identical for every elastic flow of an epoch
    (the active set is fixed while the workload's emission loop runs), so
    it is computed once per epoch and memoized — without the memo the
    emission loop would be quadratic in the active-flow count.
    """

    def __init__(self, cap: float):
        self.cap = float(cap)
        self._throttle_memo: tuple[int, float] | None = None

    def reset(self) -> None:
        self._throttle_memo = None

    def admit(self, flow: Flow, session: FlowWorkload) -> bool:
        return session.admitted_rate() + flow.rate <= self.cap

    def throttle(self, flow: Flow, session: FlowWorkload) -> float:
        epoch = getattr(session, "_next_epoch", None)
        if (
            epoch is not None
            and self._throttle_memo is not None
            and self._throttle_memo[0] == epoch
        ):
            return self._throttle_memo[1]
        elastic = session.admitted_rate("elastic")
        if elastic <= 0:
            value = 1.0
        else:
            headroom = self.cap - session.admitted_rate("cbr")
            value = 0.0 if headroom <= 0 else float(min(1.0, headroom / elastic))
        if epoch is not None:
            self._throttle_memo = (epoch, value)
        return value


class StaticCap(_CapController):
    """A fixed admitted-rate cap: the operator knows the knee.

    ``cap`` is the aggregate admitted rate in packets per slot — e.g. the
    E7-measured knee λ* times the number of source nodes, minus whatever
    safety margin the operator wants.
    """

    name = "static-cap"

    def __init__(self, cap: float):
        if cap < 0:
            raise ValueError("cap must be non-negative")
        super().__init__(cap)

    def fresh(self) -> "StaticCap":
        return StaticCap(self.cap)


class KneeTracker(_CapController):
    """AIMD on the admitted-rate cap: estimate the knee from observables.

    The cap starts unbounded (admit everything).  Every observed epoch the
    tracker pushes ``(arrivals, backlog)`` into its growth window and the
    measured **delivered rate** (packets per slot — the goodput the
    schedule demonstrably carried, protocol overhead already priced in)
    into a matching window.  Then:

    * while the window reads **stable**, a finite cap creeps up by
      ``increase`` (additive probe, a fraction of itself); an unbounded
      cap stays out of the way;
    * on a **growth** signal the cap snaps down to the best delivered
      rate in the window — the demonstrated capacity *is* the knee
      estimate — or, if it already sits at/below that estimate and
      backlog still grows (the estimate was stale: overhead rose, hot
      spots moved), multiplies down by ``decrease``.  Each decrease is
      followed by a ``window``-epoch cooldown so the sliding window can
      flush the pre-decrease growth before it is trusted again;
    * a **standing** queue — past the gate but not on course to drain
      within ``drain_horizon`` epochs — also multiplies the cap down:
      slope ~ 0 with a large resident backlog is bounded, not healthy
      (it taxes every epoch's scheduler with stale demand and every
      packet with queueing delay).

    Everything the tracker reads — arrivals, backlog, delivered counts —
    is in the per-epoch trace any deployed controller observes; it is
    never told λ*.
    """

    name = "knee-tracker"
    needs_feedback = True

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        increase: float = DEFAULT_INCREASE,
        decrease: float = DEFAULT_DECREASE,
        drain_horizon: float = DEFAULT_DRAIN_HORIZON,
        cap_floor: float = DEFAULT_CAP_FLOOR,
    ):
        if not 0.0 < decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        if increase < 0:
            raise ValueError("increase must be non-negative")
        if drain_horizon <= 0:
            raise ValueError("drain_horizon must be positive")
        if cap_floor <= 0:
            raise ValueError(
                "cap_floor must be positive: a cap of exactly 0 admits "
                "nothing, observes nothing, and can never recover"
            )
        super().__init__(float("inf"))
        self.window = window
        self.increase = increase
        self.decrease = decrease
        self.drain_horizon = drain_horizon
        self.cap_floor = cap_floor
        self.reset()

    def reset(self) -> None:
        super().reset()
        self.cap = float("inf")
        self._signals = _GrowthWindow(self.window)
        self._delivered: deque[float] = deque(maxlen=self.window)
        self._cooldown = 0
        self.cap_history: list[float] = []

    def fresh(self) -> "KneeTracker":
        return KneeTracker(
            self.window,
            self.increase,
            self.decrease,
            self.drain_horizon,
            self.cap_floor,
        )

    def observe(self, record, queues: LinkQueues, session: FlowWorkload) -> None:
        # Delivered packets per *slot of the epoch*: the records do not
        # carry the epoch length, but the workload saw it in arrivals().
        slots = session._epoch_slots or 1
        self._signals.push(record.arrivals, record.backlog_end)
        self._delivered.append(record.delivered / max(slots, 1))
        if not self._signals.filled:
            pass
        elif self._cooldown > 0:
            self._cooldown -= 1
        elif self._signals.growing:
            # The best delivered rate in the window is the schedule's
            # demonstrated capacity — the knee estimate the cap snaps to.
            anchor = float(np.max(self._delivered))
            target = anchor if self.cap > anchor else self.cap * self.decrease
            self.cap = max(target, self.cap_floor)
            self._cooldown = self.window
        elif np.isfinite(self.cap) and not self._signals.draining_within(
            self.drain_horizon
        ):
            # A standing queue is congestion even at slope ~ 0: it taxes
            # every epoch's scheduler with stale demand (and every packet
            # with queueing delay).  Dip below the knee estimate until the
            # backlog is on course to clear the gate within the horizon.
            self.cap = max(self.cap * self.decrease, self.cap_floor)
            self._cooldown = self.window
        elif np.isfinite(self.cap):
            self.cap = self.cap * (1.0 + self.increase)
        self.cap_history.append(self.cap)


class Backpressure(AdmissionController):
    """Per-route throttling against the most-backlogged links.

    :meth:`observe` snapshots the per-link backlog; a link is *hot* when
    its backlog sits in the top ``hot_fraction`` of backlogged links and
    above ``gate_packets``.  Elastic flows whose route crosses a hot link
    are throttled to ``slowdown``; new sessions routed across a hot link
    are blocked outright (backpressure at the doorstep: a session that
    would feed a standing queue should not start).  Flows through quiet
    regions are untouched — unlike a rate cap, pressure is spatial.
    """

    name = "backpressure"
    needs_feedback = True

    def __init__(
        self,
        hot_fraction: float = 0.1,
        slowdown: float = 0.25,
        gate_packets: int = 20,
    ):
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= slowdown <= 1.0:
            raise ValueError("slowdown must be in [0, 1]")
        if gate_packets < 0:
            raise ValueError("gate_packets must be non-negative")
        self.hot_fraction = hot_fraction
        self.slowdown = slowdown
        self.gate_packets = gate_packets
        self.reset()

    def reset(self) -> None:
        self._hot: np.ndarray | None = None

    def fresh(self) -> "Backpressure":
        return Backpressure(self.hot_fraction, self.slowdown, self.gate_packets)

    def observe(self, record, queues: LinkQueues, session: FlowWorkload) -> None:
        backlog = queues.backlog
        hot = np.zeros(backlog.shape[0], dtype=bool)
        loaded = backlog > self.gate_packets
        if loaded.any():
            threshold = np.quantile(backlog[loaded], 1.0 - self.hot_fraction)
            hot = loaded & (backlog >= threshold)
        self._hot = hot

    def _crosses_hot(self, flow: Flow) -> bool:
        return self._hot is not None and bool(self._hot[flow.route].any())

    def admit(self, flow: Flow, session: FlowWorkload) -> bool:
        return not self._crosses_hot(flow)

    def throttle(self, flow: Flow, session: FlowWorkload) -> float:
        return self.slowdown if self._crosses_hot(flow) else 1.0


class RegionalControllers(AdmissionController):
    """One controller per shard of a :class:`~repro.traffic.sharded.ShardPlan`.

    ``factory(shard)`` builds each region's controller (typically a
    :class:`KneeTracker` — per-region caps).  A session is admitted by the
    controller of the region its *source link* belongs to, and throttled
    by the same; regional observation slices the global feedback down to
    the region: its links' backlog, the emissions the workload booked at
    its sources (the regional arrivals — the controller's own admissions,
    not an oracle), the packets served on its own links (differenced from
    the queues' per-link served counters), and the deliveries of the
    sessions it admitted, counted exactly from the queues' source-tagged
    delivery log — each delivery is attributed to the region whose
    controller admitted the injecting flow.  Served and delivered were
    previously *proxied* by the region's emission share; the tagged logs
    make them observables a regional gateway really has.

    The regional :meth:`observe` hands sub-controllers a regional view of
    the record rather than the record itself, so cap logic written against
    global signals works unchanged per region.

    Composes with ``ObsConfig.stream_deliveries``: when the queues feed a
    region-classified :class:`~repro.obs.DeliveryStream` instead of the
    full delivery log, per-region delivered counts are differenced from
    the stream's per-class aggregates (see :meth:`_delivered_deltas`) —
    same numbers, O(1) memory.
    """

    name = "regional"
    needs_feedback = True

    def __init__(self, plan, factory):
        self.plan = plan
        self.factory = factory
        #: Map global link index -> shard index (every link is in one shard).
        shard_of_link = np.full(plan.links.n_links, -1, dtype=np.intp)
        for shard in plan.shards:
            shard_of_link[shard.link_indices] = shard.index
        if np.any(shard_of_link < 0):
            raise ValueError("the plan does not cover every link")
        self._shard_of_link = shard_of_link
        self._by_head = plan.links.link_of_head
        self.reset()

    def reset(self) -> None:
        self.regional = [self.factory(shard) for shard in self.plan.shards]
        for controller in self.regional:
            controller.reset()
        # Cursors into the queues' cumulative logs, so each observation
        # attributes only the epoch's *new* served/delivered work.
        self._delivered_seen = 0
        self._served_seen = np.zeros(len(self.regional), dtype=np.int64)
        # Streaming-mode cursors: per-region delivered counts last read from
        # the DeliveryStream's per-class aggregates.
        self._delivered_seen_stream = np.zeros(len(self.regional), dtype=np.int64)

    def fresh(self) -> "RegionalControllers":
        return RegionalControllers(self.plan, self.factory)

    def _region_of(self, flow: Flow) -> int:
        return int(self._shard_of_link[flow.route[0]])

    def region_of_flow(self, flow: Flow) -> int:
        """The region whose controller owns ``flow`` (by its source link).

        Public so :class:`~repro.traffic.flows.FlowWorkload` can key its
        incremental per-region admitted-rate aggregates on it.
        """
        return self._region_of(flow)

    def admit(self, flow: Flow, session: FlowWorkload) -> bool:
        region = self._region_of(flow)
        return self.regional[region].admit(flow, _RegionalSession(session, self, region))

    def throttle(self, flow: Flow, session: FlowWorkload) -> float:
        region = self._region_of(flow)
        return self.regional[region].throttle(
            flow, _RegionalSession(session, self, region)
        )

    def _delivered_deltas(self, queues: LinkQueues) -> np.ndarray:
        """This epoch's per-region delivered counts.

        Full-log mode splits the new tail of the source-tagged delivery log
        by region.  Streaming mode (``ObsConfig.stream_deliveries``) has no
        log; instead the :class:`~repro.obs.DeliveryStream`'s per-class
        aggregates are differenced against per-region cursors — the sharded
        engine classifies deliveries as ``"shard{index}"``, exactly the
        plan's shard indices, so the per-class counts *are* the cumulative
        per-region delivered totals.  A stream without a classifier cannot
        be attributed and still fails loudly.
        """
        n_regions = len(self.regional)
        stream = queues.delivery_stream
        if stream is not None:
            if stream.classify is None:
                raise RuntimeError(
                    "RegionalControllers under stream_deliveries needs a "
                    "region-classified DeliveryStream (the sharded engine "
                    "installs one); an unclassified stream keeps no "
                    "per-region aggregates to attribute deliveries from"
                )
            counts = np.zeros(n_regions, dtype=np.int64)
            for shard in self.plan.shards:
                hist = stream.by_class.get(f"shard{shard.index}")
                if hist is not None:
                    counts[shard.index] = hist.count
            delivered = counts - self._delivered_seen_stream
            self._delivered_seen_stream = counts
            return delivered
        # Exact delivered attribution: the queues tag every delivery with
        # its entry link, so the new tail of the delivery log splits by the
        # region that admitted the injecting flow (no emission-share proxy).
        new_sources = queues.sources[self._delivered_seen :]
        self._delivered_seen = len(queues.sources)
        if new_sources:
            return np.bincount(
                self._shard_of_link[np.asarray(new_sources, dtype=np.intp)],
                minlength=n_regions,
            )
        return np.zeros(n_regions, dtype=np.int64)

    def observe(self, record, queues: LinkQueues, session: FlowWorkload) -> None:
        backlog = queues.backlog
        n_regions = len(self.regional)
        emitted = np.zeros(n_regions, dtype=np.int64)
        for fid, node, count in session.last_emissions:
            k = self._by_head.get(int(node))
            if k is not None:
                emitted[self._shard_of_link[k]] += count
        delivered = self._delivered_deltas(queues)
        # Exact served attribution: difference the per-link served counters
        # over each region's own links.
        served_cum = np.array(
            [
                int(queues.served_by_link[shard.link_indices].sum())
                for shard in self.plan.shards
            ],
            dtype=np.int64,
        )
        served = served_cum - self._served_seen
        self._served_seen = served_cum
        for shard, controller in zip(self.plan.shards, self.regional):
            regional_record = replace(
                record,
                arrivals=int(emitted[shard.index]),
                backlog_end=int(backlog[shard.link_indices].sum()),
                served=int(served[shard.index]),
                delivered=int(delivered[shard.index]),
            )
            controller.observe(
                regional_record, queues, _RegionalSession(session, self, shard.index)
            )


class _RegionalSession:
    """A per-region view of the workload for cap arithmetic.

    Exposes the slice of the session API cap controllers consult —
    :meth:`admitted_rate` restricted to flows sourced in the region, plus
    the epoch length — so :class:`_CapController` logic runs unchanged
    with regional denominators.  Served from the workload's incremental
    per-(region, class) aggregates (keyed on
    :meth:`RegionalControllers.region_of_flow`), so a regional cap check
    is O(1) instead of a scan of the global active-flow list.
    """

    def __init__(self, session: FlowWorkload, parent: RegionalControllers, region: int):
        self._session = session
        self._parent = parent
        self._region = region

    @property
    def _epoch_slots(self):
        return self._session._epoch_slots

    @property
    def _next_epoch(self):
        return self._session._next_epoch

    def admitted_rate(self, klass: str | None = None) -> float:
        return self._session.admitted_rate_in_region(self._region, klass)


def make_controller(name: str, **knobs) -> AdmissionController:
    """Build a controller by registry name (:data:`ADMISSION_CONTROLLERS`).

    ``static-cap`` requires ``cap=``; the others accept their constructor
    knobs (window/increase/decrease for ``knee-tracker``; hot_fraction/
    slowdown/gate_packets for ``backpressure``).
    """
    if name == "none":
        return NoAdmission()
    if name == "static-cap":
        if "cap" not in knobs:
            raise ValueError("static-cap needs cap= (aggregate pkt/slot)")
        return StaticCap(**knobs)
    if name == "knee-tracker":
        return KneeTracker(**knobs)
    if name == "backpressure":
        return Backpressure(**knobs)
    raise ValueError(
        f"unknown admission controller {name!r}; choose from {ADMISSION_CONTROLLERS}"
    )


# ---------------------------------------------------------------------------
# Per-flow SLA accounting
# ---------------------------------------------------------------------------


def flow_delays(session: FlowWorkload, queues: LinkQueues) -> dict[int, float]:
    """Mean end-to-end delay (slots) per flow, over its delivered packets.

    Packets of flows sharing a source node and epoch are indistinguishable
    in the queues (same birth slot, same FIFO batch), so each delivery
    group — the delivered packets that entered at one source link in one
    epoch — attributes its *mean* delay to every flow that emitted into
    it, weighted by the flow's share of the group's emissions.  Flows none
    of whose packets were delivered yet are absent from the result.  Under
    ``ObsConfig.stream_deliveries`` the per-delivery log is not retained,
    so the result is empty (and the SLA percentile below is nan).
    """
    groups: dict[tuple[int, int], list[int]] = {}
    epoch_slots = session._epoch_slots
    if epoch_slots is None:
        return {}
    for delay, src, birth in zip(queues.delays, queues.sources, queues.births):
        groups.setdefault((int(src), int(birth) // epoch_slots), []).append(delay)

    sums: dict[int, float] = {}
    weights: dict[int, float] = {}
    for key, members in session.emission_groups.items():
        delays = groups.get(key)
        if not delays:
            continue
        group_mean = float(np.mean(delays))
        delivered_share = len(delays) / max(sum(c for _, c in members), 1)
        for fid, count in members:
            credit = count * delivered_share
            sums[fid] = sums.get(fid, 0.0) + group_mean * credit
            weights[fid] = weights.get(fid, 0.0) + credit
    return {
        fid: sums[fid] / weights[fid] for fid in sums if weights[fid] > 0
    }


def flow_delay_percentile(
    session: FlowWorkload, queues: LinkQueues, q: float = 99.0
) -> float:
    """The ``q``-th percentile of per-flow mean delays (nan when no flow
    has a delivered packet yet) — the SLA tail across *users*, not packets."""
    delays = list(flow_delays(session, queues).values())
    if not delays:
        return float("nan")
    return float(np.percentile(np.asarray(delays, dtype=float), q))
