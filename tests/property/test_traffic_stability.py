"""Property tests for the epoch loop and stability metrics.

The load-bearing property: whenever the epoch's schedule serves the full
backlog snapshot and fits (with overhead) inside the epoch, backlogs stay
bounded — served work keeps up with offered work, whatever the workload's
shape.  Plus conservation through the full closed loop and deterministic
checks of the stability classifiers on synthetic traces.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.common import grid_scenario
from repro.traffic import (
    ConstantBitRate,
    EpochConfig,
    EpochRecord,
    PoissonArrivals,
    TrafficTrace,
    centralized_scheduler,
    is_stable,
    run_epochs,
    serialized_scheduler,
    stability_knee,
    summarize_trace,
)


@pytest.fixture(scope="module")
def small_mesh():
    """A 4x4 grid scenario (network, gateways, forest link set)."""
    scenario = grid_scenario(2000.0, rep=0, rows=4, cols=4, n_gateways=2)
    return scenario


@settings(max_examples=10, deadline=None)
@given(
    rate=st.floats(min_value=0.001, max_value=0.01),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    bursty=st.booleans(),
)
def test_sufficient_service_keeps_backlog_bounded(small_mesh, rate, seed, bursty):
    """Demand-covering schedules within the epoch budget => bounded backlogs.

    The serialized scheduler serves every snapshot packet once per cycle and
    the epoch is sized so the full snapshot (old backlog + new arrivals,
    each needing at most `max depth` hops) always fits, so service per epoch
    covers arrivals per epoch and queues must not grow without bound.
    """
    links = small_mesh.links
    n = small_mesh.network.n_nodes
    factory = PoissonArrivals if bursty else ConstantBitRate
    generator = factory(n, rate, gateways=small_mesh.gateways, seed=seed)
    config = EpochConfig(epoch_slots=400, n_epochs=8)
    trace = run_epochs(links, generator, serialized_scheduler(), config)

    trace.queues.check_conservation()
    # Worst-case one epoch's arrivals times the deepest route, plus slack for
    # packets landing after their relay link's slots already passed.
    per_epoch = rate * n * config.epoch_slots
    bound = 4 * max(per_epoch, 10.0)
    assert max(trace.backlog_series()) <= bound
    assert is_stable(trace)


def test_closed_loop_conservation_with_rescheduling(small_mesh):
    """Arrivals == delivered + queued after many greedy rescheduling epochs."""
    links = small_mesh.links
    generator = PoissonArrivals(
        small_mesh.network.n_nodes, 0.01, gateways=small_mesh.gateways, seed=3
    )
    scheduler = centralized_scheduler(small_mesh.network.model)
    trace = run_epochs(
        links, generator, scheduler, EpochConfig(epoch_slots=200, n_epochs=6)
    )
    trace.queues.check_conservation()
    assert trace.arrivals_total == trace.queues.arrivals_total
    assert trace.delivered_total == trace.queues.delivered_total
    assert trace.delivered_total > 0
    # Delivered packets crossed at least one hop each.
    assert trace.queues.served_total >= trace.delivered_total


def test_overload_is_detected(small_mesh):
    """A rate far beyond serialized capacity must read unstable."""
    generator = ConstantBitRate(
        small_mesh.network.n_nodes, 0.2, gateways=small_mesh.gateways, seed=1
    )
    trace = run_epochs(
        small_mesh.links,
        generator,
        serialized_scheduler(),
        EpochConfig(epoch_slots=100, n_epochs=8, divergence_factor=4.0),
    )
    assert trace.diverged or not is_stable(trace)
    metrics = summarize_trace(trace, 0.2)
    assert not metrics.stable


def _trace(backlogs, arrivals_per_epoch=100, diverged=False):
    records = [
        EpochRecord(
            epoch=e,
            arrivals=arrivals_per_epoch,
            served=0,
            delivered=0,
            backlog_end=b,
            demand_scheduled=0,
            schedule_length=0,
            overhead_slots=0,
        )
        for e, b in enumerate(backlogs)
    ]
    return TrafficTrace(config=EpochConfig(), records=records, diverged=diverged)


class TestStabilityClassifiers:
    def test_flat_backlog_is_stable(self):
        assert is_stable(_trace([5, 3, 6, 4, 5, 4]))

    def test_linear_growth_is_unstable(self):
        assert not is_stable(_trace([100, 200, 300, 400, 500, 600]))

    def test_small_noise_is_not_flagged(self):
        # Positive fitted slope but near-empty queues: the magnitude gate
        # keeps regression noise from reading as instability.
        assert is_stable(_trace([32, 28, 3, 14, 0, 9, 23, 26]))

    def test_divergence_flag_wins(self):
        assert not is_stable(_trace([1, 1, 1], diverged=True))

    def test_knee_is_last_stable_before_first_unstable(self):
        points = [
            summarize_trace(_trace([0, 0, 0, 0]), rate)
            for rate in (0.002, 0.004)
        ] + [
            summarize_trace(
                _trace([200, 400, 600, 800]), 0.006
            ),
            summarize_trace(_trace([0, 0, 0, 0]), 0.008),  # past the knee
        ]
        assert stability_knee(points) == 0.004

    def test_knee_none_when_lowest_rate_unstable(self):
        points = [summarize_trace(_trace([200, 400, 600, 800]), 0.002)]
        assert stability_knee(points) is None

    def test_knee_is_top_of_sweep_when_every_point_is_stable(self):
        # No unstable point was found: the largest tested rate is returned
        # as a lower bound on the true knee.
        points = [
            summarize_trace(_trace([0, 0, 0, 0]), rate)
            for rate in (0.002, 0.004, 0.008)
        ]
        assert stability_knee(points) == 0.008

    def test_find_knee_all_stable_and_first_unstable_edges(self):
        from repro.traffic import find_knee

        def run_at(rate, seed_index=0):
            if rate >= 0.01:  # every swept point sits below this
                return _trace([200, 400, 600, 800])
            return _trace([0, 0, 0, 0])

        # Every swept point stable -> the knee is the top of the sweep.
        knee, points = find_knee((0.002, 0.004), run_at)
        assert knee == 0.004
        assert [p.stable for p in points] == [True, True]

        # The first swept point already unstable -> no knee at all.
        knee, points = find_knee((0.01, 0.02), run_at)
        assert knee is None
        assert not points[0].stable
