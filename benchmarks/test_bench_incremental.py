"""Bench for the incremental-rescheduling experiment (E8).

Runs the FDD closed loop on the 8x8 grid under the three rescheduling
policies — re-run every epoch, drift-threshold caching, and caching with
schedule patching — and records the policy table.  Beyond the snapshot,
asserts the PR's economy headline: at a stable operating rate the caching
policies pay a fraction of the always-recompute protocol overhead (>= 3x
cheaper with patching) while the measured stability knee stays where the
always policy puts it.
"""

import pytest

from repro.experiments.heavy_traffic import incremental_experiment

#: The table's sweep steps, used for the knee-drift tolerance.
def _sweep_steps(profile):
    return sorted(profile.traffic_lambdas)


def _cells(table):
    """(policy, lambda) -> row for the data rows; policy -> knee otherwise."""
    data, knees = {}, {}
    for row in table._rows:
        if row[1] == "knee":
            knees[row[0]] = row[-1]
        else:
            data[(row[0], row[1])] = row
    return data, knees


@pytest.mark.benchmark(group="traffic")
def test_incremental_rescheduling_amortizes_overhead(
    benchmark, bench_profile, save_table
):
    table = benchmark.pedantic(
        incremental_experiment, args=(bench_profile,), rounds=1, iterations=1
    )
    save_table("incremental", table)

    rates = len(bench_profile.traffic_lambdas)
    policies = len(bench_profile.traffic_policies)
    assert table.n_rows == policies * rates + policies

    data, knees = _cells(table)
    assert set(knees) == {"always", "drift-threshold", "patch"}
    assert knees["always"] != "-", "FDD unstable even at the lowest swept rate"

    # --- Overhead economics at a stable rate (lambda = 0.0145 is stable for
    # FDD under every policy on this grid).  Column 4 is total overhead slots.
    stable_rate = "0.0145"
    always = int(data[("always", stable_rate)][4])
    drift = int(data[("drift-threshold", stable_rate)][4])
    patch = int(data[("patch", stable_rate)][4])
    assert data[("always", stable_rate)][-1].startswith("yes")
    assert data[("patch", stable_rate)][-1].startswith("yes")
    assert always >= 3 * patch, (
        f"caching with patching should cut FDD's protocol overhead >= 3x at a "
        f"stable rate: always paid {always} slots, patch paid {patch}"
    )
    assert drift < always, (
        f"drift-threshold caching should pay less overhead than re-running "
        f"every epoch: {drift} vs {always} slots"
    )
    # The always policy never uses the cache.
    assert all(
        data[("always", f"{rate:g}")][6] == "0%"
        for rate in bench_profile.traffic_lambdas
    )

    # --- The knee must not move by more than one sweep step under caching.
    steps = _sweep_steps(bench_profile)

    def step_index(cell):
        return steps.index(float(cell)) if cell != "-" else -1

    base = step_index(knees["always"])
    for policy in ("drift-threshold", "patch"):
        assert knees[policy] != "-", f"{policy} unstable everywhere"
        assert abs(step_index(knees[policy]) - base) <= 1, (
            f"{policy} moved the stability knee more than one sweep step: "
            f"{knees[policy]} vs always {knees['always']}"
        )
