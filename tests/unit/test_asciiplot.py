"""ASCII plot rendering."""

import numpy as np
import pytest

from repro.analysis.asciiplot import AsciiPlot, quick_plot


class TestAsciiPlot:
    def test_render_contains_glyphs_and_legend(self):
        plot = AsciiPlot(width=20, height=6, title="demo")
        plot.add_series("a", [0, 1, 2], [0, 1, 2])
        plot.add_series("b", [0, 1, 2], [2, 1, 0])
        text = plot.render()
        assert "demo" in text
        assert "o=a" in text and "x=b" in text
        assert "o" in text and "x" in text

    def test_extreme_points_hit_canvas_corners(self):
        plot = AsciiPlot(width=11, height=5)
        plot.add_series("s", [0.0, 10.0], [0.0, 1.0])
        rows = [
            line for line in plot.render().splitlines() if "|" in line
        ]
        assert rows[0].split("|")[1][-1] == "o"  # max-y at right edge
        assert rows[-1].split("|")[1][0] == "o"  # min-y at left edge

    def test_log_axes_spread_decades_evenly(self):
        plot = AsciiPlot(width=21, height=5, log_x=True, log_y=True)
        plot.add_series("s", [1e-6, 1e-3, 1.0], [1.0, 1e3, 1e6])
        rows = [line for line in plot.render().splitlines() if "|" in line]
        # The three points form a straight diagonal in log-log space:
        # left-bottom, center-middle, right-top.
        assert rows[-1].split("|")[1][0] == "o"
        assert rows[2].split("|")[1][10] == "o"
        assert rows[0].split("|")[1][20] == "o"

    def test_log_axis_rejects_nonpositive(self):
        plot = AsciiPlot(log_y=True)
        plot.add_series("s", [1, 2], [0.0, 1.0])
        with pytest.raises(ValueError, match="positive"):
            plot.render()

    def test_axis_labels_show_data_range(self):
        plot = AsciiPlot(width=24, height=4)
        plot.add_series("s", [5.0, 25.0], [100.0, 400.0])
        text = plot.render()
        assert "5" in text and "25" in text
        assert "100" in text and "400" in text

    def test_overlapping_series_marked(self):
        plot = AsciiPlot(width=9, height=3)
        plot.add_series("a", [0, 1], [0, 1])
        plot.add_series("b", [0, 1], [0, 1])
        assert "?" in plot.render()

    def test_empty_plot_rejected(self):
        with pytest.raises(ValueError):
            AsciiPlot().render()

    def test_mismatched_series_rejected(self):
        plot = AsciiPlot()
        with pytest.raises(ValueError):
            plot.add_series("s", [1, 2], [1])

    def test_quick_plot(self):
        text = quick_plot({"a": ([1, 2], [3, 4])}, title="q", width=12, height=4)
        assert "q" in text and "o=a" in text

    def test_constant_series_renders(self):
        plot = AsciiPlot(width=10, height=4)
        plot.add_series("flat", [1, 2, 3], [5.0, 5.0, 5.0])
        assert "o" in plot.render()
