"""CLI for observability run files.

``python -m repro.obs summarize run.jsonl [more.jsonl ...]`` renders the
per-phase, control-air, and SLA-quantile tables of each run file;
``python -m repro.obs validate run.jsonl [...]`` checks files against the
JSONL schema and exits non-zero on the first violation — the CI gate that
keeps malformed emissions from shipping as green artifacts.
"""

from __future__ import annotations

import argparse
import sys

from .export import validate_run_file
from .summarize import summarize_run


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize or validate observability JSONL run files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser("summarize", help="render run-file summary tables")
    p_sum.add_argument("files", nargs="+", help="JSONL run files")
    p_val = sub.add_parser("validate", help="check run files against the schema")
    p_val.add_argument("files", nargs="+", help="JSONL run files")
    args = parser.parse_args(argv)

    status = 0
    for path in args.files:
        if args.command == "validate":
            problems = validate_run_file(path)
            if problems:
                status = 1
                print(f"{path}: INVALID")
                for problem in problems:
                    print(f"  - {problem}")
            else:
                print(f"{path}: ok")
        else:
            print(summarize_run(path))
            print()
    return status


if __name__ == "__main__":
    sys.exit(main())
