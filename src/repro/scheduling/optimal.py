"""Exact minimum-length scheduling for small instances.

The optimal STDMA schedule under physical interference is NP-hard in
general, but tiny instances can be solved exactly, which lets us *measure*
the approximation ratio ``T_FDD / T_opt`` that Theorem 4 bounds.

Formulation: a schedule is a multiset of *feasible link sets* ("configurations")
whose multiplicities cover every link's demand.  Minimizing the number of
slots is a covering integer program; we solve it by:

1. enumerating all maximal feasible configurations (DFS over link subsets
   with feasibility pruning — feasible sets are downward closed under the
   conditional-ACK-free model used for slot feasibility, so pruning is
   sound);
2. branch-and-bound over configuration multiplicities with an LP-free
   lower bound (max remaining demand over the per-configuration coverage,
   plus a fractional covering bound).

Practical up to roughly a dozen links / a few hundred configurations, which
covers the validation instances (see the approximation-ratio experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.interference import PhysicalInterferenceModel
from repro.scheduling.feasibility import SlotState
from repro.scheduling.links import LinkSet
from repro.scheduling.schedule import Schedule, Slot

#: Safety cap: refuse instances whose configuration space would explode.
MAX_LINKS = 16
MAX_CONFIGURATIONS = 5000


@dataclass(frozen=True)
class OptimalResult:
    """An exact optimum: the schedule and the explored search size."""

    schedule: Schedule
    configurations: int
    nodes_explored: int


def enumerate_maximal_feasible_sets(
    links: LinkSet, model: PhysicalInterferenceModel
) -> list[frozenset[int]]:
    """All maximal feasible link subsets (by slot feasibility).

    DFS in index order with the standard maximality filter: a set is
    emitted only if no earlier-indexed link could extend it (avoiding
    duplicates), then filtered to maximal sets.
    """
    if links.n_links > MAX_LINKS:
        raise ValueError(
            f"instance too large for exact enumeration "
            f"({links.n_links} links > {MAX_LINKS})"
        )
    feasible_sets: list[frozenset[int]] = []

    def extend(state: SlotState, chosen: list[int], start: int) -> None:
        if len(feasible_sets) > MAX_CONFIGURATIONS:
            raise ValueError("configuration space too large; reduce the instance")
        extended = False
        for k in range(start, links.n_links):
            if state.can_add(int(links.heads[k]), int(links.tails[k])):
                extended = True
                branch = SlotState(model)
                for c in chosen:
                    branch.add(int(links.heads[c]), int(links.tails[c]))
                branch.add(int(links.heads[k]), int(links.tails[k]))
                extend(branch, chosen + [k], k + 1)
        if not extended and chosen:
            feasible_sets.append(frozenset(chosen))

    extend(SlotState(model), [], 0)
    # Keep only maximal sets (a non-maximal set can appear when its
    # extensions all use earlier indices).
    maximal = [
        s
        for s in feasible_sets
        if not any(s < other for other in feasible_sets)
    ]
    return sorted(set(maximal), key=lambda s: (-len(s), sorted(s)))


def optimal_schedule(
    links: LinkSet, model: PhysicalInterferenceModel
) -> OptimalResult:
    """Exact minimum-length schedule via branch-and-bound covering.

    Returns a schedule whose length no feasible schedule can beat.  Raises
    :class:`ValueError` for oversized instances (see :data:`MAX_LINKS`).
    """
    demand = links.demand.astype(np.int64).copy()
    m = links.n_links
    if m == 0 or demand.sum() == 0:
        return OptimalResult(Schedule(link_set=links), 0, 0)
    configs = enumerate_maximal_feasible_sets(links, model)
    if not configs:
        raise ValueError("no feasible configurations; are the links valid edges?")
    config_masks = [np.zeros(m, dtype=bool) for _ in configs]
    for mask, cfg in zip(config_masks, configs):
        mask[list(cfg)] = True

    # Upper bound: greedy cover (always take the configuration covering the
    # most remaining demand).
    def greedy_cover(remaining: np.ndarray) -> list[int]:
        picks: list[int] = []
        rem = remaining.copy()
        while rem.any():
            best = max(
                range(len(configs)), key=lambda c: int((rem[config_masks[c]] > 0).sum())
            )
            if not (rem[config_masks[best]] > 0).any():
                raise RuntimeError("cover stalled; some link is in no configuration")
            picks.append(best)
            rem[config_masks[best]] = np.maximum(rem[config_masks[best]] - 1, 0)
        return picks

    best_picks = greedy_cover(demand)
    best_len = len(best_picks)
    nodes = 0

    # Lower bound: every slot covers each link at most once, so at least
    # max(remaining) slots are needed; and each slot covers at most
    # max-config-size demand units, so ceil(total/maxsize) too.
    max_cfg = max(len(c) for c in configs)

    def lower_bound(remaining: np.ndarray) -> int:
        total = int(remaining.sum())
        if total == 0:
            return 0
        return max(int(remaining.max()), -(-total // max_cfg))

    order = np.argsort(-demand)  # branch on the most demanding link first

    def branch(remaining: np.ndarray, used: int, picks: list[int]) -> None:
        nonlocal best_len, best_picks, nodes
        nodes += 1
        if nodes > 2_000_000:
            raise RuntimeError("branch-and-bound node budget exceeded")
        if not remaining.any():
            if used < best_len:
                best_len = used
                best_picks = picks.copy()
            return
        if used + lower_bound(remaining) >= best_len:
            return
        # Branch on the unsatisfied link with the highest demand: any
        # optimal multiset can be reordered so its next slot covers that
        # link (its remaining demand must still be covered by someone), so
        # restricting branches to target-covering configurations is sound
        # and collapses most permutations of the same multiset.
        target = next(k for k in order if remaining[k] > 0)
        for c, mask in enumerate(config_masks):
            if not mask[target]:
                continue
            nxt = remaining.copy()
            nxt[mask] = np.maximum(nxt[mask] - 1, 0)
            picks.append(c)
            branch(nxt, used + 1, picks)
            picks.pop()

    branch(demand, 0, [])

    schedule = Schedule(link_set=links)
    remaining = demand.copy()
    for c in best_picks:
        members = [k for k in sorted(configs[c]) if remaining[k] > 0]
        for k in members:
            remaining[k] -= 1
        schedule.slots.append(Slot(links=members))
    return OptimalResult(
        schedule=schedule, configurations=len(configs), nodes_explored=nodes
    )
