"""Timing model: step pricing, skew guards, repricing."""

import pytest

from repro.core.events import StepTally
from repro.core.timing import TimingModel, reprice_scream_slots


def make_tally() -> StepTally:
    tally = StepTally()
    for _ in range(10):
        tally.add_scream(5)
    for _ in range(4):
        tally.add_handshake()
    tally.add_sync(6)
    return tally


class TestTimingModel:
    def test_scream_slot_duration_components(self):
        t = TimingModel(
            bitrate_bps=1e6,
            slot_overhead_s=2e-6,
            scream_bytes=10,
            skew_bound_s=3e-6,
            guard_factor=2.0,
        )
        assert t.scream_slot_s == pytest.approx(2e-6 + 80e-6 + 6e-6)

    def test_execution_time_linear_in_scream_bytes(self):
        tally = make_tally()
        t10 = TimingModel(scream_bytes=10).execution_time(tally)
        t20 = TimingModel(scream_bytes=20).execution_time(tally)
        t30 = TimingModel(scream_bytes=30).execution_time(tally)
        assert t30 - t20 == pytest.approx(t20 - t10)
        assert t20 > t10

    def test_execution_time_affine_in_skew(self):
        tally = make_tally()
        base = TimingModel(skew_bound_s=0.0).execution_time(tally)
        t1 = TimingModel(skew_bound_s=1e-4).execution_time(tally)
        t2 = TimingModel(skew_bound_s=2e-4).execution_time(tally)
        assert t2 - t1 == pytest.approx(t1 - base)
        # Slope equals guard_factor * total steps.
        assert (t1 - base) == pytest.approx(2.0 * tally.total_steps * 1e-4)

    def test_with_helpers_return_copies(self):
        t = TimingModel()
        assert t.with_scream_bytes(60).scream_bytes == 60
        assert t.with_skew(1e-3).skew_bound_s == 1e-3
        assert t.scream_bytes == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            TimingModel(bitrate_bps=0.0)
        with pytest.raises(ValueError):
            TimingModel(scream_bytes=0)


class TestReprice:
    def test_reprice_scales_scream_slots_only(self):
        tally = make_tally()
        repriced = reprice_scream_slots(tally, old_k=5, new_k=20)
        assert repriced.scream_slots == tally.scream_calls * 20
        assert repriced.data_subslots == tally.data_subslots
        assert repriced.syncs == tally.syncs
        # Original untouched.
        assert tally.scream_slots == 50

    def test_reprice_rejects_inconsistent_tally(self):
        tally = make_tally()
        tally.scream_slots += 1
        with pytest.raises(ValueError, match="multiple"):
            reprice_scream_slots(tally, old_k=5, new_k=10)

    def test_reprice_rejects_bad_k(self):
        with pytest.raises(ValueError):
            reprice_scream_slots(StepTally(), old_k=0, new_k=5)
