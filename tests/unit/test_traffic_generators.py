"""Unit tests for the traffic workload generators: rates, seeds, gateways."""

import numpy as np
import pytest

from repro.routing import planned_gateways
from repro.traffic import (
    ConstantBitRate,
    DiurnalLoad,
    ParetoOnOff,
    PoissonArrivals,
)

N = 16
GWS = planned_gateways(4, 4, 2)


def total_over(gen, epochs, n_slots):
    return sum(int(gen.arrivals(e, n_slots).sum()) for e in range(epochs))


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [ConstantBitRate, PoissonArrivals, DiurnalLoad, ParetoOnOff],
        ids=lambda f: f.__name__,
    )
    def test_same_seed_same_arrivals(self, factory):
        a = factory(N, 0.05, gateways=GWS, seed=123)
        b = factory(N, 0.05, gateways=GWS, seed=123)
        for epoch in range(6):
            np.testing.assert_array_equal(
                a.arrivals(epoch, 50), b.arrivals(epoch, 50)
            )

    @pytest.mark.parametrize(
        "factory", [PoissonArrivals, DiurnalLoad], ids=lambda f: f.__name__
    )
    def test_epoch_regenerable_in_isolation(self, factory):
        """Stateless generators: any epoch is a pure function of (seed, epoch)."""
        gen = factory(N, 0.05, gateways=GWS, seed=9)
        late = gen.arrivals(5, 50)
        fresh = factory(N, 0.05, gateways=GWS, seed=9)
        np.testing.assert_array_equal(fresh.arrivals(5, 50), late)

    def test_different_seeds_differ(self):
        a = PoissonArrivals(N, 0.5, gateways=GWS, seed=1).arrivals(0, 100)
        b = PoissonArrivals(N, 0.5, gateways=GWS, seed=2).arrivals(0, 100)
        assert not np.array_equal(a, b)

    def test_generator_seed_is_frozen(self):
        """A live Generator seed is folded once, not redrawn per call."""
        rng = np.random.default_rng(7)
        gen = PoissonArrivals(N, 0.5, gateways=GWS, seed=rng)
        np.testing.assert_array_equal(gen.arrivals(3, 50), gen.arrivals(3, 50))


class TestRates:
    def test_cbr_exact_long_run(self):
        gen = ConstantBitRate(N, 0.3, gateways=GWS, seed=0)
        slots = 40 * 25
        expected = sum(int(np.floor(0.3 * slots)) for _ in range(N - GWS.size))
        assert total_over(gen, 40, 25) == expected

    def test_cbr_fractional_rate_accumulates(self):
        gen = ConstantBitRate(4, 0.25, seed=0)
        counts = [int(gen.arrivals(e, 1).sum()) for e in range(8)]
        assert sum(counts) == 8  # 4 nodes x 0.25 pkt/slot x 8 slots
        assert max(counts) == 4 and min(counts) == 0  # bunched every 4th slot

    def test_poisson_mean_rate(self):
        gen = PoissonArrivals(N, 0.2, gateways=GWS, seed=5)
        measured = total_over(gen, 60, 50) / ((N - GWS.size) * 60 * 50)
        assert measured == pytest.approx(0.2, rel=0.1)

    def test_pareto_long_run_mean_rate(self):
        gen = ParetoOnOff(N, 0.05, gateways=GWS, seed=5)
        measured = total_over(gen, 80, 100) / ((N - GWS.size) * 80 * 100)
        assert measured == pytest.approx(0.05, rel=0.35)  # heavy tail: loose

    def test_diurnal_long_run_mean_and_modulation(self):
        period = 400
        gen = DiurnalLoad(
            N, 0.2, gateways=GWS, seed=5, amplitude=1.0, period_slots=period
        )
        epochs, n_slots = 64, 100  # 16 full periods
        measured = total_over(gen, epochs, n_slots) / ((N - GWS.size) * epochs * n_slots)
        assert measured == pytest.approx(0.2, rel=0.1)
        # Peak quarter-period epochs carry more traffic than trough ones.
        fresh = DiurnalLoad(
            N, 0.2, gateways=GWS, seed=5, amplitude=1.0, period_slots=period
        )
        sums = [int(fresh.arrivals(e, n_slots).sum()) for e in range(4)]
        assert sums[0] > sums[2]  # rising phase vs falling phase

    def test_scaled_doubles_rate(self):
        gen = PoissonArrivals(N, 0.1, gateways=GWS, seed=3)
        doubled = gen.scaled(2.0)
        assert doubled.mean_rate == pytest.approx(2 * gen.mean_rate)
        assert type(doubled) is PoissonArrivals


class TestGatewaysAndValidation:
    @pytest.mark.parametrize(
        "factory",
        [ConstantBitRate, PoissonArrivals, DiurnalLoad, ParetoOnOff],
        ids=lambda f: f.__name__,
    )
    def test_gateways_never_generate(self, factory):
        gen = factory(N, 0.8, gateways=GWS, seed=11)
        for epoch in range(4):
            assert np.all(gen.arrivals(epoch, 50)[GWS] == 0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(N, -0.1)

    def test_pareto_requires_sequential_epochs(self):
        gen = ParetoOnOff(N, 0.05, seed=1)
        gen.arrivals(0, 20)
        with pytest.raises(ValueError, match="expected epoch 1"):
            gen.arrivals(5, 20)

    def test_pareto_reset_replays(self):
        gen = ParetoOnOff(N, 0.05, seed=1)
        first = [gen.arrivals(e, 30).copy() for e in range(4)]
        gen.reset()
        for epoch, expected in enumerate(first):
            np.testing.assert_array_equal(gen.arrivals(epoch, 30), expected)

    def test_diurnal_amplitude_validated(self):
        with pytest.raises(ValueError):
            DiurnalLoad(N, 0.1, amplitude=1.5)

    def test_pareto_alpha_validated(self):
        with pytest.raises(ValueError):
            ParetoOnOff(N, 0.1, alpha=1.0)


class TestZeroRateEdges:
    """scaled(0.0) and zero-rate processes must be silent, not crash."""

    @pytest.mark.parametrize(
        "factory",
        [ConstantBitRate, PoissonArrivals, DiurnalLoad, ParetoOnOff],
        ids=lambda f: f.__name__,
    )
    def test_scaled_to_zero_is_silent(self, factory):
        gen = factory(N, 0.1, gateways=GWS, seed=3).scaled(0.0)
        assert gen.mean_rate == 0.0
        for epoch in range(4):
            assert int(gen.arrivals(epoch, 50).sum()) == 0

    def test_zero_rate_pareto_terminates_and_stays_silent(self):
        # The renewal loop must still walk sojourns to the epoch boundary
        # (peak_rates are all zero) without spinning or emitting.
        gen = ParetoOnOff(N, 0.0, gateways=GWS, seed=3)
        for epoch in range(5):
            assert int(gen.arrivals(epoch, 200).sum()) == 0

    def test_zero_rate_diurnal_is_silent_at_peak(self):
        gen = DiurnalLoad(N, 0.0, gateways=GWS, seed=3, amplitude=1.0)
        for epoch in range(5):
            assert int(gen.arrivals(epoch, 500).sum()) == 0

    def test_scaled_zero_then_rescaled_recovers_nothing(self):
        # scaled() must not mutate the original generator's rates.
        base = PoissonArrivals(N, 0.2, gateways=GWS, seed=3)
        zero = base.scaled(0.0)
        assert base.mean_rate == pytest.approx(0.2)
        assert zero.scaled(5.0).mean_rate == 0.0  # 0 * 5 is still 0
