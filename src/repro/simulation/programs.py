"""Per-node generator programs for the SCREAM primitives.

Direct transcriptions of the paper's pseudocode into node-local programs for
the lock-step engine.  Each node knows *only* its own inputs; the OR result
emerges from the carrier-sensing flood.

These are the ground truth the vectorized fast runtime is validated against:
``scream_program`` ≡ :func:`repro.core.scream.scream_flood`, and
``leader_elect_program`` ≡ :func:`repro.core.leader.leader_elect`.
"""

from __future__ import annotations

from typing import Generator

from repro.simulation.medium import SlotOutcome, Transmission

SCREAM_PAYLOAD = "SCREAM"


def scream_program(
    node: int, var: bool, k: int
) -> Generator["Transmission | None", SlotOutcome, bool]:
    """The paper's ``SCREAM(var)`` subroutine for one node.

    ::

        relay = var
        for sslot in 1..K:
            if relay: Scream() else: relay = Listen()
        return relay
    """
    relay = bool(var)
    for _ in range(k):
        if relay:
            outcome = yield Transmission(sender=node, payload=SCREAM_PAYLOAD)
        else:
            outcome = yield None
            relay = outcome.sensed
    return relay


def leader_elect_program(
    node: int, node_id: int, participating: bool, id_bits: int, k: int
) -> Generator["Transmission | None", SlotOutcome, bool]:
    """The paper's ``LeaderElect(ID)`` for one node; returns "I won".

    Iterates from the most significant ID bit down; in each iteration the
    node either screams (bit set and still in the race) or passively relays.
    Non-participants run ``LeaderElect(0)``: they relay every round and
    cannot win.
    """
    voted_out = not participating
    for j in range(id_bits - 1, -1, -1):
        bit = (node_id >> j) & 1 == 1
        if participating and bit and not voted_out:
            yield from scream_program(node, True, k)
        else:
            heard = yield from scream_program(node, False, k)
            voted_out = voted_out or heard
    return participating and not voted_out


def handshake_program(
    node: int,
    head_peer: int | None,
    is_tail: bool,
) -> Generator["Transmission | None", SlotOutcome, bool]:
    """One two-way handshake step for one node (data then ACK sub-slot).

    A node can play several roles at once in a forest link set:

    * *head* of its own link (``head_peer`` is its receiver) — transmits
      data in the first sub-slot, listens for its ACK in the second;
    * *tail* of one or more links (``is_tail``) — listens for data in the
      first sub-slot and ACKs the (at most one, since ``beta > 1``) decoded
      packet in the second;
    * both — physically possible only sequentially: a transmitting head is
      deaf in the data sub-slot, so it never holds data to ACK;
    * neither — idles through both sub-slots.

    Returns the head's handshake success (data delivered *and* ACK decoded);
    the return value of non-head nodes is False and unused.
    """
    data_from: int | None = None
    if head_peer is not None:
        yield Transmission(sender=node, dest=head_peer, payload=("DATA", node))
    else:
        outcome = yield None
        if is_tail:
            for frame in outcome.received:
                kind, sender = frame.payload
                if kind == "DATA":
                    data_from = sender
                    break

    if data_from is not None:
        yield Transmission(sender=node, dest=data_from, payload=("ACK", node))
        return False
    outcome = yield None
    if head_peer is None:
        return False
    return any(frame.payload == ("ACK", head_peer) for frame in outcome.received)
