"""Radio propagation models.

The paper's simulations use a log-distance ("log-normal propagation model"
in the paper's wording) path-loss model with exponent 3; the analysis assumes
any *deterministic* path model.  We provide:

* :class:`FreeSpace` — exponent-2 log-distance, mostly for tests;
* :class:`LogDistancePathLoss` — the deterministic model used in experiments;
* :class:`LogNormalShadowing` — log-distance plus a per-link log-normal
  shadowing term.  Shadowing is *frozen* per node pair (symmetric, seeded), so
  a topology's gains are stable across the lifetime of a schedule and
  experiments remain reproducible.

All models expose ``gain(distances)``: the dimensionless channel power gain
(received power = transmit power x gain).  Gains are capped at the reference
gain (a receiver never collects more power than at the reference distance;
this also regularizes the d -> 0 singularity of the pure power law).

A ``reference_loss_db`` term models the fixed loss at the reference distance
(antenna and first-meter loss; ~40 dB at 2.4 GHz with unity-gain antennas),
so transmit powers and ranges take realistic values: 15 dBm, alpha = 3,
-90 dBm noise and a 10 dB SINR threshold give a ~68 m communication range.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.util.validation import check_non_negative, check_positive


@runtime_checkable
class PropagationModel(Protocol):
    """Anything that maps pairwise distances to channel power gains."""

    def gain(self, distances: np.ndarray) -> np.ndarray:
        """Return dimensionless power gain for each pairwise distance (m)."""
        ...


class LogDistancePathLoss:
    """Deterministic log-distance path loss.

    ``gain(d) = g0 * (d0 / d) ** alpha`` for ``d >= d0`` (clamped to ``g0``
    below the reference distance ``d0``), with
    ``g0 = 10 ** (-reference_loss_db / 10)``.

    Parameters
    ----------
    alpha:
        Path-loss exponent.  The paper's experiments use 3; its
        approximation-bound analysis requires ``alpha > 2``.
    reference_distance:
        Distance ``d0`` (meters) of the reference measurement point.
    reference_loss_db:
        Path loss at ``d0`` in dB (default 40, typical for 2.4 GHz at 1 m).
    """

    def __init__(
        self,
        alpha: float = 3.0,
        reference_distance: float = 1.0,
        reference_loss_db: float = 40.0,
    ):
        from repro.util.validation import check_non_negative as _cnn

        self.alpha = check_positive("alpha", alpha)
        self.reference_distance = check_positive(
            "reference_distance", reference_distance
        )
        self.reference_loss_db = _cnn("reference_loss_db", reference_loss_db)
        self._reference_gain = 10.0 ** (-self.reference_loss_db / 10.0)

    def gain(self, distances: np.ndarray) -> np.ndarray:
        d = np.asarray(distances, dtype=float)
        if np.any(d < 0):
            raise ValueError("distances must be non-negative")
        ratio = np.where(d > self.reference_distance, d, self.reference_distance)
        return self._reference_gain * (self.reference_distance / ratio) ** self.alpha

    def range_for_snr(self, tx_power_mw: float, noise_mw: float, beta: float) -> float:
        """Distance at which SNR (no interference) drops to ``beta``.

        Inverts ``tx * gain(r) / noise = beta``; used to size deployment
        regions so grids stay connected.
        """
        check_positive("tx_power_mw", tx_power_mw)
        check_positive("noise_mw", noise_mw)
        check_positive("beta", beta)
        ratio = self._reference_gain * tx_power_mw / (noise_mw * beta)
        if ratio <= 1.0:
            return 0.0
        return self.reference_distance * ratio ** (1.0 / self.alpha)

    def __repr__(self) -> str:
        return (
            f"LogDistancePathLoss(alpha={self.alpha}, "
            f"reference_distance={self.reference_distance}, "
            f"reference_loss_db={self.reference_loss_db})"
        )


class FreeSpace(LogDistancePathLoss):
    """Free-space propagation: log-distance with exponent 2."""

    def __init__(
        self, reference_distance: float = 1.0, reference_loss_db: float = 40.0
    ):
        super().__init__(
            alpha=2.0,
            reference_distance=reference_distance,
            reference_loss_db=reference_loss_db,
        )

    def __repr__(self) -> str:
        return (
            f"FreeSpace(reference_distance={self.reference_distance}, "
            f"reference_loss_db={self.reference_loss_db})"
        )


class LogNormalShadowing:
    """Log-distance path loss with frozen per-link log-normal shadowing.

    ``gain_dB(u, v) = -10 alpha log10(d/d0) + X_{u,v}`` where
    ``X_{u,v} ~ Normal(0, sigma_db)`` is drawn once per unordered node pair
    (symmetric: ``X_{u,v} == X_{v,u}``), so the channel is reciprocal and a
    topology's link set does not fluctuate between protocol rounds.

    This model only supports the *matrix* form (`pair_gain`), since the
    shadowing term is identified by node indices, not by distance alone.
    The scalar :meth:`gain` method returns the median (no shadowing) gain and
    exists so the class still satisfies :class:`PropagationModel` for range
    estimation purposes.
    """

    def __init__(
        self,
        alpha: float = 3.0,
        sigma_db: float = 4.0,
        reference_distance: float = 1.0,
        reference_loss_db: float = 40.0,
        rng: np.random.Generator | int | None = None,
    ):
        from repro.util.rng import ensure_rng

        self.alpha = check_positive("alpha", alpha)
        self.sigma_db = check_non_negative("sigma_db", sigma_db)
        self.reference_distance = check_positive(
            "reference_distance", reference_distance
        )
        self.reference_loss_db = check_non_negative(
            "reference_loss_db", reference_loss_db
        )
        self._median = LogDistancePathLoss(alpha, reference_distance, reference_loss_db)
        self._rng = ensure_rng(rng)
        self._frozen_db: np.ndarray | None = None

    def gain(self, distances: np.ndarray) -> np.ndarray:
        """Median gain (shadowing has zero mean in dB)."""
        return self._median.gain(distances)

    def range_for_snr(self, tx_power_mw: float, noise_mw: float, beta: float) -> float:
        """Median-gain SNR range (see :meth:`LogDistancePathLoss.range_for_snr`)."""
        return self._median.range_for_snr(tx_power_mw, noise_mw, beta)

    def pair_gain(self, distance_matrix: np.ndarray) -> np.ndarray:
        """Gain matrix with symmetric frozen shadowing for ``n`` nodes.

        ``distance_matrix`` must be a square ``(n, n)`` array.  The
        shadowing realization is drawn once, on the first call, and reused
        by every later call (one model instance belongs to one deployment);
        the diagonal is returned at the reference gain (self-reception is
        never used by callers but keeping it finite avoids special cases).
        """
        d = np.asarray(distance_matrix, dtype=float)
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise ValueError(f"distance_matrix must be square, got shape {d.shape}")
        n = d.shape[0]
        base = self._median.gain(d)
        if self.sigma_db == 0.0:
            return base
        if self._frozen_db is None:
            draws = self._rng.normal(0.0, self.sigma_db, size=(n, n))
            symmetric_db = np.triu(draws, k=1)
            self._frozen_db = symmetric_db + symmetric_db.T
        if self._frozen_db.shape != (n, n):
            raise ValueError(
                f"this shadowing model is frozen for {self._frozen_db.shape[0]} "
                f"nodes and cannot serve {n}; create a fresh model per deployment"
            )
        shadowed = base * np.power(10.0, self._frozen_db / 10.0)
        # Keep the physical cap: never amplify above the reference gain.
        reference_gain = self._median._reference_gain
        shadowed = np.minimum(shadowed, reference_gain)
        np.fill_diagonal(shadowed, reference_gain)
        return shadowed

    def __repr__(self) -> str:
        return (
            f"LogNormalShadowing(alpha={self.alpha}, sigma_db={self.sigma_db}, "
            f"reference_distance={self.reference_distance})"
        )
