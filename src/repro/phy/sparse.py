"""Sparse received-power storage with far-field aggregation.

The dense ``(n, n)`` received-power matrix is the reproduction's central
physical object — and its scaling wall: 10⁵ nodes would need 80 GB before a
single SINR is computed, yet almost all of that power is physically
irrelevant.  Under a path-loss exponent ``alpha > 2`` the aggregate
interference a receiver collects from beyond a cutoff radius ``c`` falls off
as ``c^(2-alpha)``: far links contribute a vanishing, slowly varying hum,
not per-pair structure.  Both Halldórsson & Mitra (arXiv:1104.5200) and
Zhou et al. (arXiv:1208.0902) build their guarantees on exactly this split —
near-field sets handled exactly, remote interference budgeted as a noise
term.

:class:`SparsePowerMatrix` stores only the near-field entries (CSR-style
per-node neighbor lists over sorted ``i*n + j`` keys) and reads as the dense
matrix would: every access pattern the SINR kernels use — pairwise gathers,
``np.ix_`` meshes, row slices — goes through one vectorized ``searchsorted``
gather, with absent entries *exactly* ``0.0``.  Because adding an exact zero
to a non-negative float sum never changes it, every kernel that consumes the
matrix produces bit-identical verdicts whether far terms are skipped or
summed — which is why ``cutoff=inf`` (every entry stored) reproduces the
dense pipeline bit-for-bit, the differential anchor of the sparse stack.

The far field is not dropped: :func:`far_field_floor_mw` folds it into a
per-node noise-floor budget installed through the same ``budget_mw``
machinery the sharded engine's guard margins use (PR 3), so finite-cutoff
models *over*-provision rather than ignore remote interference.  The
recorded idealization: the floor assumes at most one concurrent far-field
transmitter per carrier-sense disk — the densest packing the SINR constraint
itself admits — integrated over the continuum beyond the cutoff (see
DESIGN.md §13).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.phy.propagation import PropagationModel
from repro.phy.radio import RadioConfig
from repro.phy.spatial import GridIndex


class SparsePowerMatrix:
    """Near-field received powers, readable like the dense ``(n, n)`` matrix.

    Storage is one sorted ``int64`` key array (``key = i * n + j``) plus the
    matching value array — row-major order, so each row is one contiguous
    key run (the CSR view ``indptr``/:meth:`neighbors` falls out of a single
    vectorized ``searchsorted``).  Entries never stored read as exactly
    ``0.0``.

    Supported indexing (everything the SINR/feasibility kernels do):

    * ``P[i, j]`` with scalars — a float;
    * ``P[rows, cols]`` with equal-length arrays — pairwise gather;
    * ``P[np.ix_(rows, cols)]`` — the 2-D mesh, via broadcasting;
    * ``P[rows, :]`` — densified rows (carrier-sense column sums).

    Negative (wrap-around) indices are not supported; the kernels never use
    them.
    """

    is_sparse_power = True
    ndim = 2

    def __init__(self, n: int, keys: np.ndarray, vals: np.ndarray):
        keys = np.asarray(keys, dtype=np.int64)
        vals = np.asarray(vals, dtype=float)
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if keys.ndim != 1 or keys.shape != vals.shape:
            raise ValueError("keys and vals must be equal-length 1-D arrays")
        if keys.size:
            if np.any(np.diff(keys) <= 0):
                raise ValueError("keys must be strictly increasing (sorted, unique)")
            if keys[0] < 0 or keys[-1] >= n * n:
                raise ValueError("keys out of range for an (n, n) matrix")
        if np.any(vals < 0):
            raise ValueError("received powers must be non-negative")
        self.n = int(n)
        self._keys = keys
        self._vals = vals
        #: CSR row pointer: row ``i`` owns ``keys[indptr[i]:indptr[i+1]]``.
        self.indptr = np.searchsorted(
            keys, np.arange(self.n + 1, dtype=np.int64) * self.n
        )
        #: Column index per stored entry (the CSR ``indices`` array) —
        #: precomputed so :meth:`neighbors` and :meth:`column_sums` are
        #: slice reads, not per-call arithmetic.
        self._cols = (keys - (keys // self.n) * self.n).astype(np.intp)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    @property
    def nnz(self) -> int:
        return int(self._keys.size)

    @property
    def value_dense(self) -> bool:
        """Every entry stored (``cutoff=inf``) — the bit-identity regime.

        Kernels with a faster-but-reordered sparse summation path (e.g.
        :func:`repro.phy.sinr.sinr_for_links`) must skip it when this is
        true, so the value-dense matrix keeps reproducing the dense
        pipeline's floating-point sums bit-for-bit.
        """
        return self._keys.size == self.n * self.n

    def neighbors(self, node: int) -> np.ndarray:
        """Stored column indices of one row, ascending (includes the node
        itself — the diagonal is always stored)."""
        return self._cols[self.indptr[node] : self.indptr[node + 1]]

    def column_sums(self, rows: np.ndarray) -> np.ndarray:
        """``(n,)`` per-column sums over the listed rows' stored entries.

        The sparse analogue of ``P[rows, :].sum(axis=0)`` in
        ``O(sum of row populations)`` — a vectorized multi-span gather of
        the rows' CSR segments followed by one ``bincount`` scatter-add.
        Repeated rows contribute repeatedly, exactly as the dense slice
        would.  Summation order differs from the dense (pairwise) reduction,
        so bit-identity-sensitive callers gate on :attr:`value_dense`.
        """
        idx = np.asarray(rows, dtype=np.intp)
        starts = self.indptr[idx]
        lens = self.indptr[idx + 1] - starts
        total = int(lens.sum())
        if total == 0:
            return np.zeros(self.n, dtype=float)
        offsets = np.cumsum(lens) - lens
        flat = np.arange(total, dtype=np.intp) + np.repeat(starts - offsets, lens)
        return np.bincount(
            self._cols[flat], weights=self._vals[flat], minlength=self.n
        )

    def _gather(self, rows, cols) -> np.ndarray | float:
        # The multiply broadcasts scalar/array/ix_-mesh combinations without
        # materializing broadcast_arrays' intermediate index pair.
        flat = np.asarray(rows, dtype=np.int64) * self.n + np.asarray(
            cols, dtype=np.int64
        )
        if self._keys.size == 0:
            out = np.zeros(flat.shape, dtype=float)
            return float(out) if out.ndim == 0 else out
        f = flat.ravel()
        pos = self._keys.searchsorted(f)
        np.minimum(pos, self._keys.size - 1, out=pos)
        hit = self._keys[pos] == f
        out = np.where(hit, self._vals[pos], 0.0).reshape(flat.shape)
        return float(out) if out.ndim == 0 else out

    def _dense_rows(self, rows) -> np.ndarray:
        idx = np.atleast_1d(np.asarray(rows, dtype=np.intp))
        squeeze = np.ndim(rows) == 0
        out = np.zeros((idx.size, self.n), dtype=float)
        for t, r in enumerate(idx):
            lo, hi = self.indptr[r], self.indptr[r + 1]
            out[t, self._cols[lo:hi]] = self._vals[lo:hi]
        return out[0] if squeeze else out

    def __getitem__(self, key):
        if not (isinstance(key, tuple) and len(key) == 2):
            raise TypeError(
                "SparsePowerMatrix supports pair indexing only: P[i, j], "
                "P[rows, cols], P[np.ix_(rows, cols)], or P[rows, :]"
            )
        rows, cols = key
        if isinstance(cols, slice):
            if cols != slice(None):
                raise TypeError("only full column slices (P[rows, :]) are supported")
            return self._dense_rows(rows)
        if isinstance(rows, slice):
            raise TypeError("row slices (P[:, cols]) are not supported")
        return self._gather(rows, cols)

    def toarray(self) -> np.ndarray:
        """The equivalent dense matrix (tests and small-n tooling only)."""
        out = np.zeros(self.n * self.n, dtype=float)
        out[self._keys] = self._vals
        return out.reshape(self.n, self.n)


def build_sparse_power(
    positions: np.ndarray,
    tx_power_mw: np.ndarray,
    model: PropagationModel,
    cutoff_m: float,
    index: GridIndex | None = None,
) -> SparsePowerMatrix:
    """Harvest near-field received powers: ``P[i, j]`` for ``d(i, j) <= cutoff``.

    The diagonal is always stored (the dense matrix clamps it to the
    reference gain and carrier-sense paths read it).  ``cutoff_m=inf``
    stores *every* entry — no memory win, but the resulting matrix is
    value-identical to :func:`~repro.phy.gain.received_power_matrix`, which
    is the bit-identity harness of the differential suite.  Models carrying
    per-pair state (``pair_gain`` — frozen shadowing) are rejected: their
    gains are identified by index pairs, not distance, and need the dense
    builder.
    """
    pos = np.asarray(positions, dtype=float)
    tx = np.asarray(tx_power_mw, dtype=float)
    n = pos.shape[0]
    if pos.ndim != 2 or pos.shape[1] != 2:
        raise ValueError(f"positions must be (n, 2), got {pos.shape}")
    if tx.shape != (n,):
        raise ValueError(f"tx_power_mw must have shape ({n},), got {tx.shape}")
    if np.any(tx <= 0):
        raise ValueError("transmit powers must be strictly positive")
    if cutoff_m <= 0:
        raise ValueError(f"cutoff_m must be positive, got {cutoff_m}")
    if getattr(model, "pair_gain", None) is not None:
        raise ValueError(
            "sparse storage needs a pure distance-law model; per-pair state "
            "(pair_gain, e.g. frozen shadowing) requires the dense builder"
        )

    if math.isinf(cutoff_m):
        heads = np.repeat(np.arange(n, dtype=np.intp), n)
        tails = np.tile(np.arange(n, dtype=np.intp), n)
        off = heads != tails
        heads, tails = heads[off], tails[off]
    else:
        if index is None:
            index = GridIndex(pos, cell_size=float(cutoff_m))
        heads, tails = index.pairs_within(float(cutoff_m))
    dist = np.sqrt(((pos[heads] - pos[tails]) ** 2).sum(axis=1))
    keys = np.concatenate(
        [
            heads.astype(np.int64) * n + tails,
            np.arange(n, dtype=np.int64) * n + np.arange(n, dtype=np.int64),
        ]
    )
    vals = np.concatenate(
        [tx[heads] * model.gain(dist), tx * model.gain(np.zeros(n))]
    )
    order = np.argsort(keys)
    return SparsePowerMatrix(n, keys[order], vals[order])


def interference_radius_m(
    tx_power_mw: np.ndarray, model: PropagationModel, radio: RadioConfig
) -> float:
    """The carrier-sense radius of the strongest transmitter, in meters.

    The natural near-field cutoff: beyond this distance no node's signal
    even trips carrier sensing (``tx * gain(d) < cs_threshold``), so its
    interference is indistinguishable from the far-field hum the noise
    floor budgets.  Solved through the propagation model's
    ``range_for_snr`` inversion, so cutoff and gains come from one law.
    """
    tx = np.asarray(tx_power_mw, dtype=float)
    range_for_snr = getattr(model, "range_for_snr", None)
    if range_for_snr is None:
        raise ValueError(
            "propagation model must expose range_for_snr to derive the "
            "interference radius"
        )
    # tx * gain(d) = cs_threshold  <=>  SNR over noise_mw equals
    # cs_threshold / noise_mw = beta / gamma^alpha.
    beta_eff = radio.cs_threshold_mw / radio.noise_mw
    return float(range_for_snr(float(tx.max()), radio.noise_mw, beta_eff))


def far_field_floor_mw(
    n_nodes: int,
    tx_power_mw: np.ndarray,
    model: PropagationModel,
    cutoff_m: float,
    alpha: float,
) -> np.ndarray | None:
    """Per-node noise-floor budget absorbing all interference beyond the cutoff.

    The idealization, recorded here and in DESIGN.md §13: concurrent
    transmitters are SINR-limited to roughly one per carrier-sense disk, so
    the far field is modeled as a continuum of mean-power transmitters at
    density ``sigma = 1 / (pi * cutoff²)``.  Integrating the path law from
    the cutoff outward::

        floor = ∫_c^∞ sigma · t̄ · gain(r) · 2πr dr = 2 · t̄ · gain(c) / (alpha - 2)

    — finite exactly when ``alpha > 2``, the same condition the paper's
    approximation analysis needs.  The floor is a *budget* in the PR 3
    sense: installed as ``PhysicalInterferenceModel.budget_mw`` it tightens
    every SINR check additively, and shard guard margins stack on top of it
    (:meth:`~repro.phy.interference.PhysicalInterferenceModel.with_budget`
    composes budgets by addition).  ``cutoff=inf`` returns ``None`` — no
    far field, the exact model.
    """
    if cutoff_m <= 0:
        raise ValueError(f"cutoff_m must be positive, got {cutoff_m}")
    if math.isinf(cutoff_m):
        return None
    if alpha <= 2:
        raise ValueError(
            f"the far-field integral diverges for alpha <= 2, got {alpha}"
        )
    tx = np.asarray(tx_power_mw, dtype=float)
    gain_at_cutoff = float(model.gain(np.asarray([cutoff_m]))[0])
    floor = 2.0 * float(tx.mean()) * gain_at_cutoff / (alpha - 2.0)
    return np.full(n_nodes, floor, dtype=float)


@dataclass(frozen=True)
class SparseGainModel:
    """The sparse interference backend, bundled: near-field powers, the
    far-field floor they imply, and the spatial index that harvested them.

    Build with :func:`sparse_gain_model`; bind to a radio with
    :meth:`interference_model` to get a drop-in
    :class:`~repro.phy.interference.PhysicalInterferenceModel` — every
    scheduler, engine, and kernel accepts it through the same interface as
    the dense oracle.
    """

    power: SparsePowerMatrix
    cutoff_m: float
    floor_mw: np.ndarray | None
    index: GridIndex | None

    @property
    def n_nodes(self) -> int:
        return self.power.n

    def interference_model(self, radio: RadioConfig):
        """A feasibility oracle over the sparse backend.

        The far-field floor rides in as the model's ``budget_mw`` — the
        same per-receiving-node noise increment the sharded guard margins
        use, so the two compose by addition when a shard installs its
        budget on top.
        """
        from repro.phy.interference import PhysicalInterferenceModel

        return PhysicalInterferenceModel(self.power, radio, self.floor_mw)


def sparse_gain_model(
    positions: np.ndarray,
    tx_power_mw: np.ndarray,
    model: PropagationModel,
    radio: RadioConfig,
    cutoff_m: float | None = None,
    far_field: str = "packing",
    index: GridIndex | None = None,
) -> SparseGainModel:
    """Build the sparse backend for one deployment.

    ``cutoff_m=None`` derives the cutoff from the radio: the carrier-sense
    radius of the strongest transmitter (:func:`interference_radius_m`).
    ``far_field`` chooses the floor: ``"packing"`` (the default, the
    one-transmitter-per-CS-disk continuum of :func:`far_field_floor_mw`)
    or ``"none"`` (no budget — near-field-only, optimistic).
    ``cutoff_m=inf`` always yields a floorless, value-dense model — the
    bit-identity configuration.
    """
    pos = np.asarray(positions, dtype=float)
    if cutoff_m is None:
        cutoff_m = interference_radius_m(tx_power_mw, model, radio)
    cutoff_m = float(cutoff_m)
    if index is None and not math.isinf(cutoff_m):
        index = GridIndex(pos, cell_size=cutoff_m)
    power = build_sparse_power(pos, tx_power_mw, model, cutoff_m, index=index)
    if far_field == "packing":
        floor = far_field_floor_mw(
            power.n, tx_power_mw, model, cutoff_m, alpha=radio.alpha
        )
    elif far_field == "none":
        floor = None
    else:
        raise ValueError(
            f"far_field must be 'packing' or 'none', got {far_field!r}"
        )
    return SparseGainModel(
        power=power, cutoff_m=cutoff_m, floor_mw=floor, index=index
    )
