"""Sharded multi-region scheduling: a federated 16x16 mesh backbone.

The paper simulates one 64-node region; a real mesh backbone is many
regions, each computing its schedule locally.  This example partitions a
16x16 grid (256 nodes, 4 gateways) into 2x2 spatial shards and runs the
closed traffic loop both ways:

* **monolithic** — one FDD instance spans the backbone, so the protocol
  must elect over the full ID space with K covering the backbone's
  interference diameter, and every epoch pays that air time;
* **sharded** — each region runs its own FDD on its own radio substrate
  (regional K and ID bits), boundary links carry a guard-margin
  interference budget, and a reconciliation pass serializes the residual
  cross-shard violations (DESIGN.md §8).

The example asserts the subsystem's three headlines:

1. the 1-shard partition reproduces the monolithic engine exactly
   (the differential harness, here on live FDD);
2. parallel workers never change results (deterministic per-shard RNG
   substreams);
3. sharding cuts the critical-path scheduling wall-clock — what the epoch
   costs when every region has its own controller — by >= 2x at a stable
   operating point, while paying an order of magnitude less protocol air
   time.

Run:  python examples/sharded_mesh.py        (~1 minute)
"""

import numpy as np

from repro import (
    EpochConfig,
    PoissonArrivals,
    ProtocolConfig,
    build_routing_forest,
    distributed_scheduler,
    fdd_on_network,
    forest_link_set,
    grid_network,
    plan_for_network,
    planned_gateways,
    run_epochs,
    run_epochs_sharded,
    sharded_distributed_factory,
)
from repro.traffic import is_stable
from repro.util.rng import spawn

SEED = 20080617
RATE = 0.002  # pkt/node/slot — stable for both engines on this grid


def build_mesh():
    network = grid_network(16, 16, density_per_km2=1000.0)
    gateways = planned_gateways(16, 16, 4)
    forest = build_routing_forest(
        network.comm_adj, gateways, rng=spawn(SEED, "forest")
    )
    links = forest_link_set(forest, np.zeros(network.n_nodes, dtype=np.int64))
    return network, gateways, links


def main() -> None:
    network, gateways, links = build_mesh()
    protocol = ProtocolConfig(k=5, smbytes=15, id_bits=8)
    config = EpochConfig(epoch_slots=300, n_epochs=8, divergence_factor=4.0)

    def generator():
        return PoissonArrivals(
            network.n_nodes, RATE, gateways=gateways, seed=spawn(SEED, "gen")
        )

    print(f"16x16 backbone, {links.n_links} links, lambda={RATE} pkt/node/slot")

    # --- monolithic: one backbone-wide FDD per epoch
    scheduler = distributed_scheduler(
        network, fdd_on_network, config=protocol, seed=spawn(SEED, "fdd")
    )
    mono = run_epochs(links, generator(), scheduler, config)
    # Timing fields are None on hosts without a thread-CPU clock.
    secs = lambda s: "~" if s is None else f"{s:.2f}"  # noqa: E731
    print(
        f"monolithic: {mono.summary()}\n"
        f"  overhead {mono.overhead_slots_total / mono.n_epochs_run:.1f} slots/epoch, "
        f"scheduling compute {secs(mono.scheduling_seconds)} s, "
        f"stable={is_stable(mono)}"
    )

    # --- sharded: 2x2 regions, guard margins, reconciliation
    plan = plan_for_network(links, network, n_shards=4, interference_radius_m=80.0)
    print(f"\n{plan.summary()}")
    factory = sharded_distributed_factory(
        network, fdd_on_network, config=protocol, seed=spawn(SEED, "fdd")
    )
    shard = run_epochs_sharded(
        plan,
        generator(),
        factory,
        network.model,
        config,
        max_workers=4,
        executor="process",
    )
    print(
        f"sharded:    {shard.summary()}\n"
        f"  overhead {shard.overhead_slots_total / shard.n_epochs_run:.1f} slots/epoch, "
        f"compute {secs(shard.scheduling_seconds)} s "
        f"(critical path {secs(shard.critical_path_seconds)} s, "
        f"wall {secs(shard.scheduling_wall_seconds)} s on a process pool), "
        f"reconciled {shard.reconciled_total / shard.n_epochs_run:.1f} links/epoch, "
        f"stable={is_stable(shard)}"
    )

    # 1. Differential harness: the 1-shard partition IS the monolithic loop.
    plan1 = plan_for_network(links, network, n_shards=1, interference_radius_m=80.0)
    factory1 = sharded_distributed_factory(
        network, fdd_on_network, config=protocol, seed=spawn(SEED, "fdd")
    )
    replay = run_epochs_sharded(plan1, generator(), factory1, network.model, config)
    assert [
        (r.arrivals, r.served, r.delivered, r.backlog_end, r.overhead_slots)
        for r in replay.records
    ] == [
        (r.arrivals, r.served, r.delivered, r.backlog_end, r.overhead_slots)
        for r in mono.records
    ], "1-shard engine diverged from the monolithic loop"
    print("\n1-shard partition replays the monolithic engine epoch-for-epoch: OK")

    # 2. Parallelism never changes results.
    factory_s = sharded_distributed_factory(
        network, fdd_on_network, config=protocol, seed=spawn(SEED, "fdd")
    )
    serial = run_epochs_sharded(plan, generator(), factory_s, network.model, config)
    assert serial.records == shard.records, "executor backend changed the trace"
    print("serial threads and a 4-worker process pool trace identical: OK")

    # 3. The economics (timing claims need the thread-CPU clock).
    air_cut = mono.overhead_slots_total / max(shard.overhead_slots_total, 1)
    if mono.scheduling_seconds is not None and shard.scheduling_seconds is not None:
        crit_speedup = mono.scheduling_seconds / shard.critical_path_seconds
        print(
            f"\ncritical-path scheduling speedup: {crit_speedup:.1f}x "
            f"(serial compute ratio "
            f"{mono.scheduling_seconds / shard.scheduling_seconds:.2f}x)\n"
            f"protocol air time cut: {air_cut:.1f}x "
            f"({mono.overhead_slots_total} -> {shard.overhead_slots_total} slots)"
        )
        assert crit_speedup >= 2.0, "sharding should cut the critical path >= 2x"
    else:
        print(
            f"\nno thread-CPU clock on this host — timing claims skipped\n"
            f"protocol air time cut: {air_cut:.1f}x "
            f"({mono.overhead_slots_total} -> {shard.overhead_slots_total} slots)"
        )
    assert is_stable(shard) == is_stable(mono), "engines disagree on stability"


if __name__ == "__main__":
    main()
