"""Bench for the approximation-ratio measurement (T5)."""

import pytest

from repro.experiments.approximation import approximation_experiment


@pytest.mark.benchmark(group="theory")
def test_t5_approximation_ratio(benchmark, bench_profile, save_table):
    table = benchmark.pedantic(
        approximation_experiment, args=(bench_profile,), rounds=1, iterations=1
    )
    save_table("t5_approximation", table)
    for row in table._rows:
        measured = float(row[2].split(" ±")[0])
        bound = float(row[4])
        assert 1.0 <= measured <= bound
