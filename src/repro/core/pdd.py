"""PDD — the Partially Randomized Distributed Protocol (Section III-C).

PDD's ``SelectActive`` is a local coin flip: every DORMANT node turns ACTIVE
with probability ``p`` in each slot-construction step.  No communication is
needed to select actives, which is why PDD runs substantially faster than
FDD; the price is that concurrent actives can knock each other (and nothing
retries within the round), costing some schedule quality.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import NO_FAULTS, FaultConfig, ProtocolConfig
from repro.core.protocol import ProtocolResult, run_on_network, run_protocol
from repro.core.runtime import Runtime
from repro.core.states import NodeState
from repro.phy.interference import PhysicalInterferenceModel
from repro.scheduling.links import LinkSet
from repro.topology.network import Network


def make_pdd_select_active(p_active: float):
    """Build PDD's probabilistic SelectActive strategy."""

    def select_active(
        state: np.ndarray, runtime: Runtime, rng: np.random.Generator
    ) -> np.ndarray:
        dormant = state == NodeState.DORMANT
        coins = rng.random(state.shape[0]) < p_active
        return dormant & coins

    return select_active


def run_pdd(
    links: LinkSet,
    runtime: Runtime,
    config: ProtocolConfig,
    rng: np.random.Generator | int | None = None,
    record_rounds: bool = False,
) -> ProtocolResult:
    """Run PDD on an arbitrary runtime substrate."""
    if config.p_active <= 0.0:
        raise ValueError(
            "PDD requires p_active > 0 (dormant nodes could otherwise "
            "never be selected)"
        )
    return run_protocol(
        links,
        runtime,
        config,
        make_pdd_select_active(config.p_active),
        rng=rng,
        record_rounds=record_rounds,
    )


def pdd_on_network(
    network: Network,
    links: LinkSet,
    config: ProtocolConfig | None = None,
    faults: FaultConfig = NO_FAULTS,
    rng: np.random.Generator | int | None = None,
    record_rounds: bool = False,
    model: "PhysicalInterferenceModel | None" = None,
) -> ProtocolResult:
    """Convenience wrapper: run PDD over a fresh FastRuntime on ``network``.

    See :func:`~repro.core.protocol.run_on_network` for the shared
    semantics, including the optional feasibility-oracle ``model`` override.
    """
    return run_on_network(
        network,
        links,
        run_pdd,
        config=config,
        faults=faults,
        rng=rng,
        record_rounds=record_rounds,
        model=model,
    )
