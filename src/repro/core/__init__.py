"""The paper's contribution: SCREAM, leader election, and the PDD/FDD schedulers.

Public surface:

* :func:`~repro.core.scream.scream_flood` — the K-slot carrier-sensing flood
  that realizes a network-wide OR;
* :func:`~repro.core.leader.leader_elect` — bitwise leader election over
  SCREAM;
* :class:`~repro.core.fast_runtime.FastRuntime` — the vectorized
  slot-faithful execution substrate;
* :func:`~repro.core.pdd.run_pdd` / :func:`~repro.core.fdd.run_fdd` — the two
  distributed protocols;
* :class:`~repro.core.timing.TimingModel` — maps step tallies to wall-clock
  seconds for the execution-time experiments.
"""

from repro.core.states import NodeState
from repro.core.events import StepTally
from repro.core.config import ProtocolConfig, FaultConfig
from repro.core.scream import scream_flood, scream_exact
from repro.core.leader import leader_elect
from repro.core.runtime import Runtime
from repro.core.fast_runtime import FastRuntime
from repro.core.protocol import ProtocolResult, run_protocol
from repro.core.pdd import run_pdd
from repro.core.fdd import run_fdd
from repro.core.afdd import run_afdd
from repro.core.timing import TimingModel
from repro.core.controlplane import (
    CONTROL_LAYERS,
    MESSAGE_CLASSES,
    ControlLedger,
    ControlPlaneModel,
    forest_depths,
)
from repro.core.arbitrary import ArbitraryResult, run_arbitrary_link_set
from repro.core.skew import (
    SkewDegradation,
    critical_skew_estimate,
    degrade_sensitivity_graph,
)

__all__ = [
    "NodeState",
    "StepTally",
    "ProtocolConfig",
    "FaultConfig",
    "scream_flood",
    "scream_exact",
    "leader_elect",
    "Runtime",
    "FastRuntime",
    "ProtocolResult",
    "run_protocol",
    "run_pdd",
    "run_fdd",
    "run_afdd",
    "TimingModel",
    "CONTROL_LAYERS",
    "MESSAGE_CLASSES",
    "ControlLedger",
    "ControlPlaneModel",
    "forest_depths",
    "ArbitraryResult",
    "run_arbitrary_link_set",
    "SkewDegradation",
    "critical_skew_estimate",
    "degrade_sensitivity_graph",
]
