"""Lattice geometry (Definitions 7-11) and Theorem 2's hop-length identity."""

import numpy as np
import pytest

from repro.topology.lattice import (
    LatticeCell,
    grid_interior,
    is_square_grid_convex,
    lattice_path_hop_length,
    lattice_paths,
    segment_augmentation,
)


class TestAugmentation:
    def test_axis_aligned_segment(self):
        cells = segment_augmentation(np.array([0.5, 0.5]), np.array([3.5, 0.5]))
        assert cells == [LatticeCell(0, 0), LatticeCell(1, 0), LatticeCell(2, 0), LatticeCell(3, 0)]

    def test_diagonal_segment(self):
        cells = segment_augmentation(np.array([0.25, 0.1]), np.array([1.75, 1.9]))
        assert LatticeCell(0, 0) in cells
        assert LatticeCell(1, 1) in cells
        # The walk is 4-connected: consecutive cells differ by one unit.
        for a, b in zip(cells, cells[1:]):
            assert abs(a.i - b.i) + abs(a.j - b.j) == 1

    def test_degenerate_point(self):
        cells = segment_augmentation(np.array([1.3, 2.7]), np.array([1.3, 2.7]))
        assert cells == [LatticeCell(1, 2)]

    def test_respects_step(self):
        coarse = segment_augmentation(
            np.array([0.0, 0.0]), np.array([10.0, 0.5]), step=10.0
        )
        assert len(coarse) == 1 or len(coarse) == 2

    def test_cell_corners(self):
        corners = LatticeCell(2, 3).corners(step=2.0)
        assert corners.shape == (4, 2)
        assert [4.0, 6.0] in corners.tolist()
        assert [6.0, 8.0] in corners.tolist()


class TestLatticePaths:
    def test_paths_connect_endpoints_with_unit_hops(self):
        p, q = np.array([0.0, 0.0]), np.array([4.0, 3.0])
        upper, lower = lattice_paths(p, q)
        for path in (upper, lower):
            assert path[0] == (0, 0)
            assert path[-1] == (4, 3)
            for a, b in zip(path, path[1:]):
                assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_upper_path_weakly_above_lower(self):
        p, q = np.array([0.0, 0.0]), np.array([5.0, 2.0])
        upper, lower = lattice_paths(p, q)
        upper_max = {}
        for x, y in upper:
            upper_max[x] = max(upper_max.get(x, y), y)
        lower_min = {}
        for x, y in lower:
            lower_min[x] = min(lower_min.get(x, y), y)
        for x in upper_max:
            if x in lower_min:
                assert upper_max[x] >= lower_min[x]

    def test_paths_stay_within_one_unit_of_segment(self):
        """Both staircases hug the segment (stay inside its augmentation)."""
        rng = np.random.default_rng(3)
        for _ in range(30):
            p = rng.integers(-4, 5, size=2).astype(float)
            q = rng.integers(-4, 5, size=2).astype(float)
            length = float(np.hypot(*(q - p)))
            if length == 0:
                continue
            direction = (q - p) / length
            for path in lattice_paths(p, q):
                for point in np.asarray(path, dtype=float):
                    t = float(np.dot(point - p, direction))
                    t = min(max(t, 0.0), length)
                    closest = p + t * direction
                    assert np.hypot(*(point - closest)) < np.sqrt(2) + 1e-9

    def test_hop_length_identity(self):
        """Theorem 2: hop length = (l/s)(sin b + cos b) = |dx| + |dy|."""
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = rng.integers(-5, 5, size=2).astype(float)
            q = rng.integers(-5, 5, size=2).astype(float)
            length = np.hypot(*(q - p))
            if length == 0:
                continue
            beta = np.arctan2(abs(q[1] - p[1]), abs(q[0] - p[0]))
            expected = length * (np.sin(beta) + np.cos(beta))
            hops = lattice_path_hop_length(p, q)
            assert hops == pytest.approx(expected, abs=1e-9)
            upper, lower = lattice_paths(p, q)
            assert len(upper) - 1 == hops
            assert len(lower) - 1 == hops

    def test_hop_length_at_most_sqrt2_over_step_times_length(self):
        """The sin+cos <= sqrt(2) step of Theorem 2's proof."""
        rng = np.random.default_rng(1)
        for _ in range(50):
            p = rng.integers(0, 8, size=2).astype(float)
            q = rng.integers(0, 8, size=2).astype(float)
            length = np.hypot(*(q - p))
            assert lattice_path_hop_length(p, q) <= np.sqrt(2) * length + 1e-9

    def test_non_lattice_endpoints_rejected(self):
        with pytest.raises(ValueError):
            lattice_paths(np.array([0.5, 0.0]), np.array([2.0, 1.0]))

    def test_vertical_segment_convention(self):
        upper, lower = lattice_paths(np.array([2.0, 0.0]), np.array([2.0, 3.0]))
        # Both are the same straight column walk here (no detour possible).
        assert upper == lower


class TestConvexity:
    @staticmethod
    def _points(side):
        xs, ys = np.meshgrid(np.arange(side + 1), np.arange(side + 1))
        return np.column_stack([xs.ravel(), ys.ravel()]).astype(float)

    def test_square_region_is_grid_convex(self):
        side = 5
        mask = lambda pts: (
            (pts[:, 0] >= 0) & (pts[:, 0] <= side)
            & (pts[:, 1] >= 0) & (pts[:, 1] <= side)
        )
        assert is_square_grid_convex(mask, self._points(side))

    def test_disk_region_is_grid_convex(self):
        side = 8
        center = np.array([4.0, 4.0])
        mask = lambda pts: np.hypot(*(pts - center).T) <= 4.2
        assert is_square_grid_convex(mask, self._points(side))

    def test_u_shape_is_not_grid_convex(self):
        # A U: two towers connected only at the bottom row; the staircases
        # between tower tops must cross the excluded middle.
        side = 6
        def mask(pts):
            x, y = pts[:, 0], pts[:, 1]
            in_box = (x >= 0) & (x <= side) & (y >= 0) & (y <= side)
            notch = (x > 1.5) & (x < 4.5) & (y > 1.5)
            return in_box & ~notch

        assert not is_square_grid_convex(mask, self._points(side))

    def test_interior_extraction(self):
        mask = lambda pts: pts[:, 0] <= 1.0
        interior = grid_interior(mask, self._points(3))
        assert (interior[:, 0] <= 1.0).all()
        assert interior.shape[0] == 8

    def test_sampled_check_requires_rng(self):
        mask = lambda pts: np.ones(len(pts), dtype=bool)
        with pytest.raises(ValueError):
            is_square_grid_convex(mask, self._points(4), sample_pairs=3)
