"""Radio configuration: transmit powers, noise floor, decode and CS thresholds.

The paper assumes no transmit power control (each node uses a fixed level,
possibly different per node — "heterogeneous power" in the unplanned
scenario) and a carrier-sensing range at least as large as the communication
range.  :class:`RadioConfig` gathers these per-network constants and derived
quantities in one immutable value object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.phy.units import dbm_to_mw
from repro.util.validation import check_positive


@dataclass(frozen=True)
class RadioConfig:
    """Physical-layer constants for one network.

    Attributes
    ----------
    beta:
        SINR decode threshold (linear ratio).  The paper's constant ``β``.
    noise_mw:
        Background noise power ``N`` in milliwatts.
    cs_gamma:
        Ratio ``r_CS / r_c`` between carrier-sense range and communication
        range.  Carrier sensing detects strictly weaker signals than decoding;
        with path-loss exponent ``alpha`` a range ratio ``γ`` corresponds to a
        detection threshold ``γ^(-alpha)`` below the decode threshold.  The
        paper's impossibility/diameter analysis uses ``γ = 1``; its 64-node
        experiments use an interference diameter of 5 which corresponds to
        ``γ ≈ 3`` on the 8x8 grid.
    alpha:
        Path-loss exponent used to convert ``cs_gamma`` into a power
        threshold ratio (must match the propagation model's exponent).
    """

    beta: float = 10.0  # 10 dB decode threshold.
    noise_mw: float = dbm_to_mw(-90.0)
    cs_gamma: float = 3.0
    alpha: float = 3.0

    def __post_init__(self) -> None:
        check_positive("beta", self.beta)
        check_positive("noise_mw", self.noise_mw)
        check_positive("cs_gamma", self.cs_gamma)
        check_positive("alpha", self.alpha)
        if self.beta <= 1.0:
            raise ValueError(
                "beta must exceed 1 (0 dB): sub-unity thresholds would let a "
                f"radio decode two concurrent frames at once, got {self.beta}"
            )
        if self.cs_gamma < 1.0:
            raise ValueError(
                "cs_gamma must be >= 1 (carrier-sense range cannot be smaller "
                f"than communication range), got {self.cs_gamma}"
            )

    @property
    def decode_power_mw(self) -> float:
        """Minimum received power that decodes with zero interference."""
        return self.beta * self.noise_mw

    @property
    def cs_threshold_mw(self) -> float:
        """Carrier-sense detection threshold in mW.

        A node detects channel activity when total received power exceeds
        this.  Derived from the decode threshold and ``cs_gamma`` through the
        path-loss law: a signal decodable at range ``r`` is detectable at
        range ``γ·r``.
        """
        return self.decode_power_mw / (self.cs_gamma**self.alpha)

    def with_cs_gamma(self, cs_gamma: float) -> "RadioConfig":
        """Return a copy with a different carrier-sense range ratio."""
        return replace(self, cs_gamma=cs_gamma)


@dataclass(frozen=True)
class RateTable:
    """Monotone SINR-threshold -> packets-per-slot MCS tiers, with hysteresis.

    The paper's scheduler treats a link as binary — it clears ``β`` or it
    doesn't — but a real radio selects a modulation/coding scheme from the
    SINR it actually achieves, and a link well above threshold carries
    several packets in the slot a marginal link needs for one (SiNE's
    adaptive-MCS plan is the implementation template; Zhou et al.'s
    throughput-maximizing scheduling under physical interference is the
    theory).  A :class:`RateTable` is the whole contract:

    * ``thresholds[i]`` — minimum SINR (linear ratio) of tier ``i``,
      strictly increasing; ``thresholds[0]`` plays the role of ``β``.
    * ``rates[i]`` — packets per slot the tier carries, positive integers,
      monotone non-decreasing.
    * ``hysteresis`` — multiplicative margin (>= 1) a link must clear
      *above* a tier's raw threshold before :meth:`select` upgrades into
      it; downgrades happen as soon as the raw threshold is lost.  The
      asymmetry is what keeps a link whose SINR sits on a tier edge from
      flapping between tiers on noise (see the property tests).

    The **degenerate** single-tier table ``degenerate(beta)`` — threshold
    ``β``, rate 1 — reproduces the bool feasibility contract exactly:
    every scheduled link serves one packet per slot, whatever its SINR
    headroom.  The differential suite pins engines run under it
    bit-identical to the table-less seed behaviour.

    SINR below ``thresholds[0]`` maps to tier ``-1`` (no decode, rate 0)
    in the stateless lookups; serving paths that already established slot
    membership clamp to tier 0 instead — the membership contract
    guarantees the base MCS (see
    :meth:`~repro.phy.interference.PhysicalInterferenceModel.link_tiers`).
    """

    thresholds: np.ndarray
    rates: np.ndarray
    hysteresis: float = 1.0

    def __post_init__(self) -> None:
        thresholds = np.asarray(self.thresholds, dtype=float)
        rates = np.asarray(self.rates, dtype=np.int64)
        if thresholds.ndim != 1 or thresholds.size == 0:
            raise ValueError("thresholds must be a non-empty 1-D array")
        if thresholds.shape != rates.shape:
            raise ValueError("thresholds and rates must share one shape")
        if np.any(thresholds <= 0):
            raise ValueError("SINR thresholds must be positive")
        if np.any(np.diff(thresholds) <= 0):
            raise ValueError("SINR thresholds must be strictly increasing")
        if np.any(rates <= 0):
            raise ValueError("tier rates must be positive (packets per slot)")
        if np.any(np.diff(rates) < 0):
            raise ValueError("tier rates must be monotone non-decreasing")
        check_positive("hysteresis", self.hysteresis)
        if self.hysteresis < 1.0:
            raise ValueError(
                f"hysteresis must be >= 1 (a sub-unity margin would upgrade "
                f"below the tier's own threshold), got {self.hysteresis}"
            )
        object.__setattr__(self, "thresholds", thresholds)
        object.__setattr__(self, "rates", rates)

    @classmethod
    def degenerate(cls, beta: float) -> "RateTable":
        """The single-tier table reproducing the bool ``SINR >= β`` contract."""
        return cls(thresholds=np.array([beta]), rates=np.array([1]))

    @classmethod
    def geometric(
        cls,
        beta: float,
        n_tiers: int = 3,
        sinr_step: float = 2.0,
        rate_step: float = 2.0,
        hysteresis: float = 1.0,
    ) -> "RateTable":
        """Geometric MCS ladder: thresholds ``β·sinr_step^i``, rates
        ``~rate_step^i``.

        The default (3 tiers, x2 SINR per tier, x2 rate per tier — tiers
        at ``β, 2β, 4β`` carrying 1, 2, 4 packets per slot) is the 3
        dB-per-doubling ladder of coding-rate steps, calibrated to the
        paper's 8x8 grid where standalone link margins reach ~2-3x ``β``:
        the x4-per-tier (6 dB, constellation-doubling) ladder would never
        engage there.  Callers model a specific radio by passing its own
        thresholds to the constructor instead.
        """
        if n_tiers <= 0:
            raise ValueError(f"n_tiers must be positive, got {n_tiers}")
        if sinr_step <= 1.0 or rate_step < 1.0:
            raise ValueError("sinr_step must exceed 1 and rate_step be >= 1")
        exponents = np.arange(n_tiers)
        return cls(
            thresholds=beta * sinr_step**exponents,
            rates=np.maximum(1, np.round(rate_step**exponents)).astype(np.int64),
            hysteresis=hysteresis,
        )

    @property
    def n_tiers(self) -> int:
        return int(self.thresholds.shape[0])

    @property
    def base_rate(self) -> int:
        """Packets per slot of the lowest tier (1 for the degenerate table)."""
        return int(self.rates[0])

    @property
    def is_degenerate(self) -> bool:
        """Single tier at rate 1: the bool-feasibility contract."""
        return self.n_tiers == 1 and self.base_rate == 1

    @property
    def beta(self) -> float:
        """The base decode threshold (tier 0's SINR requirement)."""
        return float(self.thresholds[0])

    def tier_for(self, sinr: np.ndarray) -> np.ndarray:
        """Stateless tier per SINR value: highest tier whose threshold is
        cleared, ``-1`` below tier 0 (no decode).

        Vectorized as a single ``searchsorted`` over the (sorted)
        threshold array — the lookup rides the per-link SINR array the
        feasibility paths already compute.
        """
        values = np.asarray(sinr, dtype=float)
        return np.searchsorted(self.thresholds, values, side="right") - 1

    def rate_for(self, sinr: np.ndarray) -> np.ndarray:
        """Stateless achievable rate per SINR value (0 below tier 0)."""
        tiers = self.tier_for(sinr)
        rates = np.where(tiers >= 0, self.rates[np.maximum(tiers, 0)], 0)
        return rates.astype(np.int64)

    def select(self, sinr: np.ndarray, prev_tier: np.ndarray) -> np.ndarray:
        """Hysteresis-aware tier (re)selection.

        ``prev_tier[k] < 0`` means no prior selection for entry ``k``: the
        stateless :meth:`tier_for` answer is used.  Otherwise upgrades
        from ``prev_tier`` stop at the highest tier whose threshold is
        cleared with the full ``hysteresis`` margin (never exceeding the
        raw-threshold tier, never dropping below ``prev``), while
        downgrades snap straight to the stateless tier — losing a tier's
        raw threshold demotes immediately, reclaiming it requires margin.
        With ``hysteresis == 1`` this degenerates to :meth:`tier_for`.

        For a *fixed* SINR the map is idempotent — ``select(s,
        select(s, t)) == select(s, t)`` — so a link whose SINR sits inside
        one band can never oscillate between tiers (property-tested).
        """
        values = np.asarray(sinr, dtype=float)
        prev = np.asarray(prev_tier, dtype=np.int64)
        if values.shape != prev.shape:
            raise ValueError("sinr and prev_tier must share one shape")
        raw = self.tier_for(values)
        if self.hysteresis == 1.0:
            return raw.astype(np.int64)
        margin = (
            np.searchsorted(self.thresholds * self.hysteresis, values, side="right")
            - 1
        )
        # Upgrade: at most the margin-cleared tier, at least where we were.
        upgraded = np.minimum(raw, np.maximum(margin, prev))
        return np.where((prev >= 0) & (raw > prev), upgraded, raw).astype(np.int64)


def uniform_tx_power(n: int, power_dbm: float = 12.0) -> np.ndarray:
    """Homogeneous transmit power vector (mW) for ``n`` nodes."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return np.full(n, dbm_to_mw(power_dbm), dtype=float)


def heterogeneous_tx_power(
    n: int,
    rng: np.random.Generator,
    low_dbm: float = 10.0,
    high_dbm: float = 14.0,
) -> np.ndarray:
    """Per-node transmit powers drawn uniformly (in dBm) from a range.

    Models the paper's "unplanned deployment with heterogeneous transmission
    power".  Powers are fixed for the lifetime of the network (the paper
    assumes no power control).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if high_dbm < low_dbm:
        raise ValueError(f"high_dbm ({high_dbm}) must be >= low_dbm ({low_dbm})")
    return dbm_to_mw(rng.uniform(low_dbm, high_dbm, size=n))
