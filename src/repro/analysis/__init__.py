"""Statistics and analytical results: confidence intervals, theory bounds."""

from repro.analysis.stats import mean_ci, ConfidenceInterval
from repro.analysis.bounds import (
    grid_id_bound,
    uniform_id_bound,
    connectivity_range_uniform,
    approximation_bound,
    fdd_step_complexity_bound,
)
from repro.analysis.tables import TextTable, format_series
from repro.analysis.asciiplot import AsciiPlot, quick_plot

__all__ = [
    "mean_ci",
    "ConfidenceInterval",
    "grid_id_bound",
    "uniform_id_bound",
    "connectivity_range_uniform",
    "approximation_bound",
    "fdd_step_complexity_bound",
    "TextTable",
    "format_series",
    "AsciiPlot",
    "quick_plot",
]
