"""Validating the protocols against Figure 1's state machine.

An observer records every state snapshot; each node's state sequence is
checked transition-by-transition against the paper's diagram (plus the
implicit round-boundary resets the diagram draws as "new slot considered").
"""

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.fast_runtime import FastRuntime
from repro.core.pdd import make_pdd_select_active
from repro.core.fdd import fdd_select_active
from repro.core.protocol import run_protocol
from repro.core.states import ALLOWED_TRANSITIONS, NodeState
from tests.conftest import make_links

#: Transitions legal at any observer checkpoint.  Figure 1's arrows, plus:
#: CONTROL persisting across rounds, identity transitions (no change between
#: checkpoints), and the global COMPLETE->TERMINATE broadcast.
LEGAL = set(ALLOWED_TRANSITIONS) | {(s, s) for s in NodeState}


class TraceValidator:
    """Observer that accumulates snapshots and validates transitions."""

    def __init__(self):
        self.snapshots: list[tuple[str, np.ndarray]] = []

    def __call__(self, event: str, state: np.ndarray) -> None:
        self.snapshots.append((event, state))

    def violations(self) -> list[tuple[str, int, NodeState, NodeState]]:
        bad = []
        for (prev_event, prev), (event, cur) in zip(
            self.snapshots, self.snapshots[1:]
        ):
            for node in range(prev.shape[0]):
                a, b = NodeState(prev[node]), NodeState(cur[node])
                if (a, b) in LEGAL:
                    continue
                bad.append((event, node, a, b))
        return bad

    def events(self) -> list[str]:
        return [e for e, _ in self.snapshots]


@pytest.fixture(scope="module")
def setup(grid16):
    _, links = make_links(grid16, 1, seed=61)
    config = ProtocolConfig(k=5, id_bits=5)
    return grid16, links, config


@pytest.mark.parametrize(
    "select", ["fdd", "pdd"], ids=["fdd", "pdd"]
)
def test_all_transitions_follow_figure_1(setup, select):
    network, links, config = setup
    validator = TraceValidator()
    select_fn = (
        fdd_select_active if select == "fdd" else make_pdd_select_active(0.3)
    )
    result = run_protocol(
        links,
        FastRuntime.for_network(network, config),
        config,
        select_fn,
        rng=2,
        observer=validator,
    )
    assert result.terminated
    assert validator.violations() == []


def test_every_round_has_the_expected_event_skeleton(setup):
    network, links, config = setup
    validator = TraceValidator()
    result = run_protocol(
        links,
        FastRuntime.for_network(network, config),
        config,
        fdd_select_active,
        rng=3,
        observer=validator,
    )
    events = validator.events()
    assert events[-1] == "terminate"
    assert events.count("demand-update") == result.rounds
    assert events.count("slot-reset") == result.rounds
    assert events.count("seal") == result.rounds
    # Every slot-reset is eventually followed by a seal before the next one.
    resets = [i for i, e in enumerate(events) if e == "slot-reset"]
    seals = [i for i, e in enumerate(events) if e == "seal"]
    for r, s in zip(resets, seals):
        assert r < s


def test_exactly_one_controller_per_round_in_exact_mode(setup):
    network, links, config = setup
    validator = TraceValidator()
    run_protocol(
        links,
        FastRuntime.for_network(network, config),
        config,
        fdd_select_active,
        rng=4,
        observer=validator,
    )
    for event, state in validator.snapshots:
        if event in ("slot-reset", "select", "resolve", "seal"):
            assert (state == NodeState.CONTROL).sum() == 1


def test_tried_nodes_stay_out_until_round_end(setup):
    """TRIED is absorbing within a slot: once tried, never active again."""
    network, links, config = setup
    validator = TraceValidator()
    run_protocol(
        links,
        FastRuntime.for_network(network, config),
        config,
        make_pdd_select_active(0.5),
        rng=5,
        observer=validator,
    )
    tried: set[int] = set()
    for event, state in validator.snapshots:
        if event == "slot-reset":
            tried.clear()
        elif event == "select":
            active = np.flatnonzero(state == NodeState.ACTIVE)
            assert not tried.intersection(active.tolist())
        elif event == "resolve":
            tried.update(np.flatnonzero(state == NodeState.TRIED).tolist())
