"""Persistence: save/load networks, link sets and schedules as .npz archives.

Reproduction artifacts (a deployed topology, the links scheduled on it, the
schedule computed) can be written to disk and reloaded bit-exactly, so
experiment outputs can be archived, diffed, and re-verified later without
re-running the protocols.

Propagation models are stored by kind + parameters (the frozen shadowing
draw is stored as the realized gain matrix, so reloaded networks reproduce
identical physics even though the generator state is gone).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.phy.propagation import (
    FreeSpace,
    LogDistancePathLoss,
    LogNormalShadowing,
    PropagationModel,
)
from repro.phy.radio import RadioConfig
from repro.scheduling.links import LinkSet
from repro.scheduling.schedule import Schedule, Slot
from repro.topology.network import Network
from repro.topology.regions import SquareRegion

_FORMAT_VERSION = 1


class _FrozenGains:
    """A propagation model replaying a stored gain matrix.

    Used when reloading networks whose model carried per-pair randomness
    (shadowing): the realized gains are the physical truth worth keeping.
    """

    def __init__(self, gains: np.ndarray, description: str):
        self._gains = np.asarray(gains, dtype=float)
        self.description = description

    def gain(self, distances: np.ndarray) -> np.ndarray:
        raise NotImplementedError(
            "frozen-gain models replay a stored matrix; distance-law "
            "evaluation is not available"
        )

    def pair_gain(self, distance_matrix: np.ndarray) -> np.ndarray:
        if distance_matrix.shape != self._gains.shape:
            raise ValueError("stored gains do not match the requested shape")
        return self._gains

    def __repr__(self) -> str:
        return f"FrozenGains({self.description})"


def _propagation_meta(model: PropagationModel) -> dict:
    if isinstance(model, LogNormalShadowing):
        return {
            "kind": "lognormal-frozen",
            "alpha": model.alpha,
            "sigma_db": model.sigma_db,
            "reference_distance": model.reference_distance,
            "reference_loss_db": model.reference_loss_db,
        }
    if isinstance(model, FreeSpace):
        return {
            "kind": "freespace",
            "reference_distance": model.reference_distance,
            "reference_loss_db": model.reference_loss_db,
        }
    if isinstance(model, LogDistancePathLoss):
        return {
            "kind": "logdistance",
            "alpha": model.alpha,
            "reference_distance": model.reference_distance,
            "reference_loss_db": model.reference_loss_db,
        }
    if isinstance(model, _FrozenGains):
        return {"kind": "frozen", "description": model.description}
    raise TypeError(f"cannot persist propagation model {type(model).__name__}")


def _propagation_from_meta(meta: dict, gains: np.ndarray | None):
    kind = meta["kind"]
    if kind == "logdistance":
        return LogDistancePathLoss(
            alpha=meta["alpha"],
            reference_distance=meta["reference_distance"],
            reference_loss_db=meta["reference_loss_db"],
        )
    if kind == "freespace":
        return FreeSpace(
            reference_distance=meta["reference_distance"],
            reference_loss_db=meta["reference_loss_db"],
        )
    if kind in ("lognormal-frozen", "frozen"):
        if gains is None:
            raise ValueError("archive is missing the frozen gain matrix")
        return _FrozenGains(gains, meta.get("description", kind))
    raise ValueError(f"unknown propagation kind {kind!r}")


def save_network(path: str | Path, network: Network) -> None:
    """Write a network (positions, powers, radio, physics) to ``path``."""
    meta = {
        "version": _FORMAT_VERSION,
        "radio": {
            "beta": network.radio.beta,
            "noise_mw": network.radio.noise_mw,
            "cs_gamma": network.radio.cs_gamma,
            "alpha": network.radio.alpha,
        },
        "region_side": network.region.side,
        "propagation": _propagation_meta(network.propagation),
    }
    arrays = {
        "positions": network.positions,
        "tx_power_mw": network.tx_power_mw,
        "meta": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    }
    needs_gains = meta["propagation"]["kind"] in ("lognormal-frozen", "frozen")
    if needs_gains:
        # Store the *realized* gains (the network's cached physics), not a
        # re-evaluation of the model.
        arrays["gains"] = network.power / network.tx_power_mw[:, None]
    np.savez_compressed(Path(path), **arrays)


def load_network(path: str | Path) -> Network:
    """Reload a network saved by :func:`save_network` (physics-identical)."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported archive version {meta.get('version')}")
        gains = data["gains"] if "gains" in data else None
        propagation = _propagation_from_meta(meta["propagation"], gains)
        return Network(
            positions=data["positions"],
            tx_power_mw=data["tx_power_mw"],
            radio=RadioConfig(**meta["radio"]),
            propagation=propagation,
            region=SquareRegion(side=meta["region_side"]),
        )


def save_link_set(path: str | Path, links: LinkSet) -> None:
    """Write a link set to ``path``."""
    np.savez_compressed(
        Path(path),
        heads=links.heads,
        tails=links.tails,
        demand=links.demand,
        ids=links.ids,
    )


def load_link_set(path: str | Path) -> LinkSet:
    with np.load(Path(path)) as data:
        return LinkSet(
            heads=data["heads"],
            tails=data["tails"],
            demand=data["demand"],
            ids=data["ids"],
        )


def save_schedule(path: str | Path, schedule: Schedule) -> None:
    """Write a schedule (with its link set) to ``path``."""
    flat: list[int] = []
    offsets = [0]
    for slot in schedule.slots:
        flat.extend(slot.links)
        offsets.append(len(flat))
    np.savez_compressed(
        Path(path),
        heads=schedule.link_set.heads,
        tails=schedule.link_set.tails,
        demand=schedule.link_set.demand,
        ids=schedule.link_set.ids,
        slot_links=np.asarray(flat, dtype=np.int64),
        slot_offsets=np.asarray(offsets, dtype=np.int64),
    )


def load_schedule(path: str | Path) -> Schedule:
    with np.load(Path(path)) as data:
        links = LinkSet(
            heads=data["heads"],
            tails=data["tails"],
            demand=data["demand"],
            ids=data["ids"],
        )
        flat = data["slot_links"]
        offsets = data["slot_offsets"]
        slots = [
            Slot(links=[int(k) for k in flat[offsets[i] : offsets[i + 1]]])
            for i in range(len(offsets) - 1)
        ]
        return Schedule(link_set=links, slots=slots)
