"""Flow sessions: the "users" layer above per-node packet arrivals.

The workload generators of :mod:`repro.traffic.generators` offer load as
anonymous per-node packet rates — adequate for locating a scheduler's
stability knee, but not for the questions a network operator actually asks:
how many *user sessions* can the mesh carry, how many must be turned away,
and what service did the admitted ones get?  This module models exactly
that population:

* **Session churn** — new flows arrive as a Poisson process (``session_rate``
  flows per epoch), each bound to a uniformly drawn source node, and depart
  when their *size* — a bounded-Pareto (heavy-tailed) packet count — has
  been fully emitted.  The active-flow population is therefore an M/G/∞-like
  churn process whose long-run offered load is
  ``session_rate * mean_size`` packets per epoch.
* **Classes** — ``cbr`` flows (voice-like) emit at a fixed rate and are
  *inelastic*: an admission controller may block them at arrival but cannot
  slow them down.  ``elastic`` flows (bulk transfers) emit as fast as their
  token bucket allows and *do* respond to per-epoch throttling.
* **Token-bucket policing** — every flow's emission is policed by its own
  token bucket (fill rate = the flow's admitted rate scaled by the current
  throttle, depth = ``burst_slots`` worth of tokens), so a throttled flow's
  backlog of intent never bursts into the network when the throttle lifts.

:class:`FlowWorkload` is a stateful :class:`~repro.traffic.generators.
TrafficGenerator` (sequential epochs, like :class:`~repro.traffic.
generators.ParetoOnOff`; :meth:`reset` rewinds), so it drops into any of
the epoch engines unchanged.  Admission decisions are delegated to an
:class:`~repro.traffic.admission.AdmissionController` — the default
``none`` controller admits everything and never throttles, which keeps the
emitted arrivals a pure function of the seed and makes the differential
guard (`controller="none"` ≡ the uncontrolled engine) exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.obs import phase
from repro.scheduling.links import LinkSet
from repro.traffic.generators import TrafficGenerator

#: Flow classes: inelastic constant-bit-rate vs throttleable elastic.
FLOW_CLASSES = ("cbr", "elastic")


def route_of(links: LinkSet, node: int) -> np.ndarray:
    """Link indices a packet sourced at ``node`` traverses to its gateway.

    Follows the routing forest's child->parent chain through
    ``links.link_of_head``; the first hop is the node's own link, the last
    is the link into the gateway.  Raises for nodes that head no link
    (gateways source no traffic).
    """
    by_head = links.link_of_head
    if int(node) not in by_head:
        raise ValueError(f"node {int(node)} heads no link (is it a gateway?)")
    route: list[int] = []
    current = int(node)
    while current in by_head:
        k = by_head[current]
        route.append(k)
        current = int(links.tails[k])
        if len(route) > links.n_links:
            raise ValueError("routing loop detected while tracing a flow route")
    return np.asarray(route, dtype=np.intp)


@dataclass
class Flow:
    """One user session: a finite packet transfer from a source node.

    Attributes
    ----------
    fid:
        Dense flow id, unique within the workload (also the delay-attribution
        key in :func:`~repro.traffic.admission.flow_delays`).
    source:
        Source node index (heads the first link of :attr:`route`).
    klass:
        ``"cbr"`` (inelastic) or ``"elastic"`` (throttleable).
    rate:
        Nominal emission rate in packets per slot — the token bucket's fill
        rate at throttle 1.
    size:
        Total packets this session transfers before departing.
    born_epoch:
        Epoch the session arrived (admission happens the same epoch).
    route:
        Link indices from source to gateway (for backpressure controllers).
    remaining:
        Packets not yet emitted; the flow departs at 0.
    tokens:
        Token-bucket level, in packets (fractional — emission floors it).
    emitted:
        Packets emitted into the network so far.
    throttled:
        Packets withheld by throttling/policing so far (intent minus
        emission while the bucket was the binding constraint).
    done_epoch:
        Epoch the last packet was emitted, or ``None`` while active.
    """

    fid: int
    source: int
    klass: str
    rate: float
    size: int
    born_epoch: int
    route: np.ndarray
    remaining: int = field(init=False)
    tokens: float = 0.0
    emitted: int = 0
    throttled: int = 0
    done_epoch: int | None = None

    def __post_init__(self) -> None:
        if self.klass not in FLOW_CLASSES:
            raise ValueError(f"klass must be one of {FLOW_CLASSES}, got {self.klass!r}")
        if self.rate <= 0:
            raise ValueError("flow rate must be positive")
        if self.size <= 0:
            raise ValueError("flow size must be positive")
        self.remaining = int(self.size)

    @property
    def active(self) -> bool:
        return self.remaining > 0


@dataclass(frozen=True)
class FlowConfig:
    """Session-population parameters for :class:`FlowWorkload`.

    Attributes
    ----------
    session_rate:
        Mean new sessions per epoch (Poisson).
    mean_size:
        Mean session size in packets; sizes are bounded Pareto with shape
        ``size_alpha`` (heavy tail, finite mean) truncated at
        ``max_size_factor * mean_size`` so a single elephant cannot dwarf a
        short run's statistics.
    size_alpha:
        Pareto shape of the size distribution (> 1).
    cbr_fraction:
        Probability a new session is ``cbr`` (the rest are ``elastic``).
    cbr_rate:
        Per-slot emission rate of cbr sessions.
    elastic_rate:
        Per-slot *peak* emission rate of elastic sessions (their token
        bucket's fill rate at throttle 1).
    burst_slots:
        Token-bucket depth, in slots' worth of tokens at the flow's rate.
    max_size_factor:
        Truncation of the size distribution, as a multiple of ``mean_size``.
    retry_attempts:
        How many times a blocked session re-offers itself before giving up
        for good (0, the default, is the historical leave-forever
        behaviour).  A session only counts toward ``sessions_blocked`` — and
        hence the blocking probability — once every attempt is exhausted.
    retry_backoff:
        Geometric back-off base: the ``k``-th retry (k = 1, 2, ...) waits
        ``ceil(retry_base_epochs * retry_backoff**(k - 1))`` epochs after
        the ``k``-th rejection — the first retry waits the base delay, and
        each further rejection multiplies it — so repeatedly rejected
        sessions thin out instead of hammering a saturated controller
        every epoch.
    retry_base_epochs:
        Epochs before the first retry.
    """

    session_rate: float = 4.0
    mean_size: int = 30
    size_alpha: float = 1.8
    cbr_fraction: float = 0.3
    cbr_rate: float = 0.02
    elastic_rate: float = 0.05
    burst_slots: float = 50.0
    max_size_factor: float = 20.0
    retry_attempts: int = 0
    retry_backoff: float = 2.0
    retry_base_epochs: int = 1

    def __post_init__(self) -> None:
        if self.session_rate < 0:
            raise ValueError("session_rate must be non-negative")
        if self.mean_size <= 0:
            raise ValueError("mean_size must be positive")
        if self.size_alpha <= 1.0:
            raise ValueError("size_alpha must exceed 1 (finite-mean Pareto)")
        if not 0.0 <= self.cbr_fraction <= 1.0:
            raise ValueError("cbr_fraction must be in [0, 1]")
        if self.cbr_rate <= 0 or self.elastic_rate <= 0:
            raise ValueError("flow rates must be positive")
        if self.burst_slots <= 0:
            raise ValueError("burst_slots must be positive")
        if self.max_size_factor < 1.0:
            raise ValueError("max_size_factor must be >= 1")
        if self.retry_attempts < 0:
            raise ValueError("retry_attempts must be non-negative")
        if self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1 (delays never shrink)")
        if self.retry_base_epochs < 1:
            raise ValueError("retry_base_epochs must be >= 1")

    def offered_rate(self, n_sources: int, epoch_slots: int) -> float:
        """Long-run offered load in packets per source node per slot —
        the lambda axis the stability sweeps plot."""
        if n_sources <= 0 or epoch_slots <= 0:
            raise ValueError("n_sources and epoch_slots must be positive")
        return self.session_rate * self.mean_size / (n_sources * epoch_slots)

    @staticmethod
    def for_offered_rate(
        rate: float, n_sources: int, epoch_slots: int, **kwargs
    ) -> "FlowConfig":
        """A config whose session churn offers ``rate`` pkt/node/slot."""
        cfg = FlowConfig(session_rate=1.0, **kwargs)
        return FlowConfig(
            session_rate=rate * n_sources * epoch_slots / cfg.mean_size,
            **kwargs,
        )


def _calibrated_size_minimum(cfg: FlowConfig) -> float:
    """Pareto minimum ``x_m`` whose *truncated* sizes average ``mean_size``.

    Sizes are drawn ``min(Pareto(x_m, alpha), cap)`` then ceil'd, with
    ``cap = max_size_factor * mean_size``.  The closed-form truncated mean

        E[min(X, cap)] = x_m + x_m/(alpha-1) * (1 - (x_m/cap)^(alpha-1))

    is strictly increasing in ``x_m`` on (0, cap], so a bisection pins the
    ``x_m`` whose truncated mean hits ``mean_size - 0.5`` (the half-packet
    discount cancels the ceil's upward bias).  The naive untruncated
    formula ``mean * (alpha-1)/alpha`` would under-offer every calibrated
    arrival rate by a few percent — enough to mislabel a sweep axis.
    """
    alpha = cfg.size_alpha
    cap = cfg.max_size_factor * cfg.mean_size

    def truncated_mean(x_m: float) -> float:
        return x_m + x_m / (alpha - 1.0) * (1.0 - (x_m / cap) ** (alpha - 1.0))

    target = max(cfg.mean_size - 0.5, 1e-9)
    lo, hi = 1e-12, float(cap)
    if truncated_mean(hi) <= target:
        return hi
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if truncated_mean(mid) < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


class FlowWorkload(TrafficGenerator):
    """A session-churn arrival process with per-flow admission control.

    Parameters
    ----------
    links:
        The forest link set packets queue on — flow sources are drawn from
        its head nodes and flow routes traced through it.
    config:
        The session-population parameters.
    controller:
        An :class:`~repro.traffic.admission.AdmissionController`; ``None``
        resolves to the pass-through ``none`` controller.  Wire the
        controller's feedback with ``run_epochs(..., on_epoch=
        workload.observe)`` (equivalently for the sharded engine).
    seed:
        Root seed; two workloads with the same seed and the same
        controller decisions replay identical arrivals.

    Like :class:`~repro.traffic.generators.ParetoOnOff` this is a stateful
    renewal-type process: epochs must be consumed in order and
    :meth:`reset` rewinds to epoch 0 (controller state is reset too).
    """

    def __init__(
        self,
        links: LinkSet,
        config: FlowConfig | None = None,
        controller=None,
        seed: int | np.random.Generator | None = None,
    ):
        sources = np.sort(np.asarray(links.heads, dtype=np.intp))
        if sources.size == 0:
            raise ValueError("the link set has no head nodes to source flows at")
        n_nodes = int(max(links.heads.max(), links.tails.max())) + 1
        super().__init__(n_nodes, 0.0, gateways=None, seed=seed)
        self.links = links
        self.config = config or FlowConfig()
        # Imported lazily: admission.py imports Flow/FlowWorkload from here.
        from repro.traffic.admission import AdmissionController, NoAdmission

        if controller is None:
            controller = NoAdmission()
        self.controller = controller
        #: Does this controller actually intervene (override admit or
        #: throttle)?  Behavior-based, not name-based: signaling air is
        #: charged exactly when admission decisions are real decisions, so
        #: a subclass that forgets cosmetic attributes still pays, and pure
        #: observers (and the pass-through baseline) stay silent.
        cls = type(controller)
        self._controller_intervenes = (
            cls.admit is not AdmissionController.admit
            or cls.throttle is not AdmissionController.throttle
        )
        self._sources = sources
        self._routes = {int(s): route_of(links, int(s)) for s in sources}
        self._size_xm = _calibrated_size_minimum(self.config)
        #: Region classifier for per-region admitted-rate aggregates, bound
        #: from the controller when it groups flows spatially
        #: (:meth:`~repro.traffic.admission.RegionalControllers.region_of_flow`).
        self._region_fn = getattr(controller, "region_of_flow", None)
        #: Control ledger for in-band signaling/report pricing, attached by
        #: the engines via :meth:`bind_control` when run with ``control=``.
        self._ledger = None
        #: Observability handle (repro.obs), attached via :meth:`bind_obs`.
        self._obs = None
        self.reset()

    def bind_control(self, ledger) -> None:
        """Price this workload's control traffic into ``ledger``.

        Called by the epoch engines when run with a ``control=``
        :class:`~repro.core.controlplane.ControlPlaneModel`.  Once bound,
        every session offer (first attempts and retries alike) books one
        ``signal`` message (the admit/deny exchange), every throttled
        elastic flow-epoch books one more (the throttle update), and every
        consumed feedback epoch books the observable-collection ``report``
        messages — one per backlogged link plus the gateway summary — to
        the epoch that reads them.  Controllers that never intervene —
        overriding neither ``admit`` nor ``throttle``, like the
        pass-through ``none`` baseline — book no signaling: no decisions
        are made, so no decision messages exist to pay for (pure observers
        still pay for the observables they consume, via
        ``needs_feedback``).  The final epoch's reports are booked past the
        last record (they describe it, nothing consumes them), so they
        appear in the ledger's totals but in no record — the
        trace-vs-ledger delta is exactly the unconsumed tail batch.

        The engines (re)bind on every run — ``bind_control(None)`` on
        unpriced ones — and :meth:`reset` also unbinds, so a rewound or
        reused workload never keeps charging a previous run's ledger.
        """
        self._ledger = ledger

    def bind_obs(self, obs) -> None:
        """Attach an observability handle (repro.obs); ``None`` unbinds.

        Once bound, the admission phase of every epoch runs inside an
        ``admission.decide`` span and books session counters
        (``admission.offered`` / ``admission.blocked`` /
        ``admission.signals``).  Observe-only: no decision reads the
        handle, so instrumented and bare runs stay bit-identical.  Engines
        rebind per run, and :meth:`reset` unbinds, exactly like
        :meth:`bind_control`.
        """
        self._obs = obs

    # -- TrafficGenerator surface ------------------------------------------

    @property
    def mean_rate(self) -> float:
        """Long-run *offered* load in packets per source node per slot.

        Needs the epoch length to convert sessions/epoch into pkt/slot, so
        it is only defined after the first :meth:`arrivals` call; use
        :meth:`FlowConfig.offered_rate` for an a-priori value.
        """
        if self._epoch_slots is None:
            return 0.0
        return self.config.offered_rate(self._sources.size, self._epoch_slots)

    def scaled(self, factor: float) -> "FlowWorkload":
        """A fresh workload (and fresh controller state) with the session
        arrival rate scaled — more users, identical per-user behaviour."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return FlowWorkload(
            self.links,
            replace(self.config, session_rate=self.config.session_rate * factor),
            controller=self.controller.fresh(),
            seed=self._entropy,
        )

    def reset(self) -> None:
        """Rewind to epoch 0: empty flow table, fresh stats and controller.

        Also unbinds any control ledger and observability handle — the
        next run's engine rebinds from its own ``control=`` / ``obs=``.
        """
        self._ledger = None
        self._obs = None
        self._next_epoch = 0
        self._epoch_slots: int | None = None
        self._observed = False
        self._next_fid = 0
        # All sessions ever admitted, in admission order (not fid order:
        # a session admitted on a retry lands after later-drawn fids).
        self.flows: list[Flow] = []
        self.active: list[Flow] = []
        self.sessions_offered = 0
        self.sessions_blocked = 0
        self.packets_emitted = 0
        self.packets_throttled = 0
        #: Blocked sessions awaiting their geometric-backoff re-offer:
        #: ``[due_epoch, attempts_made, flow]``, kept in fid order.
        self._retries: list[list] = []
        self.retries_attempted = 0  # re-offers made (excludes first offers)
        self.retry_admitted = 0  # sessions admitted on a retry
        #: Incremental admitted-rate aggregates: total, per class, and per
        #: (region, class) when the controller groups flows spatially.
        #: Maintained at admission/departure so :meth:`admitted_rate` is
        #: O(1) instead of rescanning the active-flow list per offered
        #: session (admit used to be O(new x active)).
        self._rate_total = 0.0
        self._rate_by_class: dict[str, float] = {}
        self._rate_by_region: dict[tuple[int, str], float] = {}
        #: Per-epoch admitted emissions ``(fid, source node, count)`` of the
        #: most recent epoch (regional controllers read it in ``observe``).
        self.last_emissions: list[tuple[int, int, int]] = []
        #: Delay-attribution index: ``(source link, epoch) -> [(fid, count)]``.
        self.emission_groups: dict[tuple[int, int], list[tuple[int, int]]] = {}
        self.controller.reset()

    def arrivals(self, epoch: int, n_slots: int) -> np.ndarray:
        if epoch != self._next_epoch:
            raise ValueError(
                f"FlowWorkload is a stateful session process: expected epoch "
                f"{self._next_epoch}, got {epoch}; call reset() to rewind"
            )
        if epoch >= 1 and self.controller.needs_feedback and not self._observed:
            raise RuntimeError(
                f"controller {self.controller.name!r} needs the per-epoch "
                "feedback channel but observe() was never called — wire "
                "on_epoch=workload.observe into the epoch engine, or it "
                "silently degrades to the 'none' baseline"
            )
        self._next_epoch += 1
        self._epoch_slots = n_slots
        cfg = self.config
        rng = self._rng(epoch)

        # 1. Session arrivals, admission-checked one by one (arrival order
        #    is the tie-break when the remaining cap fits only some).
        #    Due retries go first — they have been waiting longest — in fid
        #    order, then this epoch's fresh sessions; neither path consumes
        #    randomness for retries, so the arrival stream stays a pure
        #    function of the seed whatever the controller decides.
        self._signals = 0  # admit/deny + throttle messages booked this epoch
        offered_before = self.sessions_offered + self.retries_attempted
        blocked_before = self.sessions_blocked
        with phase(self._obs, "admission.decide", epoch=epoch):
            due = [entry for entry in self._retries if entry[0] <= epoch]
            if due:
                self._retries = [e for e in self._retries if e[0] > epoch]
                for _due_epoch, attempts, flow in due:
                    self.retries_attempted += 1
                    self._offer(flow, epoch, attempts)
            n_new = int(rng.poisson(cfg.session_rate))
            for _ in range(n_new):
                flow = self._draw_flow(rng, epoch)
                self.sessions_offered += 1
                self._offer(flow, epoch, 0)
        if self._obs is not None:
            offered = self.sessions_offered + self.retries_attempted - offered_before
            if offered:
                self._obs.counter("admission.offered", offered)
            blocked = self.sessions_blocked - blocked_before
            if blocked:
                self._obs.counter("admission.blocked", blocked)

        # 2. Token-bucket policed emission, throttled per flow.
        counts = np.zeros(self.n_nodes, dtype=np.int64)
        self.last_emissions = []
        still_active: list[Flow] = []
        for flow in self.active:
            throttle = 1.0
            if flow.klass == "elastic":
                throttle = float(
                    np.clip(self.controller.throttle(flow, self), 0.0, 1.0)
                )
                if throttle < 1.0:
                    self._signals += 1  # the throttle-update message
            # Epoch-granularity token bucket: the bucket refills while it
            # drains, so one epoch's allowance is carried tokens plus the
            # (throttled) fill over the epoch; what is left after emission
            # is capped at the bucket depth.
            allowance = flow.tokens + flow.rate * throttle * n_slots
            emit = min(flow.remaining, int(allowance))
            intent = min(flow.remaining, int(flow.rate * n_slots) or 1)
            if emit > 0:
                flow.remaining -= emit
                flow.emitted += emit
                counts[flow.source] += emit
                self.last_emissions.append((flow.fid, flow.source, emit))
                group = self.emission_groups.setdefault(
                    (int(self._routes[flow.source][0]), epoch), []
                )
                group.append((flow.fid, emit))
            flow.tokens = min(allowance - emit, flow.rate * cfg.burst_slots)
            withheld = max(intent - emit, 0)
            flow.throttled += withheld
            self.packets_throttled += withheld
            if flow.remaining == 0:
                flow.done_epoch = epoch
                self._book_departure(flow)
            else:
                still_active.append(flow)
        self.active = still_active
        self.packets_emitted += int(counts.sum())
        if self._signals and self._controller_intervenes:
            if self._ledger is not None:
                self._ledger.charge(epoch, "admission", "signal", self._signals)
            if self._obs is not None:
                self._obs.counter("admission.signals", self._signals)
        return counts

    def observe(self, record, queues) -> None:
        """Per-epoch feedback hook: wire as ``run_epochs(..., on_epoch=...)``.

        Forwards the epoch's record and live queues to the controller — the
        only channel through which controllers see the network (observable
        signals, never oracle state).  On priced runs the observables cost
        air: each backlogged link reports, plus the gateway's summary of
        the record, booked to the epoch that *consumes* them (the next
        one) for any controller that needs the feedback channel.
        """
        self._observed = True
        if self._ledger is not None and self.controller.needs_feedback:
            reports = int((queues.backlog > 0).sum()) + 1
            self._ledger.charge(record.epoch + 1, "admission", "report", reports)
        self.controller.observe(record, queues, self)

    # -- Session-level accounting ------------------------------------------

    @property
    def sessions_pending_retry(self) -> int:
        """Blocked sessions still holding a scheduled re-offer (neither
        admitted nor finally blocked yet)."""
        return len(self._retries)

    @property
    def sessions_admitted(self) -> int:
        return (
            self.sessions_offered
            - self.sessions_blocked
            - self.sessions_pending_retry
        )

    @property
    def blocking_probability(self) -> float:
        """Fraction of offered sessions finally rejected (Erlang's B).

        With retries enabled a session only counts as blocked once every
        attempt is exhausted; sessions still awaiting a re-offer count
        neither way until they resolve (``sessions_pending_retry``).
        """
        if self.sessions_offered == 0:
            return 0.0
        return self.sessions_blocked / self.sessions_offered

    def admitted_rate(self, klass: str | None = None) -> float:
        """Aggregate nominal rate (pkt/slot) of the active admitted flows,
        optionally restricted to one class — what a cap compares against.

        Served from incrementally maintained aggregates (updated at
        admission and departure), so a controller consulting it per
        offered session stays O(1) rather than rescanning the active-flow
        list; clamped at 0 against float round-off from the add/subtract
        churn.
        """
        if klass is None:
            return max(self._rate_total, 0.0)
        return max(self._rate_by_class.get(klass, 0.0), 0.0)

    def admitted_rate_in_region(self, region: int, klass: str | None = None) -> float:
        """Like :meth:`admitted_rate`, restricted to flows the controller's
        region classifier maps to ``region`` (0.0 when no classifier is
        bound — a regionless controller has no regional aggregate)."""
        if self._region_fn is None:
            return 0.0
        if klass is None:
            total = sum(
                rate
                for (reg, _k), rate in self._rate_by_region.items()
                if reg == region
            )
            return max(total, 0.0)
        return max(self._rate_by_region.get((region, klass), 0.0), 0.0)

    def summary(self) -> str:
        text = (
            f"FlowWorkload(sessions={self.sessions_offered} offered, "
            f"{self.sessions_blocked} blocked ({self.blocking_probability:.0%}), "
            f"{len(self.active)} active, emitted={self.packets_emitted}, "
            f"throttled={self.packets_throttled}"
        )
        if self.retries_attempted or self.sessions_pending_retry:
            text += (
                f", retries={self.retries_attempted} "
                f"({self.retry_admitted} admitted, "
                f"{self.sessions_pending_retry} pending)"
            )
        return text + ")"

    # -- internals ----------------------------------------------------------

    def _offer(self, flow: Flow, epoch: int, attempts_made: int) -> bool:
        """One admission attempt: admit, or schedule a backoff retry, or
        give up.  Every attempt is one admit/deny signaling exchange."""
        self._signals += 1
        if self.controller.admit(flow, self):
            self.flows.append(flow)
            self.active.append(flow)
            self._book_admit(flow)
            if attempts_made:
                self.retry_admitted += 1
            return True
        if attempts_made < self.config.retry_attempts:
            delay = int(
                np.ceil(
                    self.config.retry_base_epochs
                    * self.config.retry_backoff**attempts_made
                )
            )
            self._retries.append([epoch + delay, attempts_made + 1, flow])
        else:
            self.sessions_blocked += 1
        return False

    def _book_admit(self, flow: Flow) -> None:
        self._rate_total += flow.rate
        self._rate_by_class[flow.klass] = (
            self._rate_by_class.get(flow.klass, 0.0) + flow.rate
        )
        if self._region_fn is not None:
            key = (int(self._region_fn(flow)), flow.klass)
            self._rate_by_region[key] = self._rate_by_region.get(key, 0.0) + flow.rate

    def _book_departure(self, flow: Flow) -> None:
        self._rate_total -= flow.rate
        self._rate_by_class[flow.klass] = (
            self._rate_by_class.get(flow.klass, 0.0) - flow.rate
        )
        if self._region_fn is not None:
            key = (int(self._region_fn(flow)), flow.klass)
            self._rate_by_region[key] = self._rate_by_region.get(key, 0.0) - flow.rate

    def _draw_flow(self, rng: np.random.Generator, epoch: int) -> Flow:
        cfg = self.config
        source = int(self._sources[rng.integers(self._sources.size)])
        klass = "cbr" if rng.random() < cfg.cbr_fraction else "elastic"
        rate = cfg.cbr_rate if klass == "cbr" else cfg.elastic_rate
        # Bounded Pareto size: x_m * U^(-1/alpha) truncated at the cap,
        # with x_m calibrated so the *truncated* (and ceil'd) size really
        # averages mean_size — the naive untruncated formula would offer a
        # few percent less than every swept lambda claims.
        size = self._size_xm / np.power(rng.random(), 1.0 / cfg.size_alpha)
        size = int(np.ceil(min(size, cfg.max_size_factor * cfg.mean_size)))
        fid = self._next_fid
        self._next_fid += 1
        return Flow(
            fid=fid,
            source=source,
            klass=klass,
            rate=rate,
            size=max(size, 1),
            born_epoch=epoch,
            route=self._routes[source],
        )
