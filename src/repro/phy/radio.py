"""Radio configuration: transmit powers, noise floor, decode and CS thresholds.

The paper assumes no transmit power control (each node uses a fixed level,
possibly different per node — "heterogeneous power" in the unplanned
scenario) and a carrier-sensing range at least as large as the communication
range.  :class:`RadioConfig` gathers these per-network constants and derived
quantities in one immutable value object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.phy.units import dbm_to_mw
from repro.util.validation import check_positive


@dataclass(frozen=True)
class RadioConfig:
    """Physical-layer constants for one network.

    Attributes
    ----------
    beta:
        SINR decode threshold (linear ratio).  The paper's constant ``β``.
    noise_mw:
        Background noise power ``N`` in milliwatts.
    cs_gamma:
        Ratio ``r_CS / r_c`` between carrier-sense range and communication
        range.  Carrier sensing detects strictly weaker signals than decoding;
        with path-loss exponent ``alpha`` a range ratio ``γ`` corresponds to a
        detection threshold ``γ^(-alpha)`` below the decode threshold.  The
        paper's impossibility/diameter analysis uses ``γ = 1``; its 64-node
        experiments use an interference diameter of 5 which corresponds to
        ``γ ≈ 3`` on the 8x8 grid.
    alpha:
        Path-loss exponent used to convert ``cs_gamma`` into a power
        threshold ratio (must match the propagation model's exponent).
    """

    beta: float = 10.0  # 10 dB decode threshold.
    noise_mw: float = dbm_to_mw(-90.0)
    cs_gamma: float = 3.0
    alpha: float = 3.0

    def __post_init__(self) -> None:
        check_positive("beta", self.beta)
        check_positive("noise_mw", self.noise_mw)
        check_positive("cs_gamma", self.cs_gamma)
        check_positive("alpha", self.alpha)
        if self.beta <= 1.0:
            raise ValueError(
                "beta must exceed 1 (0 dB): sub-unity thresholds would let a "
                f"radio decode two concurrent frames at once, got {self.beta}"
            )
        if self.cs_gamma < 1.0:
            raise ValueError(
                "cs_gamma must be >= 1 (carrier-sense range cannot be smaller "
                f"than communication range), got {self.cs_gamma}"
            )

    @property
    def decode_power_mw(self) -> float:
        """Minimum received power that decodes with zero interference."""
        return self.beta * self.noise_mw

    @property
    def cs_threshold_mw(self) -> float:
        """Carrier-sense detection threshold in mW.

        A node detects channel activity when total received power exceeds
        this.  Derived from the decode threshold and ``cs_gamma`` through the
        path-loss law: a signal decodable at range ``r`` is detectable at
        range ``γ·r``.
        """
        return self.decode_power_mw / (self.cs_gamma**self.alpha)

    def with_cs_gamma(self, cs_gamma: float) -> "RadioConfig":
        """Return a copy with a different carrier-sense range ratio."""
        return replace(self, cs_gamma=cs_gamma)


def uniform_tx_power(n: int, power_dbm: float = 12.0) -> np.ndarray:
    """Homogeneous transmit power vector (mW) for ``n`` nodes."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return np.full(n, dbm_to_mw(power_dbm), dtype=float)


def heterogeneous_tx_power(
    n: int,
    rng: np.random.Generator,
    low_dbm: float = 10.0,
    high_dbm: float = 14.0,
) -> np.ndarray:
    """Per-node transmit powers drawn uniformly (in dBm) from a range.

    Models the paper's "unplanned deployment with heterogeneous transmission
    power".  Powers are fixed for the lifetime of the network (the paper
    assumes no power control).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if high_dbm < low_dbm:
        raise ValueError(f"high_dbm ({high_dbm}) must be >= low_dbm ({low_dbm})")
    return dbm_to_mw(rng.uniform(low_dbm, high_dbm, size=n))
