"""Protocol configuration, fault configuration, states, step tallies."""

import pytest

from repro.core.config import NO_FAULTS, FaultConfig, ProtocolConfig
from repro.core.events import StepTally
from repro.core.states import ALLOWED_TRANSITIONS, NodeState


class TestProtocolConfig:
    def test_defaults_match_paper(self):
        config = ProtocolConfig()
        assert config.k == 5
        assert config.smbytes == 15

    def test_with_k_and_with_p(self):
        config = ProtocolConfig()
        assert config.with_k(9).k == 9
        assert config.with_p(0.7).p_active == 0.7
        assert config.k == 5  # original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            ProtocolConfig(k=0)
        with pytest.raises(ValueError):
            ProtocolConfig(p_active=1.5)
        with pytest.raises(ValueError):
            ProtocolConfig(id_bits=0)
        with pytest.raises(ValueError):
            ProtocolConfig(max_rounds=0)


class TestFaultConfig:
    def test_faultless_flag(self):
        assert NO_FAULTS.is_faultless
        assert not FaultConfig(scream_miss_prob=0.1).is_faultless

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(scream_miss_prob=-0.1)


class TestStates:
    def test_states_are_distinct(self):
        values = [s.value for s in NodeState]
        assert len(set(values)) == len(values)

    def test_figure1_transitions_present(self):
        assert (NodeState.DORMANT, NodeState.CONTROL) in ALLOWED_TRANSITIONS
        assert (NodeState.ACTIVE, NodeState.ALLOCATED) in ALLOWED_TRANSITIONS
        assert (NodeState.ACTIVE, NodeState.TRIED) in ALLOWED_TRANSITIONS
        assert (NodeState.CONTROL, NodeState.COMPLETE) in ALLOWED_TRANSITIONS

    def test_illegal_transition_absent(self):
        assert (NodeState.COMPLETE, NodeState.ACTIVE) not in ALLOWED_TRANSITIONS


class TestStepTally:
    def test_add_scream_books_k_slots(self):
        tally = StepTally()
        tally.add_scream(5)
        tally.add_scream(5)
        assert tally.scream_calls == 2
        assert tally.scream_slots == 10

    def test_add_handshake_books_both_subslots(self):
        tally = StepTally()
        tally.add_handshake()
        assert tally.data_subslots == 1
        assert tally.ack_subslots == 1

    def test_total_steps(self):
        tally = StepTally()
        tally.add_scream(3)
        tally.add_handshake()
        tally.add_sync(2)
        assert tally.total_steps == 3 + 2 + 2

    def test_merged_with_sums_everything(self):
        a, b = StepTally(), StepTally()
        a.add_scream(4)
        b.add_handshake()
        b.rounds = 3
        merged = a.merged_with(b)
        assert merged.scream_slots == 4
        assert merged.data_subslots == 1
        assert merged.rounds == 3
        # Inputs untouched.
        assert a.rounds == 0

    def test_as_dict_roundtrip(self):
        tally = StepTally()
        tally.add_scream(2)
        clone = StepTally(**tally.as_dict())
        assert clone.as_dict() == tally.as_dict()
