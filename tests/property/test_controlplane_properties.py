"""Property tests for in-band control-plane pricing (DESIGN.md §10).

Two laws over randomized operating points:

* **Zero-price identity** — with every message class at 0 bytes, both
  epoch engines reproduce their unpriced traces epoch-for-epoch under
  every reschedule policy (hypothesis draws the rate, policy, and arrival
  seed).
* **Monotone pricing** — at a light operating point whose demand path is
  price-invariant (the schedule cycles many times per epoch, so a slot or
  two of control overhead never changes what gets served), scaling every
  message price up never books less control air, and a priced run's
  per-epoch overhead never drops below the free idealization's.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import build_routing_forest, planned_gateways
from repro.scheduling.links import forest_link_set
from repro.topology.network import grid_network
from repro.traffic import (
    RESCHEDULE_POLICIES,
    ControlPlaneModel,
    EpochConfig,
    PoissonArrivals,
    centralized_scheduler,
    plan_for_network,
    run_epochs,
    run_epochs_sharded,
    sharded_centralized_factory,
)
from repro.util.rng import spawn

FIELDS = (
    "arrivals",
    "served",
    "delivered",
    "backlog_end",
    "demand_scheduled",
    "schedule_length",
    "overhead_slots",
    "cache_hit",
    "patched",
    "drift",
    "control_slots",
    "reconciled",
)


def _functional(trace):
    return [tuple(getattr(r, f) for f in FIELDS) for r in trace.records]


@pytest.fixture(scope="module")
def mesh():
    network = grid_network(5, 5, density_per_km2=1000.0)
    gateways = planned_gateways(5, 5, 2)
    forest = build_routing_forest(network.comm_adj, gateways, rng=spawn(31, "f"))
    links = forest_link_set(forest, np.zeros(network.n_nodes, dtype=np.int64))
    return network, gateways, links


@given(
    rate=st.floats(min_value=0.003, max_value=0.03),
    policy=st.sampled_from(RESCHEDULE_POLICIES),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=12, deadline=None)
def test_zero_priced_monolithic_trace_is_identical(mesh, rate, policy, seed):
    network, gateways, links = mesh
    config = EpochConfig(epoch_slots=100, n_epochs=4, reschedule_policy=policy)

    def generator():
        return PoissonArrivals(
            network.n_nodes, rate, gateways=gateways, seed=spawn(seed, "g")
        )

    bare = run_epochs(
        links,
        generator(),
        centralized_scheduler(network.model),
        config,
        model=network.model,
    )
    priced = run_epochs(
        links,
        generator(),
        centralized_scheduler(network.model),
        config,
        model=network.model,
        control=ControlPlaneModel(),
    )
    assert _functional(priced) == _functional(bare)
    assert np.array_equal(priced.queues.delay_array(), bare.queues.delay_array())
    assert priced.ledger.total_seconds == 0.0


@given(
    rate=st.floats(min_value=0.003, max_value=0.02),
    policy=st.sampled_from(RESCHEDULE_POLICIES),
    n_shards=st.sampled_from([1, 4]),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=8, deadline=None)
def test_zero_priced_sharded_trace_is_identical(mesh, rate, policy, n_shards, seed):
    network, gateways, links = mesh
    config = EpochConfig(epoch_slots=100, n_epochs=3, reschedule_policy=policy)
    plan = plan_for_network(
        links, network, n_shards=n_shards, interference_radius_m=80.0
    )

    def generator():
        return PoissonArrivals(
            network.n_nodes, rate, gateways=gateways, seed=spawn(seed, "g")
        )

    bare = run_epochs_sharded(
        plan, generator(), sharded_centralized_factory(), network.model, config
    )
    priced = run_epochs_sharded(
        plan,
        generator(),
        sharded_centralized_factory(),
        network.model,
        config,
        control=ControlPlaneModel(),
    )
    assert _functional(priced) == _functional(bare)
    assert np.array_equal(priced.queues.backlog, bare.queues.backlog)
    assert priced.ledger.total_seconds == 0.0


@given(
    scales=st.tuples(
        st.floats(min_value=0.0, max_value=4.0),
        st.floats(min_value=0.0, max_value=4.0),
    ),
    seed=st.integers(min_value=0, max_value=2**12),
)
@settings(max_examples=10, deadline=None)
def test_priced_overhead_monotone_in_message_prices(mesh, scales, seed):
    """Scaling every message price up books monotonically more control air,
    and the priced overhead never undercuts the free idealization.

    The operating point is light on purpose: a short schedule cycling many
    times per epoch serves every backlog whatever the (few) control slots
    cost, so the message *counts* are price-invariant and the comparison
    is pure pricing.
    """
    network, gateways, links = mesh
    lo, hi = sorted(scales)
    config = EpochConfig(epoch_slots=150, n_epochs=4, reschedule_policy="patch")

    def run(scale):
        generator = PoissonArrivals(
            network.n_nodes, 0.006, gateways=gateways, seed=spawn(seed, "g")
        )
        return run_epochs(
            links,
            generator,
            centralized_scheduler(network.model),
            config,
            model=network.model,
            control=ControlPlaneModel.default_priced().scaled(scale),
        )

    free, low, high = run(0.0), run(lo), run(hi)
    # Price-invariant demand path => identical message census.
    assert (
        free.control_messages_total
        == low.control_messages_total
        == high.control_messages_total
    )
    assert low.ledger.total_seconds <= high.ledger.total_seconds
    assert free.ledger.total_seconds == 0.0
    for f_rec, l_rec, h_rec in zip(free.records, low.records, high.records):
        assert f_rec.overhead_slots <= l_rec.overhead_slots <= h_rec.overhead_slots
        assert f_rec.control_slots == 0
        assert l_rec.control_slots <= h_rec.control_slots
