"""The lock-step engine: per-node generator programs over the shared medium.

A *node program* is a Python generator that yields one action per
synchronized slot — either a :class:`~repro.simulation.medium.Transmission`
or ``None`` (listen) — and receives back its local
:class:`~repro.simulation.medium.SlotOutcome`.  Programs therefore only see
what a real node would see; the network-wide result of a primitive emerges
from the flood dynamics instead of being computed globally.

Programs terminate by ``return``-ing a value; the engine collects return
values per node.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.simulation.medium import Medium, SlotOutcome, Transmission

#: A node program: yields Transmission|None per slot, receives SlotOutcome.
NodeProgram = Generator["Transmission | None", SlotOutcome, Any]


class SyncEngine:
    """Runs one generator program per node in global lock-step."""

    def __init__(self, medium: Medium):
        self.medium = medium
        self.slots_elapsed = 0

    def run(
        self,
        programs: list[NodeProgram],
        max_slots: int = 1_000_000,
    ) -> list[Any]:
        """Drive all programs to completion; return their return values.

        All programs are stepped once per slot; the slot's transmissions are
        resolved jointly by the medium and each program receives its own
        outcome.  Programs must all finish within ``max_slots`` (they are
        slot-synchronous protocols with deterministic horizons).

        Raises
        ------
        RuntimeError
            If some program is still running after ``max_slots`` or if
            programs finish at different slots (protocol desynchronization —
            a bug in the program, not a legal outcome).
        """
        n = self.medium.n_nodes
        if len(programs) != n:
            raise ValueError(f"need exactly {n} programs, got {len(programs)}")

        results: list[Any] = [None] * n
        finished = [False] * n
        # Prime every generator to its first yield.
        actions: list[Transmission | None] = [None] * n
        for i, prog in enumerate(programs):
            try:
                actions[i] = prog.send(None)
            except StopIteration as stop:
                finished[i] = True
                results[i] = stop.value

        for _ in range(max_slots):
            if all(finished):
                return results
            if any(finished):
                running = [i for i, f in enumerate(finished) if not f]
                done = [i for i, f in enumerate(finished) if f]
                raise RuntimeError(
                    f"programs desynchronized: {done[:5]} finished while "
                    f"{running[:5]} still run"
                )
            transmissions = [a for a in actions if a is not None]
            outcomes = self.medium.resolve(transmissions)
            self.slots_elapsed += 1
            for i, prog in enumerate(programs):
                try:
                    actions[i] = prog.send(outcomes[i])
                except StopIteration as stop:
                    finished[i] = True
                    results[i] = stop.value
                    actions[i] = None
        if not all(finished):
            raise RuntimeError(f"programs did not finish within {max_slots} slots")
        return results
