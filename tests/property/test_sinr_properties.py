"""Property tests on SINR physics and slot feasibility invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.phy.gain import received_power_matrix
from repro.phy.interference import PhysicalInterferenceModel
from repro.phy.propagation import LogDistancePathLoss
from repro.phy.radio import RadioConfig
from repro.phy.sinr import sinr_for_links
from repro.scheduling.feasibility import SlotState

NOISE = 1e-9


@st.composite
def random_instance(draw):
    """A random node layout plus a random node-disjoint link set."""
    n = draw(st.integers(min_value=4, max_value=16))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0, 300.0, size=(n, 2))
    # Ensure minimum pairwise separation so gains stay finite-ish.
    positions += np.arange(n)[:, None] * 1e-3
    tx = rng.uniform(5.0, 30.0, size=n)
    power = received_power_matrix(positions, tx, LogDistancePathLoss(alpha=3.0))

    perm = rng.permutation(n)
    max_links = n // 2
    n_links = draw(st.integers(min_value=1, max_value=max_links))
    senders = perm[:n_links]
    receivers = perm[n_links : 2 * n_links]
    return power, senders.astype(np.intp), receivers.astype(np.intp)


@given(random_instance())
@settings(max_examples=60, deadline=None)
def test_adding_interferer_never_raises_sinr(instance):
    power, senders, receivers = instance
    if senders.size < 2:
        return
    subset = sinr_for_links(power, senders[:-1], receivers[:-1], NOISE)
    full = sinr_for_links(power, senders, receivers, NOISE)
    assert (full[:-1] <= subset + 1e-12).all()


@given(random_instance())
@settings(max_examples=60, deadline=None)
def test_sinr_nonnegative_and_finite(instance):
    power, senders, receivers = instance
    sinr = sinr_for_links(power, senders, receivers, NOISE)
    assert (sinr >= 0).all()
    assert np.isfinite(sinr).all()


@given(random_instance())
@settings(max_examples=60, deadline=None)
def test_feasible_sets_closed_under_removal(instance):
    """Removing any link from a feasible set keeps it feasible."""
    power, senders, receivers = instance
    model = PhysicalInterferenceModel(power, RadioConfig())
    if not model.is_feasible(senders, receivers):
        return
    for drop in range(senders.size):
        keep = np.arange(senders.size) != drop
        assert model.is_feasible(senders[keep], receivers[keep])


@given(random_instance())
@settings(max_examples=60, deadline=None)
def test_slotstate_agrees_with_exact_model(instance):
    """Incremental SlotState bookkeeping == exact-model evaluation."""
    power, senders, receivers = instance
    model = PhysicalInterferenceModel(power, RadioConfig())
    state = SlotState(model)
    cur_s: list[int] = []
    cur_r: list[int] = []
    for s, r in zip(senders, receivers):
        shares = s in cur_s or s in cur_r or r in cur_s or r in cur_r
        exact = not shares and model.is_feasible(
            np.append(cur_s, s).astype(np.intp),
            np.append(cur_r, r).astype(np.intp),
        )
        assert state.can_add(int(s), int(r)) == exact
        if exact:
            state.add(int(s), int(r))
            cur_s.append(int(s))
            cur_r.append(int(r))
    assert state.is_feasible()


@given(random_instance())
@settings(max_examples=40, deadline=None)
def test_handshake_mask_upper_bounds_feasible_mask(instance):
    """Conditional ACKs can only help: handshake >= feasible per link."""
    power, senders, receivers = instance
    model = PhysicalInterferenceModel(power, RadioConfig())
    feasible = model.feasible_mask(senders, receivers)
    handshake = model.handshake_mask(senders, receivers)
    assert (handshake | ~feasible).all()  # feasible ⇒ handshake
