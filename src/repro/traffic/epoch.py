"""Epoch-based online rescheduling: the closed traffic/scheduling loop.

Every epoch of ``epoch_slots`` data slots:

1. the workload generator emits this epoch's per-node packet arrivals,
   which enter the per-link queues;
2. the live backlogs are snapshot into a demand vector over the same link
   set, and a scheduler (centralized GreedyPhysical, the FDD/PDD
   distributed protocols, or the serialized baseline) is re-run on it;
3. the scheduler's *protocol overhead* — the air time its distributed
   computation consumed, priced by the :class:`~repro.core.timing.TimingModel`
   — is converted into data slots and charged against the epoch;
4. the remaining slots of the epoch play the computed schedule cyclically,
   each played slot serving one packet on every member link with backlog.

Slots are "data slots" of ``slot_seconds`` wall-clock seconds each (a slot
carries one aggregated traffic burst); the control plane's SCREAM microslots
are orders of magnitude shorter, which is what makes online rescheduling
affordable — exactly the paper's argument for recomputing schedules
"whenever traffic demands change".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.core.config import ProtocolConfig
from repro.core.timing import TimingModel
from repro.phy.interference import PhysicalInterferenceModel
from repro.scheduling.greedy_physical import greedy_physical
from repro.scheduling.linear import linear_schedule
from repro.scheduling.links import LinkSet
from repro.scheduling.schedule import Schedule
from repro.topology.network import Network
from repro.traffic.generators import TrafficGenerator
from repro.traffic.queues import LinkQueues
from repro.util.rng import freeze_root, spawn


@dataclass(frozen=True)
class EpochSchedule:
    """A scheduler's answer for one epoch: the schedule plus its air cost."""

    schedule: Schedule
    overhead_seconds: float = 0.0


#: A scheduler usable by the epoch loop: ``(links_with_demand, epoch) ->``
#: :class:`EpochSchedule`.  ``links`` carries the backlog snapshot as its
#: demand vector; ``epoch`` lets distributed schedulers derive per-epoch rngs.
EpochSchedulerFn = Callable[[LinkSet, int], EpochSchedule]


@dataclass(frozen=True)
class EpochConfig:
    """Epoch-loop parameters.

    Attributes
    ----------
    epoch_slots:
        Data slots per epoch (the rescheduling period ``T``).
    n_epochs:
        Epochs to simulate.
    slot_seconds:
        Wall-clock duration of one data slot, used to convert a distributed
        scheduler's execution time into whole data slots of overhead.
    demand_cap:
        Optional per-link cap on the scheduled backlog snapshot (a link can
        serve at most ``epoch_slots`` packets per epoch anyway, so capping
        bounds scheduler cost in overload without changing stable behaviour).
    divergence_factor:
        When set, stop early once the end-of-epoch backlog exceeds this
        multiple of the *mean* per-epoch arrivals so far — the signature of
        an unstable operating point (the trace is marked ``diverged``).
        Averaging keeps one quiet epoch of a bursty workload from reading
        a draining post-burst backlog as divergence.
    """

    epoch_slots: int = 300
    n_epochs: int = 10
    slot_seconds: float = 0.04
    demand_cap: int | None = None
    divergence_factor: float | None = None

    def __post_init__(self) -> None:
        if self.epoch_slots <= 0:
            raise ValueError("epoch_slots must be positive")
        if self.n_epochs <= 0:
            raise ValueError("n_epochs must be positive")
        if self.slot_seconds <= 0:
            raise ValueError("slot_seconds must be positive")
        if self.demand_cap is not None and self.demand_cap <= 0:
            raise ValueError("demand_cap must be positive when given")
        if self.divergence_factor is not None and self.divergence_factor <= 0:
            raise ValueError("divergence_factor must be positive when given")


@dataclass(frozen=True)
class EpochRecord:
    """Per-epoch accounting."""

    epoch: int
    arrivals: int
    served: int  # packet-hops transmitted this epoch
    delivered: int  # packets that reached a gateway this epoch
    backlog_end: int
    demand_scheduled: int
    schedule_length: int
    overhead_slots: int


@dataclass
class TrafficTrace:
    """Outcome of a full epoch-loop run."""

    config: EpochConfig
    records: list[EpochRecord] = field(default_factory=list)
    diverged: bool = False
    queues: LinkQueues | None = None

    @property
    def n_epochs_run(self) -> int:
        return len(self.records)

    @property
    def total_slots(self) -> int:
        return self.n_epochs_run * self.config.epoch_slots

    @property
    def delivered_total(self) -> int:
        return sum(r.delivered for r in self.records)

    @property
    def arrivals_total(self) -> int:
        return sum(r.arrivals for r in self.records)

    def backlog_series(self) -> np.ndarray:
        return np.asarray([r.backlog_end for r in self.records], dtype=np.int64)

    def summary(self) -> str:
        tail = " DIVERGED" if self.diverged else ""
        backlog = self.records[-1].backlog_end if self.records else 0
        return (
            f"TrafficTrace(epochs={self.n_epochs_run}, "
            f"arrivals={self.arrivals_total}, delivered={self.delivered_total}, "
            f"backlog={backlog}{tail})"
        )


def run_epochs(
    links: LinkSet,
    generator: TrafficGenerator,
    scheduler: EpochSchedulerFn,
    config: EpochConfig | None = None,
) -> TrafficTrace:
    """Run the closed arrival/reschedule/serve loop; return its trace."""
    cfg = config or EpochConfig()
    queues = LinkQueues(links)
    trace = TrafficTrace(config=cfg, queues=queues)
    T = cfg.epoch_slots

    for epoch in range(cfg.n_epochs):
        start = epoch * T
        arrived = queues.arrive(generator.arrivals(epoch, T), start)

        snapshot = queues.backlog.copy()
        if cfg.demand_cap is not None:
            np.minimum(snapshot, cfg.demand_cap, out=snapshot)
        served = 0
        delivered_before = queues.delivered_total
        overhead_slots = 0
        schedule_length = 0

        if snapshot.sum() > 0:
            demand_links = replace(links, demand=snapshot)
            planned = scheduler(demand_links, epoch)
            schedule_length = planned.schedule.length
            overhead_slots = math.ceil(planned.overhead_seconds / cfg.slot_seconds)
            # Only the first T - overhead slots can ever play (the cyclic
            # index stays below the window when the schedule is longer), so
            # don't materialize arrays for the unplayable tail.
            playable = max(T - overhead_slots, 0)
            slot_links = [s.as_array() for s in planned.schedule.slots[:playable]]
            if slot_links:
                for t in range(overhead_slots, T):
                    served += queues.serve_slot(
                        slot_links[(t - overhead_slots) % len(slot_links)], start + t
                    )

        trace.records.append(
            EpochRecord(
                epoch=epoch,
                arrivals=arrived,
                served=served,
                delivered=queues.delivered_total - delivered_before,
                backlog_end=queues.total_backlog(),
                demand_scheduled=int(snapshot.sum()),
                schedule_length=schedule_length,
                overhead_slots=overhead_slots,
            )
        )
        mean_arrivals = trace.arrivals_total / trace.n_epochs_run
        if (
            cfg.divergence_factor is not None
            and mean_arrivals > 0
            and queues.total_backlog() > cfg.divergence_factor * mean_arrivals
        ):
            trace.diverged = True
            break
    return trace


# --------------------------------------------------------------------------
# Scheduler adapters
# --------------------------------------------------------------------------


def serialized_scheduler() -> EpochSchedulerFn:
    """The zero-overhead worst case: one link per slot (TDMA round-robin)."""

    def schedule(links: LinkSet, epoch: int) -> EpochSchedule:
        return EpochSchedule(linear_schedule(links))

    return schedule


def centralized_scheduler(
    model: PhysicalInterferenceModel,
    ordering: str = "id",
    overhead_seconds: float = 0.0,
) -> EpochSchedulerFn:
    """GreedyPhysical re-run on every epoch's backlog snapshot.

    ``overhead_seconds`` lets callers charge a fixed cost for shipping
    backlogs to and schedules from a central controller (0 models a free
    oracle, the usual baseline).
    """

    def schedule(links: LinkSet, epoch: int) -> EpochSchedule:
        return EpochSchedule(greedy_physical(links, model, ordering), overhead_seconds)

    return schedule


def distributed_scheduler(
    network: Network,
    protocol: Callable[..., object],
    config: ProtocolConfig | None = None,
    timing: TimingModel | None = None,
    seed: int | np.random.Generator | None = None,
) -> EpochSchedulerFn:
    """A distributed protocol (``fdd_on_network`` / ``pdd_on_network`` /
    ``afdd_on_network``) re-run per epoch, with its execution time priced
    from the step tally it consumed.

    The protocol's schedule *is* the served schedule, and its measured air
    time becomes the epoch's overhead — the closed-loop cost of computing
    schedules distributedly instead of by a free centralized oracle.
    """
    cfg = config or ProtocolConfig()
    price = timing or TimingModel(scream_bytes=cfg.smbytes)
    root = freeze_root(seed)  # frozen so each epoch's rng is reproducible

    def schedule(links: LinkSet, epoch: int) -> EpochSchedule:
        result = protocol(network, links, cfg, rng=spawn(root, "epoch", epoch))
        return EpochSchedule(result.schedule, price.execution_time(result.tally))

    return schedule
