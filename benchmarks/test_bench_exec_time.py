"""Benches for the execution-time figures (E5/Fig8, E6/Fig9).

The protocol executions are collected once; each figure prices the step
tallies under its parameter sweep.  The benchmark cost is dominated by the
actual FDD/PDD runs, as in the paper's GTNetS study.
"""

import pytest

from repro.experiments.exec_time import (
    clock_skew_experiment,
    collect_tallies,
    exec_time_experiment,
    skew_tolerance,
)


@pytest.fixture(scope="module")
def tallies(bench_profile):
    return collect_tallies(bench_profile)


@pytest.mark.benchmark(group="figures")
def test_fig8_exec_time_vs_size_and_diameter(
    benchmark, bench_profile, tallies, save_table
):
    table = benchmark.pedantic(
        exec_time_experiment,
        args=(bench_profile, tallies),
        rounds=1,
        iterations=1,
    )
    save_table("fig8_exec_time", table)
    assert table.n_rows == len(bench_profile.exec_time_sweep)


@pytest.mark.benchmark(group="figures")
def test_fig9_exec_time_vs_clock_skew(
    benchmark, bench_profile, tallies, save_table
):
    table = benchmark.pedantic(
        clock_skew_experiment,
        args=(bench_profile, tallies),
        rounds=1,
        iterations=1,
    )
    save_table("fig9_clock_skew", table)
    # The paper's headline: PDD tolerates roughly 10x the skew FDD does.
    fdd_tol = skew_tolerance(tallies.fdd[0])
    pdd_tol = skew_tolerance(tallies.pdd[0])
    assert pdd_tol > 2 * fdd_tol
