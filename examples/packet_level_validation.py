"""Watching the protocol run node by node on the packet-level engine.

Everything in the experiments uses the vectorized runtime; this example
demonstrates the ground truth it is validated against — per-node generator
programs whose only world access is "transmit or listen, once per slot" —
and shows both substrates produce bit-identical protocol executions.

Run:  python examples/packet_level_validation.py
"""

import time

import numpy as np

from repro import (
    FastRuntime,
    PacketRuntime,
    ProtocolConfig,
    aggregate_demand,
    build_routing_forest,
    forest_link_set,
    planned_gateways,
    uniform_node_demand,
)
from repro.core.fdd import run_fdd
from repro.simulation import Medium, SyncEngine, scream_program
from repro.topology import grid_network
from repro.util.rng import spawn


def make_demo_links(network):
    """A small forest link set on the demo grid."""
    gws = planned_gateways(4, 4, 1)
    forest = build_routing_forest(network.comm_adj, gws, rng=spawn(5, "forest"))
    demand = uniform_node_demand(
        network.n_nodes, spawn(5, "demand"), low=1, high=3, gateways=gws
    )
    return forest_link_set(forest, aggregate_demand(forest, demand))


def scream_demo(network) -> None:
    """One SCREAM, observed slot by slot from node programs."""
    k = int(network.interference_diameter()) + 1
    medium = Medium(network.model)
    engine = SyncEngine(medium)
    source = 0
    programs = [
        scream_program(i, i == source, k) for i in range(network.n_nodes)
    ]
    results = engine.run(programs)
    print(
        f"SCREAM from node {source}: {sum(results)}/{network.n_nodes} nodes "
        f"heard it within K={k} slots ({medium.slots_resolved} medium slots)"
    )


def main() -> None:
    network = grid_network(4, 4, density_per_km2=2000.0)
    scream_demo(network)

    links = make_demo_links(network)
    config = ProtocolConfig(k=5, id_bits=5)

    t0 = time.perf_counter()
    fast = run_fdd(links, FastRuntime.for_network(network, config), config, rng=9)
    t_fast = time.perf_counter() - t0

    t0 = time.perf_counter()
    packet = run_fdd(links, PacketRuntime.for_network(network, config), config, rng=9)
    t_packet = time.perf_counter() - t0

    identical = fast.schedule_length == packet.schedule_length and all(
        sorted(a.links) == sorted(b.links)
        for a, b in zip(fast.schedule.slots, packet.schedule.slots)
    )
    print(f"fast runtime:   T={fast.schedule_length} in {t_fast*1e3:7.1f} ms")
    print(f"packet engine:  T={packet.schedule_length} in {t_packet*1e3:7.1f} ms")
    print(f"schedules identical: {identical}")
    print(f"step tallies identical: {fast.tally.as_dict() == packet.tally.as_dict()}")


if __name__ == "__main__":
    main()
