"""Link sets: the directed edges to be scheduled, with their demands.

The paper establishes a one-to-one mapping between non-gateway nodes and
routing-forest edges: the child node (higher depth) is the *head* of its
edge and transmits toward its parent (the *tail*).  A :class:`LinkSet`
captures an arbitrary collection of directed links with integer demands —
the protocols work on forests, but "up to straightforward modifications, the
protocols ... can be used to schedule an arbitrary link set", and so can
everything here.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.routing.forest import RoutingForest


@dataclass(frozen=True)
class LinkSet:
    """Directed links ``heads[k] -> tails[k]`` with demands ``demand[k]``.

    ``ids[k]`` is the unique identifier of the link's head node, used by the
    protocols for leader election and by GreedyPhysical's default edge
    ordering.  By default ids equal head node indices.
    """

    heads: np.ndarray
    tails: np.ndarray
    demand: np.ndarray
    ids: np.ndarray

    def __post_init__(self) -> None:
        heads = np.asarray(self.heads, dtype=np.intp)
        tails = np.asarray(self.tails, dtype=np.intp)
        demand = np.asarray(self.demand, dtype=np.int64)
        ids = np.asarray(self.ids, dtype=np.int64)
        if not (heads.shape == tails.shape == demand.shape == ids.shape):
            raise ValueError("heads, tails, demand, ids must share one shape")
        if heads.ndim != 1:
            raise ValueError("link arrays must be 1-D")
        if np.any(heads == tails):
            raise ValueError("self-loop links are not allowed")
        if np.any(demand < 0):
            raise ValueError("demands must be non-negative")
        if np.unique(ids).size != ids.size:
            raise ValueError("link ids must be unique")
        object.__setattr__(self, "heads", heads)
        object.__setattr__(self, "tails", tails)
        object.__setattr__(self, "demand", demand)
        object.__setattr__(self, "ids", ids)

    @property
    def n_links(self) -> int:
        return self.heads.shape[0]

    @cached_property
    def total_demand(self) -> int:
        """``TD``: total traffic demand across all links."""
        return int(self.demand.sum())

    @cached_property
    def link_of_head(self) -> dict[int, int]:
        """Map head node index -> link index."""
        mapping: dict[int, int] = {}
        for k, h in enumerate(self.heads):
            if int(h) in mapping:
                raise ValueError(
                    f"node {int(h)} heads more than one link; per-head lookup "
                    "is only defined for forest link sets"
                )
            mapping[int(h)] = k
        return mapping

    def next_links(self) -> np.ndarray:
        """Per-link index of the next link up the forest, -1 at gateways.

        ``next_links()[k]`` is the link whose head is link ``k``'s tail —
        the unique relay hop toward the gateway — or ``-1`` when the tail
        is a gateway.  Only defined for forest link sets (delegates the
        contract check to :meth:`link_of_head`).  The single next-hop
        derivation shared by queue relaying
        (:class:`~repro.traffic.queues.LinkQueues`) and control-plane
        depth pricing (:func:`~repro.core.controlplane.forest_depths`).
        """
        by_head = self.link_of_head
        return np.array(
            [by_head.get(int(t), -1) for t in self.tails], dtype=np.intp
        )

    def subset(self, indices: np.ndarray) -> "LinkSet":
        """A new LinkSet containing only the given link indices."""
        idx = np.asarray(indices, dtype=np.intp)
        return LinkSet(
            heads=self.heads[idx],
            tails=self.tails[idx],
            demand=self.demand[idx],
            ids=self.ids[idx],
        )


def forest_link_set(
    forest: RoutingForest,
    link_demand: np.ndarray,
    ids: np.ndarray | None = None,
) -> LinkSet:
    """The paper's link set: one edge per non-gateway node, child -> parent.

    Parameters
    ----------
    forest:
        The routing forest.
    link_demand:
        ``(n_nodes,)`` aggregated link demands indexed by head node (from
        :func:`repro.routing.demand.aggregate_demand`).
    ids:
        Optional ``(n_nodes,)`` unique node identifiers (e.g. MAC addresses);
        defaults to node indices.
    """
    heads = forest.edge_heads
    demand = np.asarray(link_demand, dtype=np.int64)
    if demand.shape != (forest.n_nodes,):
        raise ValueError(
            f"link_demand must have shape ({forest.n_nodes},), got {demand.shape}"
        )
    node_ids = (
        np.arange(forest.n_nodes, dtype=np.int64)
        if ids is None
        else np.asarray(ids, dtype=np.int64)
    )
    if node_ids.shape != (forest.n_nodes,):
        raise ValueError("ids must have one entry per node")
    return LinkSet(
        heads=heads,
        tails=forest.parent[heads],
        demand=demand[heads],
        ids=node_ids[heads],
    )
