"""Property tests on the distributed protocols themselves."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import ProtocolConfig
from repro.core.fast_runtime import FastRuntime
from repro.core.fdd import run_fdd
from repro.core.pdd import run_pdd
from repro.routing.demand import aggregate_demand, uniform_node_demand
from repro.routing.forest import build_routing_forest
from repro.routing.gateways import planned_gateways
from repro.scheduling.greedy_physical import greedy_physical
from repro.scheduling.links import forest_link_set
from repro.scheduling.metrics import verify_schedule
from repro.topology.network import grid_network
from repro.util.rng import spawn


@st.composite
def grid_protocol_case(draw):
    """A small grid scenario with random demands and a protocol config."""
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    side = draw(st.sampled_from([3, 4]))
    density = draw(st.sampled_from([1000.0, 3000.0, 8000.0]))
    network = grid_network(side, side, density_per_km2=density)
    gws = planned_gateways(side, side, 1)
    rng = np.random.default_rng(seed)
    forest = build_routing_forest(network.comm_adj, gws, rng=rng)
    demand = uniform_node_demand(side * side, rng, low=0, high=3, gateways=gws)
    links = forest_link_set(forest, aggregate_demand(forest, demand))
    p = draw(st.sampled_from([0.2, 0.5, 0.9]))
    config = ProtocolConfig(k=6, id_bits=5, p_active=p)
    return network, links, config, seed


@given(grid_protocol_case())
@settings(max_examples=25, deadline=None)
def test_pdd_schedule_valid_and_terminates(case):
    network, links, config, seed = case
    runtime = FastRuntime.for_network(network, config)
    result = run_pdd(links, runtime, config, rng=spawn(seed, "pdd"))
    assert result.terminated
    report = verify_schedule(result.schedule, network.model)
    assert report.ok
    assert result.schedule_length == result.rounds
    assert result.schedule_length <= links.total_demand


@given(grid_protocol_case())
@settings(max_examples=15, deadline=None)
def test_fdd_equals_greedy_physical(case):
    """Theorem 4, property-tested over random small scenarios."""
    network, links, config, seed = case
    runtime = FastRuntime.for_network(network, config)
    result = run_fdd(links, runtime, config, rng=spawn(seed, "fdd"))
    central = greedy_physical(links, network.model, ordering="id")
    assert result.schedule_length == central.length
    for ours, theirs in zip(result.schedule.slots, central.slots):
        assert sorted(ours.links) == sorted(theirs.links)


@given(grid_protocol_case())
@settings(max_examples=15, deadline=None)
def test_fdd_deterministic_in_protocol_rng(case):
    """FDD is fully deterministic: the protocol rng must not matter."""
    network, links, config, _ = case
    a = run_fdd(links, FastRuntime.for_network(network, config), config, rng=1)
    b = run_fdd(links, FastRuntime.for_network(network, config), config, rng=2)
    assert a.schedule_length == b.schedule_length
    for sa, sb in zip(a.schedule.slots, b.schedule.slots):
        assert sorted(sa.links) == sorted(sb.links)
    assert a.tally.as_dict() == b.tally.as_dict()
