"""Timing model: pricing step tallies into wall-clock execution time.

The protocols' execution time is a pure function of (a) how many
synchronized steps of each kind they consumed — the
:class:`~repro.core.events.StepTally` — and (b) per-step durations derived
from radio constants, the SCREAM size, and the clock-skew bound.

Every globally synchronized step must absorb the worst-case clock
misalignment between any transmitter/listener pair, so each step's duration
includes a guard of ``guard_factor * skew_bound`` ("The protocol
implementations compensate for the clock skew among the nodes").  This is
what produces the paper's execution-time-vs-skew behaviour: flat while the
guard is negligible against the transmission time, then linear in the skew
bound — with FDD degrading earlier than PDD because it synchronizes several
times more often per scheduled slot (all those election SCREAM slots).

Absolute constants are calibration choices (the paper inherited its own from
GTNetS' 802.11 model); defaults are chosen to land the paper's 64-node
scenarios in the same few-seconds regime as its Figure "Execution Time vs.
SCREAM size and Interference Diameter".
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.events import StepTally
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class TimingModel:
    """Per-step durations for pricing protocol executions.

    Attributes
    ----------
    bitrate_bps:
        PHY rate used for SCREAM bursts, probes and ACKs (default 54 Mbit/s,
        802.11a/g OFDM).
    slot_overhead_s:
        Fixed per-step cost: radio turnaround plus PHY framing (1 µs).
    scream_bytes:
        Bytes transmitted per SCREAM slot (``SMBytes``).
    data_bytes / ack_bytes:
        Handshake data-probe and ACK sizes.  The handshake sends a real
        data packet (Section III-C), so the probe defaults to a mid-size
        frame.
    skew_bound_s:
        Bound on pairwise clock skew.
    guard_factor:
        Guard time per synchronized step, in units of the skew bound
        (2 covers the worst case of one clock early and one late).
    """

    bitrate_bps: float = 54e6
    slot_overhead_s: float = 1e-6
    scream_bytes: int = 15
    data_bytes: int = 256
    ack_bytes: int = 14
    skew_bound_s: float = 1e-6
    guard_factor: float = 2.0

    def __post_init__(self) -> None:
        check_positive("bitrate_bps", self.bitrate_bps)
        check_non_negative("slot_overhead_s", self.slot_overhead_s)
        check_positive("scream_bytes", float(self.scream_bytes))
        check_positive("data_bytes", float(self.data_bytes))
        check_positive("ack_bytes", float(self.ack_bytes))
        check_non_negative("skew_bound_s", self.skew_bound_s)
        check_non_negative("guard_factor", self.guard_factor)

    @property
    def guard_s(self) -> float:
        """Per-step guard time absorbing clock misalignment."""
        return self.guard_factor * self.skew_bound_s

    def _step(self, payload_bytes: float) -> float:
        return self.slot_overhead_s + 8.0 * payload_bytes / self.bitrate_bps + self.guard_s

    @property
    def scream_slot_s(self) -> float:
        """Duration of one SCREAM slot."""
        return self._step(self.scream_bytes)

    @property
    def data_subslot_s(self) -> float:
        """Duration of a handshake data sub-slot."""
        return self._step(self.data_bytes)

    @property
    def ack_subslot_s(self) -> float:
        """Duration of a handshake ACK sub-slot."""
        return self._step(self.ack_bytes)

    @property
    def sync_s(self) -> float:
        """Duration of a bare GlobalSync barrier."""
        return self.slot_overhead_s + self.guard_s

    def message_s(self, payload_bytes: float) -> float:
        """Air time of one in-band control message of ``payload_bytes`` bytes.

        Control traffic (patch deltas, backlog reports, reconciliation
        rounds, session signaling — see :mod:`repro.core.controlplane`)
        rides the same synchronized air as the protocol steps, so a message
        costs exactly one step of its payload size: turnaround + payload at
        the PHY rate + the skew guard.
        """
        check_positive("payload_bytes", float(payload_bytes))
        return self._step(payload_bytes)

    def execution_time(self, tally: StepTally) -> float:
        """Wall-clock seconds for a protocol execution's step tally."""
        return (
            tally.scream_slots * self.scream_slot_s
            + tally.data_subslots * self.data_subslot_s
            + tally.ack_subslots * self.ack_subslot_s
            + tally.syncs * self.sync_s
        )

    def with_scream_bytes(self, scream_bytes: int) -> "TimingModel":
        """Re-priced model with a different SCREAM size (same execution)."""
        return replace(self, scream_bytes=scream_bytes)

    def with_skew(self, skew_bound_s: float) -> "TimingModel":
        """Re-priced model with a different clock-skew bound."""
        return replace(self, skew_bound_s=skew_bound_s)


def reprice_scream_slots(tally: StepTally, old_k: int, new_k: int) -> StepTally:
    """Scale a tally's SCREAM slots from K=``old_k`` to K=``new_k``.

    Valid when both K values upper-bound the interference diameter: the
    protocol's behaviour (hence every other counter) is K-invariant in the
    exact regime, and each of the ``scream_calls`` invocations simply spans
    ``new_k`` instead of ``old_k`` slots.
    """
    if old_k <= 0 or new_k <= 0:
        raise ValueError("K values must be positive")
    if tally.scream_slots % old_k:
        raise ValueError(
            f"tally has {tally.scream_slots} scream slots, not a multiple of "
            f"old_k={old_k}; was it produced with a different K?"
        )
    repriced = StepTally(**tally.as_dict())
    repriced.scream_slots = tally.scream_calls * new_k
    return repriced
