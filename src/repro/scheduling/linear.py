"""The serialized (linear) worst-case schedule.

One link per slot, every slot: length equals the total demand ``TD``.
The paper's schedule-length figures report percentage improvement over this
schedule, which is always feasible (a single communication-graph link decodes
against noise alone by construction).
"""

from __future__ import annotations

from repro.scheduling.links import LinkSet
from repro.scheduling.schedule import Schedule, Slot


def linear_schedule(links: LinkSet) -> Schedule:
    """Serialized schedule: ``demand[k]`` consecutive singleton slots per link."""
    schedule = Schedule(link_set=links)
    for k in range(links.n_links):
        for _ in range(int(links.demand[k])):
            schedule.slots.append(Slot(links=[k]))
    return schedule
