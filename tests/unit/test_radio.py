"""Radio configuration: thresholds, validation, power vectors."""

import numpy as np
import pytest

from repro.phy.radio import (
    RadioConfig,
    RateTable,
    heterogeneous_tx_power,
    uniform_tx_power,
)
from repro.phy.units import dbm_to_mw


class TestRadioConfig:
    def test_decode_power_is_beta_times_noise(self):
        radio = RadioConfig(beta=10.0, noise_mw=1e-9)
        assert radio.decode_power_mw == pytest.approx(1e-8)

    def test_cs_threshold_below_decode_threshold(self):
        radio = RadioConfig(cs_gamma=3.0, alpha=3.0)
        assert radio.cs_threshold_mw == pytest.approx(
            radio.decode_power_mw / 27.0
        )

    def test_cs_gamma_one_equates_thresholds(self):
        radio = RadioConfig(cs_gamma=1.0)
        assert radio.cs_threshold_mw == pytest.approx(radio.decode_power_mw)

    def test_rejects_cs_gamma_below_one(self):
        with pytest.raises(ValueError):
            RadioConfig(cs_gamma=0.5)

    def test_rejects_beta_at_or_below_unity(self):
        with pytest.raises(ValueError):
            RadioConfig(beta=1.0)
        with pytest.raises(ValueError):
            RadioConfig(beta=0.5)

    def test_with_cs_gamma_returns_modified_copy(self):
        radio = RadioConfig(cs_gamma=3.0)
        other = radio.with_cs_gamma(2.0)
        assert other.cs_gamma == 2.0
        assert radio.cs_gamma == 3.0


class TestPowerVectors:
    def test_uniform_power_value_and_shape(self):
        tx = uniform_tx_power(5, power_dbm=12.0)
        assert tx.shape == (5,)
        assert np.allclose(tx, dbm_to_mw(12.0))

    def test_heterogeneous_power_within_range(self):
        rng = np.random.default_rng(3)
        tx = heterogeneous_tx_power(100, rng, low_dbm=10.0, high_dbm=14.0)
        assert tx.shape == (100,)
        assert (tx >= dbm_to_mw(10.0) - 1e-12).all()
        assert (tx <= dbm_to_mw(14.0) + 1e-12).all()
        # Heterogeneous means actually varied.
        assert np.std(tx) > 0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            uniform_tx_power(0)
        with pytest.raises(ValueError):
            heterogeneous_tx_power(0, np.random.default_rng(0))

    def test_inverted_power_range_rejected(self):
        with pytest.raises(ValueError):
            heterogeneous_tx_power(
                4, np.random.default_rng(0), low_dbm=14.0, high_dbm=10.0
            )


class TestRateTableValidation:
    def test_degenerate_table(self):
        table = RateTable.degenerate(10.0)
        assert table.is_degenerate
        assert table.n_tiers == 1
        assert table.base_rate == 1
        assert table.beta == 10.0

    def test_geometric_defaults_calibrated_ladder(self):
        table = RateTable.geometric(10.0)
        np.testing.assert_allclose(table.thresholds, [10.0, 20.0, 40.0])
        np.testing.assert_array_equal(table.rates, [1, 2, 4])
        assert not table.is_degenerate

    def test_thresholds_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            RateTable(thresholds=np.array([10.0, 10.0]), rates=np.array([1, 2]))

    def test_thresholds_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            RateTable(thresholds=np.array([-1.0, 10.0]), rates=np.array([1, 2]))

    def test_rates_must_be_positive_and_monotone(self):
        with pytest.raises(ValueError, match="positive"):
            RateTable(thresholds=np.array([10.0]), rates=np.array([0]))
        with pytest.raises(ValueError, match="monotone"):
            RateTable(thresholds=np.array([10.0, 20.0]), rates=np.array([2, 1]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            RateTable(thresholds=np.array([10.0, 20.0]), rates=np.array([1]))

    def test_sub_unity_hysteresis_rejected(self):
        with pytest.raises(ValueError, match="hysteresis"):
            RateTable(
                thresholds=np.array([10.0]), rates=np.array([1]), hysteresis=0.9
            )


class TestRateTableLookup:
    def make(self, hysteresis=1.0):
        return RateTable(
            thresholds=np.array([10.0, 20.0, 40.0]),
            rates=np.array([1, 2, 4]),
            hysteresis=hysteresis,
        )

    def test_tier_for_brackets(self):
        table = self.make()
        np.testing.assert_array_equal(
            table.tier_for(np.array([5.0, 10.0, 19.9, 20.0, 39.0, 40.0, 1e6])),
            [-1, 0, 0, 1, 1, 2, 2],
        )

    def test_rate_for_zero_below_base(self):
        table = self.make()
        np.testing.assert_array_equal(
            table.rate_for(np.array([5.0, 10.0, 25.0, 80.0])), [0, 1, 2, 4]
        )

    def test_select_upgrade_needs_margin(self):
        table = self.make(hysteresis=1.25)
        sinr = np.array([21.0, 25.0, 25.0])
        prev = np.array([0, 0, 1])
        # 21 < 20*1.25: upgrade denied; 25 >= 25: granted; holding tier 1
        # at 25 stays (no upgrade attempted past raw).
        np.testing.assert_array_equal(table.select(sinr, prev), [0, 1, 1])

    def test_select_downgrades_immediately(self):
        table = self.make(hysteresis=1.25)
        sinr = np.array([15.0, 5.0])
        prev = np.array([1, 2])
        np.testing.assert_array_equal(table.select(sinr, prev), [0, -1])

    def test_select_shape_mismatch_rejected(self):
        table = self.make(hysteresis=1.25)
        with pytest.raises(ValueError, match="shape"):
            table.select(np.array([10.0, 20.0]), np.array([0]))
