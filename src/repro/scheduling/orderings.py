"""Edge orderings for GreedyPhysical.

The approximation bound of ref. [4] holds for *any* initial edge ordering;
the paper's Theorem 4 uses decreasing head-ID order because that is the
order FDD realizes distributedly.  We provide the orderings used in the
paper plus two natural alternatives for the ordering ablation (A2 in
DESIGN.md).

Every ordering returns link indices (positions in the LinkSet), most
significant first.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.phy.interference import PhysicalInterferenceModel
from repro.scheduling.links import LinkSet


def order_by_id(links: LinkSet, model: PhysicalInterferenceModel) -> np.ndarray:
    """Decreasing head IDs — the ordering FDD reproduces (Theorem 4)."""
    return np.argsort(-links.ids, kind="stable").astype(np.intp)


def order_by_demand(links: LinkSet, model: PhysicalInterferenceModel) -> np.ndarray:
    """Decreasing demand (heaviest links first); ties by decreasing ID."""
    keys = np.lexsort((-links.ids, -links.demand))
    return keys.astype(np.intp)


def order_by_length(links: LinkSet, model: PhysicalInterferenceModel) -> np.ndarray:
    """Decreasing physical 'length' measured as weakest received signal.

    Without geometry at hand, the natural proxy for link length is the
    received data-signal power: weaker signal = longer/harder link, scheduled
    first while slots are empty.
    """
    signal = model.power[links.heads, links.tails]
    keys = np.lexsort((-links.ids, signal))
    return keys.astype(np.intp)


def order_by_interference_number(
    links: LinkSet, model: PhysicalInterferenceModel
) -> np.ndarray:
    """Decreasing pairwise-conflict count (GreedyPhysical's original order).

    The interference number of link ``e`` is the number of other links that
    cannot be scheduled together with ``e`` in a slot containing just the
    two of them.  O(m²) pairwise tests; fine for the forest-sized link sets
    the paper schedules (m < n).
    """
    m = links.n_links
    conflicts = np.zeros(m, dtype=np.int64)
    heads, tails = links.heads, links.tails
    for i in range(m):
        for j in range(i + 1, m):
            snd = np.array([heads[i], heads[j]], dtype=np.intp)
            rcv = np.array([tails[i], tails[j]], dtype=np.intp)
            if not model.is_feasible(snd, rcv):
                conflicts[i] += 1
                conflicts[j] += 1
    keys = np.lexsort((-links.ids, -conflicts))
    return keys.astype(np.intp)


EDGE_ORDERINGS: dict[str, Callable[[LinkSet, PhysicalInterferenceModel], np.ndarray]]
EDGE_ORDERINGS = {
    "id": order_by_id,
    "demand": order_by_demand,
    "length": order_by_length,
    "interference": order_by_interference_number,
}
