"""Phase-span tracing with wall and thread-CPU clocks.

A span measures one engine phase (election, feasibility, patch, reconcile,
serve, control charge, admission decision).  Spans nest: a per-thread stack
assigns every closed span its parent and depth, so the summarizer can
attribute the wall-clock of ``sharded.epoch`` to its children without
double counting.

Closed spans flow into a :class:`Recorder`.  The contract the differential
tests enforce: a recorder *observes* — it never mutates engine state, never
consumes engine RNG, and the :class:`NullRecorder` path is cheap enough
that tier-1 guards pin it under 5% of thread-CPU time on a reference run.
Engines obtain spans via :func:`repro.obs.phase`, which returns a shared
no-op object when observability is off entirely — the off path allocates
nothing per call.

Clocks: ``time.perf_counter`` for wall time and ``time.thread_time`` for
per-thread CPU time.  The CPU clock is taken through the module attribute
:data:`CPU_CLOCK` so tests can simulate platforms without it; when absent,
spans carry ``cpu_s=None`` and the engines' derived trace fields become
``None`` rather than a silent 0.0 (see DESIGN.md §11).
"""

from __future__ import annotations

import threading
import time
from typing import Protocol

__all__ = [
    "Span",
    "Recorder",
    "NullRecorder",
    "BufferRecorder",
    "CPU_CLOCK",
]

#: Per-thread CPU clock, or ``None`` on platforms without one.  Module
#: attribute (not a local import) so tests can monkeypatch unavailability.
CPU_CLOCK = getattr(time, "thread_time", None)


class Recorder(Protocol):
    """Sink for closed spans.  Implementations must be observe-only."""

    def record_span(self, span: "Span") -> None: ...


class NullRecorder:
    """The zero-cost recorder: drops every span."""

    __slots__ = ()

    def record_span(self, span: "Span") -> None:
        pass


class BufferRecorder:
    """Keeps closed spans in memory — the unit tests' recorder."""

    __slots__ = ("spans",)

    def __init__(self):
        self.spans: list[Span] = []

    def record_span(self, span: "Span") -> None:
        self.spans.append(span)


class _SpanStack(threading.local):
    def __init__(self):
        self.stack: list[Span] = []


_ACTIVE = _SpanStack()
_SEQ_LOCK = threading.Lock()
_SEQ = 0


def _next_seq() -> int:
    global _SEQ
    with _SEQ_LOCK:
        _SEQ += 1
        return _SEQ


class Span:
    """One timed phase.  Context manager; reentrant spans are not allowed.

    Attributes after close: ``wall_s`` (perf_counter delta), ``cpu_s``
    (thread CPU delta, or ``None`` when :data:`CPU_CLOCK` is unavailable),
    ``depth``/``parent`` (nesting within the opening thread), ``seq``
    (global open order, for stable export ordering).
    """

    __slots__ = (
        "name",
        "labels",
        "recorder",
        "seq",
        "depth",
        "parent",
        "wall_s",
        "cpu_s",
        "_wall0",
        "_cpu0",
        "_extra_cpu",
    )

    def __init__(self, name: str, recorder: Recorder | None = None, **labels):
        self.name = name
        self.labels = labels
        self.recorder = recorder
        self.seq = 0
        self.depth = 0
        self.parent: str | None = None
        self.wall_s: float | None = None
        self.cpu_s: float | None = None
        self._wall0 = 0.0
        self._cpu0: float | None = None
        self._extra_cpu = 0.0

    def add_cpu(self, seconds: float) -> None:
        """Credit CPU seconds burned outside this thread (e.g. in a pool
        worker process) to this span.  Folded into ``cpu_s`` at close so
        per-backend accounting stays comparable; a no-op contribution of
        0.0 is safe.  When :data:`CPU_CLOCK` is unavailable the span still
        reports ``None`` — a child-only total would not be comparable."""
        self._extra_cpu += float(seconds)

    def __enter__(self) -> "Span":
        stack = _ACTIVE.stack
        self.depth = len(stack)
        self.parent = stack[-1].name if stack else None
        stack.append(self)
        self.seq = _next_seq()
        clock = CPU_CLOCK
        self._cpu0 = clock() if clock is not None else None
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self._wall0
        if self._cpu0 is not None:
            clock = CPU_CLOCK
            if clock is not None:
                self.cpu_s = clock() - self._cpu0 + self._extra_cpu
        stack = _ACTIVE.stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # exception unwound children without __exit__
            del stack[stack.index(self) :]
        if self.recorder is not None:
            self.recorder.record_span(self)

    def row(self) -> dict:
        """The span as the JSONL exporter's row."""
        return {
            "type": "span",
            "name": self.name,
            "labels": {str(k): v for k, v in self.labels.items()},
            "seq": self.seq,
            "depth": self.depth,
            "parent": self.parent,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }


class _NoopSpan:
    """Shared do-nothing span for the obs-off fast path."""

    __slots__ = ()
    name = ""
    labels: dict = {}
    wall_s = None
    cpu_s = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None

    def add_cpu(self, seconds: float) -> None:
        return None


NOOP_SPAN = _NoopSpan()
