"""Scheduling substrate: links, schedules, feasibility state, baselines."""

import numpy as np
import pytest

from repro.routing import aggregate_demand, build_routing_forest, planned_gateways
from repro.scheduling.feasibility import SlotState, schedule_is_feasible
from repro.scheduling.greedy_physical import greedy_physical
from repro.scheduling.linear import linear_schedule
from repro.scheduling.links import LinkSet, forest_link_set
from repro.scheduling.metrics import improvement_over_linear, verify_schedule
from repro.scheduling.orderings import (
    order_by_demand,
    order_by_id,
    order_by_interference_number,
    order_by_length,
)
from repro.scheduling.schedule import Schedule, Slot


class TestLinkSet:
    def test_forest_link_set_one_link_per_non_gateway(self, grid16):
        gws = planned_gateways(4, 4, 2)
        forest = build_routing_forest(grid16.comm_adj, gws, rng=1)
        demand = np.ones(16, dtype=int)
        demand[gws] = 0
        links = forest_link_set(forest, aggregate_demand(forest, demand))
        assert links.n_links == 14
        assert set(links.heads.tolist()) == set(range(16)) - set(gws.tolist())

    def test_ids_default_to_head_indices(self, grid16_links):
        assert np.array_equal(grid16_links.ids, grid16_links.heads)

    def test_self_loops_rejected(self):
        with pytest.raises(ValueError):
            LinkSet(
                heads=np.array([1]),
                tails=np.array([1]),
                demand=np.array([1]),
                ids=np.array([1]),
            )

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            LinkSet(
                heads=np.array([0, 1]),
                tails=np.array([1, 2]),
                demand=np.array([1, 1]),
                ids=np.array([5, 5]),
            )

    def test_subset(self, grid16_links):
        sub = grid16_links.subset(np.array([0, 2]))
        assert sub.n_links == 2
        assert sub.heads[0] == grid16_links.heads[0]

    def test_link_of_head_lookup(self, grid16_links):
        for k, head in enumerate(grid16_links.heads):
            assert grid16_links.link_of_head[int(head)] == k


class TestScheduleContainers:
    def test_slot_add_rejects_duplicates(self):
        slot = Slot()
        slot.add(3)
        with pytest.raises(ValueError):
            slot.add(3)

    def test_allocations_and_demand(self, grid16_links):
        schedule = linear_schedule(grid16_links)
        assert np.array_equal(schedule.allocations(), grid16_links.demand)
        assert schedule.satisfies_demand()

    def test_concurrency_of_linear_is_one(self, grid16_links):
        schedule = linear_schedule(grid16_links)
        assert schedule.concurrency() == pytest.approx(1.0)

    def test_empty_schedule(self, grid16_links):
        schedule = Schedule(link_set=grid16_links)
        assert schedule.length == 0
        assert schedule.concurrency() == 0.0
        assert not schedule.satisfies_demand()

    def test_summary_mentions_key_figures(self, grid16_links):
        schedule = linear_schedule(grid16_links)
        text = schedule.summary()
        assert str(schedule.length) in text
        assert str(grid16_links.total_demand) in text


class TestSlotState:
    def test_matches_exact_model_incrementally(self, grid64, grid64_links):
        """SlotState.can_add must agree with full-model re-evaluation."""
        model = grid64.model
        state = SlotState(model)
        added = 0
        for k in range(grid64_links.n_links):
            s = int(grid64_links.heads[k])
            r = int(grid64_links.tails[k])
            snd, rcv = state.members()
            # Exact oracle: half-duplex sharing check + full SINR re-test.
            shares_node = bool(
                np.isin([s, r], np.concatenate([snd, rcv])).any()
            )
            exact = (
                not shares_node
                and model.is_feasible(np.append(snd, s), np.append(rcv, r))
            )
            assert state.can_add(s, r) == exact
            if exact and added < 6:
                state.add(s, r)
                added += 1
        assert state.is_feasible()

    def test_try_add_only_keeps_feasible(self, grid16):
        model = grid16.model
        state = SlotState(model)
        assert state.try_add(0, 1)
        # The same sender again violates half-duplex/sharing.
        assert not state.try_add(0, 2)
        assert len(state) == 1


class TestGreedyPhysical:
    def test_schedule_feasible_and_complete(self, grid64, grid64_links):
        schedule = greedy_physical(grid64_links, grid64.model)
        report = verify_schedule(schedule, grid64.model)
        assert report.ok
        assert schedule_is_feasible(schedule, grid64.model)

    def test_never_longer_than_linear(self, grid64, grid64_links):
        schedule = greedy_physical(grid64_links, grid64.model)
        assert schedule.length <= grid64_links.total_demand

    def test_zero_demand_links_get_no_slots(self, grid16):
        # Nodes 1 and 4 are lattice neighbors of node 0 in the 4x4 grid.
        links = LinkSet(
            heads=np.array([1, 4]),
            tails=np.array([0, 0]),
            demand=np.array([0, 2]),
            ids=np.array([1, 4]),
        )
        schedule = greedy_physical(links, grid16.model)
        assert schedule.allocations().tolist() == [0, 2]

    def test_infeasible_link_raises(self, grid16):
        # Link between the two most distant corners cannot close alone.
        links = LinkSet(
            heads=np.array([0]),
            tails=np.array([15]),
            demand=np.array([1]),
            ids=np.array([0]),
        )
        if not grid16.comm_adj[0, 15]:
            with pytest.raises(ValueError, match="infeasible even alone"):
                greedy_physical(links, grid16.model)

    def test_custom_ordering_callable(self, grid64, grid64_links):
        reverse = lambda links, model: np.argsort(links.ids).astype(np.intp)
        schedule = greedy_physical(grid64_links, grid64.model, ordering=reverse)
        assert verify_schedule(schedule, grid64.model).ok


class TestOrderings:
    def test_order_by_id_descending(self, grid64, grid64_links):
        order = order_by_id(grid64_links, grid64.model)
        ids = grid64_links.ids[order]
        assert (np.diff(ids) < 0).all()

    def test_order_by_demand_descending(self, grid64, grid64_links):
        order = order_by_demand(grid64_links, grid64.model)
        demands = grid64_links.demand[order]
        assert (np.diff(demands) <= 0).all()

    def test_order_by_length_weakest_first(self, grid64, grid64_links):
        order = order_by_length(grid64_links, grid64.model)
        signals = grid64.model.power[
            grid64_links.heads[order], grid64_links.tails[order]
        ]
        assert (np.diff(signals) >= 0).all()

    def test_order_by_interference_number_permutation(self, grid16, grid16_links):
        order = order_by_interference_number(grid16_links, grid16.model)
        assert sorted(order.tolist()) == list(range(grid16_links.n_links))


class TestMetrics:
    def test_improvement_of_linear_is_zero(self, grid16_links):
        assert improvement_over_linear(linear_schedule(grid16_links)) == 0.0

    def test_improvement_formula(self, grid64, grid64_links):
        schedule = greedy_physical(grid64_links, grid64.model)
        td = grid64_links.total_demand
        expected = 100.0 * (td - schedule.length) / td
        assert improvement_over_linear(schedule) == pytest.approx(expected)

    def test_verifier_catches_infeasible_slot(self, grid16, grid16_links):
        schedule = linear_schedule(grid16_links)
        # Jam every link into the first slot: guaranteed infeasible.
        schedule.slots[0].links = list(range(grid16_links.n_links))
        report = verify_schedule(schedule, grid16.model)
        assert not report.feasible
        assert 0 in report.infeasible_slots

    def test_verifier_catches_unmet_demand(self, grid16, grid16_links):
        schedule = linear_schedule(grid16_links)
        schedule.slots.pop()
        report = verify_schedule(schedule, grid16.model)
        assert not report.demand_satisfied
        assert report.shortfall_links

    def test_verifier_report_string(self, grid16, grid16_links):
        ok = verify_schedule(linear_schedule(grid16_links), grid16.model)
        assert "OK" in str(ok)


class TestGreedyRate:
    def table(self, beta=10.0):
        from repro.phy.radio import RateTable

        return RateTable.geometric(beta)

    def test_degenerate_table_covers_demand_in_memberships(self, grid64, grid64_links):
        from repro.phy.radio import RateTable
        from repro.scheduling.greedy_rate import greedy_rate

        table = RateTable.degenerate(grid64.model.radio.beta)
        schedule = greedy_rate(grid64_links, grid64.model, table)
        assert schedule_is_feasible(schedule, grid64.model)
        # Every rate is 1, so packet capacity == membership count.
        assert schedule.satisfies_demand()

    def test_packet_capacity_covers_demand(self, grid64, grid64_links):
        from repro.scheduling.feasibility import schedule_rates
        from repro.scheduling.greedy_rate import greedy_rate

        table = self.table(grid64.model.radio.beta)
        schedule = greedy_rate(grid64_links, grid64.model, table)
        assert schedule_is_feasible(schedule, grid64.model)
        capacity = np.zeros(grid64_links.n_links, dtype=np.int64)
        for slot, rates in zip(schedule.slots, schedule_rates(schedule, grid64.model, table)):
            for k, rate in zip(slot.links, rates):
                capacity[k] += rate
        assert (capacity >= grid64_links.demand).all()

    def test_never_longer_than_fixed_rate_greedy(self, grid64, grid64_links):
        from repro.scheduling.greedy_rate import greedy_rate

        table = self.table(grid64.model.radio.beta)
        rated = greedy_rate(grid64_links, grid64.model, table)
        fixed = greedy_physical(grid64_links, grid64.model)
        assert rated.length <= fixed.length

    def test_zero_demand_links_get_no_slots(self, grid16):
        from repro.scheduling.greedy_rate import greedy_rate

        forest = build_routing_forest(
            grid16.comm_adj, planned_gateways(4, 4, 2), rng=3
        )
        demand = np.ones(16, dtype=int)
        demand[planned_gateways(4, 4, 2)] = 0
        links = forest_link_set(forest, aggregate_demand(forest, demand))
        links = links.subset(np.arange(links.n_links))
        links.demand[0] = 0
        schedule = greedy_rate(links, grid16.model, self.table(grid16.model.radio.beta))
        assert all(0 not in slot.links for slot in schedule.slots)

    def test_standalone_rates_match_alone_evaluation(self, grid16, grid16_links):
        from repro.scheduling.greedy_rate import standalone_rates

        table = self.table(grid16.model.radio.beta)
        rates = standalone_rates(grid16_links, grid16.model, table)
        assert rates.shape == (grid16_links.n_links,)
        assert (rates >= 1).all()  # every comm edge decodes alone
        alone = grid16.model.link_rates(
            grid16_links.heads[:1], grid16_links.tails[:1], table
        )
        assert rates[0] == alone[0]

    def test_member_rates_follow_slot_state(self, grid16, grid16_links):
        from repro.scheduling.feasibility import SlotState

        table = self.table(grid16.model.radio.beta)
        state = SlotState(grid16.model)
        state.add(int(grid16_links.heads[0]), int(grid16_links.tails[0]))
        alone = int(state.member_rates(table)[0])
        assert state.rate_sum(table) == alone
        assert alone >= 1
