"""Exact optimal scheduler: enumeration soundness and optimality."""

import numpy as np
import pytest

from repro.scheduling.greedy_physical import greedy_physical
from repro.scheduling.links import LinkSet
from repro.scheduling.metrics import verify_schedule
from repro.scheduling.optimal import (
    MAX_LINKS,
    enumerate_maximal_feasible_sets,
    optimal_schedule,
)
from repro.routing import (
    aggregate_demand,
    build_routing_forest,
    planned_gateways,
    uniform_node_demand,
)
from repro.scheduling import forest_link_set
from repro.topology.network import grid_network
from repro.util.rng import spawn


@pytest.fixture(scope="module")
def sparse4x4():
    """4x4 grid, low density: genuine spatial reuse exists."""
    return grid_network(4, 4, density_per_km2=800.0)


@pytest.fixture(scope="module")
def sparse_links(sparse4x4):
    gws = planned_gateways(4, 4, 1)
    forest = build_routing_forest(sparse4x4.comm_adj, gws, rng=spawn(2, "f"))
    demand = uniform_node_demand(16, spawn(2, "d"), low=1, high=3, gateways=gws)
    return forest_link_set(forest, aggregate_demand(forest, demand))


class TestEnumeration:
    def test_all_sets_feasible_and_maximal(self, sparse4x4, sparse_links):
        sets = enumerate_maximal_feasible_sets(sparse_links, sparse4x4.model)
        assert sets
        heads, tails = sparse_links.heads, sparse_links.tails
        for s in sets:
            idx = np.array(sorted(s), dtype=np.intp)
            assert sparse4x4.model.is_feasible(heads[idx], tails[idx])
        for s in sets:
            for other in sets:
                assert not (s < other)

    def test_every_link_covered(self, sparse4x4, sparse_links):
        sets = enumerate_maximal_feasible_sets(sparse_links, sparse4x4.model)
        covered = set().union(*sets)
        assert covered == set(range(sparse_links.n_links))

    def test_oversized_instance_rejected(self, grid64, grid64_links):
        assert grid64_links.n_links > MAX_LINKS
        with pytest.raises(ValueError, match="too large"):
            enumerate_maximal_feasible_sets(grid64_links, grid64.model)


class TestOptimal:
    def test_optimal_is_feasible_and_complete(self, sparse4x4, sparse_links):
        result = optimal_schedule(sparse_links, sparse4x4.model)
        assert verify_schedule(result.schedule, sparse4x4.model).ok

    def test_optimal_never_beats_lower_bounds(self, sparse4x4, sparse_links):
        result = optimal_schedule(sparse_links, sparse4x4.model)
        assert result.schedule.length >= int(sparse_links.demand.max())

    def test_greedy_at_least_optimal(self, sparse4x4, sparse_links):
        result = optimal_schedule(sparse_links, sparse4x4.model)
        greedy = greedy_physical(sparse_links, sparse4x4.model)
        assert greedy.length >= result.schedule.length

    def test_serialized_instance_exact(self, grid16):
        """When every pair conflicts, the optimum is exactly TD."""
        # 3 links sharing the receiver conflict pairwise.
        links = LinkSet(
            heads=np.array([1, 4, 5]),
            tails=np.array([0, 0, 0]),
            demand=np.array([2, 1, 3]),
            ids=np.array([1, 4, 5]),
        )
        result = optimal_schedule(links, grid16.model)
        assert result.schedule.length == 6

    def test_empty_demand(self, sparse4x4, sparse_links):
        empty = LinkSet(
            heads=sparse_links.heads,
            tails=sparse_links.tails,
            demand=np.zeros_like(sparse_links.demand),
            ids=sparse_links.ids,
        )
        result = optimal_schedule(empty, sparse4x4.model)
        assert result.schedule.length == 0

    def test_optimal_matches_brute_force_on_tiny_instance(self, grid16):
        """Cross-check against exhaustive search over slot assignments."""
        links = LinkSet(
            heads=np.array([1, 4, 11, 14]),
            tails=np.array([0, 0, 15, 15]),
            demand=np.array([1, 1, 1, 1]),
            ids=np.array([1, 4, 11, 14]),
        )
        result = optimal_schedule(links, grid16.model)

        # Brute force: try all partitions of the 4 links into <= 4 slots.
        from itertools import product

        def partition_feasible(assignment):
            slots = {}
            for k, slot in enumerate(assignment):
                slots.setdefault(slot, []).append(k)
            for members in slots.values():
                idx = np.array(members, dtype=np.intp)
                if not grid16.model.is_feasible(links.heads[idx], links.tails[idx]):
                    return None
            return len(slots)

        best = min(
            length
            for assignment in product(range(4), repeat=4)
            if (length := partition_feasible(assignment)) is not None
        )
        assert result.schedule.length == best
