"""Run-file summarizer: the human-facing end of the JSONL export.

``python -m repro.obs summarize run.jsonl`` renders three tables from one
run file:

* **per-phase time** — spans aggregated by name: call count, total wall
  and thread-CPU seconds, and each phase's share of the measured
  wall-clock.  Shares are computed over *self time* (a span's wall minus
  its recorded children's wall), so nested spans never double count.
* **control-air attribution** — the ``control.messages`` /
  ``control.seconds`` counters the :class:`~repro.core.controlplane.ControlLedger`
  books per (layer, message class).
* **SLA quantiles** — every histogram series (delay distributions and
  friends): count, mean, min/max, and the tracked P² quantiles.

All tables are plain :class:`~repro.analysis.tables.TextTable`\\ s, the
same renderer the experiments print with.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path

from repro.analysis.tables import TextTable

from .export import load_run_file

__all__ = ["summarize_run", "render_summary"]


def _labels_text(labels: dict) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _phase_table(rows: list[dict]) -> TextTable:
    spans = [r for r in rows if r.get("type") == "span"]
    table = TextTable(
        ["phase", "count", "wall (s)", "cpu (s)", "share"],
        title="Per-phase time breakdown",
    )
    if not spans:
        return table

    # Self time: each span's wall minus the wall of its direct children
    # (children name their parent; seq order makes the attribution stable
    # even without explicit ids — a span's children are the deeper spans
    # recorded between its open and close, which parent+depth capture for
    # the nesting the engines emit).
    child_wall: dict[str, float] = defaultdict(float)
    for span in spans:
        if span.get("parent") and span.get("wall_s") is not None:
            child_wall[span["parent"]] += span["wall_s"]

    agg: dict[str, list] = {}
    for span in spans:
        entry = agg.setdefault(span["name"], [0, 0.0, 0.0, False])
        entry[0] += 1
        if span.get("wall_s") is not None:
            entry[1] += span["wall_s"]
        if span.get("cpu_s") is not None:
            entry[2] += span["cpu_s"]
        else:
            entry[3] = True  # at least one span lacked a CPU clock

    total_self = sum(
        max(wall - child_wall.get(name, 0.0), 0.0)
        for name, (_, wall, _, _) in agg.items()
    )
    for name in sorted(agg, key=lambda n: -agg[n][1]):
        count, wall, cpu, cpu_missing = agg[name]
        self_wall = max(wall - child_wall.get(name, 0.0), 0.0)
        share = self_wall / total_self if total_self > 0 else 0.0
        table.add_row(
            name,
            count,
            f"{wall:.4f}",
            "~" if cpu_missing else f"{cpu:.4f}",
            f"{share:.0%}",
        )
    return table


def _control_table(rows: list[dict]) -> TextTable:
    table = TextTable(
        ["layer", "class", "messages", "air (ms)"],
        title="Control-air attribution",
    )
    messages: dict[tuple[str, str], float] = {}
    seconds: dict[tuple[str, str], float] = {}
    for row in rows:
        if row.get("type") != "metric" or row.get("kind") != "counter":
            continue
        labels = row.get("labels", {})
        key = (str(labels.get("layer", "?")), str(labels.get("cls", "?")))
        if row["name"] == "control.messages":
            messages[key] = messages.get(key, 0.0) + row["value"]
        elif row["name"] == "control.seconds":
            seconds[key] = seconds.get(key, 0.0) + row["value"]
    for key in sorted(set(messages) | set(seconds)):
        table.add_row(
            key[0],
            key[1],
            int(messages.get(key, 0)),
            f"{seconds.get(key, 0.0) * 1e3:.3f}",
        )
    return table


def _quantile_table(rows: list[dict]) -> TextTable:
    hists = [
        r for r in rows if r.get("type") == "metric" and r.get("kind") == "histogram"
    ]
    qnames: list[str] = []
    for h in hists:
        for q in h.get("quantiles", {}):
            if q not in qnames:
                qnames.append(q)
    table = TextTable(
        ["metric", "labels", "count", "mean", "min", "max", *qnames],
        title="SLA quantiles (P2 streaming estimates)",
    )

    def cell(value) -> str:
        return "~" if value is None else f"{value:.2f}"

    for h in sorted(hists, key=lambda r: (r["name"], _labels_text(r.get("labels", {})))):
        quantiles = h.get("quantiles", {})
        table.add_row(
            h["name"],
            _labels_text(h.get("labels", {})),
            int(h.get("count", 0)),
            cell(h.get("mean")),
            cell(h.get("min")),
            cell(h.get("max")),
            *[cell(quantiles.get(q)) for q in qnames],
        )
    return table


def summarize_run(path: str | Path) -> str:
    """Render one JSONL run file as the summarizer's text report."""
    rows = load_run_file(path)
    head = rows[0] if rows and rows[0].get("type") == "run" else {}
    lines = [
        f"run: {head.get('name', '?')}  "
        f"fingerprint: {head.get('fingerprint', '?')}  "
        f"({Path(path).name})",
        "",
        _phase_table(rows).render(),
        "",
        _control_table(rows).render(),
        "",
        _quantile_table(rows).render(),
    ]
    return "\n".join(lines)


def render_summary(paths: list[str | Path]) -> str:
    """Summarize several run files, separated by blank lines."""
    return "\n\n".join(summarize_run(p) for p in paths)
