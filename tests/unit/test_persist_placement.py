"""Persistence round-trips and gateway-placement optimization."""

import numpy as np
import pytest

from repro.phy.propagation import LogNormalShadowing
from repro.routing.placement import (
    coverage_radius,
    kcenter_gateways,
    optimal_gateways,
)
from repro.scheduling import greedy_physical
from repro.topology.network import Network, uniform_network
from repro.util.persist import (
    load_link_set,
    load_network,
    load_schedule,
    save_link_set,
    save_network,
    save_schedule,
)


class TestPersistence:
    def test_network_roundtrip_deterministic_model(self, grid16, tmp_path):
        path = tmp_path / "net.npz"
        save_network(path, grid16)
        loaded = load_network(path)
        assert np.array_equal(loaded.positions, grid16.positions)
        assert np.array_equal(loaded.tx_power_mw, grid16.tx_power_mw)
        assert np.allclose(loaded.power, grid16.power)
        assert np.array_equal(loaded.comm_adj, grid16.comm_adj)
        assert loaded.radio == grid16.radio

    def test_network_roundtrip_frozen_shadowing(self, tmp_path):
        shadowed = uniform_network(
            12,
            density_per_km2=3000.0,
            rng=5,
            propagation=LogNormalShadowing(alpha=3.0, sigma_db=6.0, rng=5),
        )
        path = tmp_path / "shadowed.npz"
        save_network(path, shadowed)
        loaded = load_network(path)
        # Physics must be identical even though the RNG state is gone.
        assert np.allclose(loaded.power, shadowed.power)
        assert np.array_equal(loaded.comm_adj, shadowed.comm_adj)

    def test_link_set_roundtrip(self, grid16_links, tmp_path):
        path = tmp_path / "links.npz"
        save_link_set(path, grid16_links)
        loaded = load_link_set(path)
        assert np.array_equal(loaded.heads, grid16_links.heads)
        assert np.array_equal(loaded.demand, grid16_links.demand)

    def test_schedule_roundtrip_preserves_slots(
        self, grid16, grid16_links, tmp_path
    ):
        schedule = greedy_physical(grid16_links, grid16.model)
        path = tmp_path / "sched.npz"
        save_schedule(path, schedule)
        loaded = load_schedule(path)
        assert loaded.length == schedule.length
        for a, b in zip(loaded.slots, schedule.slots):
            assert a.links == b.links
        # The reloaded schedule re-verifies against the reloaded physics.
        from repro.scheduling import verify_schedule

        assert verify_schedule(loaded, grid16.model).ok

    def test_loaded_frozen_model_rejects_distance_eval(self, tmp_path):
        shadowed = uniform_network(
            8,
            density_per_km2=3000.0,
            rng=6,
            propagation=LogNormalShadowing(alpha=3.0, sigma_db=6.0, rng=6),
        )
        path = tmp_path / "frozen.npz"
        save_network(path, shadowed)
        loaded = load_network(path)
        with pytest.raises(NotImplementedError):
            loaded.propagation.gain(np.array([10.0]))


class TestPlacement:
    def test_kcenter_beats_or_matches_corners(self, grid16):
        from repro.routing.gateways import corner_gateways

        greedy = kcenter_gateways(grid16.comm_adj, 2)
        corners = corner_gateways(4, 4, 2)
        assert coverage_radius(grid16.comm_adj, greedy) <= coverage_radius(
            grid16.comm_adj, corners
        )

    def test_kcenter_radius_shrinks_with_more_gateways(self, grid16):
        radii = [
            coverage_radius(grid16.comm_adj, kcenter_gateways(grid16.comm_adj, k))
            for k in (1, 2, 4)
        ]
        assert radii == sorted(radii, reverse=True)

    def test_greedy_within_2x_of_optimum(self, grid16):
        for k in (1, 2, 3):
            greedy = coverage_radius(
                grid16.comm_adj, kcenter_gateways(grid16.comm_adj, k)
            )
            best = coverage_radius(
                grid16.comm_adj, optimal_gateways(grid16.comm_adj, k)
            )
            assert greedy <= 2 * best

    def test_single_gateway_is_graph_center(self, grid16):
        gw = kcenter_gateways(grid16.comm_adj, 1)
        from repro.topology.diameter import eccentricities

        ecc = eccentricities(grid16.comm_adj)
        assert ecc[gw[0]] == ecc.min()

    def test_disconnected_graph_rejected(self):
        adj = np.zeros((4, 4), dtype=bool)
        adj[0, 1] = adj[1, 0] = True
        with pytest.raises(ValueError, match="connected"):
            kcenter_gateways(adj, 1)

    def test_optimal_size_cap(self):
        adj = np.ones((30, 30), dtype=bool)
        np.fill_diagonal(adj, False)
        with pytest.raises(ValueError, match="n <= 24"):
            optimal_gateways(adj, 2)
