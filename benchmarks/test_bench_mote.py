"""Benches for the mote-testbed figures (E1/Fig4, E2/Fig5)."""

import pytest

from repro.experiments.mote_detection import (
    mote_error_experiment,
    mote_rssi_experiment,
)


@pytest.mark.benchmark(group="figures")
def test_fig4_detection_error_vs_size(benchmark, bench_profile, save_table):
    table = benchmark.pedantic(
        mote_error_experiment, args=(bench_profile,), rounds=1, iterations=1
    )
    save_table("fig4_mote_error", table)
    errors = [float(row[2]) for row in table._rows]
    # The paper's shape: rapid growth below 10 bytes, negligible above 20.
    assert errors[0] > 50.0
    assert errors[-1] < 5.0


@pytest.mark.benchmark(group="figures")
def test_fig5_rssi_moving_average(benchmark, bench_profile, save_table):
    table = benchmark.pedantic(
        mote_rssi_experiment, args=(bench_profile,), rounds=1, iterations=1
    )
    save_table("fig5_mote_rssi", table)
