"""Property tests: SCREAM flood semantics and leader election."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.leader import leader_elect
from repro.core.scream import scream_exact, scream_flood, scream_reach_exactly
from repro.topology.diameter import hop_distance_matrix, interference_diameter


@st.composite
def random_digraph_inputs(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    adj = rng.random((n, n)) < draw(st.floats(min_value=0.05, max_value=0.6))
    np.fill_diagonal(adj, False)
    inputs = rng.random(n) < 0.4
    k = draw(st.integers(min_value=0, max_value=n + 2))
    return adj, inputs, k


@given(random_digraph_inputs())
@settings(max_examples=80, deadline=None)
def test_flood_equals_reachability_oracle(case):
    adj, inputs, k = case
    dist = hop_distance_matrix(adj)
    assert np.array_equal(
        scream_flood(adj, inputs, k), scream_reach_exactly(dist, inputs, k)
    )


@given(random_digraph_inputs())
@settings(max_examples=80, deadline=None)
def test_flood_monotone_in_k(case):
    adj, inputs, k = case
    small = scream_flood(adj, inputs, k)
    large = scream_flood(adj, inputs, k + 1)
    assert (small <= large).all()


@given(random_digraph_inputs())
@settings(max_examples=80, deadline=None)
def test_flood_equals_or_when_k_covers_diameter(case):
    adj, inputs, _ = case
    diameter = interference_diameter(adj)
    if not np.isfinite(diameter):
        return
    out = scream_flood(adj, inputs, int(diameter))
    assert np.array_equal(out, scream_exact(inputs))


@given(random_digraph_inputs())
@settings(max_examples=80, deadline=None)
def test_flood_monotone_in_inputs(case):
    """More initial screamers can only produce more hearers."""
    adj, inputs, k = case
    fewer = inputs.copy()
    true_idx = np.flatnonzero(fewer)
    if true_idx.size:
        fewer[true_idx[0]] = False
    assert (scream_flood(adj, fewer, k) <= scream_flood(adj, inputs, k)).all()


@st.composite
def election_case(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    ids = rng.permutation(2**6)[:n].astype(np.int64)
    participating = rng.random(n) < draw(st.floats(min_value=0.0, max_value=1.0))
    return ids, participating


@given(election_case())
@settings(max_examples=100, deadline=None)
def test_exact_election_returns_argmax(case):
    ids, participating = case
    winners = leader_elect(ids, participating, id_bits=6, scream=scream_exact)
    if not participating.any():
        assert not winners.any()
    else:
        expected = np.zeros_like(participating)
        candidates = np.flatnonzero(participating)
        expected[candidates[np.argmax(ids[candidates])]] = True
        assert np.array_equal(winners, expected)


@given(election_case())
@settings(max_examples=60, deadline=None)
def test_election_winner_always_participates(case):
    ids, participating = case
    winners = leader_elect(ids, participating, id_bits=6, scream=scream_exact)
    assert not (winners & ~participating).any()
