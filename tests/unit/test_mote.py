"""Mica2 mote substrate: RSSI synthesis, detection, experiment metrics."""

import numpy as np
import pytest

from repro.mote.cc1000 import CC1000, MoteLinkBudget
from repro.mote.experiment import (
    ScreamExperiment,
    miss_probability,
    monitor_rssi_trace,
    run_detection_error_sweep,
    run_experiment,
)
from repro.mote.rssi import (
    TransmissionInterval,
    moving_average,
    rssi_dbm,
    threshold_crossings,
)


class TestCC1000:
    def test_burst_duration(self):
        cc = CC1000()
        assert cc.burst_duration_s(24) == pytest.approx(24 * 8 / 19200)

    def test_invalid_smbytes(self):
        with pytest.raises(ValueError):
            CC1000().burst_duration_s(0)

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="two hops"):
            MoteLinkBudget(initiator_at_monitor_dbm=-50.0)


class TestRssi:
    def test_noise_floor_without_bursts(self):
        times = np.linspace(0, 0.01, 10)
        readings = rssi_dbm(times, [], -95.0, 0.0, np.random.default_rng(0))
        assert readings == pytest.approx(np.full(10, -95.0))

    def test_burst_raises_level_during_interval(self):
        times = np.array([0.0005, 0.0015, 0.0035])
        burst = TransmissionInterval(0.001, 0.002, -50.0)
        readings = rssi_dbm(times, [burst], -95.0, 0.0, np.random.default_rng(0))
        assert readings[0] == pytest.approx(-95.0)
        assert readings[1] == pytest.approx(-50.0, abs=0.01)
        assert readings[2] == pytest.approx(-95.0)

    def test_concurrent_bursts_add_power(self):
        times = np.array([0.001])
        bursts = [
            TransmissionInterval(0.0, 0.01, -50.0),
            TransmissionInterval(0.0, 0.01, -50.0),
        ]
        readings = rssi_dbm(times, bursts, -95.0, 0.0, np.random.default_rng(0))
        assert readings[0] == pytest.approx(-47.0, abs=0.05)  # +3 dB

    def test_moving_average_window(self):
        values = np.array([0.0, 0.0, 6.0, 6.0, 6.0])
        out = moving_average(values, 3)
        assert out[-1] == pytest.approx(6.0)
        assert out[2] == pytest.approx(2.0)

    def test_moving_average_window_one_is_identity(self):
        values = np.array([1.0, 5.0, 3.0])
        assert np.array_equal(moving_average(values, 1), values)

    def test_threshold_crossings_upward_only(self):
        times = np.arange(6.0)
        values = np.array([-90, -50, -50, -90, -50, -50.0])
        crossings = threshold_crossings(times, values, -60.0)
        assert crossings.tolist() == [1.0, 4.0]

    def test_initial_above_counts_as_crossing(self):
        times = np.arange(3.0)
        values = np.array([-50, -90, -90.0])
        assert threshold_crossings(times, values, -60.0).tolist() == [0.0]


class TestExperiment:
    def test_large_screams_detected_reliably(self):
        exp = ScreamExperiment(smbytes=24, n_screams=50)
        result = run_experiment(exp, rng=1)
        assert result.miss_rate == 0.0
        assert result.error_percent < 5.0

    def test_tiny_screams_mostly_missed(self):
        exp = ScreamExperiment(smbytes=5, n_screams=50)
        result = run_experiment(exp, rng=1)
        assert result.miss_rate > 0.8
        assert result.error_percent > 50.0

    def test_error_decreases_with_size(self):
        results = run_detection_error_sweep([6, 10, 20], n_screams=60, rng=5)
        errors = [r.error_percent for r in results]
        assert errors[0] >= errors[1] >= errors[2]

    def test_intervals_near_period_when_detected(self):
        exp = ScreamExperiment(smbytes=24, n_screams=30)
        result = run_experiment(exp, rng=2)
        assert np.allclose(result.intervals, 0.1, atol=0.005)

    def test_miss_probability_consistent_with_sweep(self):
        assert miss_probability(24, n_trials=50, rng=3) == 0.0
        assert miss_probability(5, n_trials=50, rng=3) > 0.8

    def test_experiment_reproducible(self):
        exp = ScreamExperiment(smbytes=10, n_screams=40)
        a = run_experiment(exp, rng=9)
        b = run_experiment(exp, rng=9)
        assert a.error_percent == b.error_percent
        assert np.array_equal(a.intervals, b.intervals)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScreamExperiment(smbytes=0)
        with pytest.raises((ValueError, TypeError)):
            ScreamExperiment(n_screams=1)


class TestTrace:
    def test_trace_shows_one_episode_per_round(self):
        times, values = monitor_rssi_trace(smbytes=24, n_rounds=4, rng=11)
        above = values >= -60.0
        episodes = int((above[1:] & ~above[:-1]).sum() + int(above[0]))
        assert episodes == 4

    def test_trace_baseline_near_noise_floor(self):
        _, values = monitor_rssi_trace(smbytes=24, n_rounds=2, rng=12)
        assert np.median(values[values < -80]) == pytest.approx(-95.0, abs=2.0)

    def test_trace_times_monotone(self):
        times, _ = monitor_rssi_trace(smbytes=24, n_rounds=3, rng=13)
        assert (np.diff(times) > 0).all()
