"""Radio configuration: thresholds, validation, power vectors."""

import numpy as np
import pytest

from repro.phy.radio import RadioConfig, heterogeneous_tx_power, uniform_tx_power
from repro.phy.units import dbm_to_mw


class TestRadioConfig:
    def test_decode_power_is_beta_times_noise(self):
        radio = RadioConfig(beta=10.0, noise_mw=1e-9)
        assert radio.decode_power_mw == pytest.approx(1e-8)

    def test_cs_threshold_below_decode_threshold(self):
        radio = RadioConfig(cs_gamma=3.0, alpha=3.0)
        assert radio.cs_threshold_mw == pytest.approx(
            radio.decode_power_mw / 27.0
        )

    def test_cs_gamma_one_equates_thresholds(self):
        radio = RadioConfig(cs_gamma=1.0)
        assert radio.cs_threshold_mw == pytest.approx(radio.decode_power_mw)

    def test_rejects_cs_gamma_below_one(self):
        with pytest.raises(ValueError):
            RadioConfig(cs_gamma=0.5)

    def test_rejects_beta_at_or_below_unity(self):
        with pytest.raises(ValueError):
            RadioConfig(beta=1.0)
        with pytest.raises(ValueError):
            RadioConfig(beta=0.5)

    def test_with_cs_gamma_returns_modified_copy(self):
        radio = RadioConfig(cs_gamma=3.0)
        other = radio.with_cs_gamma(2.0)
        assert other.cs_gamma == 2.0
        assert radio.cs_gamma == 3.0


class TestPowerVectors:
    def test_uniform_power_value_and_shape(self):
        tx = uniform_tx_power(5, power_dbm=12.0)
        assert tx.shape == (5,)
        assert np.allclose(tx, dbm_to_mw(12.0))

    def test_heterogeneous_power_within_range(self):
        rng = np.random.default_rng(3)
        tx = heterogeneous_tx_power(100, rng, low_dbm=10.0, high_dbm=14.0)
        assert tx.shape == (100,)
        assert (tx >= dbm_to_mw(10.0) - 1e-12).all()
        assert (tx <= dbm_to_mw(14.0) + 1e-12).all()
        # Heterogeneous means actually varied.
        assert np.std(tx) > 0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            uniform_tx_power(0)
        with pytest.raises(ValueError):
            heterogeneous_tx_power(0, np.random.default_rng(0))

    def test_inverted_power_range_rejected(self):
        with pytest.raises(ValueError):
            heterogeneous_tx_power(
                4, np.random.default_rng(0), low_dbm=14.0, high_dbm=10.0
            )
