"""Zero-price equivalence: the control-plane refactor must be invisible
until a message class is actually priced.

The load-bearing guarantee of the DESIGN.md §10 refactor is differential:
with every :class:`~repro.core.controlplane.ControlPlaneModel` price at
zero, each engine — ``run_epochs`` under every reschedule policy,
``run_epochs_sharded`` on a real multi-shard plan, and the admission
engine with an actively controlling workload — reproduces its unpriced
(``control=None``) trace epoch-for-epoch: records, per-packet delays,
backlogs, cache decisions.  The ledger still *counts* the messages the
idealization was not paying for, which is the second thing locked down
here: identical behaviour, honest message census.
"""

import numpy as np
import pytest

from repro.core.fdd import fdd_on_network
from repro.experiments.common import PAPER_PROTOCOL
from repro.routing import build_routing_forest, planned_gateways
from repro.scheduling.links import forest_link_set
from repro.topology.network import grid_network
from repro.traffic import (
    ControlPlaneModel,
    EpochConfig,
    FlowConfig,
    FlowWorkload,
    KneeTracker,
    PoissonArrivals,
    centralized_scheduler,
    distributed_scheduler,
    plan_for_network,
    run_epochs,
    run_epochs_sharded,
    sharded_centralized_factory,
)
from repro.util.rng import spawn

#: Every behavioural field of an EpochRecord, the new control fields
#: included — zero-priced runs must report 0 control slots everywhere.
ALL_FIELDS = (
    "epoch",
    "arrivals",
    "served",
    "delivered",
    "backlog_end",
    "demand_scheduled",
    "schedule_length",
    "overhead_slots",
    "cache_hit",
    "patched",
    "drift",
    "control_slots",
    "n_shards",
    "reconciled",
)


def _functional(record):
    return tuple(getattr(record, f) for f in ALL_FIELDS)


def assert_traces_identical(priced, bare):
    assert [_functional(r) for r in priced.records] == [
        _functional(r) for r in bare.records
    ]
    assert priced.diverged == bare.diverged
    assert np.array_equal(priced.queues.delay_array(), bare.queues.delay_array())
    assert np.array_equal(priced.queues.backlog, bare.queues.backlog)
    assert all(r.control_slots == 0 for r in priced.records)
    assert priced.ledger is not None and priced.ledger.total_seconds == 0.0
    assert bare.ledger is None
    priced.queues.check_conservation()


@pytest.fixture(scope="module")
def mesh():
    network = grid_network(8, 8, density_per_km2=1000.0)
    gateways = planned_gateways(8, 8, 4)
    forest = build_routing_forest(network.comm_adj, gateways, rng=spawn(23, "f"))
    links = forest_link_set(forest, np.zeros(network.n_nodes, dtype=np.int64))
    return network, gateways, links


def _poisson(network, gateways, rate=0.012):
    return PoissonArrivals(
        network.n_nodes, rate, gateways=gateways, seed=spawn(23, "g")
    )


@pytest.mark.parametrize("policy", ["always", "drift-threshold", "patch"])
def test_zero_priced_run_epochs_is_bit_identical(mesh, policy):
    """run_epochs x every reschedule policy, live FDD (stochastic,
    overhead-priced): control=zero-priced-model ≡ control=None."""
    network, gateways, links = mesh
    config = EpochConfig(
        epoch_slots=200, n_epochs=5, divergence_factor=4.0, reschedule_policy=policy
    )

    def scheduler():
        return distributed_scheduler(
            network, fdd_on_network, config=PAPER_PROTOCOL, seed=23
        )

    bare = run_epochs(
        links, _poisson(network, gateways), scheduler(), config, model=network.model
    )
    priced = run_epochs(
        links,
        _poisson(network, gateways),
        scheduler(),
        config,
        model=network.model,
        control=ControlPlaneModel(),
    )
    assert_traces_identical(priced, bare)
    if policy == "patch" and priced.patched_epochs:
        # The census: free patches still announce their deltas in the ledger.
        assert priced.ledger.messages(layer="incremental", message_class="patch") > 0


@pytest.mark.parametrize("policy", ["always", "patch"])
def test_zero_priced_sharded_engine_is_bit_identical(mesh, policy):
    """run_epochs_sharded on a genuine 4-shard plan (boundary links,
    reconciliation): the priced-at-zero run reproduces the bare engine."""
    network, gateways, links = mesh
    config = EpochConfig(
        epoch_slots=200, n_epochs=5, divergence_factor=4.0, reschedule_policy=policy
    )
    plan = plan_for_network(links, network, n_shards=4, interference_radius_m=80.0)
    assert plan.n_shards > 1

    bare = run_epochs_sharded(
        plan,
        _poisson(network, gateways),
        sharded_centralized_factory(),
        network.model,
        config,
    )
    priced = run_epochs_sharded(
        plan,
        _poisson(network, gateways),
        sharded_centralized_factory(),
        network.model,
        config,
        control=ControlPlaneModel(),
    )
    assert_traces_identical(priced, bare)
    # Boundary links existed and demanded: the free post-pass was reading
    # reports it never paid for.
    assert priced.ledger.messages(layer="sharded", message_class="report") > 0


def test_priced_sharded_patch_run_is_worker_count_invariant(mesh):
    """Per-shard caches charge one shared ledger from worker threads; the
    trace and every ledger reading must be identical at any worker count
    (integer-count accumulation + lock: no lost or reordered charges)."""
    network, gateways, links = mesh
    config = EpochConfig(
        epoch_slots=200, n_epochs=5, divergence_factor=4.0, reschedule_policy="patch"
    )
    plan = plan_for_network(links, network, n_shards=4, interference_radius_m=80.0)

    def run(workers):
        return run_epochs_sharded(
            plan,
            _poisson(network, gateways),
            sharded_centralized_factory(),
            network.model,
            config,
            max_workers=workers,
            control=ControlPlaneModel.default_priced(),
        )

    serial, threaded = run(1), run(4)
    assert [_functional(r) for r in serial.records] == [
        _functional(r) for r in threaded.records
    ]
    assert serial.ledger.total_messages == threaded.ledger.total_messages > 0
    assert serial.ledger.total_seconds == threaded.ledger.total_seconds
    assert serial.ledger.by_layer() == threaded.ledger.by_layer()


def test_zero_priced_admission_engine_is_bit_identical(mesh):
    """An actively controlling knee tracker (blocking sessions, throttling
    flows) under zero prices: identical trace, nonzero signaling census."""
    network, gateways, links = mesh

    def workload():
        cfg = FlowConfig.for_offered_rate(3.0 * 0.019, links.n_links, 200)
        return FlowWorkload(
            links, cfg, controller=KneeTracker(window=3), seed=spawn(23, "wl")
        )

    config = EpochConfig(epoch_slots=200, n_epochs=10, divergence_factor=8.0)
    bare_wl = workload()
    bare = run_epochs(
        links,
        bare_wl,
        centralized_scheduler(network.model),
        config,
        on_epoch=bare_wl.observe,
    )
    priced_wl = workload()
    priced = run_epochs(
        links,
        priced_wl,
        centralized_scheduler(network.model),
        config,
        on_epoch=priced_wl.observe,
        control=ControlPlaneModel(),
    )
    assert_traces_identical(priced, bare)
    assert priced_wl.sessions_blocked == bare_wl.sessions_blocked > 0
    assert priced_wl.packets_throttled == bare_wl.packets_throttled
    assert priced.ledger.messages(layer="admission", message_class="signal") > 0
    assert priced.ledger.messages(layer="admission", message_class="report") > 0


def test_priced_control_only_ever_adds_overhead(mesh):
    """The honest-price run at the same operating point: overhead per epoch
    is pointwise >= the free run's wherever the demand path is identical,
    and the ledger attributes the increment."""
    network, gateways, links = mesh
    config = EpochConfig(
        epoch_slots=200, n_epochs=5, divergence_factor=4.0, reschedule_policy="patch"
    )
    free = run_epochs(
        links,
        _poisson(network, gateways),
        centralized_scheduler(network.model),
        config,
        model=network.model,
        control=ControlPlaneModel(),
    )
    priced = run_epochs(
        links,
        _poisson(network, gateways),
        centralized_scheduler(network.model),
        config,
        model=network.model,
        control=ControlPlaneModel.default_priced(),
    )
    assert priced.ledger.total_seconds > 0.0
    assert priced.control_slots_total > 0
    for priced_rec, free_rec in zip(priced.records, free.records):
        assert priced_rec.overhead_slots >= free_rec.overhead_slots
        assert priced_rec.control_slots >= 0
