"""Gateway selection for the two deployment scenarios.

The paper's experiments use 64 nodes of which 4 act as Internet gateways.
For planned (grid) deployments the gateways are placed at regular positions;
for unplanned deployments they are picked at random (any mesh node can host
the wired uplink).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_integer_in_range


def planned_gateways(rows: int, cols: int, count: int = 4) -> np.ndarray:
    """Evenly spread gateway node indices for a ``rows x cols`` grid.

    Gateways are placed at the centers of the ``ceil(sqrt(count))``-way
    subdivision of the grid — for the paper's 8x8 grid and 4 gateways this
    yields the nodes at lattice coordinates (2,2), (2,5), (5,2), (5,5).
    Node indices follow the row-major order of
    :func:`repro.topology.deployment.grid_positions`.
    """
    check_integer_in_range("rows", rows, minimum=1)
    check_integer_in_range("cols", cols, minimum=1)
    check_integer_in_range("count", count, minimum=1, maximum=rows * cols)
    per_side = int(np.ceil(np.sqrt(count)))
    row_slots = np.linspace(0, rows - 1, 2 * per_side + 1)[1::2]
    col_slots = np.linspace(0, cols - 1, 2 * per_side + 1)[1::2]
    chosen: list[int] = []
    for r in np.round(row_slots).astype(int):
        for c in np.round(col_slots).astype(int):
            if len(chosen) < count:
                chosen.append(int(r * cols + c))
    return np.array(sorted(set(chosen)), dtype=np.intp)


def corner_gateways(rows: int, cols: int, count: int = 4) -> np.ndarray:
    """Gateways at the grid corners (an alternative planned layout)."""
    check_integer_in_range("count", count, minimum=1, maximum=4)
    corners = [0, cols - 1, (rows - 1) * cols, rows * cols - 1]
    return np.array(sorted(set(corners[:count])), dtype=np.intp)


def random_gateways(
    n_nodes: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` distinct random gateway indices (unplanned scenario)."""
    check_integer_in_range("n_nodes", n_nodes, minimum=1)
    check_integer_in_range("count", count, minimum=1, maximum=n_nodes)
    return np.sort(rng.choice(n_nodes, size=count, replace=False)).astype(np.intp)
