"""The 8-mote SCREAM experiment (Section V).

Per 100 ms round: the Initiator screams ``SMBytes``; each Relay samples RSSI
on its own grid and re-screams once upon its first detecting sample
(after a software turn-around); the Monitor runs a dB-domain moving average
over its RSSI samples and registers a SCREAM at the first upward crossing of
the -60 dBm threshold.  The paper's metric is the percentage of inter-scream
intervals outside ±5% of the 100 ms initiation period.

The error mechanism this reproduces: a SCREAM must keep the channel hot for
most of a moving-average window before the average clears the threshold —
bursts shorter than ~window x sample-period (≈10 bytes at CC1000 rates) are
missed with growing probability, while >20-byte bursts detect essentially
always, which is exactly the knee the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mote.cc1000 import CC1000, MoteLinkBudget
from repro.mote.rssi import (
    TransmissionInterval,
    moving_average,
    rssi_dbm,
    threshold_crossings,
)
from repro.util.rng import ensure_rng, spawn
from repro.util.validation import check_integer_in_range, check_positive


@dataclass(frozen=True)
class ScreamExperiment:
    """Configuration of one detection-error experiment."""

    smbytes: int = 15
    n_relays: int = 6
    n_screams: int = 2000
    period_s: float = 0.100
    tolerance: float = 0.05
    radio: CC1000 = field(default_factory=CC1000)
    budget: MoteLinkBudget = field(default_factory=MoteLinkBudget)

    def __post_init__(self) -> None:
        check_integer_in_range("smbytes", self.smbytes, minimum=1)
        check_integer_in_range("n_relays", self.n_relays, minimum=1)
        check_integer_in_range("n_screams", self.n_screams, minimum=2)
        check_positive("period_s", self.period_s)
        check_positive("tolerance", self.tolerance)


@dataclass
class ExperimentResult:
    """Outcome of a detection-error experiment."""

    smbytes: int
    n_screams: int
    detections: int
    intervals: np.ndarray
    error_percent: float
    miss_rate: float

    def __str__(self) -> str:
        return (
            f"SMBytes={self.smbytes}: detected {self.detections}/"
            f"{self.n_screams}, interval error {self.error_percent:.1f}%"
        )


def _round_detection_time(
    exp: ScreamExperiment, rng: np.random.Generator
) -> float | None:
    """Monitor detection time within one scream round (None = missed).

    Times are relative to the round's initiation instant.  Each mote keeps
    its own free-running RSSI sampling grid, modelled as a uniformly random
    phase per round.
    """
    radio = exp.radio
    budget = exp.budget
    burst_s = radio.burst_duration_s(exp.smbytes)
    ts = radio.rssi_sample_period_s

    # Relays: first sampling instant inside the initiator's burst that reads
    # above threshold triggers a re-scream (the initiator is comfortably
    # above threshold at the relays, so a sample inside the burst detects
    # unless measurement noise pushes it under).
    relay_bursts: list[TransmissionInterval] = []
    for _ in range(exp.n_relays):
        phase = rng.uniform(0.0, ts)
        sample_times = np.arange(phase, burst_s, ts)
        detected_at: float | None = None
        for t in sample_times:
            reading = budget.initiator_at_relay_dbm + (
                rng.normal(0.0, budget.noise_sigma_db)
                if budget.noise_sigma_db
                else 0.0
            )
            if reading >= budget.threshold_dbm:
                detected_at = float(t)
                break
        if detected_at is not None:
            relay_bursts.append(
                TransmissionInterval(
                    start_s=detected_at + radio.detect_processing_s,
                    duration_s=burst_s,
                    level_dbm=budget.relay_at_monitor_dbm,
                )
            )
    # The initiator itself is two hops out: present but sub-threshold.
    bursts = [
        TransmissionInterval(0.0, burst_s, budget.initiator_at_monitor_dbm)
    ] + relay_bursts

    # Monitor: moving-average detector over its own free-running sampling
    # grid.  Sampling is continuous across rounds, so the average is warmed
    # up with pre-round noise samples — a short burst must displace most of
    # the window before the average clears the threshold.
    window = radio.moving_average_window
    phase = rng.uniform(0.0, ts)
    start = phase - window * ts
    sample_times = np.arange(start, exp.period_s, ts)
    readings = rssi_dbm(
        sample_times, bursts, budget.noise_floor_dbm, budget.noise_sigma_db, rng
    )
    averaged = moving_average(readings, window)
    crossings = threshold_crossings(sample_times, averaged, budget.threshold_dbm)
    if crossings.size == 0:
        return None
    return float(crossings[0])


def run_experiment(
    exp: ScreamExperiment, rng: np.random.Generator | int | None = None
) -> ExperimentResult:
    """Run the full experiment; compute the paper's interval-error metric."""
    generator = ensure_rng(rng)
    detection_times: list[float] = []
    misses = 0
    for round_idx in range(exp.n_screams):
        t = _round_detection_time(exp, spawn(generator, "round", round_idx))
        if t is None:
            misses += 1
        else:
            detection_times.append(round_idx * exp.period_s + t)

    times = np.asarray(detection_times)
    intervals = np.diff(times) if times.size >= 2 else np.empty(0)
    lo = exp.period_s * (1.0 - exp.tolerance)
    hi = exp.period_s * (1.0 + exp.tolerance)
    expected_intervals = exp.n_screams - 1
    good = int(((intervals >= lo) & (intervals <= hi)).sum())
    error_percent = 100.0 * (expected_intervals - good) / expected_intervals

    return ExperimentResult(
        smbytes=exp.smbytes,
        n_screams=exp.n_screams,
        detections=int(times.size),
        intervals=intervals,
        error_percent=error_percent,
        miss_rate=misses / exp.n_screams,
    )


def run_detection_error_sweep(
    smbytes_values: list[int],
    n_screams: int = 2000,
    rng: np.random.Generator | int | None = None,
    **kwargs,
) -> list[ExperimentResult]:
    """The paper's Figure "error vs SCREAM size": one run per size."""
    root = ensure_rng(rng)
    results = []
    for smbytes in smbytes_values:
        exp = ScreamExperiment(smbytes=smbytes, n_screams=n_screams, **kwargs)
        results.append(run_experiment(exp, spawn(root, "smbytes", smbytes)))
    return results


def miss_probability(
    smbytes: int,
    n_trials: int = 400,
    rng: np.random.Generator | int | None = None,
    **kwargs,
) -> float:
    """Estimated per-SCREAM monitor miss probability for a given size.

    This is the coupling point to the protocol fault model: feed it into
    :class:`repro.core.config.FaultConfig(scream_miss_prob=...)` to study
    how physical detection reliability propagates into schedule validity.
    """
    exp = ScreamExperiment(smbytes=smbytes, n_screams=max(2, n_trials), **kwargs)
    generator = ensure_rng(rng)
    misses = 0
    for i in range(n_trials):
        if _round_detection_time(exp, spawn(generator, "trial", i)) is None:
            misses += 1
    return misses / n_trials


def monitor_rssi_trace(
    smbytes: int = 24,
    n_rounds: int = 5,
    log_every: int = 3,
    rng: np.random.Generator | int | None = None,
    radio: CC1000 | None = None,
    budget: MoteLinkBudget | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The paper's RSSI-trace figure: (times, moving-average dBm) arrays.

    Reproduces the logging conditions: moving average recorded every
    ``log_every`` RSSI samples ("owing to device and UART limitations"),
    default SCREAM size 24 bytes.
    """
    cc = radio or CC1000()
    lb = budget or MoteLinkBudget()
    generator = ensure_rng(rng)
    exp = ScreamExperiment(smbytes=smbytes, radio=cc, budget=lb, n_screams=2)

    ts = cc.rssi_sample_period_s
    burst_s = cc.burst_duration_s(smbytes)
    all_times: list[np.ndarray] = []
    all_values: list[np.ndarray] = []
    for round_idx in range(n_rounds):
        round_rng = spawn(generator, "trace", round_idx)
        bursts = [TransmissionInterval(0.0, burst_s, lb.initiator_at_monitor_dbm)]
        for _ in range(exp.n_relays):
            phase = round_rng.uniform(0.0, ts)
            bursts.append(
                TransmissionInterval(
                    phase + cc.detect_processing_s, burst_s, lb.relay_at_monitor_dbm
                )
            )
        window = cc.moving_average_window
        phase = round_rng.uniform(0.0, ts)
        sample_times = np.arange(phase - window * ts, exp.period_s, ts)
        readings = rssi_dbm(
            sample_times, bursts, lb.noise_floor_dbm, lb.noise_sigma_db, round_rng
        )
        averaged = moving_average(readings, window)
        keep = sample_times >= 0.0
        offset = round_idx * exp.period_s
        all_times.append(sample_times[keep][::log_every] + offset)
        all_values.append(averaged[keep][::log_every])
    return np.concatenate(all_times), np.concatenate(all_values)
