"""Per-node clock offsets under a bounded-skew model (Section VI).

The paper assumes clocks "synchronized to a global time, within a reasonable
degree of accuracy" and studies the effect of a bounded skew.  Implementations
compensate by stretching every synchronized step with a guard interval; the
model here quantifies when that compensation suffices.

A node's clock offset is drawn uniformly from ``[-bound, +bound]`` and held
fixed (drift between two schedule computations is folded into the bound).
With a per-step guard ``g``, a transmission of duration ``tau`` beginning at
nominal slot start is fully contained in every listener's slot window iff
``offset(tx) - offset(rx)`` stays within ``g - tau``-ish margins; the
overlap fraction below quantifies partial containment for detection
modelling.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_non_negative


class ClockModel:
    """Fixed per-node clock offsets with a uniform bounded-skew law."""

    def __init__(
        self,
        n_nodes: int,
        skew_bound_s: float,
        rng: np.random.Generator,
    ):
        check_non_negative("skew_bound_s", skew_bound_s)
        self.skew_bound_s = skew_bound_s
        self.offsets = (
            rng.uniform(-skew_bound_s, skew_bound_s, size=n_nodes)
            if skew_bound_s > 0
            else np.zeros(n_nodes)
        )

    def pairwise_misalignment(self, sender: int, listener: int) -> float:
        """Absolute clock misalignment between two nodes (seconds)."""
        return float(abs(self.offsets[sender] - self.offsets[listener]))

    def overlap_fraction(
        self, sender: int, listener: int, burst_s: float, guard_s: float
    ) -> float:
        """Fraction of a burst landing inside the listener's slot window.

        The sender transmits for ``burst_s`` starting at its local slot
        start; the listener's detection window spans its local slot plus the
        guard.  1.0 means fully contained (reliable detection); 0.0 means
        the burst entirely missed the window.
        """
        if burst_s <= 0:
            return 1.0
        misalignment = self.pairwise_misalignment(sender, listener)
        margin = guard_s - misalignment
        if margin >= 0:
            return 1.0
        overshoot = min(-margin, burst_s)
        return 1.0 - overshoot / burst_s

    def detection_reliable(
        self, sender: int, listener: int, burst_s: float, guard_s: float
    ) -> bool:
        """Is the burst fully contained in the listener's window?"""
        return self.overlap_fraction(sender, listener, burst_s, guard_s) >= 1.0
