"""The SCREAM primitive and leader election (functional forms)."""

import numpy as np
import pytest

from repro.core.leader import leader_elect
from repro.core.scream import scream_exact, scream_flood, scream_reach_exactly
from repro.topology.diameter import hop_distance_matrix


def path_sensitivity(n: int) -> np.ndarray:
    adj = np.zeros((n, n), dtype=bool)
    for i in range(n - 1):
        adj[i, i + 1] = adj[i + 1, i] = True
    return adj


class TestScreamExact:
    def test_or_semantics(self):
        assert scream_exact(np.array([False, True, False])).all()
        assert not scream_exact(np.array([False, False])).any()


class TestScreamFlood:
    def test_full_propagation_with_sufficient_k(self):
        adj = path_sensitivity(6)
        inputs = np.array([True, False, False, False, False, False])
        out = scream_flood(adj, inputs, k=5)
        assert out.all()

    def test_truncated_propagation(self):
        adj = path_sensitivity(6)
        inputs = np.array([True] + [False] * 5)
        out = scream_flood(adj, inputs, k=2)
        assert out.tolist() == [True, True, True, False, False, False]

    def test_no_sources_stays_silent(self):
        adj = path_sensitivity(4)
        assert not scream_flood(adj, np.zeros(4, dtype=bool), k=10).any()

    def test_k_zero_returns_inputs(self):
        adj = path_sensitivity(4)
        inputs = np.array([False, True, False, False])
        assert np.array_equal(scream_flood(adj, inputs, k=0), inputs)

    def test_matches_reachability_oracle(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            n = int(rng.integers(2, 12))
            adj = rng.random((n, n)) < 0.3
            np.fill_diagonal(adj, False)
            inputs = rng.random(n) < 0.3
            k = int(rng.integers(0, n + 2))
            dist = hop_distance_matrix(adj)
            assert np.array_equal(
                scream_flood(adj, inputs, k),
                scream_reach_exactly(dist, inputs, k),
            )

    def test_miss_prob_one_blocks_propagation(self):
        adj = path_sensitivity(5)
        inputs = np.array([True, False, False, False, False])
        out = scream_flood(
            adj, inputs, k=10, rng=np.random.default_rng(0), miss_prob=1.0
        )
        assert out.tolist() == [True, False, False, False, False]

    def test_miss_prob_requires_rng(self):
        adj = path_sensitivity(3)
        with pytest.raises(ValueError, match="rng"):
            scream_flood(adj, np.zeros(3, dtype=bool), k=1, miss_prob=0.5)

    def test_negative_k_rejected(self):
        adj = path_sensitivity(3)
        with pytest.raises(ValueError):
            scream_flood(adj, np.zeros(3, dtype=bool), k=-1)


class TestLeaderElect:
    def _exact_scream(self, inputs):
        return scream_exact(inputs)

    def test_max_id_wins(self):
        ids = np.array([3, 7, 1, 5])
        part = np.ones(4, dtype=bool)
        winners = leader_elect(ids, part, id_bits=4, scream=self._exact_scream)
        assert winners.tolist() == [False, True, False, False]

    def test_passive_nodes_cannot_win(self):
        ids = np.array([3, 7, 1, 5])
        part = np.array([True, False, True, False])
        winners = leader_elect(ids, part, id_bits=4, scream=self._exact_scream)
        assert winners.tolist() == [True, False, False, False]

    def test_no_participants_no_winner(self):
        ids = np.array([1, 2])
        winners = leader_elect(
            ids, np.zeros(2, dtype=bool), id_bits=2, scream=self._exact_scream
        )
        assert not winners.any()

    def test_id_zero_can_win_alone(self):
        ids = np.array([0, 5])
        part = np.array([True, False])
        winners = leader_elect(ids, part, id_bits=3, scream=self._exact_scream)
        assert winners.tolist() == [True, False]

    def test_insufficient_id_bits_rejected(self):
        ids = np.array([9])
        with pytest.raises(ValueError, match="id_bits"):
            leader_elect(ids, np.array([True]), id_bits=3, scream=self._exact_scream)

    def test_truncated_scream_can_elect_multiple_leaders(self):
        """With K below the diameter, disjoint regions elect separately."""
        adj = path_sensitivity(8)
        ids = np.arange(8)
        part = np.ones(8, dtype=bool)

        def truncated(inputs):
            return scream_flood(adj, inputs, k=1)

        winners = leader_elect(ids, part, id_bits=3, scream=truncated)
        assert winners.sum() >= 2
        assert winners[7]  # the true maximum always survives
