"""Unit tests for the incremental-rescheduling layer.

Drift metrics, ScheduleCache decision logic (hit / patch / recompute),
patch correctness against the exact SINR model, the overhead clamp in the
epoch loop, and the de-flaked stability classifiers.
"""

import warnings
from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.common import grid_scenario
from repro.scheduling.feasibility import schedule_is_feasible
from repro.scheduling.greedy_physical import greedy_physical
from repro.traffic import (
    ConstantBitRate,
    EpochConfig,
    EpochRecord,
    EpochSchedule,
    PoissonArrivals,
    ScheduleCache,
    TrafficTrace,
    backlog_slope,
    centralized_scheduler,
    drift_l1,
    drift_linf,
    is_borderline,
    majority_stable,
    patch_schedule,
    run_epochs,
    stability_margin,
    stability_sweep,
)


@pytest.fixture(scope="module")
def mesh():
    """A small grid scenario with positive demands on every link."""
    return grid_scenario(2000.0, rep=0, rows=4, cols=4, n_gateways=2)


# ---------------------------------------------------------------------------
# Drift metrics
# ---------------------------------------------------------------------------


class TestDriftMetrics:
    def test_identical_vectors_have_zero_drift(self):
        b = np.array([3, 0, 5, 1])
        assert drift_l1(b, b) == 0.0
        assert drift_linf(b, b) == 0.0

    def test_l1_normalizes_by_baseline_mass(self):
        base = np.array([4, 4, 4, 4])  # mass 16
        current = np.array([4, 4, 4, 12])  # moved 8
        assert drift_l1(current, base) == pytest.approx(0.5)

    def test_linf_normalizes_by_baseline_peak(self):
        base = np.array([2, 10, 0])
        current = np.array([7, 10, 0])  # worst per-link change 5, peak 10
        assert drift_linf(current, base) == pytest.approx(0.5)

    def test_zero_baseline_uses_unit_floor(self):
        base = np.zeros(3, dtype=int)
        current = np.array([2, 0, 0])
        assert drift_l1(current, base) == pytest.approx(2.0)
        assert drift_linf(current, base) == pytest.approx(2.0)

    def test_drift_is_symmetric_in_the_difference(self):
        base = np.array([5, 5])
        assert drift_l1(np.array([3, 5]), base) == drift_l1(np.array([7, 5]), base)


# ---------------------------------------------------------------------------
# patch_schedule
# ---------------------------------------------------------------------------


class TestPatchSchedule:
    def test_patched_schedule_matches_new_demand_exactly(self, mesh):
        links, model = mesh.links, mesh.network.model
        cached = greedy_physical(links, model)
        rng = np.random.default_rng(7)
        new_demand = rng.integers(0, 6, size=links.n_links)
        new_links = replace(links, demand=new_demand)

        patched = patch_schedule(cached, new_links, model)
        assert patched is not None
        assert np.array_equal(patched.allocations(), new_demand)
        assert patched.satisfies_demand()

    def test_patched_schedule_is_sinr_feasible(self, mesh):
        links, model = mesh.links, mesh.network.model
        cached = greedy_physical(links, model)
        new_links = replace(links, demand=links.demand * 2)
        patched = patch_schedule(cached, new_links, model)
        assert patched is not None
        assert schedule_is_feasible(patched, model)

    def test_emptied_links_are_dropped_and_slots_pruned(self, mesh):
        links, model = mesh.links, mesh.network.model
        cached = greedy_physical(links, model)
        new_demand = np.zeros(links.n_links, dtype=np.int64)
        new_demand[0] = int(links.demand[0])  # only link 0 keeps traffic
        patched = patch_schedule(cached, replace(links, demand=new_demand), model)
        assert patched is not None
        allocations = patched.allocations()
        assert allocations[0] == new_demand[0]
        assert allocations[1:].sum() == 0
        # Every remaining slot serves link 0; none are empty.
        assert patched.length == new_demand[0]
        assert all(len(slot) == 1 for slot in patched.slots)

    def test_max_length_forces_fallback(self, mesh):
        links, model = mesh.links, mesh.network.model
        cached = greedy_physical(links, model)
        grown = replace(links, demand=links.demand * 3)
        assert patch_schedule(cached, grown, model, max_length=2) is None

    def test_mismatched_link_universe_raises(self, mesh):
        links, model = mesh.links, mesh.network.model
        cached = greedy_physical(links, model)
        smaller = links.subset(np.arange(links.n_links - 1))
        with pytest.raises(ValueError, match="link universe"):
            patch_schedule(cached, smaller, model)

    def test_cached_schedule_is_not_mutated(self, mesh):
        links, model = mesh.links, mesh.network.model
        cached = greedy_physical(links, model)
        before = [list(s.links) for s in cached.slots]
        patch_schedule(cached, replace(links, demand=links.demand * 2), model)
        assert [list(s.links) for s in cached.slots] == before


# ---------------------------------------------------------------------------
# ScheduleCache
# ---------------------------------------------------------------------------


def _counting_scheduler(model):
    """A centralized scheduler that counts invocations."""
    calls = []

    def schedule(links, epoch):
        calls.append(epoch)
        return EpochSchedule(greedy_physical(links, model), overhead_seconds=1.0)

    return schedule, calls


class TestScheduleCache:
    def test_first_call_recomputes(self, mesh):
        base, calls = _counting_scheduler(mesh.network.model)
        cache = ScheduleCache(base)
        planned = cache(mesh.links, 0)
        assert calls == [0]
        assert planned.overhead_seconds == 1.0
        assert cache.last_decision.recomputed
        assert cache.last_decision.drift == float("inf")

    def test_hit_charges_zero_overhead_and_skips_base(self, mesh):
        base, calls = _counting_scheduler(mesh.network.model)
        cache = ScheduleCache(base)
        first = cache(mesh.links, 0)
        again = cache(mesh.links, 1)  # identical demand: drift 0
        assert calls == [0]
        assert again.overhead_seconds == 0.0
        assert again.schedule is first.schedule
        assert cache.last_decision.hit
        assert cache.stats.hits == 1 and cache.stats.recomputes == 1

    def test_drift_above_threshold_recomputes(self, mesh):
        base, calls = _counting_scheduler(mesh.network.model)
        cache = ScheduleCache(base, drift_threshold=0.1)
        cache(mesh.links, 0)
        shifted = replace(mesh.links, demand=mesh.links.demand * 3)
        planned = cache(shifted, 1)
        assert calls == [0, 1]
        assert planned.overhead_seconds == 1.0
        assert cache.last_decision.recomputed

    def test_patch_policy_repairs_instead_of_recomputing(self, mesh):
        base, calls = _counting_scheduler(mesh.network.model)
        cache = ScheduleCache(
            base, policy="patch", drift_threshold=0.1, model=mesh.network.model
        )
        cache(mesh.links, 0)
        shifted = replace(mesh.links, demand=mesh.links.demand * 2)
        planned = cache(shifted, 1)
        assert calls == [0]  # repaired, not re-run
        assert planned.overhead_seconds == 0.0
        assert cache.last_decision.patched
        assert np.array_equal(planned.schedule.allocations(), shifted.demand)

    def test_patch_rebases_the_drift_baseline(self, mesh):
        base, calls = _counting_scheduler(mesh.network.model)
        cache = ScheduleCache(
            base, policy="patch", drift_threshold=0.1, model=mesh.network.model
        )
        cache(mesh.links, 0)
        shifted = replace(mesh.links, demand=mesh.links.demand * 2)
        cache(shifted, 1)  # patched; baseline is now the doubled demand
        again = cache(shifted, 2)
        assert again.overhead_seconds == 0.0
        assert cache.last_decision.hit  # drift 0 vs the rebased baseline

    def test_headroom_scales_threshold(self, mesh):
        base, _ = _counting_scheduler(mesh.network.model)
        tight = ScheduleCache(base, drift_threshold=0.2)
        roomy = ScheduleCache(base, drift_threshold=0.2, epoch_slots=10_000)
        tight(mesh.links, 0)
        roomy(mesh.links, 0)
        assert tight.effective_threshold() == pytest.approx(0.2)
        assert roomy.effective_threshold() > 0.2  # many cycles fit: scaled up

    def test_invalidate_forces_recompute(self, mesh):
        base, calls = _counting_scheduler(mesh.network.model)
        cache = ScheduleCache(base)
        cache(mesh.links, 0)
        cache.invalidate()
        cache(mesh.links, 1)
        assert calls == [0, 1]

    def test_patch_policy_requires_model(self, mesh):
        base, _ = _counting_scheduler(mesh.network.model)
        with pytest.raises(ValueError, match="PhysicalInterferenceModel"):
            ScheduleCache(base, policy="patch")

    def test_unknown_policy_rejected(self, mesh):
        base, _ = _counting_scheduler(mesh.network.model)
        with pytest.raises(ValueError, match="policy"):
            ScheduleCache(base, policy="sometimes")


# ---------------------------------------------------------------------------
# Epoch-loop integration: config validation, accounting, overhead clamp
# ---------------------------------------------------------------------------


class TestEpochLoopIntegration:
    def test_config_rejects_unknown_policy_and_metric(self):
        with pytest.raises(ValueError, match="reschedule_policy"):
            EpochConfig(reschedule_policy="never")
        with pytest.raises(ValueError, match="drift_metric"):
            EpochConfig(drift_metric="l7")
        with pytest.raises(ValueError, match="drift_threshold"):
            EpochConfig(drift_threshold=-0.5)

    def test_cache_hits_recorded_and_charge_zero_overhead(self, mesh):
        generator = ConstantBitRate(
            mesh.network.n_nodes, 0.01, gateways=mesh.gateways, seed=5
        )
        config = EpochConfig(
            epoch_slots=200,
            n_epochs=6,
            reschedule_policy="drift-threshold",
            drift_threshold=10.0,  # everything after epoch 0 hits
        )
        scheduler = centralized_scheduler(mesh.network.model, overhead_seconds=1.0)
        trace = run_epochs(mesh.links, generator, scheduler, config)
        assert trace.records[0].cache_hit is False
        assert all(r.cache_hit for r in trace.records[1:])
        assert all(r.overhead_slots == 0 for r in trace.records[1:])
        assert trace.cache_hit_rate == pytest.approx(5 / 6)
        # The recompute epoch's infinite "no cache yet" drift is recorded as 0.
        assert trace.records[0].drift == 0.0
        trace.queues.check_conservation()

    def test_hit_rate_ignores_zero_demand_epochs(self, mesh):
        """Epochs that never invoke the scheduler count neither way."""
        # Rate low enough that fluid accumulation leaves some epochs empty.
        generator = ConstantBitRate(
            mesh.network.n_nodes, 0.004, gateways=mesh.gateways, seed=1
        )
        config = EpochConfig(
            epoch_slots=100,
            n_epochs=6,
            reschedule_policy="drift-threshold",
            drift_threshold=10.0,
        )
        scheduler = centralized_scheduler(mesh.network.model)
        trace = run_epochs(mesh.links, generator, scheduler, config)
        requests = sum(1 for r in trace.records if r.demand_scheduled > 0)
        assert requests < trace.n_epochs_run  # some epochs asked for nothing
        assert trace.cache_hit_rate == pytest.approx(
            (trace.cache_hits + trace.patched_epochs) / requests
        )

    def test_drift_threshold_none_resolves_to_library_default(self):
        from repro.traffic.incremental import DEFAULT_DRIFT_THRESHOLD

        assert EpochConfig().drift_threshold == DEFAULT_DRIFT_THRESHOLD
        assert EpochConfig(drift_threshold=0.0).drift_threshold == 0.0

    def test_patch_epochs_recorded(self, mesh):
        generator = PoissonArrivals(
            mesh.network.n_nodes, 0.02, gateways=mesh.gateways, seed=9
        )
        config = EpochConfig(
            epoch_slots=200,
            n_epochs=6,
            reschedule_policy="patch",
            drift_threshold=0.0,  # never hit: always patch (or recompute)
        )
        scheduler = centralized_scheduler(mesh.network.model)
        trace = run_epochs(
            mesh.links, generator, scheduler, config, model=mesh.network.model
        )
        assert trace.patched_epochs > 0
        assert all(
            r.overhead_slots == 0 for r in trace.records if r.patched or r.cache_hit
        )
        trace.queues.check_conservation()

    def test_overhead_at_least_epoch_serves_zero_slots(self, mesh):
        """Regression: an absurdly slow scheduler must serve exactly nothing.

        Overhead >= epoch_slots used to leave the recorded overhead unclamped;
        serving must be 0 with no negative remainder or modulo wrap, and
        conservation must hold (all arrivals stay queued).
        """
        generator = ConstantBitRate(
            mesh.network.n_nodes, 0.05, gateways=mesh.gateways, seed=2
        )
        config = EpochConfig(epoch_slots=50, n_epochs=3, slot_seconds=0.04)
        # 1e6 seconds of protocol time >> 50 slots * 0.04 s.
        scheduler = centralized_scheduler(mesh.network.model, overhead_seconds=1e6)
        trace = run_epochs(mesh.links, generator, scheduler, config)
        assert all(r.served == 0 for r in trace.records)
        assert all(r.delivered == 0 for r in trace.records)
        assert all(r.overhead_slots == config.epoch_slots for r in trace.records)
        assert trace.delivered_total == 0
        assert trace.records[-1].backlog_end == trace.arrivals_total
        trace.queues.check_conservation()

    def test_overhead_just_under_epoch_still_serves(self, mesh):
        generator = ConstantBitRate(
            mesh.network.n_nodes, 0.05, gateways=mesh.gateways, seed=2
        )
        config = EpochConfig(epoch_slots=50, n_epochs=3, slot_seconds=0.04)
        # 49 slots of overhead: exactly one data slot left per epoch.
        scheduler = centralized_scheduler(
            mesh.network.model, overhead_seconds=49 * 0.04
        )
        trace = run_epochs(mesh.links, generator, scheduler, config)
        assert all(r.overhead_slots == 49 for r in trace.records)
        assert trace.queues.served_total > 0
        trace.queues.check_conservation()


# ---------------------------------------------------------------------------
# De-flaked stability classifiers
# ---------------------------------------------------------------------------


def _trace(backlogs, arrivals_per_epoch=100, diverged=False):
    records = [
        EpochRecord(
            epoch=e,
            arrivals=arrivals_per_epoch,
            served=0,
            delivered=0,
            backlog_end=b,
            demand_scheduled=0,
            schedule_length=0,
            overhead_slots=0,
        )
        for e, b in enumerate(backlogs)
    ]
    return TrafficTrace(config=EpochConfig(), records=records, diverged=diverged)


class TestBacklogSlope:
    def test_constant_tail_returns_exact_zero_without_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any RankWarning fails the test
            assert backlog_slope(_trace([7, 7, 7, 7, 7, 7])) == 0.0

    def test_degenerate_short_series_return_zero(self):
        assert backlog_slope(_trace([])) == 0.0
        assert backlog_slope(_trace([42])) == 0.0

    def test_symmetric_tail_with_exact_zero_slope(self):
        # Polynomial.convert() trims an exactly-zero linear term down to a
        # single coefficient; regression for the IndexError that caused.
        assert backlog_slope(_trace([0, 0, 0, 3, 0, 3])) == 0.0
        assert backlog_slope(_trace([0, 0, 0, 0, 1, 2, 2, 1])) == 0.0

    def test_linear_series_recovers_slope(self):
        assert backlog_slope(_trace([0, 10, 20, 30, 40, 50])) == pytest.approx(10.0)

    def test_matches_least_squares_on_noisy_tail(self):
        series = [3, 1, 4, 1, 5, 9, 2, 6]
        tail = np.asarray(series[4:], dtype=float)
        expected = np.polyfit(np.arange(4.0), tail, 1)[0]
        assert backlog_slope(_trace(series)) == pytest.approx(expected)


class TestBorderlineMachinery:
    def test_decisively_stable_is_not_borderline(self):
        trace = _trace([5, 4, 5, 4, 5, 4])
        assert stability_margin(trace) < 0.5
        assert not is_borderline(trace)

    def test_decisively_unstable_is_not_borderline(self):
        trace = _trace([100, 200, 300, 400, 500, 600])
        assert stability_margin(trace) > 2.0
        assert not is_borderline(trace)

    def test_marginal_growth_is_borderline(self):
        # Slope ~ 6/epoch vs threshold 5 (tolerance 0.05 * 100 arrivals),
        # final backlog just past the magnitude gate of 50.
        trace = _trace([60, 66, 72, 78, 84, 90])
        assert is_borderline(trace)

    def test_diverged_is_not_borderline(self):
        trace = _trace([1, 1, 1], diverged=True)
        assert stability_margin(trace) == float("inf")
        assert not is_borderline(trace)

    def test_majority_vote(self):
        stable = _trace([5, 4, 5, 4])
        unstable = _trace([100, 200, 300, 400])
        assert majority_stable([stable, stable, unstable])
        assert not majority_stable([stable, unstable, unstable])
        with pytest.raises(ValueError):
            majority_stable([])

    def test_hysteresis_below_one_rejected(self):
        with pytest.raises(ValueError, match="hysteresis"):
            is_borderline(_trace([5, 4, 5, 4]), hysteresis=0.5)


class TestSweepConfirmation:
    def test_borderline_points_get_majority_verdict(self):
        """A borderline base seed is outvoted by two decisive seeds."""
        borderline = _trace([60, 66, 72, 78, 84, 90])  # reads unstable, barely
        stable = _trace([5, 4, 5, 4, 5, 4])
        seen = []

        def run_at(rate, seed_index=0):
            seen.append(seed_index)
            return borderline if seed_index == 0 else stable

        points = stability_sweep([0.01], run_at, confirm_seeds=3)
        assert seen == [0, 1, 2]
        assert points[0].stable  # majority overrode the flaky verdict
        assert points[0].confirm_seeds == 3

    def test_decisive_points_are_not_rerun(self):
        seen = []

        def run_at(rate, seed_index=0):
            seen.append(seed_index)
            return _trace([5, 4, 5, 4, 5, 4])

        points = stability_sweep([0.01, 0.02], run_at, confirm_seeds=3)
        assert seen == [0, 0]  # one run per rate, no confirmations needed
        assert all(p.confirm_seeds == 1 for p in points)

    def test_confirm_requires_seed_aware_run_at(self):
        def run_at(rate):
            return _trace([5, 4, 5, 4])

        with pytest.raises(TypeError, match="seed_index"):
            stability_sweep([0.01], run_at, confirm_seeds=3)

    def test_confirm_rejects_misnamed_second_parameter(self):
        """A second positional slot is not enough: binding the seed to an
        unrelated parameter (a closure default, a tolerance) must fail
        loudly instead of silently corrupting every run."""

        def run_at(rate, tolerance=0.05):
            return _trace([5, 4, 5, 4])

        with pytest.raises(TypeError, match="seed_index"):
            stability_sweep([0.01], run_at, confirm_seeds=3)

    def test_confirm_accepts_kwargs_run_at(self):
        def run_at(rate, **kwargs):
            return _trace([5, 4, 5, 4])

        points = stability_sweep([0.01], run_at, confirm_seeds=3)
        assert points[0].stable

    def test_single_seed_keeps_legacy_signature(self):
        def run_at(rate):
            return _trace([5, 4, 5, 4])

        points = stability_sweep([0.01], run_at)
        assert points[0].stable


class TestPatchScheduleWithRateTable:
    """patch_schedule(table=...): demand-matching in packets, not memberships."""

    def table(self, model):
        from repro.phy.radio import RateTable

        return RateTable.geometric(model.radio.beta)

    def test_degenerate_table_patches_identically(self, mesh):
        from repro.phy.radio import RateTable

        links, model = mesh.links, mesh.network.model
        table = RateTable.degenerate(model.radio.beta)
        cached = greedy_physical(links, model)
        rng = np.random.default_rng(11)
        new_links = replace(links, demand=rng.integers(0, 6, size=links.n_links))

        bare = patch_schedule(cached, new_links, model)
        rated = patch_schedule(cached, new_links, model, table=table)
        assert bare is not None and rated is not None
        assert [s.links for s in bare.slots] == [s.links for s in rated.slots]

    def test_packet_capacity_covers_new_demand(self, mesh):
        from repro.scheduling.feasibility import schedule_rates

        links, model = mesh.links, mesh.network.model
        table = self.table(model)
        cached = greedy_physical(links, model)
        rng = np.random.default_rng(13)
        new_demand = rng.integers(0, 8, size=links.n_links)
        new_links = replace(links, demand=new_demand)

        patched = patch_schedule(cached, new_links, model, table=table)
        assert patched is not None
        assert schedule_is_feasible(patched, model)
        capacity = np.zeros(links.n_links, dtype=np.int64)
        for slot, rates in zip(patched.slots, schedule_rates(patched, model, table)):
            for k, rate in zip(slot.links, rates):
                capacity[k] += rate
        assert (capacity >= new_demand).all()
        # Emptied links keep no memberships (trim still exact in packets).
        for slot in patched.slots:
            assert all(new_demand[k] > 0 for k in slot.links)

    def test_table_patch_max_length_fallback(self, mesh):
        links, model = mesh.links, mesh.network.model
        cached = greedy_physical(links, model)
        grown = replace(links, demand=links.demand * 6)
        assert (
            patch_schedule(cached, grown, model, max_length=2, table=self.table(model))
            is None
        )
