"""Scheduling arbitrary link sets with the distributed protocols.

The paper notes that "up to straightforward modifications, the protocols
presented in this paper can be used to schedule an arbitrary link set (not
necessarily a forest)".  The modification implemented here: the one-to-one
node/edge mapping becomes one-to-one *per wave*.  Each node owns the links
it heads, ordered by decreasing link ID; in every wave it contends on behalf
of its highest-ID pending link (its *current* link), using that link's ID
for leader election.  When every current link's demand is met the protocol's
own termination detection fires, and the next wave starts with each node's
next pending link — no extra machinery beyond re-running the forest
protocol.

Properties:

* the produced schedule is feasible and satisfies every link's demand
  (asserted by tests through the independent verifier);
* within a wave, FDD still realizes the centralized greedy order over the
  wave's links (Theorem 4 applies wave-locally);
* across waves the schedule can be longer than a global GreedyPhysical pass
  over all links (a node's later links cannot borrow slots from an earlier
  wave) — this is the price of keeping the node state machine unchanged,
  and the ``waves`` diagnostics expose it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import NO_FAULTS, FaultConfig, ProtocolConfig
from repro.core.events import StepTally
from repro.core.fast_runtime import FastRuntime
from repro.core.fdd import run_fdd
from repro.core.pdd import run_pdd
from repro.core.protocol import ProtocolResult
from repro.scheduling.links import LinkSet
from repro.scheduling.schedule import Schedule, Slot
from repro.topology.network import Network
from repro.util.rng import ensure_rng, spawn


@dataclass
class ArbitraryResult:
    """Outcome of scheduling an arbitrary link set in waves."""

    schedule: Schedule
    tally: StepTally
    waves: list[ProtocolResult] = field(default_factory=list)

    @property
    def schedule_length(self) -> int:
        return self.schedule.length

    @property
    def n_waves(self) -> int:
        return len(self.waves)


def _wave_link_set(
    links: LinkSet, remaining: np.ndarray
) -> tuple[LinkSet, list[int]]:
    """Each head's highest-ID link with remaining demand, plus the mapping
    from wave link index to global link index."""
    chosen: dict[int, int] = {}
    for k in np.argsort(-links.ids):
        k = int(k)
        if remaining[k] <= 0:
            continue
        head = int(links.heads[k])
        if head not in chosen:
            chosen[head] = k
    wave_global = sorted(chosen.values())
    wave = LinkSet(
        heads=links.heads[wave_global],
        tails=links.tails[wave_global],
        demand=remaining[wave_global],
        ids=links.ids[wave_global],
    )
    return wave, wave_global


def run_arbitrary_link_set(
    network: Network,
    links: LinkSet,
    config: ProtocolConfig | None = None,
    protocol: str = "fdd",
    faults: FaultConfig = NO_FAULTS,
    rng: np.random.Generator | int | None = None,
) -> ArbitraryResult:
    """Schedule an arbitrary link set distributedly, in waves.

    Parameters
    ----------
    network:
        The deployed mesh.
    links:
        Any :class:`~repro.scheduling.links.LinkSet` — heads may repeat
        (several links per node); link IDs must be unique (enforced by the
        LinkSet itself).
    protocol:
        ``"fdd"`` or ``"pdd"``.
    """
    if protocol not in ("fdd", "pdd"):
        raise ValueError(f"protocol must be 'fdd' or 'pdd', got {protocol!r}")
    cfg = config or ProtocolConfig()
    root = ensure_rng(rng)

    max_id = int(links.ids.max()) if links.n_links else 0
    id_bits = max(cfg.id_bits, max_id.bit_length())
    if id_bits != cfg.id_bits:
        from dataclasses import replace

        cfg = replace(cfg, id_bits=id_bits)

    remaining = links.demand.astype(np.int64).copy()
    combined = Schedule(link_set=links)
    total_tally = StepTally()
    waves: list[ProtocolResult] = []

    wave_idx = 0
    while (remaining > 0).any():
        wave_idx += 1
        if wave_idx > links.n_links + 1:
            raise RuntimeError("wave loop failed to make progress")
        wave, wave_global = _wave_link_set(links, remaining)

        # Per-wave runtime: a node contends with its current link's ID.
        node_ids = np.zeros(network.n_nodes, dtype=np.int64)
        node_ids[wave.heads] = wave.ids
        runtime = FastRuntime.for_network(
            network,
            cfg,
            faults=faults,
            rng=spawn(root, "runtime", wave_idx),
            ids=node_ids,
        )
        runner = run_fdd if protocol == "fdd" else run_pdd
        result = runner(
            wave, runtime, cfg, rng=spawn(root, "protocol", wave_idx)
        )
        waves.append(result)
        total_tally = total_tally.merged_with(result.tally)

        for slot in result.schedule.slots:
            members = [wave_global[w] for w in slot.links]
            for g in members:
                remaining[g] -= 1
            combined.slots.append(Slot(links=members))
        if not result.terminated:
            break  # degraded run hit its round cap; report what we have

    return ArbitraryResult(schedule=combined, tally=total_tally, waves=waves)
