"""Deployment regions and the density sweep arithmetic of Section VI.

The paper's simulations fix the node count at 64 and vary *density*
(nodes per square kilometer) by scaling the deployment area.  These helpers
convert between density and region side length so every experiment states
its sweep in the paper's units.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive

SQ_METERS_PER_SQ_KM = 1_000_000.0


def side_for_density(n_nodes: int, density_per_km2: float) -> float:
    """Side (meters) of the square region holding ``n_nodes`` at a density.

    >>> round(side_for_density(64, 1000.0), 1)
    253.0
    """
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    check_positive("density_per_km2", density_per_km2)
    area_m2 = n_nodes / density_per_km2 * SQ_METERS_PER_SQ_KM
    return float(np.sqrt(area_m2))


def density_for_side(n_nodes: int, side_m: float) -> float:
    """Density (nodes/km^2) of ``n_nodes`` in a square of side ``side_m``."""
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    check_positive("side_m", side_m)
    return n_nodes / (side_m**2 / SQ_METERS_PER_SQ_KM)


@dataclass(frozen=True)
class SquareRegion:
    """A square deployment region ``[0, side] x [0, side]`` in meters."""

    side: float

    def __post_init__(self) -> None:
        check_positive("side", self.side)

    @property
    def area_m2(self) -> float:
        return self.side**2

    @property
    def diameter(self) -> float:
        """Euclidean diameter (Definition 11): the diagonal for a square."""
        return self.side * np.sqrt(2.0)

    def contains(self, positions: np.ndarray) -> np.ndarray:
        """Boolean mask of which positions fall inside the region."""
        pos = np.asarray(positions, dtype=float)
        return (
            (pos[:, 0] >= 0)
            & (pos[:, 0] <= self.side)
            & (pos[:, 1] >= 0)
            & (pos[:, 1] <= self.side)
        )

    @classmethod
    def for_density(cls, n_nodes: int, density_per_km2: float) -> "SquareRegion":
        """Region sized so ``n_nodes`` sit at ``density_per_km2``."""
        return cls(side_for_density(n_nodes, density_per_km2))


def tile_counts_for(n_tiles: int) -> tuple[int, int]:
    """The most-square ``(nx, ny)`` factorization of ``n_tiles``.

    Used to turn a shard *count* into a grid tiling: 4 -> (2, 2),
    6 -> (3, 2), a prime like 5 -> (5, 1).  ``nx >= ny`` always.
    """
    if n_tiles <= 0:
        raise ValueError(f"n_tiles must be positive, got {n_tiles}")
    ny = int(np.sqrt(n_tiles))
    while n_tiles % ny != 0:
        ny -= 1
    return n_tiles // ny, ny


@dataclass(frozen=True)
class GridTiling:
    """An ``nx x ny`` tiling of a :class:`SquareRegion` into rectangular tiles.

    The spatial partition behind the sharded epoch engine
    (:mod:`repro.traffic.sharded`): tile ``(ix, iy)`` covers
    ``[ix*w, (ix+1)*w) x [iy*h, (iy+1)*h)`` with ``w = side/nx`` and
    ``h = side/ny``; positions on the region's outer edge are clamped into
    the last tile, so every in-region position lands in exactly one tile.
    """

    region: SquareRegion
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.nx <= 0 or self.ny <= 0:
            raise ValueError(
                f"tile counts must be positive, got nx={self.nx}, ny={self.ny}"
            )

    @property
    def n_tiles(self) -> int:
        return self.nx * self.ny

    @property
    def tile_width(self) -> float:
        return self.region.side / self.nx

    @property
    def tile_height(self) -> float:
        return self.region.side / self.ny

    @classmethod
    def for_tiles(cls, region: SquareRegion, n_tiles: int) -> "GridTiling":
        """The most-square tiling with exactly ``n_tiles`` tiles."""
        nx, ny = tile_counts_for(n_tiles)
        return cls(region, nx, ny)

    def tile_of(self, positions: np.ndarray) -> np.ndarray:
        """Tile index (``iy * nx + ix``) of each ``(m, 2)`` position.

        Positions outside the region are clamped into the boundary tiles,
        mirroring :meth:`SquareRegion.contains`'s closed-boundary reading.
        """
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        ix = np.clip((pos[:, 0] / self.tile_width).astype(np.intp), 0, self.nx - 1)
        iy = np.clip((pos[:, 1] / self.tile_height).astype(np.intp), 0, self.ny - 1)
        return iy * self.nx + ix

    def internal_edge_distance(self, positions: np.ndarray) -> np.ndarray:
        """Distance (m) from each position to the nearest *internal* tile edge.

        Internal edges are the ``nx - 1`` vertical and ``ny - 1`` horizontal
        cut lines between tiles; the region's outer boundary is not an edge
        between shards and never counts.  A 1x1 tiling has no internal edges
        and returns ``inf`` everywhere — the degenerate single-shard case in
        which no link is a boundary link.
        """
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        dist = np.full(pos.shape[0], np.inf)
        if self.nx > 1:
            cuts = np.arange(1, self.nx) * self.tile_width
            dist = np.minimum(dist, np.abs(pos[:, 0, None] - cuts).min(axis=1))
        if self.ny > 1:
            cuts = np.arange(1, self.ny) * self.tile_height
            dist = np.minimum(dist, np.abs(pos[:, 1, None] - cuts).min(axis=1))
        return dist
