"""Arbitrary (non-forest) link sets scheduled distributedly, in waves."""

import numpy as np
import pytest

from repro.core.arbitrary import run_arbitrary_link_set
from repro.core.config import ProtocolConfig
from repro.scheduling.links import LinkSet
from repro.scheduling.metrics import verify_schedule


@pytest.fixture(scope="module")
def multi_links(grid16):
    """A link set where several nodes head more than one link.

    Built from lattice neighbors of the 4x4 grid (step ~30 m, well inside
    range), with distinct IDs; node 5 heads three links, node 10 two.
    """
    heads = np.array([5, 5, 5, 10, 10, 3, 12])
    tails = np.array([1, 4, 6, 11, 14, 2, 13])
    demand = np.array([2, 1, 2, 3, 1, 2, 2])
    ids = np.array([70, 61, 52, 43, 34, 25, 16])
    links = LinkSet(heads=heads, tails=tails, demand=demand, ids=ids)
    for h, t in zip(heads, tails):
        assert grid16.comm_adj[h, t], f"test link {h}->{t} must be a comm edge"
    return links


@pytest.mark.parametrize("protocol", ["fdd", "pdd"])
def test_arbitrary_schedule_valid_and_complete(grid16, multi_links, protocol):
    result = run_arbitrary_link_set(
        grid16,
        multi_links,
        ProtocolConfig(k=5, id_bits=7),
        protocol=protocol,
        rng=3,
    )
    report = verify_schedule(result.schedule, grid16.model)
    assert report.ok
    assert np.array_equal(result.schedule.allocations(), multi_links.demand)


def test_wave_count_equals_max_links_per_head(grid16, multi_links):
    result = run_arbitrary_link_set(
        grid16, multi_links, ProtocolConfig(k=5, id_bits=7), rng=4
    )
    # Node 5 heads three links -> exactly three waves.
    assert result.n_waves == 3


def test_waves_process_links_in_decreasing_id_order(grid16, multi_links):
    result = run_arbitrary_link_set(
        grid16, multi_links, ProtocolConfig(k=5, id_bits=7), rng=5
    )
    # Wave 1 must contain node 5's highest-ID link (id 70 -> link 0) and
    # not its others; links 1 (id 61) and 2 (id 52) wait for later waves.
    first_wave_globals = set()
    for slot in result.schedule.slots[: result.waves[0].schedule_length]:
        first_wave_globals.update(slot.links)
    assert 0 in first_wave_globals
    assert 1 not in first_wave_globals
    assert 2 not in first_wave_globals


def test_forest_link_set_degenerates_to_single_wave(grid16, grid16_links):
    result = run_arbitrary_link_set(
        grid16, grid16_links, ProtocolConfig(k=5, id_bits=5), rng=6
    )
    assert result.n_waves == 1
    assert verify_schedule(result.schedule, grid16.model).ok


def test_id_bits_widened_automatically(grid16):
    links = LinkSet(
        heads=np.array([1, 4]),
        tails=np.array([0, 0]),
        demand=np.array([1, 1]),
        ids=np.array([1000, 999]),  # needs 10 bits, config says 5
    )
    result = run_arbitrary_link_set(
        grid16, links, ProtocolConfig(k=5, id_bits=5), rng=7
    )
    assert verify_schedule(result.schedule, grid16.model).ok


def test_unknown_protocol_rejected(grid16, grid16_links):
    with pytest.raises(ValueError, match="protocol"):
        run_arbitrary_link_set(grid16, grid16_links, protocol="tdma")
