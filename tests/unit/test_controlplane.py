"""Unit tests for the in-band control-plane accounting
(repro.core.controlplane): message pricing, ledger attribution, forest
depths, and the priced-overhead slot conversion."""

import numpy as np
import pytest

from repro.core.controlplane import (
    MESSAGE_CLASSES,
    ControlLedger,
    ControlPlaneModel,
    forest_depths,
)
from repro.core.timing import TimingModel
from repro.scheduling.links import LinkSet
from repro.traffic import (
    FlowConfig,
    FlowWorkload,
    StaticCap,
    run_epochs,
    serialized_scheduler,
)
from repro.traffic.epoch import EpochConfig, overhead_to_slots, priced_overhead_slots


def chain_links(n=5):
    heads = np.arange(1, n)
    tails = np.arange(0, n - 1)
    return LinkSet(
        heads=heads, tails=tails, demand=np.zeros(n - 1, np.int64), ids=heads
    )


class TestControlPlaneModel:
    def test_default_is_free_and_charges_exactly_zero(self):
        model = ControlPlaneModel()
        assert model.is_free
        for cls in MESSAGE_CLASSES:
            assert model.price_of(cls) == 0.0

    def test_zero_byte_class_is_free_even_in_a_priced_model(self):
        model = ControlPlaneModel(patch_bytes=8.0, report_bytes=0.0)
        assert not model.is_free
        assert model.price_of("patch") > 0.0
        assert model.price_of("report") == 0.0

    def test_price_matches_timing_message_step(self):
        timing = TimingModel()
        model = ControlPlaneModel(timing=timing, signal_bytes=6.0)
        assert model.price_of("signal") == pytest.approx(timing.message_s(6.0))

    def test_price_monotone_in_payload_bytes(self):
        small = ControlPlaneModel(patch_bytes=4.0)
        big = ControlPlaneModel(patch_bytes=64.0)
        assert 0.0 < small.price_of("patch") < big.price_of("patch")

    def test_scaled_scales_every_class(self):
        model = ControlPlaneModel.default_priced()
        doubled = model.scaled(2.0)
        for cls in MESSAGE_CLASSES:
            assert doubled.payload_bytes(cls) == pytest.approx(
                2.0 * model.payload_bytes(cls)
            )
        assert model.scaled(0.0).is_free

    def test_unknown_class_and_negative_bytes_raise(self):
        with pytest.raises(ValueError, match="unknown message class"):
            ControlPlaneModel().price_of("gossip")
        with pytest.raises(ValueError):
            ControlPlaneModel(patch_bytes=-1.0)

    def test_message_s_requires_positive_payload(self):
        with pytest.raises(ValueError):
            TimingModel().message_s(0)


class TestControlLedger:
    def test_charges_accumulate_per_epoch_and_per_layer(self):
        ledger = ControlLedger(ControlPlaneModel.default_priced())
        ledger.charge(0, "incremental", "patch", 10)
        ledger.charge(0, "admission", "signal", 4)
        ledger.charge(2, "sharded", "reconcile", 3)
        assert ledger.messages_for(0) == 14
        assert ledger.messages_for(1) == 0
        assert ledger.messages_for(2) == 3
        assert ledger.seconds_for(0) == pytest.approx(
            10 * ledger.model.price_of("patch") + 4 * ledger.model.price_of("signal")
        )
        assert ledger.total_messages == 17
        assert ledger.messages(layer="admission") == 4
        assert ledger.messages(message_class="patch") == 10
        by_layer = ledger.by_layer()
        assert set(by_layer) == {"incremental", "admission", "sharded"}
        assert by_layer["sharded"][0] == 3
        assert "msgs" in ledger.summary()

    def test_free_model_counts_messages_but_charges_nothing(self):
        ledger = ControlLedger(ControlPlaneModel())
        ledger.charge(0, "admission", "report", 100)
        assert ledger.messages_for(0) == 100
        assert ledger.seconds_for(0) == 0.0
        assert ledger.total_seconds == 0.0

    def test_zero_count_books_nothing(self):
        ledger = ControlLedger(ControlPlaneModel.default_priced())
        assert ledger.charge(0, "sharded", "report", 0) == 0.0
        assert ledger.total_messages == 0
        assert ledger.by_layer() == {}

    def test_invalid_charges_raise(self):
        ledger = ControlLedger(ControlPlaneModel())
        with pytest.raises(ValueError, match="non-negative"):
            ledger.charge(0, "admission", "signal", -1)
        with pytest.raises(ValueError, match="layer"):
            ledger.charge(0, "", "signal", 1)
        with pytest.raises(ValueError, match="unknown message class"):
            ledger.charge(0, "admission", "carrier-pigeon", 1)


class TestForestDepths:
    def test_chain_depths_count_hops_to_the_gateway(self):
        # 4 -> 3 -> 2 -> 1 -> 0: link k heads node k+1, depth = k+1 hops.
        np.testing.assert_array_equal(forest_depths(chain_links(5)), [1, 2, 3, 4])

    def test_star_depths_are_all_one(self):
        heads = np.array([1, 2, 3])
        tails = np.array([0, 0, 0])
        links = LinkSet(
            heads=heads, tails=tails, demand=np.zeros(3, np.int64), ids=heads
        )
        np.testing.assert_array_equal(forest_depths(links), [1, 1, 1])


class TestBindingLifecycle:
    """A ledger binding lives exactly one run: reset() unbinds, and the
    engines rebind (or unbind) from their own control= model, so reused
    workloads/caches never charge a previous run's ledger."""

    def _workload(self):
        return FlowWorkload(
            chain_links(6),
            FlowConfig(session_rate=3.0),
            controller=StaticCap(cap=0.01),  # blocks almost everything
            seed=5,
        )

    def test_workload_reset_unbinds_the_ledger(self):
        wl = self._workload()
        ledger = ControlLedger(ControlPlaneModel.default_priced())
        wl.bind_control(ledger)
        wl.arrivals(0, 100)
        booked = ledger.total_messages
        assert booked > 0
        wl.reset()
        wl.arrivals(0, 100)  # the rewound run must book nothing
        assert ledger.total_messages == booked

    def test_unpriced_engine_run_unbinds_a_stale_workload_binding(self):
        links = chain_links(6)
        wl = self._workload()
        stale = ControlLedger(ControlPlaneModel.default_priced())
        wl.bind_control(stale)
        run_epochs(
            links,
            wl,
            serialized_scheduler(),
            EpochConfig(epoch_slots=50, n_epochs=3),
        )
        assert stale.total_messages == 0

    def test_priced_run_totals_survive_a_later_unpriced_rerun(self):
        links = chain_links(6)
        wl = self._workload()
        config = EpochConfig(epoch_slots=50, n_epochs=3)
        priced = run_epochs(
            links,
            wl,
            serialized_scheduler(),
            config,
            control=ControlPlaneModel.default_priced(),
        )
        before = (priced.ledger.total_messages, priced.ledger.total_seconds)
        assert before[0] > 0
        wl.reset()
        rerun = run_epochs(links, wl, serialized_scheduler(), config)
        assert rerun.ledger is None
        assert (
            priced.ledger.total_messages,
            priced.ledger.total_seconds,
        ) == before


class TestPricedOverheadSlots:
    def test_no_ledger_matches_the_unpriced_conversion(self):
        cfg = EpochConfig(epoch_slots=100, slot_seconds=0.04)
        assert priced_overhead_slots(0.5, None, 0, cfg) == (
            overhead_to_slots(0.5, cfg),
            0,
        )

    def test_zero_priced_ledger_is_bit_identical(self):
        cfg = EpochConfig(epoch_slots=100, slot_seconds=0.04)
        ledger = ControlLedger(ControlPlaneModel())
        ledger.charge(0, "admission", "signal", 10_000)
        assert priced_overhead_slots(0.5, ledger, 0, cfg) == (
            overhead_to_slots(0.5, cfg),
            0,
        )

    def test_priced_charges_ride_the_overhead_and_attribute_the_increment(self):
        cfg = EpochConfig(epoch_slots=100, slot_seconds=0.04)
        model = ControlPlaneModel.default_priced()
        ledger = ControlLedger(model)
        # Enough messages for ~2.1 slots of control air on top of 0.5 s base.
        count = int(np.ceil(2.1 * cfg.slot_seconds / model.price_of("report")))
        ledger.charge(3, "admission", "report", count)
        total, control = priced_overhead_slots(0.5, ledger, 3, cfg)
        base = overhead_to_slots(0.5, cfg)
        assert total == overhead_to_slots(0.5 + ledger.seconds_for(3), cfg)
        assert control == total - base > 0
        # Other epochs are untouched.
        assert priced_overhead_slots(0.5, ledger, 4, cfg) == (base, 0)

    def test_clamped_at_the_epoch_even_under_huge_control_charges(self):
        cfg = EpochConfig(epoch_slots=50, slot_seconds=0.04)
        ledger = ControlLedger(ControlPlaneModel.default_priced())
        ledger.charge(0, "admission", "report", 10_000_000)
        total, control = priced_overhead_slots(1.0, ledger, 0, cfg)
        assert total == 50
        assert control == 50 - overhead_to_slots(1.0, cfg)
