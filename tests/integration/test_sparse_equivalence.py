"""The sparse backend is a drop-in: differential proofs across every engine.

Two families of locks, in the repo's differential tradition (zero-price ==
unpriced, 1-shard == monolithic, instrumented == bare):

* **cutoff=∞ bit-identity** — a :class:`~repro.phy.sparse.SparseGainModel`
  with every entry stored reads exactly like the dense received-power
  matrix, so the monolithic, incremental-cached, sharded, and
  admission-controlled engines must produce ``EpochRecord``s, delay logs,
  and backlogs identical to the dense oracle's, for every reschedule
  policy.  This is the anchor that lets the finite-cutoff configuration be
  trusted as *the same code* with a physically-argued approximation, not a
  parallel implementation.
* **streaming accounting** — ``retain_records="stream"`` keeps O(1) state
  instead of the per-epoch record list; every aggregate the experiments
  read must match the full-log run exactly, and the one query streaming
  cannot answer (``backlog_series``) must fail loudly.  Regional admission
  controllers consume per-region deltas from the sharded engine's
  classified :class:`~repro.obs.DeliveryStream` — their observations must
  match the full-delivery-log attribution packet for packet.
"""

import numpy as np
import pytest

from repro.experiments.common import grid_scenario
from repro.obs import Obs, ObsConfig
from repro.phy.sparse import sparse_gain_model
from repro.traffic import (
    EpochConfig,
    FlowConfig,
    FlowWorkload,
    PoissonArrivals,
    RESCHEDULE_POLICIES,
    centralized_scheduler,
    make_controller,
    plan_for_network,
    run_epochs,
    run_epochs_sharded,
)
from repro.traffic.admission import AdmissionController, RegionalControllers
from repro.util.rng import spawn


@pytest.fixture(scope="module")
def mesh():
    return grid_scenario(1000.0, rep=0, rows=6, cols=6, n_gateways=3)


@pytest.fixture(scope="module")
def sparse_oracle(mesh):
    """The cutoff=∞ sparse model: value-dense, floorless — the bit-identity
    configuration."""
    net = mesh.network
    sgm = sparse_gain_model(
        net.positions,
        net.tx_power_mw,
        net.propagation,
        net.radio,
        cutoff_m=float("inf"),
    )
    assert sgm.power.value_dense and sgm.floor_mw is None
    return sgm.interference_model(net.radio)


def _config(policy="always", n_epochs=4, retain="full"):
    return EpochConfig(
        epoch_slots=120,
        n_epochs=n_epochs,
        divergence_factor=4.0,
        reschedule_policy=policy,
        retain_records=retain,
    )


def _generator(mesh, rate=0.012):
    return PoissonArrivals(
        mesh.network.n_nodes, rate, gateways=mesh.gateways, seed=11
    )


def _workload(mesh, controller=None, rate=0.015):
    return FlowWorkload(
        mesh.links,
        FlowConfig.for_offered_rate(rate, mesh.links.n_links, 120, mean_size=20),
        controller=controller or make_controller("knee-tracker"),
        seed=spawn(5, "sparse-wl"),
    )


def _assert_identical(base, other):
    assert other.records == base.records  # every EpochRecord field
    assert other.diverged == base.diverged
    assert np.array_equal(other.queues.delay_array(), base.queues.delay_array())
    assert np.array_equal(other.queues.backlog, base.queues.backlog)


@pytest.mark.parametrize("policy", RESCHEDULE_POLICIES)
class TestCutoffInfBitIdentity:
    def test_monolithic_and_incremental(self, mesh, sparse_oracle, policy):
        """run_epochs (policy != always exercises the ScheduleCache path)."""

        def run(model):
            return run_epochs(
                mesh.links,
                _generator(mesh),
                centralized_scheduler(model, overhead_seconds=0.3),
                _config(policy),
                model=model,
                obs=None,
            )

        _assert_identical(run(mesh.network.model), run(sparse_oracle))

    def test_sharded(self, mesh, sparse_oracle, policy):
        """Same plan, same guard budgets — the sparse oracle feeds
        ``with_budget`` shard models exactly like the dense one."""
        plan = plan_for_network(
            mesh.links, mesh.network, n_shards=4, interference_radius_m=80.0
        )

        def factory(shard, shard_model):
            return centralized_scheduler(shard_model, overhead_seconds=0.3)

        def run(model):
            return run_epochs_sharded(
                plan,
                _generator(mesh),
                factory,
                model,
                _config(policy),
                max_workers=2,
            )

        _assert_identical(run(mesh.network.model), run(sparse_oracle))

    def test_admission_flows(self, mesh, sparse_oracle, policy):
        def run(model):
            wl = _workload(mesh)
            trace = run_epochs(
                mesh.links,
                wl,
                centralized_scheduler(model, overhead_seconds=0.3),
                _config(policy),
                model=model,
                on_epoch=wl.observe,
            )
            return trace, wl

        base, base_wl = run(mesh.network.model)
        other, other_wl = run(sparse_oracle)
        _assert_identical(base, other)
        assert other_wl.blocking_probability == base_wl.blocking_probability
        assert other_wl.sessions_offered == base_wl.sessions_offered
        assert other_wl.sessions_blocked == base_wl.sessions_blocked


AGGREGATES = (
    "n_epochs_run",
    "total_slots",
    "delivered_total",
    "arrivals_total",
    "overhead_slots_total",
    "control_slots_total",
    "control_messages_total",
    "cache_hits",
    "patched_epochs",
    "cache_hit_rate",
    "reconciled_total",
)


def _assert_stream_matches_full(full, streamed):
    for name in AGGREGATES:
        assert getattr(streamed, name) == getattr(full, name), name
    assert streamed.last_record == full.last_record
    assert streamed.records == []
    assert full.records != []
    with pytest.raises(RuntimeError, match="retain_records"):
        streamed.backlog_series()
    np.testing.assert_array_equal(streamed.queues.backlog, full.queues.backlog)


class TestStreamingRecords:
    """``retain_records="stream"`` drops the record list, nothing else."""

    def test_monolithic(self, mesh):
        model = mesh.network.model

        def run(retain):
            return run_epochs(
                mesh.links,
                _generator(mesh),
                centralized_scheduler(model, overhead_seconds=0.3),
                _config("drift-threshold", n_epochs=5, retain=retain),
                model=model,
            )

        _assert_stream_matches_full(run("full"), run("stream"))

    def test_sharded(self, mesh):
        plan = plan_for_network(
            mesh.links, mesh.network, n_shards=4, interference_radius_m=80.0
        )

        def factory(shard, shard_model):
            return centralized_scheduler(shard_model, overhead_seconds=0.3)

        def run(retain):
            return run_epochs_sharded(
                plan,
                _generator(mesh),
                factory,
                mesh.network.model,
                _config("always", n_epochs=5, retain=retain),
                max_workers=2,
            )

        _assert_stream_matches_full(run("full"), run("stream"))


class _Recorder(AdmissionController):
    """Captures every regional observation for cross-run comparison."""

    needs_feedback = True

    def __init__(self):
        self.seen = []

    def fresh(self):
        return _Recorder()

    def observe(self, record, queues, session):
        self.seen.append(record)


class TestRegionalControllersOnStream:
    def test_streamed_attribution_matches_full_log(self, mesh):
        """Satellite: per-region delivered/served/backlog sequences that
        RegionalControllers hand their controllers must be identical
        whether they difference the classified DeliveryStream's per-class
        aggregates (``stream_deliveries``) or split the full source-tagged
        delivery log."""
        plan = plan_for_network(
            mesh.links, mesh.network, n_shards=4, interference_radius_m=80.0
        )

        def factory(shard, shard_model):
            return centralized_scheduler(shard_model, overhead_seconds=0.3)

        def run(obs):
            controller = RegionalControllers(plan, lambda shard: _Recorder())
            wl = _workload(mesh, controller=controller, rate=0.02)
            trace = run_epochs_sharded(
                plan,
                wl,
                factory,
                mesh.network.model,
                _config("always", n_epochs=6),
                on_epoch=wl.observe,
                obs=obs,
            )
            return trace, controller

        base, base_ctl = run(None)
        streamed, stream_ctl = run(
            Obs.create(ObsConfig(level="metrics", stream_deliveries=True))
        )

        assert streamed.records == base.records
        # The stream replaced the full per-packet log...
        assert streamed.queues.delay_array().size == 0
        assert base.queues.delay_array().size > 0
        # ...yet every regional controller saw the exact same history.
        assert len(stream_ctl.regional) == len(base_ctl.regional)
        for s_ctl, b_ctl in zip(stream_ctl.regional, base_ctl.regional):
            assert [r.delivered for r in s_ctl.seen] == [
                r.delivered for r in b_ctl.seen
            ]
            assert [r.served for r in s_ctl.seen] == [
                r.served for r in b_ctl.seen
            ]
            assert [r.backlog_end for r in s_ctl.seen] == [
                r.backlog_end for r in b_ctl.seen
            ]
        # Attribution is genuinely spatial in both modes.
        delivering = sum(
            1
            for c in base_ctl.regional
            if sum(r.delivered for r in c.seen) > 0
        )
        assert delivering > 1
