"""Admission control: serve the knee, turn the rest away at the door.

E7 measured where the closed FDD loop's stability region ends on the
paper's 8x8 grid (the knee, λ* ≈ 0.019 pkt/node/slot).  The epoch engines
happily accept load past it — and diverge.  This example adds the missing
layer between users and the mesh (DESIGN.md §9):

* a **flow-session workload** (`repro.traffic.flows`): user sessions
  arrive as Poisson churn, carry heavy-tailed transfer sizes, split into
  inelastic CBR and throttleable elastic classes, and are policed by
  per-flow token buckets;
* an **online admission controller** (`repro.traffic.admission`)
  consulted at every session arrival and every epoch: `none` (today's
  behaviour), a `static-cap` told the knee, the `knee-tracker` that
  estimates it from observable signals only (backlog slope, delivered
  rate — never λ*), and spatial `backpressure` against hot links.

At 2.5x the knee the uncontrolled loop's backlog grows without bound
while the knee tracker blocks the excess sessions, keeps the backlog
slope near zero, and still delivers at least the uncontrolled loop's
knee throughput — the claims this example asserts.  A final section runs
per-region trackers on the 4-shard engine (per-region caps).

Run:  python examples/admission_control.py        (~1-2 minutes)
"""

import numpy as np

from repro import (
    EpochConfig,
    FlowConfig,
    FlowWorkload,
    KneeTracker,
    RegionalControllers,
    build_routing_forest,
    centralized_scheduler,
    forest_link_set,
    grid_network,
    make_controller,
    plan_for_network,
    planned_gateways,
    run_epochs,
    run_epochs_sharded,
    sharded_centralized_factory,
    summarize_trace,
)
from repro.traffic import is_stable
from repro.util.rng import spawn

SEED = 20080617
KNEE = 0.019  # E7's measured FDD knee on this grid (pkt/node/slot)
EPOCHS = 12
T = 300


def build_mesh():
    network = grid_network(8, 8, density_per_km2=1000.0)
    gateways = planned_gateways(8, 8, 4)
    forest = build_routing_forest(network.comm_adj, gateways, rng=spawn(SEED, "f"))
    links = forest_link_set(forest, np.zeros(network.n_nodes, dtype=np.int64))
    return network, links


def run_point(network, links, controller, rate):
    """One (controller, offered rate) operating point on the free oracle."""
    workload = FlowWorkload(
        links,
        FlowConfig.for_offered_rate(rate, links.n_links, T),
        controller=controller,
        seed=spawn(SEED, "sessions"),
    )
    trace = run_epochs(
        links,
        workload,
        centralized_scheduler(network.model),
        EpochConfig(epoch_slots=T, n_epochs=EPOCHS, divergence_factor=8.0),
        on_epoch=workload.observe,
    )
    return summarize_trace(trace, rate, session=workload), workload, trace


def main() -> None:
    network, links = build_mesh()
    overload = 2.5 * KNEE

    print("Flow sessions on the 8x8 grid — offered load vs what gets served")
    print(f"(knee lambda*={KNEE:g}, overload={overload:g} = 2.5x, "
          f"{EPOCHS} epochs x {T} slots)\n")

    results = {}
    for name in ("none", "static-cap", "knee-tracker", "backpressure"):
        if name == "static-cap":
            controller = make_controller(name, cap=KNEE * links.n_links)
        else:
            controller = make_controller(name)
        point, workload, trace = run_point(network, links, controller, overload)
        results[name] = (point, workload, trace)
        print(
            f"  {name:<13} goodput={point.admitted_goodput:.3f} pkt/slot, "
            f"blocking={point.blocking_probability:.0%}, "
            f"backlog slope={point.backlog_slope:+.1f}/epoch, "
            f"flow p99 delay={point.flow_p99_delay:.0f} slots, "
            f"{'stable' if point.stable else 'UNSTABLE'}"
        )

    # The reference: the uncontrolled loop *at* the knee.
    knee_point, _, _ = run_point(network, links, make_controller("none"), KNEE)
    print(f"\n  reference: uncontrolled at the knee -> "
          f"goodput={knee_point.admitted_goodput:.3f} pkt/slot")

    none_trace = results["none"][2]
    tracker_point, tracker_wl, tracker_trace = results["knee-tracker"]
    assert not is_stable(none_trace), "2.5x overload should swamp the bare loop"
    assert is_stable(tracker_trace), "the knee tracker should stay stable"
    assert tracker_wl.sessions_blocked > 0
    assert tracker_point.admitted_goodput >= knee_point.admitted_goodput, (
        "controlled overload should serve at least the uncontrolled knee rate"
    )
    print(
        f"\n==> at 2.5x the knee, the tracker blocks "
        f"{tracker_wl.blocking_probability:.0%} of sessions and still serves "
        f"{tracker_point.admitted_goodput:.3f} pkt/slot "
        f"(uncontrolled knee: {knee_point.admitted_goodput:.3f}) — "
        f"estimated cap {tracker_wl.controller.cap:.2f} pkt/slot, "
        f"never told lambda*.\n"
    )

    # ---- Per-region caps on the sharded engine (federated deployments).
    plan = plan_for_network(links, network, n_shards=4, interference_radius_m=80.0)
    controller = RegionalControllers(plan, lambda shard: KneeTracker(window=3))
    workload = FlowWorkload(
        links,
        FlowConfig.for_offered_rate(overload, links.n_links, T),
        controller=controller,
        seed=spawn(SEED, "sessions"),
    )
    trace = run_epochs_sharded(
        plan,
        workload,
        sharded_centralized_factory(),
        network.model,
        EpochConfig(epoch_slots=T, n_epochs=EPOCHS, divergence_factor=8.0),
        on_epoch=workload.observe,
    )
    trace.queues.check_conservation()
    caps = [
        f"region {shard.tile}: {c.cap:.2f}" if np.isfinite(c.cap) else
        f"region {shard.tile}: open"
        for shard, c in zip(plan.shards, controller.regional)
    ]
    print("Sharded engine, per-region knee trackers at 2.5x the knee:")
    print(f"  blocking={workload.blocking_probability:.0%}, "
          f"final backlog={trace.records[-1].backlog_end}, "
          f"caps: {', '.join(caps)}")
    assert workload.sessions_blocked > 0


if __name__ == "__main__":
    main()
