"""Bench for the adaptive multi-rate links experiment (E12).

Regenerates the fixed-rate-FDD vs rate-aware-scheduling stability sweep and
records the comparison table.  Beyond the snapshot, asserts the PR's
headline:

* the fixed-rate contract really is binary: every fixed-rate operating
  point realizes exactly 1.00 packets per play, while every multi-rate
  point realizes strictly more — the MCS ladder engages on the grid;
* rate-aware greedy scheduling delivers at least the fixed-rate FDD
  throughput at every operating point at or above the fixed-rate knee
  (the acceptance bar: headroom turns into delivered packets exactly
  where the fixed-rate contract saturates);
* the stability knee never moves down under rate-aware scheduling, and
  the table reports the measured shift.
"""

import pytest

from repro.experiments.multirate import multirate_experiment

#: Column indices of the E12 table.
LAMBDA, THROUGHPUT, SERVICE_RATE, OVERHEAD, STABLE = 1, 2, 3, 6, 7

FIXED = "FDD fixed-rate"
SERVED = "FDD multi-rate"
GREEDY = "GreedyRate multi-rate"


def _rows(table):
    """Map (contract, operating point) -> row."""
    return {(row[0], row[LAMBDA]): row for row in table._rows}


def _knee(rows, contract, lambdas):
    """A contract's knee from its summary row (smallest swept rate if none)."""
    cell = rows[(contract, "knee")][STABLE]
    return min(lambdas) if cell == "-" else float(cell)


@pytest.mark.benchmark(group="traffic")
def test_rate_aware_scheduling_moves_the_knee(benchmark, bench_profile, save_table):
    table = benchmark.pedantic(
        multirate_experiment, args=(bench_profile,), rounds=1, iterations=1
    )
    save_table("multirate", table)

    lambdas = bench_profile.multirate_lambdas
    # 3 contracts x sweep points, 3 knee rows, 1 knee-shift row.
    assert table.n_rows == 3 * len(lambdas) + 3 + 1
    rows = _rows(table)

    # --- The contracts are what they claim: fixed-rate serves exactly one
    # packet per play, the multi-rate contracts strictly more (the ladder
    # engages — the table is not vacuous on this topology).
    for rate in lambdas:
        op = f"{rate:g}"
        assert rows[(FIXED, op)][SERVICE_RATE] == "1.00"
        for contract in (SERVED, GREEDY):
            assert float(rows[(contract, op)][SERVICE_RATE]) > 1.0, (
                f"{contract} at λ={op} should realize > 1 packet per play"
            )

    # --- The acceptance bar: at and above the fixed-rate knee, rate-aware
    # greedy turns SINR headroom into delivered packets.
    fixed_knee = _knee(rows, FIXED, lambdas)
    at_or_above = [r for r in lambdas if r >= fixed_knee]
    assert at_or_above, "the sweep must reach the fixed-rate knee"
    for rate in at_or_above:
        op = f"{rate:g}"
        greedy = float(rows[(GREEDY, op)][THROUGHPUT])
        fixed = float(rows[(FIXED, op)][THROUGHPUT])
        assert greedy >= fixed, (
            f"rate-aware greedy should deliver at least fixed-rate FDD "
            f"throughput at λ={op} (knee {fixed_knee:g}): {greedy} < {fixed}"
        )

    # --- The knee shifts (or at worst holds), and the shift is reported.
    greedy_knee = _knee(rows, GREEDY, lambdas)
    assert greedy_knee >= fixed_knee
    shift_row = next(r for r in table._rows if r[0].startswith("knee shift"))
    assert shift_row[LAMBDA] != "n/a", "the sweep should bracket both knees"

    # --- The free-oracle rows charge no protocol overhead; FDD rows do.
    for rate in lambdas:
        op = f"{rate:g}"
        assert float(rows[(GREEDY, op)][OVERHEAD]) == 0.0
        assert float(rows[(FIXED, op)][OVERHEAD]) > 0.0
