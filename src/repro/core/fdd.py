"""FDD — the Fully Deterministic Distributed Protocol (Section III-D).

FDD's ``SelectActive`` elects exactly one new active per step through a
network-wide leader election among DORMANT nodes, so links are tried
sequentially in decreasing head-ID order.  This makes the computed schedule
identical to the centralized GreedyPhysical schedule under the decreasing-ID
edge ordering (Theorem 4) — an equivalence our integration tests assert slot
by slot — at the cost of one full election per construction step.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import NO_FAULTS, FaultConfig, ProtocolConfig
from repro.core.protocol import ProtocolResult, run_on_network, run_protocol
from repro.core.runtime import Runtime
from repro.core.states import NodeState
from repro.phy.interference import PhysicalInterferenceModel
from repro.scheduling.links import LinkSet
from repro.topology.network import Network


def fdd_select_active(
    state: np.ndarray, runtime: Runtime, rng: np.random.Generator
) -> np.ndarray:
    """Elect a single new active among the DORMANT nodes.

    Runs a full leader election (id_bits SCREAMs) regardless of the dormant
    pool size — including when the pool is empty, which is how FDD nodes
    discover that the slot is saturated.
    """
    dormant = state == NodeState.DORMANT
    return runtime.leader_elect(dormant)


def run_fdd(
    links: LinkSet,
    runtime: Runtime,
    config: ProtocolConfig,
    rng: np.random.Generator | int | None = None,
    record_rounds: bool = False,
) -> ProtocolResult:
    """Run FDD on an arbitrary runtime substrate."""
    return run_protocol(
        links,
        runtime,
        config,
        fdd_select_active,
        rng=rng,
        record_rounds=record_rounds,
    )


def fdd_on_network(
    network: Network,
    links: LinkSet,
    config: ProtocolConfig | None = None,
    faults: FaultConfig = NO_FAULTS,
    rng: np.random.Generator | int | None = None,
    record_rounds: bool = False,
    model: "PhysicalInterferenceModel | None" = None,
) -> ProtocolResult:
    """Convenience wrapper: run FDD over a fresh FastRuntime on ``network``.

    See :func:`~repro.core.protocol.run_on_network` for the shared
    semantics, including the optional feasibility-oracle ``model`` override.
    """
    return run_on_network(
        network,
        links,
        run_fdd,
        config=config,
        faults=faults,
        rng=rng,
        record_rounds=record_rounds,
        model=model,
    )
