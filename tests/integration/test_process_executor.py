"""Differential tests for the sharded engine's process-pool backend.

``executor="process"`` changes *where* shard schedulers run, never *what*
they produce: every stateful object (per-shard caches, the round memo, the
control ledger, the queues) stays in the parent, workers receive only a
demand snapshot + epoch and return an ``EpochSchedule`` + their CPU
seconds.  These tests pin the contract:

* serial / thread-pool / process-pool runs are bit-identical — records,
  per-packet delays, final backlogs — on the degenerate 1-shard plan and
  on a real 4-shard plan, for every reschedule policy, and for both the
  centralized and the distributed (FDD) factories;
* everything the pool must ship — :class:`LinkShard`, both scheduler
  factories — survives a pickle round-trip and still builds working,
  deterministic schedulers;
* a shard scheduler blowing up surfaces as :class:`ShardScheduleError`
  naming the shard and epoch, *before* the epoch's serving mutates the
  delivery accounting, and poisons the queues against further use;
* memoized rounds replay bit-identically: the slot arrays the round memo
  hands back are frozen, so the engine would raise (instead of silently
  corrupting later replays) if any serving path wrote to them.
"""

import pickle

import numpy as np
import pytest

from repro.core.fdd import fdd_on_network
from repro.experiments.common import PAPER_PROTOCOL
from repro.routing import build_routing_forest, planned_gateways
from repro.scheduling.links import forest_link_set
from repro.topology.network import grid_network
from repro.traffic import (
    EpochConfig,
    PoissonArrivals,
    ShardScheduleError,
    plan_for_network,
    run_epochs_sharded,
    sharded_centralized_factory,
    sharded_distributed_factory,
)
from repro.traffic.epoch import centralized_scheduler
from repro.util.rng import spawn


class ExplodingFactory:
    """Picklable factory whose shard-1 scheduler raises at ``fail_epoch``."""

    def __init__(self, fail_epoch: int):
        self.fail_epoch = fail_epoch

    def __call__(self, shard, shard_model):
        inner = centralized_scheduler(shard_model)
        fail_epoch = self.fail_epoch
        fail_here = shard.index == 1

        def scheduler(links, epoch):
            if fail_here and epoch >= fail_epoch:
                raise ValueError("synthetic shard meltdown")
            return inner(links, epoch)

        return scheduler


@pytest.fixture(scope="module")
def mesh():
    network = grid_network(8, 8, density_per_km2=1000.0)
    gateways = planned_gateways(8, 8, 4)
    forest = build_routing_forest(network.comm_adj, gateways, rng=spawn(31, "f"))
    links = forest_link_set(forest, np.zeros(network.n_nodes, dtype=np.int64))
    return network, gateways, links


def _generator(network, gateways, rate=0.012):
    return PoissonArrivals(
        network.n_nodes, rate, gateways=gateways, seed=spawn(31, "g")
    )


def _run(mesh, *, n_shards, policy, executor, workers, factory=None, epochs=4):
    network, gateways, links = mesh
    plan = plan_for_network(
        links, network, n_shards=n_shards, interference_radius_m=80.0
    )
    config = EpochConfig(
        epoch_slots=150,
        n_epochs=epochs,
        divergence_factor=4.0,
        reschedule_policy=policy,
    )
    return run_epochs_sharded(
        plan,
        _generator(network, gateways),
        factory if factory is not None else sharded_centralized_factory(),
        network.model,
        config,
        max_workers=workers,
        executor=executor,
    )


def assert_traces_identical(a, b):
    assert a.records == b.records
    assert a.diverged == b.diverged
    assert np.array_equal(a.queues.delay_array(), b.queues.delay_array())
    assert np.array_equal(a.queues.backlog, b.queues.backlog)
    a.queues.check_conservation()


@pytest.mark.parametrize("policy", ["always", "drift-threshold", "patch"])
def test_process_backend_bit_identical_four_shards(mesh, policy):
    serial = _run(mesh, n_shards=4, policy=policy, executor="thread", workers=1)
    threaded = _run(mesh, n_shards=4, policy=policy, executor="thread", workers=4)
    pooled = _run(mesh, n_shards=4, policy=policy, executor="process", workers=4)
    assert_traces_identical(serial, threaded)
    assert_traces_identical(serial, pooled)
    # The process backend really measured something on every path.
    assert pooled.scheduling_wall_seconds is not None
    assert pooled.scheduling_wall_seconds > 0.0
    assert serial.scheduling_wall_seconds is not None


def test_process_backend_bit_identical_single_shard(mesh):
    threaded = _run(mesh, n_shards=1, policy="always", executor="thread", workers=1)
    pooled = _run(mesh, n_shards=1, policy="always", executor="process", workers=2)
    assert_traces_identical(threaded, pooled)


def test_process_backend_bit_identical_distributed_fdd(mesh):
    network, _, _ = mesh
    factory = sharded_distributed_factory(
        network, fdd_on_network, config=PAPER_PROTOCOL, seed=31
    )
    threaded = _run(
        mesh, n_shards=4, policy="always", executor="thread", workers=4,
        factory=factory,
    )
    pooled = _run(
        mesh, n_shards=4, policy="always", executor="process", workers=4,
        factory=factory,
    )
    assert_traces_identical(threaded, pooled)


def test_unknown_executor_rejected(mesh):
    with pytest.raises(ValueError, match="executor"):
        _run(mesh, n_shards=2, policy="always", executor="fibers", workers=2)


def test_pool_payloads_pickle_round_trip(mesh):
    """Everything the process pool ships survives pickling and still works."""
    network, _, links = mesh
    plan = plan_for_network(links, network, n_shards=4, interference_radius_m=80.0)
    shard = plan.shards[0]
    clone = pickle.loads(pickle.dumps(shard))
    assert clone.index == shard.index and clone.tile == shard.tile
    assert np.array_equal(clone.link_indices, shard.link_indices)
    assert np.array_equal(clone.boundary, shard.boundary)
    assert clone.n_shards == shard.n_shards
    if shard.budget_mw is None:
        assert clone.budget_mw is None
    else:
        assert np.array_equal(clone.budget_mw, shard.budget_mw)

    from dataclasses import replace

    demanded = replace(
        shard.links, demand=np.ones(shard.links.n_links, dtype=np.int64)
    )
    shard_model = network.model.with_budget(shard.budget_mw)
    for factory in (
        sharded_centralized_factory(),
        sharded_distributed_factory(
            network, fdd_on_network, config=PAPER_PROTOCOL, seed=31
        ),
    ):
        rebuilt = pickle.loads(pickle.dumps(factory))
        original = factory(shard, shard_model)(demanded, 0)
        cloned = rebuilt(clone, shard_model)(demanded, 0)
        assert original.schedule.length == cloned.schedule.length
        for a, b in zip(original.schedule.slots, cloned.schedule.slots):
            assert a.as_array().tolist() == b.as_array().tolist()


@pytest.mark.parametrize("executor,workers", [("thread", 2), ("process", 2)])
def test_shard_scheduler_exception_is_annotated_and_poisons_queues(
    mesh, executor, workers
):
    network, gateways, links = mesh
    plan = plan_for_network(links, network, n_shards=4, interference_radius_m=80.0)
    config = EpochConfig(epoch_slots=150, n_epochs=5, divergence_factor=4.0)
    seen = {}

    def on_epoch(record, queues):
        seen["queues"] = queues
        seen["epoch"] = record.epoch

    with pytest.raises(ShardScheduleError) as err:
        run_epochs_sharded(
            plan,
            _generator(network, gateways, rate=0.02),
            ExplodingFactory(fail_epoch=2),
            network.model,
            config,
            max_workers=workers,
            executor=executor,
            on_epoch=on_epoch,
        )
    assert err.value.shard_index == 1
    assert err.value.epoch == 2
    assert "shard 1" in str(err.value) and "epoch 2" in str(err.value)
    assert "synthetic shard meltdown" in str(err.value)

    # Epochs before the meltdown completed normally...
    assert seen["epoch"] == 1
    # ...and the half-mutated queues are poisoned against further use: the
    # failing epoch's arrivals were booked but never served, so extending
    # the trace would silently violate conservation.
    queues = seen["queues"]
    with pytest.raises(RuntimeError, match="unusable"):
        queues.arrive(np.zeros(network.n_nodes, dtype=np.int64), 0)
    with pytest.raises(RuntimeError, match="unusable"):
        queues.serve_slot(np.array([], dtype=np.intp), 0)


def test_memoized_rounds_replay_bit_identically(mesh):
    """Round-memo replays: frozen slot arrays, deterministic serving.

    With an effectively infinite drift threshold every epoch after the
    first answers from cache, so the superposed round is replayed from the
    memo each time.  The memo stores the *same* array objects it serves
    from — they are frozen at creation, so this run completing at all
    proves no serving path mutates them (numpy would raise on write), and
    a second identical run pins the replay bit-identical end to end.
    """
    network, gateways, links = mesh
    plan = plan_for_network(links, network, n_shards=4, interference_radius_m=80.0)
    config = EpochConfig(
        epoch_slots=150,
        n_epochs=6,
        divergence_factor=4.0,
        reschedule_policy="drift-threshold",
        drift_threshold=1e9,
    )

    def run():
        return run_epochs_sharded(
            plan,
            _generator(network, gateways, rate=0.02),
            sharded_centralized_factory(),
            network.model,
            config,
            max_workers=2,
        )

    first, second = run(), run()
    hits = sum(1 for r in first.records if r.cache_hit)
    assert hits >= 3, "memo path never exercised — raise the drift threshold"
    assert_traces_identical(first, second)
