"""E13 — sparse interference at scale: the nodes-vs-RSS-vs-wall sweep.

The dense pipeline materializes an ``(n, n)`` received-power matrix — 800 MB
of float64 at 10^4 nodes, 80 GB at 10^5 — before a single slot is scheduled.
The sparse backend (:mod:`repro.phy.sparse`) stores only the pairs within the
interference cutoff radius (found by the :class:`~repro.phy.spatial.GridIndex`
in O(n) expected time) and folds the truncated far field into a per-node
noise-floor budget, so its footprint and build time scale with ``n``, not
``n^2``.

This experiment measures that trade end to end: for each grid side in
``profile.scale_grid_sides`` it deploys a planned grid at fixed density and
runs the *same* closed epoch engine (arrivals -> greedy schedule -> serve,
:func:`repro.traffic.epoch.run_epochs` with streaming record retention) on
both backends — dense only up to ``profile.scale_dense_max_nodes`` — and
reports, per point: nonzeros stored, setup wall (gain model + communication
graph + routing forest), engine wall, scheduling wall, *end-to-end per-epoch
wall* ((setup + engine) / epochs — the number a deployment planner re-running
the pipeline each reconfiguration actually waits), peak RSS, schedule length,
and packets delivered.

Every point runs in its own spawned subprocess so ``ru_maxrss`` is that
point's genuine high-water mark (the parent's peak would be contaminated by
whichever earlier point was largest); a do-nothing child calibrates the
interpreter + import baseline that is subtracted out.

Honesty note on schedule length: each backend builds its forest from its own
communication graph and schedules under its own oracle.  At a finite cutoff
the sparse model makes transmitters beyond the cutoff *exactly* invisible
while the packing floor charges only the continuum far field, so the greedy
packer exploits cutoff-spaced concurrency the dense model would veto — the
schedule-length column keeps that idealization visible instead of hiding it
(DESIGN.md §13).  At ``cutoff=inf`` the sparse backend is bit-identical to
dense; the differential suite pins that, this sweep prices the finite case.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import resource
import time

import numpy as np

from repro.analysis.tables import TextTable
from repro.experiments.common import ExperimentProfile, finish_obs, obs_for
from repro.routing import build_routing_forest, planned_gateways
from repro.routing.forest import build_routing_forest_csr
from repro.scheduling.links import forest_link_set
from repro.phy.sparse import sparse_gain_model
from repro.topology.commgraph import communication_csr
from repro.topology.network import grid_network
from repro.traffic import (
    EpochConfig,
    PoissonArrivals,
    centralized_scheduler,
    run_epochs,
)
from repro.util.rng import spawn


def _gateway_count(side: int, profile: ExperimentProfile) -> int:
    """One gateway per ``stride x stride`` block, at least one."""
    return max(1, side // profile.scale_gateway_stride) ** 2


def _run_point(side: int, backend: str, profile: ExperimentProfile, obs=None) -> dict:
    """Deploy, build the ``backend`` pipeline, and serve the epoch workload.

    Returns the raw measurement dict (timings in seconds; ``rss_kib`` is
    filled in by the subprocess wrapper, not here).  Each backend owns its
    *whole* pipeline — communication graph and routing forest included —
    because the sparse model's far-field floor tightens the standalone
    feasibility screen (links the floorless dense graph keeps can be
    infeasible under the floored oracle, and the scheduler rejects links
    that cannot decode even alone).
    """
    network = grid_network(side, side, density_per_km2=profile.scale_density_per_km2)
    n = network.n_nodes
    gateways = planned_gateways(side, side, _gateway_count(side, profile))
    forest_rng = spawn(profile.seed, "scale-forest", side)

    t0 = time.perf_counter()
    if backend == "sparse":
        sgm = sparse_gain_model(
            network.positions, network.tx_power_mw, network.propagation, network.radio
        )
        model = sgm.interference_model(network.radio)
        indptr, indices = communication_csr(
            sgm.power,
            network.radio.noise_mw,
            network.radio.beta,
            budget_mw=sgm.floor_mw,
        )
        forest = build_routing_forest_csr(indptr, indices, gateways, rng=forest_rng)
        nnz = sgm.power.nnz
    elif backend == "dense":
        model = network.model  # materializes the (n, n) power matrix
        forest = build_routing_forest(network.comm_adj, gateways, rng=forest_rng)
        nnz = n * n
    else:
        raise ValueError(f"unknown backend {backend!r}")
    setup_s = time.perf_counter() - t0

    links = forest_link_set(forest, np.zeros(n, dtype=np.int64))
    generator = PoissonArrivals(
        n,
        profile.scale_arrival_rate / profile.scale_epoch_slots,
        gateways=gateways,
        seed=spawn(profile.seed, "scale-gen", side),
    )
    config = EpochConfig(
        epoch_slots=profile.scale_epoch_slots,
        n_epochs=profile.scale_epochs,
        slot_seconds=profile.traffic_slot_seconds,
        demand_cap=1,
        retain_records="stream",
    )
    t0 = time.perf_counter()
    trace = run_epochs(links, generator, centralized_scheduler(model), config, obs=obs)
    engine_s = time.perf_counter() - t0

    last = trace.last_record
    return {
        "side": side,
        "n": n,
        "backend": backend,
        "nnz": int(nnz),
        "setup_s": setup_s,
        "engine_s": engine_s,
        "sched_wall_s": trace.scheduling_wall_seconds,
        "epochs": trace.n_epochs_run,
        "schedule_len": last.schedule_length if last is not None else 0,
        "arrivals": trace.arrivals_total,
        "delivered": trace.delivered_total,
    }


def _child_point(side, backend, profile, conn) -> None:  # pragma: no cover - subprocess
    """Subprocess body: run one point, ship the dict + peak RSS back."""
    try:
        result = _run_point(side, backend, profile)
        result["rss_kib"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        conn.send(result)
    except Exception as exc:
        conn.send({"error": f"{type(exc).__name__}: {exc}"})
    finally:
        conn.close()


def _child_baseline(conn) -> None:  # pragma: no cover - subprocess
    """Subprocess body: peak RSS of interpreter + imports alone."""
    try:
        conn.send(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    finally:
        conn.close()


def _in_subprocess(target, args) -> object:
    """Run ``target(*args, conn)`` in a spawned child; return what it sends.

    ``spawn`` (not ``fork``) so the child's ``ru_maxrss`` starts from a
    fresh interpreter instead of inheriting the parent's high-water mark.
    """
    ctx = mp.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=target, args=(*args, child_conn))
    proc.start()
    child_conn.close()
    try:
        result = parent_conn.recv()
    except EOFError:
        result = {"error": f"subprocess died with exitcode {proc.exitcode}"}
    finally:
        proc.join()
        parent_conn.close()
    if isinstance(result, dict) and "error" in result:
        raise RuntimeError(f"scale point subprocess failed: {result['error']}")
    return result


def epoch_wall_s(point: dict) -> float:
    """End-to-end per-epoch wall: (setup + engine) / epochs served.

    The assertion metric of the sweep — it charges the pipeline *build*
    (where the dense ``O(n^2)`` materialization lives) to the epochs it
    serves, exactly what re-running the pipeline per reconfiguration costs.
    """
    return (point["setup_s"] + point["engine_s"]) / max(point["epochs"], 1)


def scale_points(profile: ExperimentProfile) -> list[dict]:
    """Run the full sweep; return one raw measurement dict per point.

    Points run sequentially, each in its own spawned subprocess; ``rss_mib``
    is the child's peak RSS minus the measured interpreter/import baseline
    (clamped at 0).  When the profile has observability on, the smallest
    sparse point is re-run in-parent with the instrument attached so the
    sweep leaves a ``scale.jsonl`` run file like every other experiment —
    RSS and timings still come from the uninstrumented subprocess runs.
    """
    baseline_kib = _in_subprocess(_child_baseline, ())
    points: list[dict] = []
    for side in sorted(profile.scale_grid_sides):
        n = side * side
        backends = ["sparse"]
        if n <= profile.scale_dense_max_nodes:
            backends.append("dense")
        for backend in backends:
            point = _in_subprocess(_child_point, (side, backend, profile))
            point["rss_mib"] = max(point["rss_kib"] - baseline_kib, 0) / 1024.0
            points.append(point)

    obs = obs_for(profile, "scale")
    if obs is not None:
        smallest = min(p["side"] for p in points if p["backend"] == "sparse")
        _run_point(smallest, "sparse", profile, obs=obs)
        finish_obs(obs)
    return points


def scale_table(points: list[dict], profile: ExperimentProfile) -> TextTable:
    """Render the sweep, with a dense/sparse ratio row per two-backend size."""
    table = TextTable(
        [
            "nodes",
            "backend",
            "nnz",
            "setup (s)",
            "engine (s)",
            "sched wall (s)",
            "epoch wall (s)",
            "peak RSS (MiB)",
            "slots",
            "delivered",
        ],
        title="Sparse interference at scale — grid deployments at density "
        f"{profile.scale_density_per_km2:g}/km^2, "
        f"{profile.scale_epochs} epochs x {profile.scale_epoch_slots} slots, "
        f"{profile.scale_arrival_rate:g} pkt/node/epoch, dense baseline up to "
        f"{profile.scale_dense_max_nodes} nodes "
        "(epoch wall = (setup + engine) / epochs)",
    )
    by_side: dict[int, dict[str, dict]] = {}
    for point in points:
        by_side.setdefault(point["side"], {})[point["backend"]] = point
    for side in sorted(by_side):
        group = by_side[side]
        for backend in ("dense", "sparse"):
            point = group.get(backend)
            if point is None:
                continue
            table.add_row(
                str(point["n"]),
                backend,
                str(point["nnz"]),
                f"{point['setup_s']:.2f}",
                f"{point['engine_s']:.2f}",
                f"{point['sched_wall_s']:.2f}",
                f"{epoch_wall_s(point):.2f}",
                f"{point['rss_mib']:.0f}",
                str(point["schedule_len"]),
                str(point["delivered"]),
            )
        if "dense" in group and "sparse" in group:
            dense, sparse = group["dense"], group["sparse"]
            wall_ratio = epoch_wall_s(dense) / max(epoch_wall_s(sparse), 1e-9)
            rss_ratio = dense["rss_mib"] / max(sparse["rss_mib"], 1e-9)
            table.add_row(
                str(dense["n"]),
                "dense/sparse",
                f"{dense['nnz'] / max(sparse['nnz'], 1):.1f}x",
                "-",
                "-",
                "-",
                f"{wall_ratio:.1f}x",
                f"{rss_ratio:.1f}x",
                "-",
                "-",
            )
    return table


#: Columns masked in the persisted benchmark snapshot: wall-clock and RSS
#: cells (and the ratio rows that live in those columns) are host facts,
#: not science facts.
VOLATILE_COLUMNS = (
    "setup (s)",
    "engine (s)",
    "sched wall (s)",
    "epoch wall (s)",
    "peak RSS (MiB)",
)


def scale_experiment(profile: ExperimentProfile) -> TextTable:
    """E13: the sparse-vs-dense scaling sweep (see module docstring)."""
    return scale_table(scale_points(profile), profile)
