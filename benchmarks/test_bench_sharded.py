"""Bench for the sharded multi-region epoch engine (E9).

Runs the monolithic and sharded engines over the 16x16 and 24x24 grids
(FDD per region vs one backbone protocol) and records the comparison
table.  Beyond the snapshot, asserts the PR's headlines on the 16x16 grid
at 4 shards:

* the sharded engine cuts the *critical-path* scheduling wall-clock — the
  per-epoch maximum over the concurrently computing regions, i.e. what the
  scheduling phase costs when every region has its own controller (and
  what a multi-worker host measures) — by at least 2x;
* the measured stability knee stays within one sweep step of the
  monolithic knee;
* the degenerate 1-shard partition reproduces the monolithic engine
  epoch-for-epoch for every reschedule policy (the equivalence harness
  that keeps the refactor honest).
"""

import numpy as np
import pytest

from repro.core.fdd import fdd_on_network
from repro.experiments.common import PAPER_PROTOCOL, ExperimentProfile
from repro.experiments.sharded import sharded_experiment
from repro.routing import build_routing_forest, planned_gateways
from repro.scheduling.links import forest_link_set
from repro.topology.network import grid_network
from repro.traffic import (
    EpochConfig,
    PoissonArrivals,
    distributed_scheduler,
    plan_for_network,
    run_epochs,
    run_epochs_sharded,
    sharded_distributed_factory,
)
from repro.util.rng import spawn

FUNCTIONAL_FIELDS = (
    "epoch",
    "arrivals",
    "served",
    "delivered",
    "backlog_end",
    "demand_scheduled",
    "schedule_length",
    "overhead_slots",
    "cache_hit",
    "patched",
    "drift",
)


def _functional(record):
    return tuple(getattr(record, f) for f in FUNCTIONAL_FIELDS)


def _rows_by_kind(table):
    """Split data rows from the per-grid knee and speedup summary rows."""
    data, knees, speedups = {}, {}, {}
    for row in table._rows:
        grid, engine, lam = row[0], row[1], row[2]
        if engine == "speedup":
            speedups[grid] = row
        elif lam == "knee":
            knees[(grid, engine)] = row[-1]
        else:
            data[(grid, engine, lam)] = row
    return data, knees, speedups


@pytest.mark.benchmark(group="traffic")
def test_sharded_engine_speedup_and_knee_fidelity(benchmark, bench_profile, save_table):
    table = benchmark.pedantic(
        sharded_experiment, args=(bench_profile,), rounds=1, iterations=1
    )
    # Wall-clock columns are masked in the committed snapshot (re-runs must
    # not churn it); the assertions below read the unmasked table.
    save_table("sharded", table, volatile=("compute (s)", "critical path (s)"))

    per_grid = [
        len(lams) * 2 + 3 for lams in bench_profile.sharded_lambdas
    ]  # 2 engines x rates + 2 knee rows + 1 speedup row
    assert table.n_rows == sum(per_grid)

    data, knees, speedups = _rows_by_kind(table)
    grids = [f"{r}x{c}" for r, c in bench_profile.sharded_grids]
    assert "16x16" in grids

    # --- >= 2x critical-path scheduling speedup on the 16x16 grid.
    crit_cell = speedups["16x16"][7]
    assert crit_cell.endswith("x")
    crit_speedup = float(crit_cell[:-1])
    assert crit_speedup >= 2.0, (
        f"sharded engine should cut the critical-path scheduling wall-clock "
        f">= 2x on the 16x16 grid at 4 shards, measured {crit_speedup:.2f}x"
    )

    # --- The knee must stay within one sweep step of the monolithic knee.
    steps = sorted(bench_profile.sharded_lambdas[grids.index("16x16")])

    def step_index(cell):
        return steps.index(float(cell)) if cell != "-" else None

    mono_knee = step_index(knees[("16x16", "monolithic")])
    shard_knee = step_index(knees[("16x16", "sharded")])
    assert mono_knee is not None, "monolithic engine unstable at every swept rate"
    assert shard_knee is not None, "sharded engine unstable at every swept rate"
    assert abs(shard_knee - mono_knee) <= 1, (
        f"sharded knee moved more than one sweep step: "
        f"{knees[('16x16', 'sharded')]} vs monolithic {knees[('16x16', 'monolithic')]}"
    )

    # --- Reconciliation only ever happens on multi-shard rounds, and the
    # monolithic engine reports none.
    for (grid, engine, lam), row in data.items():
        if engine == "monolithic":
            assert row[8] == "0.0"


@pytest.mark.benchmark(group="traffic")
@pytest.mark.parametrize("policy", ["always", "drift-threshold", "patch"])
def test_single_shard_reproduces_monolithic_engine(policy):
    """n_shards=1 differential equivalence for every reschedule policy.

    FDD (stochastic, overhead-priced) on the paper's 8x8 grid: the sharded
    engine with the degenerate 1-shard partition must reproduce the
    monolithic ``run_epochs`` epoch-for-epoch — backlogs, delivered packets,
    overhead, cache decisions, and per-packet delays.
    """
    network = grid_network(8, 8, density_per_km2=1000.0)
    gateways = planned_gateways(8, 8, 4)
    forest = build_routing_forest(network.comm_adj, gateways, rng=spawn(7, "f"))
    links = forest_link_set(forest, np.zeros(network.n_nodes, dtype=np.int64))
    config = EpochConfig(
        epoch_slots=200,
        n_epochs=5,
        divergence_factor=4.0,
        reschedule_policy=policy,
    )

    def generator():
        return PoissonArrivals(
            network.n_nodes, 0.01, gateways=gateways, seed=spawn(7, "g")
        )

    scheduler = distributed_scheduler(
        network, fdd_on_network, config=PAPER_PROTOCOL, seed=7
    )
    mono = run_epochs(links, generator(), scheduler, config, model=network.model)

    plan = plan_for_network(links, network, n_shards=1, interference_radius_m=80.0)
    assert plan.n_shards == 1 and not plan.boundary_mask().any()
    factory = sharded_distributed_factory(
        network, fdd_on_network, config=PAPER_PROTOCOL, seed=7
    )
    shard = run_epochs_sharded(plan, generator(), factory, network.model, config)

    assert [_functional(r) for r in shard.records] == [
        _functional(r) for r in mono.records
    ]
    assert shard.diverged == mono.diverged
    assert np.array_equal(shard.queues.delay_array(), mono.queues.delay_array())
    assert np.array_equal(shard.queues.backlog, mono.queues.backlog)
    shard.queues.check_conservation()
