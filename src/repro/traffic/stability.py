"""Throughput, delay, backlog-growth, and stability-region metrics.

A scheduler is *stable* at an arrival rate when queue backlogs stay bounded
— served work keeps up with offered work.  We detect instability from the
end-of-epoch backlog series: a least-squares slope that grows by more than a
tolerance fraction of the per-epoch arrivals (or a divergence early-stop in
the epoch loop) marks the operating point unstable.  Sweeping the arrival
rate upward and recording the last stable point before the first unstable
one locates the *knee* of the stability region — the per-scheduler capacity
the heavy-traffic evaluations compare (cf. arXiv:1106.1590, arXiv:1208.0902).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.traffic.epoch import TrafficTrace

#: A backlog slope above this fraction of the mean per-epoch arrivals reads
#: as unbounded growth.  Chosen well above regression noise on stable runs
#: and well below the growth of even mildly overloaded ones.
STABILITY_TOLERANCE = 0.05

#: Magnitude gate on the slope test: a positive slope only counts as
#: instability once the final backlog itself reaches this fraction of one
#: epoch's arrivals.  A stable queue empties (almost) every epoch, so its
#: backlog series is small-integer noise whose fitted slope can spike; a
#: genuinely unstable queue accumulates epoch after epoch and clears the
#: gate within a few epochs.
BACKLOG_GATE_FRACTION = 0.5


@dataclass(frozen=True)
class StabilityMetrics:
    """Steady-state metrics of one (scheduler, arrival-rate) operating point."""

    offered_rate: float  # packets per node per slot (the swept lambda)
    throughput: float  # delivered packets per slot
    mean_delay: float  # slots, over delivered packets (nan if none)
    p99_delay: float  # slots (nan if none delivered)
    backlog_final: int
    backlog_slope: float  # packets per epoch, least squares over the tail
    stable: bool

    def __str__(self) -> str:
        state = "stable" if self.stable else "UNSTABLE"
        return (
            f"lambda={self.offered_rate:g}: throughput={self.throughput:.3f} pkt/slot, "
            f"delay={self.mean_delay:.1f}/{self.p99_delay:.0f} slots (mean/p99), "
            f"backlog={self.backlog_final} ({self.backlog_slope:+.1f}/epoch, {state})"
        )


def backlog_slope(trace: TrafficTrace, tail_fraction: float = 0.5) -> float:
    """Least-squares slope (packets/epoch) of the trailing backlog series."""
    series = trace.backlog_series()
    if series.size < 2:
        return 0.0
    start = int(series.size * (1.0 - tail_fraction))
    tail = series[start:].astype(float)
    if tail.size < 2:
        tail = series.astype(float)
    x = np.arange(tail.size, dtype=float)
    return float(np.polyfit(x, tail, 1)[0])


def is_stable(trace: TrafficTrace, tolerance: float = STABILITY_TOLERANCE) -> bool:
    """Bounded-backlog check.

    Unstable when the epoch loop's divergence guard fired, or when the
    trailing backlog slope exceeds ``tolerance`` of the per-epoch arrivals
    *and* the final backlog has actually accumulated past the
    :data:`BACKLOG_GATE_FRACTION` magnitude gate.
    """
    if trace.diverged:
        return False
    if not trace.records:
        return True
    arrivals_per_epoch = trace.arrivals_total / trace.n_epochs_run
    growing = backlog_slope(trace) > max(tolerance * arrivals_per_epoch, 1.0)
    accumulated = (
        trace.records[-1].backlog_end > BACKLOG_GATE_FRACTION * arrivals_per_epoch
    )
    return not (growing and accumulated)


def summarize_trace(
    trace: TrafficTrace,
    offered_rate: float,
    tolerance: float = STABILITY_TOLERANCE,
) -> StabilityMetrics:
    """Collapse a trace into one stability-region data point."""
    slots = max(trace.total_slots, 1)
    delays = (
        trace.queues.delay_array() if trace.queues is not None else np.empty(0, np.int64)
    )
    return StabilityMetrics(
        offered_rate=float(offered_rate),
        throughput=trace.delivered_total / slots,
        mean_delay=float(delays.mean()) if delays.size else float("nan"),
        p99_delay=float(np.percentile(delays, 99)) if delays.size else float("nan"),
        backlog_final=trace.records[-1].backlog_end if trace.records else 0,
        backlog_slope=backlog_slope(trace),
        stable=is_stable(trace, tolerance),
    )


def stability_sweep(
    rates: Sequence[float],
    run_at: Callable[[float], TrafficTrace],
    tolerance: float = STABILITY_TOLERANCE,
) -> list[StabilityMetrics]:
    """Evaluate one scheduler across an ascending arrival-rate sweep.

    ``run_at(rate)`` runs the epoch loop at that offered rate (typically by
    scaling a template generator with
    :meth:`~repro.traffic.generators.TrafficGenerator.scaled`).
    """
    swept = sorted(float(r) for r in rates)
    return [summarize_trace(run_at(rate), rate, tolerance) for rate in swept]


def stability_knee(points: Sequence[StabilityMetrics]) -> float | None:
    """The knee of the stability region: the last stable rate before the
    first unstable one (``None`` when even the lowest rate is unstable).

    When every swept point is stable the largest tested rate is returned —
    a lower bound on the true knee, as the sweep never found the boundary.
    """
    ordered = sorted(points, key=lambda m: m.offered_rate)
    knee: float | None = None
    for point in ordered:
        if not point.stable:
            break
        knee = point.offered_rate
    return knee
