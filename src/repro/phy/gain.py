"""Pairwise channel-gain and received-power matrices.

These matrices are the central physical object in the reproduction: entry
``P[i, j]`` of the received-power matrix is the power (mW) that node ``j``
collects when node ``i`` transmits at its configured power.  Every SINR
computation, carrier-sense test, and graph construction reads from them.
"""

from __future__ import annotations

import numpy as np

from repro.phy.propagation import PropagationModel


def distance_matrix(positions: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix from an ``(n, 2)`` position array."""
    pos = np.asarray(positions, dtype=float)
    if pos.ndim != 2 or pos.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {pos.shape}")
    deltas = pos[:, None, :] - pos[None, :, :]
    return np.sqrt((deltas**2).sum(axis=2))


def gain_matrix(positions: np.ndarray, model: PropagationModel) -> np.ndarray:
    """Channel power-gain matrix ``G[i, j]`` for all node pairs.

    Models carrying per-pair state (frozen shadowing, replayed archives)
    expose ``pair_gain`` and are queried through it; pure distance-law
    models are evaluated on the distance matrix.  The diagonal (self-gain,
    zero distance) clamps to the reference gain and is never used for
    communication.
    """
    dmat = distance_matrix(positions)
    pair_gain = getattr(model, "pair_gain", None)
    if pair_gain is not None:
        return pair_gain(dmat)
    return model.gain(dmat)


def received_power_matrix(
    positions: np.ndarray,
    tx_power_mw: np.ndarray,
    model: PropagationModel,
) -> np.ndarray:
    """Received-power matrix ``P[i, j] = tx_power[i] * gain(i, j)`` in mW."""
    tx = np.asarray(tx_power_mw, dtype=float)
    pos = np.asarray(positions, dtype=float)
    if tx.ndim != 1 or tx.shape[0] != pos.shape[0]:
        raise ValueError(
            f"tx_power_mw must have one entry per node: got {tx.shape} powers "
            f"for {pos.shape[0]} nodes"
        )
    if np.any(tx <= 0):
        raise ValueError("transmit powers must be strictly positive")
    return tx[:, None] * gain_matrix(pos, model)
