"""The centralized GreedyPhysical algorithm (Brar et al., MobiCom 2006).

The baseline of the paper's evaluation and the algorithm FDD reproduces
distributedly.  Edges are considered in a fixed order; each edge is
allocated greedily to the earliest slots of the current schedule that remain
feasible with it, opening new slots at the end until its demand is met.

Polynomial time: with :class:`~repro.scheduling.feasibility.SlotState`
bookkeeping each (link, slot) test costs O(k) in the slot's occupancy.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.phy.interference import PhysicalInterferenceModel
from repro.scheduling.feasibility import SlotArena, SlotState
from repro.scheduling.links import LinkSet
from repro.scheduling.orderings import EDGE_ORDERINGS
from repro.scheduling.schedule import Schedule, Slot


def greedy_physical(
    links: LinkSet,
    model: PhysicalInterferenceModel,
    ordering: str | Callable[[LinkSet, PhysicalInterferenceModel], np.ndarray] = "id",
) -> Schedule:
    """Compute a feasible schedule with the centralized greedy algorithm.

    Parameters
    ----------
    links:
        The links to schedule with their demands.
    model:
        Physical interference feasibility oracle.
    ordering:
        Name from :data:`~repro.scheduling.orderings.EDGE_ORDERINGS` or a
        callable ``(links, model) -> indices``.  The default ``"id"``
        (decreasing head IDs) is the ordering FDD realizes (Theorem 4).

    Returns
    -------
    Schedule
        A feasible schedule satisfying every link's demand.  Links with zero
        demand receive no slots.

    Raises
    ------
    ValueError
        If some link cannot even be scheduled alone in a slot (i.e. it is
        not a communication-graph edge), which would make its demand
        unsatisfiable.
    """
    order_fn = EDGE_ORDERINGS[ordering] if isinstance(ordering, str) else ordering
    order = order_fn(links, model)

    schedule = Schedule(link_set=links)
    # Flat-column slot store: same verdicts as a SlotState list driven
    # through slots_can_add (bit-identical, pinned by the unit suite), but
    # without the per-candidate member-array rebuild — and with near-field
    # pruning when the model's power matrix is sparse.
    arena = SlotArena(model)

    demanded = [int(k) for k in order if int(links.demand[int(k)]) > 0]
    if not demanded:
        return schedule

    # Batched standalone screen: a link that cannot decode alone fails
    # every per-slot test and would raise the moment it opened a fresh
    # slot — catching the first such link (in allocation order) up front
    # reproduces the incremental loop's error exactly.
    idx = np.asarray(demanded, dtype=np.intp)
    alone = SlotState(model).feasible_with(links.heads[idx], links.tails[idx])
    if not alone.all():
        bad = int(idx[int(np.flatnonzero(~alone)[0])])
        raise ValueError(
            f"link {int(links.heads[bad])}->{int(links.tails[bad])} is infeasible "
            "even alone; it is not a valid communication edge"
        )

    for k in demanded:
        remaining = int(links.demand[k])
        sender = int(links.heads[k])
        receiver = int(links.tails[k])
        # One batched admission pass over the existing slots: adding this
        # link to slot j never changes slot j' (slots are independent), so
        # the precomputed verdicts match the incremental slot-by-slot scan.
        if arena.n_slots:
            for j in np.flatnonzero(arena.can_add_all(sender, receiver)):
                if remaining <= 0:
                    break
                arena.add(int(j), sender, receiver)
                schedule.slots[j].add(k)
                remaining -= 1
        while remaining > 0:
            arena.open_slot(sender, receiver)
            slot = Slot()
            slot.add(k)
            schedule.slots.append(slot)
            remaining -= 1
    return schedule
