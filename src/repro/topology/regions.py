"""Deployment regions and the density sweep arithmetic of Section VI.

The paper's simulations fix the node count at 64 and vary *density*
(nodes per square kilometer) by scaling the deployment area.  These helpers
convert between density and region side length so every experiment states
its sweep in the paper's units.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive

SQ_METERS_PER_SQ_KM = 1_000_000.0


def side_for_density(n_nodes: int, density_per_km2: float) -> float:
    """Side (meters) of the square region holding ``n_nodes`` at a density.

    >>> round(side_for_density(64, 1000.0), 1)
    253.0
    """
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    check_positive("density_per_km2", density_per_km2)
    area_m2 = n_nodes / density_per_km2 * SQ_METERS_PER_SQ_KM
    return float(np.sqrt(area_m2))


def density_for_side(n_nodes: int, side_m: float) -> float:
    """Density (nodes/km^2) of ``n_nodes`` in a square of side ``side_m``."""
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    check_positive("side_m", side_m)
    return n_nodes / (side_m**2 / SQ_METERS_PER_SQ_KM)


@dataclass(frozen=True)
class SquareRegion:
    """A square deployment region ``[0, side] x [0, side]`` in meters."""

    side: float

    def __post_init__(self) -> None:
        check_positive("side", self.side)

    @property
    def area_m2(self) -> float:
        return self.side**2

    @property
    def diameter(self) -> float:
        """Euclidean diameter (Definition 11): the diagonal for a square."""
        return self.side * np.sqrt(2.0)

    def contains(self, positions: np.ndarray) -> np.ndarray:
        """Boolean mask of which positions fall inside the region."""
        pos = np.asarray(positions, dtype=float)
        return (
            (pos[:, 0] >= 0)
            & (pos[:, 0] <= self.side)
            & (pos[:, 1] >= 0)
            & (pos[:, 1] <= self.side)
        )

    @classmethod
    def for_density(cls, n_nodes: int, density_per_km2: float) -> "SquareRegion":
        """Region sized so ``n_nodes`` sit at ``density_per_km2``."""
        return cls(side_for_density(n_nodes, density_per_km2))
