"""Integration tests for the sharded multi-region epoch engine.

* Differential equivalence: the sharded engine with ``n_shards=1`` must
  reproduce the monolithic ``run_epochs`` epoch-for-epoch (backlogs,
  delivered, overhead, cache decisions, per-packet delays) for every
  reschedule policy — the harness that keeps the refactor honest.  The
  FDD variant of the same harness lives in
  ``benchmarks/test_bench_sharded.py``.
* Determinism: identical traces for ``max_workers=1`` vs ``max_workers=4``
  given the same seed — parallelism never changes results.
* Multi-shard sanity: conservation, feasible reconciled rounds, and
  shard-aware accounting on a real 4-shard run.
"""

import numpy as np
import pytest

from repro.core.fdd import fdd_on_network
from repro.experiments.common import PAPER_PROTOCOL, grid_scenario
from repro.traffic import (
    EpochConfig,
    PoissonArrivals,
    RESCHEDULE_POLICIES,
    centralized_scheduler,
    plan_for_network,
    run_epochs,
    run_epochs_sharded,
    sharded_centralized_factory,
    sharded_distributed_factory,
)
from repro.util.rng import spawn

FUNCTIONAL_FIELDS = (
    "epoch",
    "arrivals",
    "served",
    "delivered",
    "backlog_end",
    "demand_scheduled",
    "schedule_length",
    "overhead_slots",
    "cache_hit",
    "patched",
    "drift",
)


def _functional(trace):
    return [tuple(getattr(r, f) for f in FUNCTIONAL_FIELDS) for r in trace.records]


@pytest.fixture(scope="module")
def mesh():
    return grid_scenario(1000.0, rep=0, rows=8, cols=8, n_gateways=4)


def _generator(mesh, rate=0.012, seed=11):
    return PoissonArrivals(
        mesh.network.n_nodes, rate, gateways=mesh.gateways, seed=seed
    )


@pytest.mark.parametrize("policy", RESCHEDULE_POLICIES)
def test_single_shard_equivalence_all_policies(mesh, policy):
    """n_shards=1 replays the monolithic loop exactly, per policy."""
    model = mesh.network.model
    config = EpochConfig(
        epoch_slots=150,
        n_epochs=6,
        divergence_factor=4.0,
        reschedule_policy=policy,
    )
    mono = run_epochs(
        mesh.links,
        _generator(mesh),
        centralized_scheduler(model, overhead_seconds=0.3),
        config,
        model=model,
    )
    plan = plan_for_network(mesh.links, mesh.network, n_shards=1,
                            interference_radius_m=80.0)

    def factory(shard, shard_model):
        return centralized_scheduler(shard_model, overhead_seconds=0.3)

    shard = run_epochs_sharded(plan, _generator(mesh), factory, model, config)

    assert _functional(shard) == _functional(mono)
    assert shard.diverged == mono.diverged
    assert np.array_equal(shard.backlog_series(), mono.backlog_series())
    assert np.array_equal(shard.queues.delay_array(), mono.queues.delay_array())
    assert np.array_equal(shard.queues.backlog, mono.queues.backlog)
    assert all(r.reconciled == 0 for r in shard.records)
    shard.queues.check_conservation()


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_workers_never_change_results(mesh, workers):
    """Same seed, different pool sizes: byte-identical traces."""
    model = mesh.network.model
    plan = plan_for_network(mesh.links, mesh.network, n_shards=4,
                            interference_radius_m=80.0)
    config = EpochConfig(epoch_slots=150, n_epochs=5, divergence_factor=4.0)

    def run(max_workers):
        factory = sharded_distributed_factory(
            mesh.network, fdd_on_network, config=PAPER_PROTOCOL, seed=29
        )
        return run_epochs_sharded(
            plan, _generator(mesh), factory, model, config,
            max_workers=max_workers,
        )

    serial = run(1)
    pooled = run(workers)
    assert serial.records == pooled.records
    assert np.array_equal(serial.queues.delay_array(), pooled.queues.delay_array())
    assert np.array_equal(serial.queues.backlog, pooled.queues.backlog)


def test_multi_shard_run_is_conservative_and_accounted(mesh):
    """A real 4-shard run: packet conservation, shard-aware records, and
    budget-consistent feasibility of every reconciled round."""
    model = mesh.network.model
    plan = plan_for_network(mesh.links, mesh.network, n_shards=4,
                            interference_radius_m=80.0)
    assert plan.n_shards == 4
    config = EpochConfig(epoch_slots=150, n_epochs=5, divergence_factor=4.0)
    trace = run_epochs_sharded(
        plan,
        _generator(mesh),
        sharded_centralized_factory(),
        model,
        config,
    )
    trace.queues.check_conservation()
    assert trace.plan is plan
    for record in trace.records:
        assert record.n_shards == 4
        assert record.reconciled >= 0
    # The engine measured its scheduling compute, and the critical path can
    # never exceed the summed compute.
    assert trace.scheduling_seconds > 0.0
    assert 0.0 < trace.critical_path_seconds <= trace.scheduling_seconds + 1e-9
