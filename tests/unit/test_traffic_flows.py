"""Unit tests for the flow-session layer (repro.traffic.flows) and the
admission controllers (repro.traffic.admission)."""

import numpy as np
import pytest

from repro.scheduling.links import LinkSet
from repro.traffic import (
    Backpressure,
    EpochConfig,
    Flow,
    FlowConfig,
    FlowWorkload,
    KneeTracker,
    LinkQueues,
    NoAdmission,
    StaticCap,
    flow_delay_percentile,
    flow_delays,
    make_controller,
    route_of,
    run_epochs,
    serialized_scheduler,
)
from repro.traffic.epoch import EpochRecord


def chain_links(n=4):
    """A chain 3 -> 2 -> 1 -> 0 with node 0 the gateway."""
    heads = np.arange(1, n)
    tails = np.arange(0, n - 1)
    return LinkSet(
        heads=heads, tails=tails, demand=np.zeros(n - 1, np.int64), ids=heads
    )


def record(epoch=0, arrivals=0, served=0, delivered=0, backlog=0):
    return EpochRecord(
        epoch=epoch,
        arrivals=arrivals,
        served=served,
        delivered=delivered,
        backlog_end=backlog,
        demand_scheduled=0,
        schedule_length=0,
        overhead_slots=0,
    )


class TestRoutes:
    def test_route_follows_chain_to_gateway(self):
        links = chain_links()
        np.testing.assert_array_equal(route_of(links, 3), [2, 1, 0])
        np.testing.assert_array_equal(route_of(links, 1), [0])

    def test_gateway_has_no_route(self):
        with pytest.raises(ValueError, match="heads no link"):
            route_of(chain_links(), 0)


class TestFlowConfig:
    def test_offered_rate_round_trips(self):
        cfg = FlowConfig.for_offered_rate(0.02, n_sources=10, epoch_slots=100)
        assert cfg.offered_rate(10, 100) == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowConfig(session_rate=-1)
        with pytest.raises(ValueError):
            FlowConfig(size_alpha=1.0)
        with pytest.raises(ValueError):
            FlowConfig(cbr_fraction=1.5)

    def test_flow_validation(self):
        with pytest.raises(ValueError, match="klass"):
            Flow(0, 1, "video", 0.1, 10, 0, np.array([0]))
        with pytest.raises(ValueError, match="size"):
            Flow(0, 1, "cbr", 0.1, 0, 0, np.array([0]))


class TestFlowWorkload:
    def test_same_seed_replays_identically(self):
        links = chain_links(6)
        cfg = FlowConfig(session_rate=3.0)
        a = FlowWorkload(links, cfg, seed=5)
        b = FlowWorkload(links, cfg, seed=5)
        for epoch in range(6):
            np.testing.assert_array_equal(
                a.arrivals(epoch, 100), b.arrivals(epoch, 100)
            )

    def test_sequential_epochs_enforced_and_reset_rewinds(self):
        links = chain_links(6)
        wl = FlowWorkload(links, FlowConfig(session_rate=3.0), seed=5)
        first = wl.arrivals(0, 100)
        with pytest.raises(ValueError, match="expected epoch"):
            wl.arrivals(2, 100)
        wl.reset()
        np.testing.assert_array_equal(wl.arrivals(0, 100), first)

    def test_long_run_offered_rate_matches_config(self):
        links = chain_links(8)
        rate = 0.03
        wl = FlowWorkload(
            links,
            FlowConfig.for_offered_rate(rate, links.n_links, 100),
            seed=9,
        )
        total = sum(int(wl.arrivals(e, 100).sum()) for e in range(400))
        measured = total / (400 * 100 * links.n_links)
        # Tight tolerance on purpose: the size distribution's x_m is
        # calibrated for the *truncated* mean, so the offered rate must
        # not sit systematically below the nominal lambda.
        assert measured == pytest.approx(rate, rel=0.08)

    def test_gateway_never_sources(self):
        links = chain_links(6)
        wl = FlowWorkload(links, FlowConfig(session_rate=5.0), seed=5)
        for epoch in range(10):
            assert wl.arrivals(epoch, 100)[0] == 0  # node 0 is the gateway

    def test_scaled_scales_session_rate_only(self):
        links = chain_links(6)
        wl = FlowWorkload(links, FlowConfig(session_rate=2.0), seed=5)
        doubled = wl.scaled(2.0)
        assert doubled.config.session_rate == pytest.approx(4.0)
        assert doubled.config.mean_size == wl.config.mean_size

    def test_completed_flows_depart(self):
        links = chain_links(4)
        cfg = FlowConfig(
            session_rate=2.0, mean_size=3, elastic_rate=1.0, cbr_rate=1.0,
            max_size_factor=1.0,
        )
        wl = FlowWorkload(links, cfg, seed=5)
        for epoch in range(5):
            wl.arrivals(epoch, 50)
        done = [f for f in wl.flows if f.done_epoch is not None]
        assert done, "short flows at high rate should complete"
        for f in done:
            assert f.remaining == 0
            assert f.emitted == f.size


class TestControllers:
    def test_registry_and_unknown_name(self):
        assert isinstance(make_controller("none"), NoAdmission)
        assert isinstance(make_controller("knee-tracker"), KneeTracker)
        assert isinstance(make_controller("backpressure"), Backpressure)
        assert isinstance(make_controller("static-cap", cap=1.0), StaticCap)
        with pytest.raises(ValueError, match="unknown admission controller"):
            make_controller("erlang")
        with pytest.raises(ValueError, match="needs cap"):
            make_controller("static-cap")

    def test_static_cap_blocks_and_throttles(self):
        links = chain_links(6)
        wl = FlowWorkload(
            links,
            FlowConfig(session_rate=8.0, cbr_fraction=0.0, elastic_rate=0.5),
            controller=StaticCap(cap=1.0),
            seed=5,
        )
        for epoch in range(6):
            wl.arrivals(epoch, 100)
        assert wl.sessions_blocked > 0
        assert wl.admitted_rate() <= 1.0 + 1e-9

    def test_knee_tracker_caps_on_growth_and_probes_when_stable(self):
        tracker = KneeTracker(window=3)
        links = chain_links(4)
        wl = FlowWorkload(links, FlowConfig(), controller=tracker, seed=5)
        wl._epoch_slots = 100
        queues = LinkQueues(links)
        # Three epochs of hard backlog growth: the window fills, the gate
        # (1.5x arrivals) and slope both trip, and the cap snaps to the
        # best delivered rate seen (50 / 100 slots).
        for epoch, backlog in enumerate((500, 1000, 1500)):
            tracker.observe(
                record(epoch, arrivals=200, delivered=50, backlog=backlog),
                queues,
                wl,
            )
        assert tracker.cap == pytest.approx(0.5)
        # Cooldown holds the cap; afterwards flat backlog that still sits
        # far above the gate is a standing queue -> multiplicative dip.
        for epoch in range(3, 3 + tracker.window):
            tracker.observe(
                record(epoch, arrivals=100, delivered=50, backlog=1500),
                queues,
                wl,
            )
        assert tracker.cap == pytest.approx(0.5)  # cooldown held it
        tracker.observe(
            record(7, arrivals=100, delivered=50, backlog=1500), queues, wl
        )
        assert tracker.cap == pytest.approx(0.5 * tracker.decrease)

    def test_knee_tracker_cap_never_collapses_to_zero(self):
        """A growth signal over a window that delivered *nothing* must not
        snap the cap to 0 — both AIMD moves are multiplicative, so a zero
        cap would block every future session forever."""
        tracker = KneeTracker(window=2)
        links = chain_links(4)
        wl = FlowWorkload(links, FlowConfig(), controller=tracker, seed=5)
        wl._epoch_slots = 100
        queues = LinkQueues(links)
        for epoch, backlog in enumerate((800, 1600, 2400, 3200, 4000, 4800)):
            tracker.observe(
                record(epoch, arrivals=200, delivered=0, backlog=backlog),
                queues,
                wl,
            )
        assert tracker.cap == pytest.approx(tracker.cap_floor)
        assert tracker.cap > 0
        with pytest.raises(ValueError, match="cap_floor"):
            KneeTracker(cap_floor=0.0)

    def test_knee_tracker_probes_additively_when_healthy(self):
        tracker = KneeTracker(window=2, increase=0.1)
        tracker.cap = 1.0
        links = chain_links(4)
        wl = FlowWorkload(links, FlowConfig(), controller=tracker, seed=5)
        wl._epoch_slots = 100
        queues = LinkQueues(links)
        for epoch in range(3):
            tracker.observe(
                record(epoch, arrivals=100, delivered=90, backlog=10), queues, wl
            )
        assert tracker.cap > 1.0

    def test_backpressure_throttles_routes_through_hot_links(self):
        links = chain_links(6)
        bp = Backpressure(hot_fraction=0.5, slowdown=0.25, gate_packets=10)
        wl = FlowWorkload(links, FlowConfig(), controller=bp, seed=5)
        queues = LinkQueues(links)
        queues.backlog[:] = [100, 0, 0, 0, 0]  # link 0 (into the gateway) hot
        bp.observe(record(), queues, wl)
        through_hot = Flow(0, 5, "elastic", 0.1, 10, 0, route_of(links, 5))
        assert not bp.admit(through_hot, wl)
        assert bp.throttle(through_hot, wl) == pytest.approx(0.25)

    def test_feedback_hungry_controller_without_observe_raises(self):
        """A knee tracker whose observe() is never wired must fail loudly,
        not silently degrade to the 'none' baseline."""
        links = chain_links(6)
        wl = FlowWorkload(links, FlowConfig(), controller=KneeTracker(), seed=5)
        wl.arrivals(0, 100)
        with pytest.raises(RuntimeError, match="on_epoch=workload.observe"):
            wl.arrivals(1, 100)
        # Wired feedback clears the guard ...
        wl.reset()
        queues = LinkQueues(links)
        wl.arrivals(0, 100)
        wl.observe(record(0), queues)
        wl.arrivals(1, 100)
        # ... and feedback-free controllers never needed it.
        bare = FlowWorkload(
            links, FlowConfig(), controller=StaticCap(cap=1.0), seed=5
        )
        for epoch in range(3):
            bare.arrivals(epoch, 100)

    def test_fresh_controllers_carry_knobs_but_no_state(self):
        tracker = KneeTracker(window=5, increase=0.2, decrease=0.5, drain_horizon=9)
        tracker.cap = 0.7
        clone = tracker.fresh()
        assert (clone.window, clone.increase, clone.decrease, clone.drain_horizon) == (
            5, 0.2, 0.5, 9,
        )
        assert clone.cap == float("inf")
        bp = Backpressure(hot_fraction=0.2, slowdown=0.5, gate_packets=3)
        clone = bp.fresh()
        assert (clone.hot_fraction, clone.slowdown, clone.gate_packets) == (0.2, 0.5, 3)


class TestFlowDelays:
    def test_per_flow_delays_attributed_through_the_loop(self):
        links = chain_links(6)
        wl = FlowWorkload(
            links,
            FlowConfig(session_rate=4.0, mean_size=5, max_size_factor=2.0),
            seed=5,
        )
        # The serialized round-robin scheduler is enough to deliver packets.
        trace = run_epochs(
            links,
            wl,
            serialized_scheduler(),
            EpochConfig(epoch_slots=60, n_epochs=8),
            on_epoch=wl.observe,
        )
        delays = flow_delays(wl, trace.queues)
        assert delays, "some flow should have delivered packets"
        assert all(d >= 1 for d in delays.values())
        assert set(delays) <= {f.fid for f in wl.flows}
        p99 = flow_delay_percentile(wl, trace.queues)
        assert p99 >= min(delays.values())
        assert p99 <= max(delays.values()) + 1e-9

    def test_no_deliveries_gives_nan(self):
        links = chain_links(4)
        wl = FlowWorkload(links, FlowConfig(session_rate=1.0), seed=5)
        queues = LinkQueues(links)
        assert np.isnan(flow_delay_percentile(wl, queues))
