"""Unit tests for the sharded epoch engine's building blocks.

Tiling arithmetic, partition/boundary/budget construction, the
reconciliation pass, and the zero/empty edges of ``TrafficTrace``
accounting (zero-epoch traces must not divide by zero or crash on empty
arrays anywhere in the summary pipeline).
"""

import numpy as np
import pytest

from repro.experiments.common import grid_scenario
from repro.phy.interference import PhysicalInterferenceModel
from repro.scheduling.feasibility import SlotState
from repro.topology.regions import GridTiling, SquareRegion, tile_counts_for
from repro.traffic import (
    EpochConfig,
    TrafficTrace,
    backlog_slope,
    is_stable,
    partition_links,
    plan_for_network,
    reconcile_round,
    stability_margin,
    summarize_trace,
)
from repro.traffic.sharded import affordable_budget


@pytest.fixture(scope="module")
def mesh():
    return grid_scenario(1000.0, rep=0, rows=6, cols=6, n_gateways=2)


# ---------------------------------------------------------------------------
# Tiling arithmetic
# ---------------------------------------------------------------------------


def test_tile_counts_factorization():
    assert tile_counts_for(1) == (1, 1)
    assert tile_counts_for(4) == (2, 2)
    assert tile_counts_for(6) == (3, 2)
    assert tile_counts_for(5) == (5, 1)
    with pytest.raises(ValueError):
        tile_counts_for(0)


def test_tile_of_covers_region_exactly_once():
    tiling = GridTiling(SquareRegion(100.0), nx=2, ny=2)
    pos = np.array([[10.0, 10.0], [60.0, 10.0], [10.0, 60.0], [99.0, 99.0]])
    assert tiling.tile_of(pos).tolist() == [0, 1, 2, 3]
    # The outer boundary clamps inward: corner positions still land in a tile.
    edge = np.array([[100.0, 100.0], [0.0, 100.0], [100.0, 0.0]])
    assert tiling.tile_of(edge).tolist() == [3, 2, 1]


def test_internal_edge_distance_single_tile_is_infinite():
    tiling = GridTiling(SquareRegion(100.0), nx=1, ny=1)
    pos = np.array([[0.0, 0.0], [50.0, 50.0]])
    assert np.all(np.isinf(tiling.internal_edge_distance(pos)))


def test_internal_edge_distance_measures_nearest_cut():
    tiling = GridTiling(SquareRegion(100.0), nx=2, ny=2)
    pos = np.array([[40.0, 10.0], [10.0, 45.0], [50.0, 50.0], [1.0, 2.0]])
    dist = tiling.internal_edge_distance(pos)
    assert dist == pytest.approx([10.0, 5.0, 0.0, 48.0])


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------


def test_partition_links_disjoint_union(mesh):
    plan = plan_for_network(mesh.links, mesh.network, n_shards=4,
                            interference_radius_m=60.0)
    seen = np.concatenate([s.link_indices for s in plan.shards])
    assert np.array_equal(np.sort(seen), np.arange(mesh.links.n_links))
    for shard in plan.shards:
        np.testing.assert_array_equal(
            shard.links.heads, mesh.links.heads[shard.link_indices]
        )
        assert shard.n_shards == plan.n_shards


def test_single_shard_plan_has_no_boundary_and_no_budget(mesh):
    plan = plan_for_network(mesh.links, mesh.network, n_shards=1,
                            interference_radius_m=60.0)
    assert plan.n_shards == 1
    assert not plan.boundary_mask().any()
    assert plan.shards[0].budget_mw is None
    # with_budget(None) must return the identical oracle object.
    model = mesh.network.model
    assert model.with_budget(plan.shards[0].budget_mw) is model


def test_boundary_detection_symmetric_in_endpoints(mesh):
    plan = plan_for_network(mesh.links, mesh.network, n_shards=4,
                            interference_radius_m=60.0)
    tiling = plan.tiling
    near = tiling.internal_edge_distance(mesh.network.positions) <= 60.0
    for shard in plan.shards:
        expected = near[shard.links.heads] | near[shard.links.tails]
        np.testing.assert_array_equal(shard.boundary, expected)


def test_guard_budget_clamped_to_affordable(mesh):
    model = mesh.network.model
    afford = affordable_budget(mesh.links, model)
    plan = plan_for_network(mesh.links, mesh.network, n_shards=4,
                            interference_radius_m=60.0, guard_factor=50.0)
    for shard in plan.shards:
        if shard.budget_mw is None:
            continue
        assert np.all(shard.budget_mw <= afford + 1e-12)
        # Every link must remain feasible alone under its shard's oracle.
        budgeted = model.with_budget(shard.budget_mw)
        for k in range(shard.links.n_links):
            state = SlotState(budgeted)
            assert state.can_add(
                int(shard.links.heads[k]), int(shard.links.tails[k])
            )


def test_zero_guard_factor_installs_no_budget(mesh):
    plan = plan_for_network(mesh.links, mesh.network, n_shards=4,
                            interference_radius_m=60.0, guard_factor=0.0)
    assert all(s.budget_mw is None for s in plan.shards)
    assert plan.boundary_mask().any()  # boundary detection is independent


def test_partition_validates_inputs(mesh):
    tiling = GridTiling(mesh.network.region, 2, 2)
    with pytest.raises(ValueError):
        partition_links(mesh.links, mesh.network.positions, tiling,
                        mesh.network.model, interference_radius_m=-1.0)
    with pytest.raises(ValueError):
        partition_links(mesh.links, mesh.network.positions, tiling,
                        mesh.network.model, 10.0, guard_factor=-0.5)


# ---------------------------------------------------------------------------
# Budgeted feasibility
# ---------------------------------------------------------------------------


def test_budgeted_model_is_stricter_but_consistent(mesh):
    model = mesh.network.model
    budget = np.full(model.n_nodes, model.radio.noise_mw)
    budgeted = model.with_budget(budget)
    assert isinstance(budgeted, PhysicalInterferenceModel)
    snd = mesh.links.heads[:4]
    rcv = mesh.links.tails[:4]
    data, ack = model.link_sinrs(snd, rcv)
    bdata, back = budgeted.link_sinrs(snd, rcv)
    assert np.all(bdata <= data + 1e-12)
    assert np.all(back <= ack + 1e-12)
    # Budget feasibility implies exact feasibility (margins only shrink).
    if budgeted.is_feasible(snd, rcv):
        assert model.is_feasible(snd, rcv)


# ---------------------------------------------------------------------------
# Reconciliation
# ---------------------------------------------------------------------------


def test_reconcile_round_keeps_feasible_slots_verbatim(mesh):
    model = mesh.network.model
    # Single-link slots are always feasible: nothing to do.
    combined = [np.array([k], dtype=np.intp) for k in range(4)]
    kept, moved = reconcile_round(combined, mesh.links, model)
    assert moved == 0
    assert [k.tolist() for k in kept] == [[0], [1], [2], [3]]


def test_reconcile_round_serializes_violations(mesh):
    links, model = mesh.links, mesh.network.model
    # Find two links sharing a node (parent/child): guaranteed infeasible
    # concurrently (half-duplex), so reconciliation must split them.
    pair = None
    for a in range(links.n_links):
        for b in range(links.n_links):
            if a != b and links.tails[a] == links.heads[b]:
                pair = (a, b)
                break
        if pair:
            break
    assert pair is not None
    combined = [np.array(pair, dtype=np.intp)]
    kept, moved = reconcile_round(combined, links, model)
    assert moved >= 1
    # Every membership survives, just serialized.
    flat = sorted(int(k) for slot in kept for k in slot)
    assert flat == sorted(pair)
    # And every reconciled slot is feasible under the exact model.
    for slot in kept:
        assert model.is_feasible(links.heads[slot], links.tails[slot])


def test_reconcile_round_keeps_standalone_infeasible_links_alone(mesh):
    """A link that fails SINR even alone gets a *closed* dedicated slot.

    Nothing may pack after it — its interference was never evaluated — so
    other serialized links must land in their own (feasible) slots.
    """
    network = mesh.network
    model = network.model
    # Fabricate a non-communication edge: the two nodes farthest apart.
    pos = network.positions
    d2 = ((pos[:, None, :] - pos[None, :, :]) ** 2).sum(-1)
    far_a, far_b = np.unravel_index(np.argmax(d2), d2.shape)
    base = mesh.links
    # Pick two real links not touching the far pair.
    ok = [
        k for k in range(base.n_links)
        if {int(base.heads[k]), int(base.tails[k])}.isdisjoint({int(far_a), int(far_b)})
    ][:2]
    from repro.scheduling.links import LinkSet

    links = LinkSet(
        heads=np.array([far_a, base.heads[ok[0]], base.heads[ok[1]]]),
        tails=np.array([far_b, base.tails[ok[0]], base.tails[ok[1]]]),
        demand=np.array([1, 1, 1]),
        ids=np.array([1000, 1001, 1002]),
    )
    state = SlotState(model)
    assert not state.can_add(int(far_a), int(far_b))  # genuinely infeasible alone

    # All three in one slot: the dead link (SINR 0 => lowest margin) and at
    # least one sibling get peeled; the dead link's slot must stay closed.
    combined = [np.array([0, 1, 2], dtype=np.intp)]
    kept, moved = reconcile_round(combined, links, model)
    assert moved >= 1
    flat = sorted(int(k) for slot in kept for k in slot)
    assert flat == [0, 1, 2]  # serialized, never dropped
    for slot in kept:
        if 0 in slot.tolist():
            assert slot.tolist() == [0], (
                "nothing may share a slot with a standalone-infeasible link"
            )
        else:
            assert model.is_feasible(links.heads[slot], links.tails[slot])


def _shared_node_pairs(links):
    """(a, b) link pairs with ``tails[a] == heads[b]`` — half-duplex
    conflicts, guaranteed to fail together in one slot with tied margins."""
    return [
        (a, b)
        for a in range(links.n_links)
        for b in range(links.n_links)
        if a != b and links.tails[a] == links.heads[b]
    ]


def test_reconcile_round_degenerate_table_matches_rate_blind(mesh):
    """The degenerate table's rate-aware peel collapses to the margin order
    bit-for-bit: every removal costs exactly one packet, so the leave-one-out
    loss is constant and the (loss, margin) key degenerates to margin."""
    from repro.phy.radio import RateTable

    links, model = mesh.links, mesh.network.model
    degenerate = RateTable.degenerate(model.radio.beta)
    pairs = _shared_node_pairs(links)
    assert pairs
    a, b = pairs[0]
    combined = [
        np.array([a, b], dtype=np.intp),
        np.arange(min(6, links.n_links), dtype=np.intp),
    ]
    blind_kept, blind_moved = reconcile_round(combined, links, model)
    rated_kept, rated_moved = reconcile_round(
        combined, links, model, table=degenerate
    )
    assert blind_moved == rated_moved
    assert [s.tolist() for s in blind_kept] == [s.tolist() for s in rated_kept]


def test_reconcile_round_rate_aware_peel_prefers_cheaper_loss(mesh):
    """With a real multi-tier table the peel victim is the failing link whose
    removal costs the fewest delivered packets — not the lowest-margin one.

    A shared-node pair fails with *tied* margins (both deaf), so the
    rate-blind peel always evicts the first position; ordering the pair
    higher-rate-first makes the rate-aware peel evict the *second* (cheaper)
    link instead, keeping the higher-rate link on the air.
    """
    from repro.phy.radio import RateTable

    links, model = mesh.links, mesh.network.model
    beta = model.radio.beta
    # Tiers calibrated like E12: standalone margins on this grid span only
    # a few x beta, so the upgrade thresholds must sit at 2x / 3x beta for
    # any link to clear them.
    table = RateTable(
        thresholds=np.array([beta, 2 * beta, 3 * beta]),
        rates=np.array([1, 2, 4]),
    )

    def alone_rate(k):
        return int(
            model.link_rates(
                links.heads[[k]], links.tails[[k]], table
            )[0]
        )

    pick = None
    for a, b in _shared_node_pairs(links):
        if alone_rate(a) != alone_rate(b):
            pick = (a, b) if alone_rate(a) > alone_rate(b) else (b, a)
            break
    assert pick is not None, "grid has no shared-node pair with distinct rates"
    hi, lo = pick  # members listed higher-standalone-rate first

    combined = [np.array([hi, lo], dtype=np.intp)]
    blind_kept, _ = reconcile_round(combined, links, model)
    rated_kept, rated_moved = reconcile_round(combined, links, model, table=table)

    # Rate-blind: margins tie at zero (both deaf), first position peeled.
    assert blind_kept[0].tolist() == [lo]
    # Rate-aware: evicting ``lo`` forfeits fewer packets, so ``hi`` stays.
    assert rated_kept[0].tolist() == [hi]
    assert rated_moved == 1
    # Nothing dropped either way, and every reconciled slot is feasible.
    assert sorted(k for s in rated_kept for k in s.tolist()) == sorted([hi, lo])
    for slot in rated_kept:
        assert model.is_feasible(links.heads[slot], links.tails[slot])


# ---------------------------------------------------------------------------
# TrafficTrace zero/empty edges
# ---------------------------------------------------------------------------


def test_zero_epoch_trace_accounting_is_total():
    trace = TrafficTrace(config=EpochConfig())
    assert trace.n_epochs_run == 0
    assert trace.total_slots == 0
    assert trace.arrivals_total == 0
    assert trace.delivered_total == 0
    assert trace.overhead_slots_total == 0
    assert trace.cache_hits == 0
    assert trace.patched_epochs == 0
    assert trace.reconciled_total == 0
    assert trace.cache_hit_rate == 0.0  # no requests: not a division by zero
    series = trace.backlog_series()
    assert series.size == 0 and series.dtype == np.int64
    assert trace.summary() == (
        "TrafficTrace(epochs=0, arrivals=0, delivered=0, backlog=0)"
    )


def test_zero_epoch_trace_stability_pipeline():
    trace = TrafficTrace(config=EpochConfig())
    assert backlog_slope(trace) == 0.0
    assert stability_margin(trace) == 0.0
    assert is_stable(trace)
    metrics = summarize_trace(trace, offered_rate=0.01)
    assert metrics.throughput == 0.0
    assert np.isnan(metrics.mean_delay) and np.isnan(metrics.p99_delay)
    assert metrics.backlog_final == 0
    assert metrics.overhead_slots == 0.0
    assert metrics.cache_hit_rate == 0.0
    assert "stable" in str(metrics)


def test_all_zero_demand_trace_has_zero_hit_rate():
    # Records exist but the scheduler was never asked: rate stays 0, not 0/0.
    from repro.traffic import EpochRecord

    trace = TrafficTrace(config=EpochConfig())
    trace.records.append(
        EpochRecord(
            epoch=0, arrivals=0, served=0, delivered=0, backlog_end=0,
            demand_scheduled=0, schedule_length=0, overhead_slots=0,
        )
    )
    assert trace.cache_hit_rate == 0.0
    assert trace.summary().endswith("backlog=0)")
