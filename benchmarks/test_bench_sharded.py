"""Bench for the sharded multi-region epoch engine (E9).

Runs the monolithic and sharded engines over the 16x16 and 24x24 grids
(FDD per region vs one backbone protocol) and records the comparison
table.  The experiment itself re-runs one operating point per grid on the
*other* executor backend, so every bench run exercises both the thread
and the process pool and proves them record-identical.  Beyond the
snapshot, asserts the PR's headlines on the 16x16 grid at 4 shards:

* the sharded engine cuts the *critical-path* scheduling time — the
  per-epoch maximum over the concurrently computing regions, i.e. what the
  scheduling phase costs when every region has its own controller — by at
  least 2x;
* with ``executor="process"`` on a host that actually has the workers
  (``os.cpu_count() >= sharded_workers``), the speedup is *cashed*: real
  wall-clock drops >= 2x on the 16x16 grid, and the 24x24 sharded wall
  stays within 1.5x of its critical path;
* the measured stability knee stays within one sweep step of the
  monolithic knee;
* the batched SINR admission kernels (``slots_can_add`` /
  ``PhysicalInterferenceModel.feasible_with``) agree verdict-for-verdict
  with the incremental per-candidate scan on a real bench-scale grid, so
  the vectorized schedulers build identical schedules;
* the degenerate 1-shard partition reproduces the monolithic engine
  epoch-for-epoch for every reschedule policy (the equivalence harness
  that keeps the refactor honest).
"""

import os

import numpy as np
import pytest

from repro.core.fdd import fdd_on_network
from repro.experiments.common import PAPER_PROTOCOL, ExperimentProfile
from repro.experiments.sharded import sharded_experiment
from repro.routing import build_routing_forest, planned_gateways
from repro.scheduling.feasibility import SlotState, slots_can_add
from repro.scheduling.links import forest_link_set
from repro.topology.network import grid_network
from repro.traffic import (
    EpochConfig,
    PoissonArrivals,
    distributed_scheduler,
    plan_for_network,
    run_epochs,
    run_epochs_sharded,
    sharded_distributed_factory,
)
from repro.util.rng import spawn

FUNCTIONAL_FIELDS = (
    "epoch",
    "arrivals",
    "served",
    "delivered",
    "backlog_end",
    "demand_scheduled",
    "schedule_length",
    "overhead_slots",
    "cache_hit",
    "patched",
    "drift",
)


def _functional(record):
    return tuple(getattr(record, f) for f in FUNCTIONAL_FIELDS)


def _rows_by_kind(table):
    """Split data rows from the per-grid knee and speedup summary rows."""
    data, knees, speedups = {}, {}, {}
    for row in table._rows:
        grid, engine, lam = row[0], row[1], row[2]
        if engine == "speedup":
            speedups[grid] = row
        elif lam == "knee":
            knees[(grid, engine)] = row
        else:
            data[(grid, engine, lam)] = row
    return data, knees, speedups


# Column indices in the E9 table (see sharded_experiment's header).
COL_COMPUTE = 6
COL_CRITICAL = 7
COL_WALL = 8
COL_WALL_SPEEDUP = 9
COL_RECONCILED = 10


@pytest.mark.benchmark(group="traffic")
def test_sharded_engine_speedup_and_knee_fidelity(benchmark, bench_profile, save_table):
    table = benchmark.pedantic(
        sharded_experiment, args=(bench_profile,), rounds=1, iterations=1
    )
    # Raw timing columns are masked in the committed snapshot (re-runs must
    # not churn it) — but the *wall speedup* column is deliberately left
    # unmasked: it is a dimensionless ratio of two same-host measurements,
    # and committing a real number there (instead of a ``~``) is the point
    # of the process-pool backend.  The assertions below read the unmasked
    # table either way.
    save_table(
        "sharded",
        table,
        volatile=("compute (s)", "critical path (s)", "wall (s)"),
    )

    per_grid = [
        len(lams) * 2 + 3 for lams in bench_profile.sharded_lambdas
    ]  # 2 engines x rates + 2 knee rows + 1 speedup row
    assert table.n_rows == sum(per_grid)

    data, knees, speedups = _rows_by_kind(table)
    grids = [f"{r}x{c}" for r, c in bench_profile.sharded_grids]
    assert "16x16" in grids

    # --- >= 2x critical-path scheduling speedup on the 16x16 grid.
    crit_cell = speedups["16x16"][COL_CRITICAL]
    assert crit_cell.endswith("x")
    crit_speedup = float(crit_cell[:-1])
    assert crit_speedup >= 2.0, (
        f"sharded engine should cut the critical-path scheduling time "
        f">= 2x on the 16x16 grid at 4 shards, measured {crit_speedup:.2f}x"
    )

    # --- Cashing the speedup: only meaningful when the host really has the
    # workers (one-core CI runners pay process fan-out overhead instead of
    # buying parallelism) and the sweep ran on the process backend.
    cpus = os.cpu_count() or 1
    cashed = (
        bench_profile.sharded_executor == "process"
        and cpus >= bench_profile.sharded_workers
    )
    wall_cell = speedups["16x16"][COL_WALL_SPEEDUP]
    if cashed:
        assert wall_cell.endswith("x")
        wall_speedup = float(wall_cell[:-1])
        assert wall_speedup >= 2.0, (
            f"process-pool backend should cut real wall-clock >= 2x on the "
            f"16x16 grid with {bench_profile.sharded_workers} workers on "
            f"{cpus} cores, measured {wall_speedup:.2f}x"
        )
        # On the 24x24 grid the sharded wall-clock must track its own
        # critical path within 1.5x — dispatch/serialization overhead only.
        crit_total = knees[("24x24", "sharded")][COL_CRITICAL]
        wall_total = knees[("24x24", "sharded")][COL_WALL]
        if crit_total != "~" and wall_total != "~":
            assert float(wall_total) <= 1.5 * float(crit_total) + 0.05, (
                f"24x24 sharded wall-clock {wall_total}s should stay within "
                f"~1.5x of its critical path {crit_total}s"
            )

    # --- The knee must stay within one sweep step of the monolithic knee.
    steps = sorted(bench_profile.sharded_lambdas[grids.index("16x16")])

    def step_index(cell):
        return steps.index(float(cell)) if cell != "-" else None

    mono_knee = step_index(knees[("16x16", "monolithic")][-1])
    shard_knee = step_index(knees[("16x16", "sharded")][-1])
    assert mono_knee is not None, "monolithic engine unstable at every swept rate"
    assert shard_knee is not None, "sharded engine unstable at every swept rate"
    assert abs(shard_knee - mono_knee) <= 1, (
        f"sharded knee moved more than one sweep step: "
        f"{knees[('16x16', 'sharded')][-1]} vs monolithic "
        f"{knees[('16x16', 'monolithic')][-1]}"
    )

    # --- Reconciliation only ever happens on multi-shard rounds, and the
    # monolithic engine reports none.
    for (grid, engine, lam), row in data.items():
        if engine == "monolithic":
            assert row[COL_RECONCILED] == "0.0"


@pytest.mark.benchmark(group="traffic")
def test_batched_admission_kernels_match_incremental_scan():
    """The vectorized SINR admission kernels equal the per-candidate scan.

    On a bench-scale 16x16 grid: build a stack of populated slots, then
    check every (candidate, slot) admission verdict three ways — the
    incremental ``SlotState.can_add`` scan, the candidate-batched
    ``SlotState.feasible_with``, and the slot-batched ``slots_can_add`` —
    plus the model-level ``feasible_with`` against its per-candidate
    ``feasible_with_addition``.  Exact equality (not allclose): the greedy
    scheduler, deficit patcher, and reconciliation packer all consult these
    kernels, so any verdict flip would change schedules.
    """
    network = grid_network(16, 16, density_per_km2=1000.0)
    gateways = planned_gateways(16, 16, 4)
    forest = build_routing_forest(network.comm_adj, gateways, rng=spawn(11, "bk"))
    links = forest_link_set(forest, np.zeros(network.n_nodes, dtype=np.int64))
    model = network.model
    heads, tails = links.heads, links.tails

    order = np.random.default_rng(20080617).permutation(links.n_links)
    states: list[SlotState] = []
    for k in order[:48]:
        sender, receiver = int(heads[k]), int(tails[k])
        if not any(st.try_add(sender, receiver) for st in states):
            fresh = SlotState(model)
            if fresh.try_add(sender, receiver):
                states.append(fresh)
    assert len(states) >= 2 and any(len(st) >= 2 for st in states)

    cand = order[48:168]
    cs, cr = heads[cand], tails[cand]
    for st in states:
        scan = np.array([st.can_add(int(s), int(r)) for s, r in zip(cs, cr)])
        assert np.array_equal(st.feasible_with(cs, cr), scan)
        snd, rcv = st.members()
        model_scan = np.array(
            [
                model.feasible_with_addition(snd, rcv, int(s), int(r))
                for s, r in zip(cs, cr)
            ]
        )
        assert np.array_equal(model.feasible_with(snd, rcv, cs, cr), model_scan)
    for s, r in zip(cs[:40], cr[:40]):
        per_slot = np.array([st.can_add(int(s), int(r)) for st in states])
        assert np.array_equal(slots_can_add(states, int(s), int(r)), per_slot)


@pytest.mark.benchmark(group="traffic")
@pytest.mark.parametrize("policy", ["always", "drift-threshold", "patch"])
def test_single_shard_reproduces_monolithic_engine(policy):
    """n_shards=1 differential equivalence for every reschedule policy.

    FDD (stochastic, overhead-priced) on the paper's 8x8 grid: the sharded
    engine with the degenerate 1-shard partition must reproduce the
    monolithic ``run_epochs`` epoch-for-epoch — backlogs, delivered packets,
    overhead, cache decisions, and per-packet delays.
    """
    network = grid_network(8, 8, density_per_km2=1000.0)
    gateways = planned_gateways(8, 8, 4)
    forest = build_routing_forest(network.comm_adj, gateways, rng=spawn(7, "f"))
    links = forest_link_set(forest, np.zeros(network.n_nodes, dtype=np.int64))
    config = EpochConfig(
        epoch_slots=200,
        n_epochs=5,
        divergence_factor=4.0,
        reschedule_policy=policy,
    )

    def generator():
        return PoissonArrivals(
            network.n_nodes, 0.01, gateways=gateways, seed=spawn(7, "g")
        )

    scheduler = distributed_scheduler(
        network, fdd_on_network, config=PAPER_PROTOCOL, seed=7
    )
    mono = run_epochs(links, generator(), scheduler, config, model=network.model)

    plan = plan_for_network(links, network, n_shards=1, interference_radius_m=80.0)
    assert plan.n_shards == 1 and not plan.boundary_mask().any()
    factory = sharded_distributed_factory(
        network, fdd_on_network, config=PAPER_PROTOCOL, seed=7
    )
    shard = run_epochs_sharded(plan, generator(), factory, network.model, config)

    assert [_functional(r) for r in shard.records] == [
        _functional(r) for r in mono.records
    ]
    assert shard.diverged == mono.diverged
    assert np.array_equal(shard.queues.delay_array(), mono.queues.delay_array())
    assert np.array_equal(shard.queues.backlog, mono.queues.backlog)
    shard.queues.check_conservation()
