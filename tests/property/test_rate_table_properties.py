"""Property tests on the RateTable MCS contract (DESIGN.md §12).

Three laws carry the multi-rate refactor:

* **monotone rate** — higher SINR can never be granted a lower tier or
  fewer packets per slot, stateless or through hysteresis selection;
* **no hysteresis oscillation** — for a fixed SINR, ``select`` is
  idempotent (a link inside one band settles in one step and stays), and
  any SINR trajectory visits tiers without chattering: an upgrade needs
  margin, so re-evaluating an unchanged SINR can never flip tiers back
  and forth;
* **degenerate ≡ β-threshold** — the single-tier table at rate 1 grants
  exactly the bool feasibility verdict: rate 1 iff ``SINR >= β``, else 0,
  at any hysteresis.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.phy.radio import RateTable

finite_sinr = st.floats(
    min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False
)


@st.composite
def rate_tables(draw):
    """A random valid table: increasing thresholds, non-decreasing rates."""
    n = draw(st.integers(min_value=1, max_value=6))
    base = draw(st.floats(min_value=0.5, max_value=100.0))
    steps = draw(
        st.lists(
            st.floats(min_value=1.1, max_value=8.0), min_size=n - 1, max_size=n - 1
        )
    )
    thresholds = base * np.cumprod([1.0] + steps)
    increments = draw(
        st.lists(st.integers(min_value=0, max_value=4), min_size=n, max_size=n)
    )
    rates = 1 + np.cumsum(increments)
    hysteresis = draw(st.floats(min_value=1.0, max_value=3.0))
    return RateTable(thresholds=thresholds, rates=rates, hysteresis=hysteresis)


@st.composite
def table_and_sinrs(draw):
    table = draw(rate_tables())
    sinrs = draw(
        st.lists(finite_sinr, min_size=1, max_size=20).map(
            lambda xs: np.asarray(xs, dtype=float)
        )
    )
    return table, sinrs


@st.composite
def table_and_prev(draw):
    table, sinrs = draw(table_and_sinrs())
    prev = np.asarray(
        draw(
            st.lists(
                st.integers(min_value=-1, max_value=table.n_tiers - 1),
                min_size=sinrs.size,
                max_size=sinrs.size,
            )
        ),
        dtype=np.int64,
    )
    return table, sinrs, prev


@given(table_and_sinrs())
@settings(max_examples=150, deadline=None)
def test_rate_is_monotone_in_sinr(tc):
    """Sorting the SINRs sorts the tiers and the rates."""
    table, sinrs = tc
    order = np.argsort(sinrs)
    tiers = table.tier_for(sinrs)[order]
    rates = table.rate_for(sinrs)[order]
    assert (np.diff(tiers) >= 0).all()
    assert (np.diff(rates) >= 0).all()
    assert (rates >= 0).all()


@given(table_and_prev())
@settings(max_examples=150, deadline=None)
def test_select_is_monotone_in_sinr_for_shared_prev(tc):
    """With one shared previous tier, higher SINR never selects lower."""
    table, sinrs, prev = tc
    shared = np.full_like(prev, prev[0])
    order = np.argsort(sinrs)
    selected = table.select(sinrs, shared)[order]
    assert (np.diff(selected) >= 0).all()


@given(table_and_prev())
@settings(max_examples=150, deadline=None)
def test_select_never_exceeds_raw_tier_and_never_underruns_on_upgrade(tc):
    """Selection is sandwiched: at most the raw-threshold tier, and on the
    upgrade path (raw > prev >= 0) at least the previous tier."""
    table, sinrs, prev = tc
    raw = table.tier_for(sinrs)
    selected = table.select(sinrs, prev)
    assert (selected <= raw).all()
    upgrade = (prev >= 0) & (raw > prev)
    assert (selected[upgrade] >= prev[upgrade]).all()
    # Downgrades and unset-prev entries snap to the stateless answer.
    assert (selected[~upgrade] == raw[~upgrade]).all()


@given(table_and_prev())
@settings(max_examples=150, deadline=None)
def test_select_is_idempotent_no_oscillation(tc):
    """For a fixed SINR the selection map reaches a fixed point in one
    step: a link whose SINR sits inside a hysteresis band cannot flap
    between tiers on re-evaluation."""
    table, sinrs, prev = tc
    once = table.select(sinrs, prev)
    twice = table.select(sinrs, once)
    assert np.array_equal(once, twice)


@given(
    st.floats(min_value=1.001, max_value=1e4),
    st.lists(finite_sinr, min_size=1, max_size=20),
    st.floats(min_value=1.0, max_value=3.0),
)
@settings(max_examples=150, deadline=None)
def test_degenerate_table_is_the_beta_threshold(beta, sinrs, hysteresis):
    """Rate 1 iff SINR >= β, else 0 — the bool feasibility contract —
    whatever the hysteresis and whatever the selection history."""
    values = np.asarray(sinrs, dtype=float)
    table = RateTable(
        thresholds=np.array([beta]), rates=np.array([1]), hysteresis=hysteresis
    )
    assert table.is_degenerate
    expected = np.where(values >= beta, 1, 0)
    assert np.array_equal(table.rate_for(values), expected)
    for prev in (-1, 0):
        selected = table.select(values, np.full(values.size, prev, dtype=np.int64))
        clamped = np.maximum(selected, 0)  # serving clamps to the base tier
        assert np.array_equal(table.rates[clamped], np.ones(values.size, np.int64))
        # Unclamped: tier 0 iff decodable.
        assert np.array_equal(selected >= 0, values >= beta)


@given(table_and_sinrs())
@settings(max_examples=100, deadline=None)
def test_unit_hysteresis_select_is_stateless(tc):
    """hysteresis == 1 collapses selection to tier_for, any history."""
    table, sinrs = tc
    if table.hysteresis != 1.0:
        table = RateTable(
            thresholds=table.thresholds, rates=table.rates, hysteresis=1.0
        )
    raw = table.tier_for(sinrs)
    for prev_tier in (-1, 0, table.n_tiers - 1):
        prev = np.full(sinrs.size, prev_tier, dtype=np.int64)
        assert np.array_equal(table.select(sinrs, prev), raw)
