"""CC1000 radio and Mica2 experiment constants.

The Mica2's CC1000 runs at 38.4 kBaud with Manchester encoding, i.e. an
effective 19.2 kbit/s — one byte takes ~417 µs on air, so the paper's
SCREAM sizes (5-30 bytes) correspond to bursts of ~2-12.5 ms.  RSSI is an
analog output sampled through the mote ADC; the sampling cadence (plus the
software loop) is what limits how short a burst remains detectable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class CC1000:
    """Timing constants of the CC1000/Mica2 as used by the SCREAM code.

    Attributes
    ----------
    effective_bitrate_bps:
        Payload bitrate (38.4 kBaud Manchester = 19.2 kbit/s).
    rssi_sample_period_s:
        Period between successive RSSI samples available to the software
        (ADC conversion + read loop).
    detect_processing_s:
        Latency between a relay's detecting sample and the start of its own
        re-scream (software turn-around).
    moving_average_window:
        Samples in the monitor's RSSI moving average.  The paper notes the
        *logged* average was only recorded every 3 samples due to UART
        limits; the detector's window is the same order.
    """

    effective_bitrate_bps: float = 19_200.0
    rssi_sample_period_s: float = 880e-6
    detect_processing_s: float = 500e-6
    moving_average_window: int = 7

    def __post_init__(self) -> None:
        check_positive("effective_bitrate_bps", self.effective_bitrate_bps)
        check_positive("rssi_sample_period_s", self.rssi_sample_period_s)
        check_non_negative("detect_processing_s", self.detect_processing_s)
        if self.moving_average_window < 1:
            raise ValueError("moving_average_window must be >= 1")

    def burst_duration_s(self, smbytes: int) -> float:
        """On-air duration of a SCREAM of ``smbytes`` bytes."""
        if smbytes < 1:
            raise ValueError(f"smbytes must be >= 1, got {smbytes}")
        return 8.0 * smbytes / self.effective_bitrate_bps


@dataclass(frozen=True)
class MoteLinkBudget:
    """Received power levels (dBm) between the experiment's mote roles.

    The paper's geometry: Monitor and the six Relays form a clique;
    the Initiator sits two (sensitivity-graph) hops from the Monitor — the
    relays hear it well, the monitor does not.
    """

    initiator_at_relay_dbm: float = -55.0
    initiator_at_monitor_dbm: float = -85.0
    relay_at_relay_dbm: float = -55.0
    relay_at_monitor_dbm: float = -55.0
    noise_floor_dbm: float = -95.0
    noise_sigma_db: float = 2.0
    threshold_dbm: float = -60.0  # the paper's preconfigured threshold

    def __post_init__(self) -> None:
        check_non_negative("noise_sigma_db", self.noise_sigma_db)
        if self.initiator_at_monitor_dbm >= self.threshold_dbm:
            raise ValueError(
                "the Initiator must not be directly detectable by the "
                "Monitor (it is placed two hops away)"
            )
