"""SINR computation: interference accounting, half-duplex, carrier sense."""

import numpy as np
import pytest

from repro.phy.gain import received_power_matrix
from repro.phy.propagation import LogDistancePathLoss
from repro.phy.sinr import carrier_sense_power, min_sinr_margin, sinr_for_links

NOISE = 1e-9


@pytest.fixture(scope="module")
def line_power():
    """Four nodes on a line, 50 m apart, 12 dBm each."""
    positions = np.array([[0.0, 0.0], [50.0, 0.0], [100.0, 0.0], [150.0, 0.0]])
    tx = np.full(4, 10 ** (12.0 / 10.0))
    return received_power_matrix(positions, tx, LogDistancePathLoss(alpha=3.0))


def test_single_link_is_snr(line_power):
    sinr = sinr_for_links(line_power, np.array([0]), np.array([1]), NOISE)
    assert sinr[0] == pytest.approx(line_power[0, 1] / NOISE)


def test_interference_reduces_sinr(line_power):
    alone = sinr_for_links(line_power, np.array([0]), np.array([1]), NOISE)[0]
    both = sinr_for_links(
        line_power, np.array([0, 3]), np.array([1, 2]), NOISE
    )
    assert both[0] < alone
    # Interference term for link 0 is exactly P[3, 1].
    expected = line_power[0, 1] / (NOISE + line_power[3, 1])
    assert both[0] == pytest.approx(expected)


def test_empty_link_set(line_power):
    assert sinr_for_links(line_power, np.array([]), np.array([]), NOISE).size == 0


def test_half_duplex_receiver_gets_zero(line_power):
    # Node 1 transmits and is also the receiver of link 0 -> 1.
    sinr = sinr_for_links(
        line_power, np.array([0, 1]), np.array([1, 2]), NOISE
    )
    assert sinr[0] == 0.0
    assert sinr[1] > 0.0


def test_mismatched_arrays_rejected(line_power):
    with pytest.raises(ValueError):
        sinr_for_links(line_power, np.array([0, 1]), np.array([1]), NOISE)


def test_nonpositive_noise_rejected(line_power):
    with pytest.raises(ValueError):
        sinr_for_links(line_power, np.array([0]), np.array([1]), 0.0)


def test_min_sinr_margin_empty_is_infinite(line_power):
    assert min_sinr_margin(line_power, np.array([]), np.array([]), NOISE, 10.0) == float(
        "inf"
    )


def test_min_sinr_margin_scales_with_beta(line_power):
    m10 = min_sinr_margin(line_power, np.array([0]), np.array([1]), NOISE, 10.0)
    m20 = min_sinr_margin(line_power, np.array([0]), np.array([1]), NOISE, 20.0)
    assert m10 == pytest.approx(2 * m20)


def test_carrier_sense_power_adds(line_power):
    one = carrier_sense_power(line_power, np.array([0]), 4)
    two = carrier_sense_power(line_power, np.array([0, 3]), 4)
    assert two[1] == pytest.approx(one[1] + line_power[3, 1])


def test_carrier_sense_power_empty(line_power):
    assert (carrier_sense_power(line_power, np.array([]), 4) == 0).all()


def test_min_sinr_margin_honors_budget(line_power):
    """The budgeted margin sees the same inflated noise the budgeted
    feasibility path sees (the E9 guard-budget passthrough)."""
    senders, receivers = np.array([0]), np.array([1])
    free = min_sinr_margin(line_power, senders, receivers, NOISE, 10.0)
    budget = np.full(4, line_power[0, 1])  # drown the link in guard noise
    budgeted = min_sinr_margin(
        line_power, senders, receivers, NOISE, 10.0, budget_mw=budget
    )
    assert budgeted < free
    expected = sinr_for_links(
        line_power, senders, receivers, NOISE, budget_mw=budget
    )
    ack = sinr_for_links(line_power, receivers, senders, NOISE, budget_mw=budget)
    assert budgeted == pytest.approx(min(expected[0], ack[0]) / 10.0)


def test_rates_for_links_stateless_lookup(line_power):
    from repro.phy.radio import RateTable
    from repro.phy.sinr import rates_for_links

    senders, receivers = np.array([0, 3]), np.array([1, 2])
    sinr = np.minimum(
        sinr_for_links(line_power, senders, receivers, NOISE),
        sinr_for_links(line_power, receivers, senders, NOISE),
    )
    beta = float(sinr.max()) / 2.0
    table = RateTable.geometric(beta)
    rates = rates_for_links(line_power, senders, receivers, NOISE, table)
    np.testing.assert_array_equal(rates, table.rate_for(sinr))
    # Below-base links report 0, not the base rate.
    assert (rates[sinr < beta] == 0).all()
