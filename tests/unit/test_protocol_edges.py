"""Protocol engine edge cases."""

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.fast_runtime import FastRuntime
from repro.core.fdd import run_fdd
from repro.core.pdd import run_pdd
from repro.scheduling.links import LinkSet
from repro.scheduling.metrics import verify_schedule


@pytest.fixture()
def config():
    return ProtocolConfig(k=5, id_bits=5)


def test_all_zero_demand_terminates_immediately(grid16, config):
    links = LinkSet(
        heads=np.array([1, 4]),
        tails=np.array([0, 0]),
        demand=np.array([0, 0]),
        ids=np.array([1, 4]),
    )
    result = run_fdd(links, FastRuntime.for_network(grid16, config), config, rng=1)
    assert result.terminated
    assert result.schedule_length == 0
    # Termination still costs one election + one scream on the air.
    assert result.tally.elections == 1
    assert result.tally.scream_slots > 0


def test_single_link_schedule(grid16, config):
    links = LinkSet(
        heads=np.array([1]),
        tails=np.array([0]),
        demand=np.array([4]),
        ids=np.array([1]),
    )
    result = run_fdd(links, FastRuntime.for_network(grid16, config), config, rng=2)
    assert result.schedule_length == 4
    assert all(slot.links == [0] for slot in result.schedule.slots)
    assert verify_schedule(result.schedule, grid16.model).ok


def test_mismatched_ids_rejected(grid16, config):
    links = LinkSet(
        heads=np.array([1, 4]),
        tails=np.array([0, 0]),
        demand=np.array([1, 1]),
        ids=np.array([100, 101]),  # disagree with runtime node ids
    )
    with pytest.raises(ValueError, match="disagree"):
        run_fdd(links, FastRuntime.for_network(grid16, config), config, rng=3)


def test_pdd_zero_probability_rejected(grid16, grid16_links, config):
    with pytest.raises(ValueError, match="p_active"):
        run_pdd(
            grid16_links,
            FastRuntime.for_network(grid16, config.with_p(0.0)),
            config.with_p(0.0),
            rng=4,
        )


def test_max_rounds_cap_reports_unterminated(grid16, grid16_links):
    config = ProtocolConfig(k=5, id_bits=5, max_rounds=2)
    result = run_fdd(
        grid16_links, FastRuntime.for_network(grid16, config), config, rng=5
    )
    assert not result.terminated
    assert result.rounds == 2
    report = verify_schedule(result.schedule, grid16.model)
    assert not report.demand_satisfied  # truncated run, and detectably so


@pytest.mark.parametrize("idle_seal", [False, True])
def test_pdd_valid_under_both_seal_readings(grid16, grid16_links, idle_seal):
    from dataclasses import replace

    config = ProtocolConfig(
        k=5, id_bits=5, p_active=0.4, seal_on_idle_step=idle_seal
    )
    result = run_pdd(
        grid16_links, FastRuntime.for_network(grid16, config), config, rng=6
    )
    assert result.terminated
    assert verify_schedule(result.schedule, grid16.model).ok


def test_fdd_seal_readings_produce_identical_schedules(grid16, grid16_links):
    """FDD drains exactly one dormant per step, so both sealing readings
    coincide by construction."""
    from dataclasses import replace

    base = ProtocolConfig(k=5, id_bits=5, seal_on_idle_step=False)
    alt = replace(base, seal_on_idle_step=True)
    a = run_fdd(grid16_links, FastRuntime.for_network(grid16, base), base, rng=7)
    b = run_fdd(grid16_links, FastRuntime.for_network(grid16, alt), alt, rng=7)
    assert a.schedule_length == b.schedule_length
    for sa, sb in zip(a.schedule.slots, b.schedule.slots):
        assert sorted(sa.links) == sorted(sb.links)
