"""Unit tests for the sparse near-field power stack (repro.phy.sparse).

The contract under test: a :class:`SparsePowerMatrix` is *readable exactly
like* the dense received-power matrix for every access pattern the SINR and
feasibility kernels use, stores precisely the pairs within the cutoff (plus
the diagonal), and at ``cutoff=inf`` is value-identical to the dense builder.
The CSR communication graph and forest builders must reproduce their dense
twins, and the float32 storage opt-in must not flip a single feasibility
verdict on the reference grid.
"""

import numpy as np
import pytest

from repro.phy.gain import distance_matrix, gain_matrix, received_power_matrix
from repro.phy.propagation import LogDistancePathLoss
from repro.phy.radio import RadioConfig
from repro.phy.sparse import (
    SparsePowerMatrix,
    build_sparse_power,
    far_field_floor_mw,
    interference_radius_m,
    sparse_gain_model,
)
from repro.routing import build_routing_forest, planned_gateways
from repro.routing.forest import build_routing_forest_csr
from repro.scheduling.greedy_physical import greedy_physical
from repro.scheduling.links import forest_link_set
from repro.topology.commgraph import (
    communication_adjacency,
    communication_csr,
    csr_neighbors_of,
    is_connected_csr,
)
from repro.topology.network import grid_network
from repro.util.rng import spawn

RADIO = RadioConfig()
MODEL = LogDistancePathLoss(alpha=RADIO.alpha)


@pytest.fixture(scope="module")
def deployment():
    rng = np.random.default_rng(42)
    positions = rng.uniform(0, 260.0, size=(40, 2))
    tx = rng.uniform(5.0, 25.0, size=40)
    return positions, tx


@pytest.fixture(scope="module")
def cutoff(deployment):
    positions, tx = deployment
    return interference_radius_m(tx, MODEL, RADIO)


@pytest.fixture(scope="module")
def sparse_and_dense(deployment, cutoff):
    positions, tx = deployment
    sparse = build_sparse_power(positions, tx, MODEL, cutoff)
    dense = received_power_matrix(positions, tx, MODEL)
    return sparse, dense


class TestSparsePowerMatrix:
    def test_stores_exactly_the_near_field_plus_diagonal(
        self, deployment, cutoff, sparse_and_dense
    ):
        positions, _ = deployment
        sparse, dense = sparse_and_dense
        near = distance_matrix(positions) <= cutoff
        np.fill_diagonal(near, True)
        expected = np.where(near, dense, 0.0)
        np.testing.assert_array_equal(sparse.toarray(), expected)
        assert sparse.nnz == int(near.sum())
        assert not sparse.value_dense

    def test_every_kernel_access_pattern_matches_dense(self, sparse_and_dense):
        sparse, _ = sparse_and_dense
        ref = sparse.toarray()
        rng = np.random.default_rng(3)
        rows = rng.integers(0, sparse.n, size=12)
        cols = rng.integers(0, sparse.n, size=12)
        # Scalar.
        assert sparse[int(rows[0]), int(cols[0])] == ref[rows[0], cols[0]]
        assert isinstance(sparse[int(rows[0]), int(cols[0])], float)
        # Pairwise gather.
        np.testing.assert_array_equal(sparse[rows, cols], ref[rows, cols])
        # ix_ mesh.
        np.testing.assert_array_equal(
            sparse[np.ix_(rows, cols)], ref[np.ix_(rows, cols)]
        )
        # Densified rows (carrier-sense path).
        np.testing.assert_array_equal(sparse[rows, :], ref[rows, :])
        np.testing.assert_array_equal(sparse[int(rows[0]), :], ref[rows[0], :])

    def test_column_sums_matches_dense_row_slice_sum(self, sparse_and_dense):
        sparse, _ = sparse_and_dense
        ref = sparse.toarray()
        rng = np.random.default_rng(5)
        # Repeated rows must contribute repeatedly.
        rows = rng.integers(0, sparse.n, size=9)
        rows[3] = rows[0]
        np.testing.assert_allclose(
            sparse.column_sums(rows), ref[rows, :].sum(axis=0), rtol=1e-13
        )
        assert sparse.column_sums(np.empty(0, dtype=np.intp)).sum() == 0.0

    def test_neighbors_are_the_stored_columns(self, sparse_and_dense):
        sparse, _ = sparse_and_dense
        ref = sparse.toarray()
        for node in (0, 7, sparse.n - 1):
            expected = np.flatnonzero(ref[node] > 0)
            got = sparse.neighbors(node)
            np.testing.assert_array_equal(np.sort(got), np.sort(expected))
            assert node in got  # diagonal always stored

    def test_unsupported_indexing_fails_loudly(self, sparse_and_dense):
        sparse, _ = sparse_and_dense
        with pytest.raises(TypeError, match="pair indexing"):
            sparse[3]
        with pytest.raises(TypeError, match="full column slices"):
            sparse[3, 1:5]
        with pytest.raises(TypeError, match="row slices"):
            sparse[:, 3]

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            SparsePowerMatrix(4, np.array([3, 1]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError, match="out of range"):
            SparsePowerMatrix(2, np.array([5]), np.array([1.0]))
        with pytest.raises(ValueError, match="non-negative"):
            SparsePowerMatrix(2, np.array([1]), np.array([-1.0]))

    def test_cutoff_inf_is_value_identical_to_dense(self, deployment):
        positions, tx = deployment
        sparse = build_sparse_power(positions, tx, MODEL, float("inf"))
        dense = received_power_matrix(positions, tx, MODEL)
        assert sparse.value_dense
        np.testing.assert_array_equal(sparse.toarray(), dense)

    def test_builder_rejects_pair_gain_models(self, deployment):
        positions, tx = deployment

        class Frozen:
            def gain(self, d):
                return np.ones_like(d)

            def pair_gain(self, d):
                return np.ones_like(d)

        with pytest.raises(ValueError, match="pair_gain"):
            build_sparse_power(positions, tx, Frozen(), 50.0)

    def test_builder_rejects_bad_cutoff(self, deployment):
        positions, tx = deployment
        with pytest.raises(ValueError, match="cutoff_m"):
            build_sparse_power(positions, tx, MODEL, 0.0)


class TestFarField:
    def test_cutoff_covers_the_strongest_transmitter(self, deployment):
        positions, tx = deployment
        radius = interference_radius_m(tx, MODEL, RADIO)
        # At the cutoff the strongest transmitter drops to the CS threshold;
        # just beyond it no transmitter is individually detectable.
        strongest = tx.max()
        at = strongest * float(MODEL.gain(np.array([radius]))[0])
        beyond = strongest * float(MODEL.gain(np.array([radius * 1.01]))[0])
        assert at >= RADIO.cs_threshold_mw * (1 - 1e-9)
        assert beyond < RADIO.cs_threshold_mw

    def test_floor_properties(self, deployment):
        positions, tx = deployment
        floor = far_field_floor_mw(len(tx), tx, MODEL, 160.0, alpha=RADIO.alpha)
        assert floor.shape == (len(tx),)
        assert np.all(floor > 0)
        # Farther cutoff -> smaller truncated tail.
        closer = far_field_floor_mw(len(tx), tx, MODEL, 80.0, alpha=RADIO.alpha)
        assert np.all(floor < closer)

    def test_floor_is_none_at_infinite_cutoff(self, deployment):
        positions, tx = deployment
        assert far_field_floor_mw(
            len(tx), tx, MODEL, float("inf"), alpha=RADIO.alpha
        ) is None
        sgm = sparse_gain_model(positions, tx, MODEL, RADIO, cutoff_m=float("inf"))
        assert sgm.floor_mw is None and sgm.power.value_dense

    def test_floor_requires_integrable_tail(self, deployment):
        positions, tx = deployment
        with pytest.raises(ValueError, match="alpha"):
            far_field_floor_mw(len(tx), tx, MODEL, 160.0, alpha=2.0)

    def test_gain_model_installs_floor_as_budget(self, deployment):
        positions, tx = deployment
        sgm = sparse_gain_model(positions, tx, MODEL, RADIO)
        oracle = sgm.interference_model(RADIO)
        np.testing.assert_array_equal(oracle.budget_mw, sgm.floor_mw)
        assert oracle.power is sgm.power
        none = sparse_gain_model(positions, tx, MODEL, RADIO, far_field="none")
        assert none.floor_mw is None


class TestCsrGraphAndForest:
    def test_csr_graph_matches_dense_at_infinite_cutoff(self, deployment):
        positions, tx = deployment
        sparse = build_sparse_power(positions, tx, MODEL, float("inf"))
        dense = received_power_matrix(positions, tx, MODEL)
        adj = communication_adjacency(dense, RADIO.noise_mw, RADIO.beta)
        indptr, indices = communication_csr(sparse, RADIO.noise_mw, RADIO.beta)
        for node in range(len(tx)):
            np.testing.assert_array_equal(
                csr_neighbors_of(indptr, indices, [node]),
                np.flatnonzero(adj[node]),
            )

    def test_budgeted_csr_graph_matches_budgeted_dense_predicate(self, deployment):
        """With the far-field floor, an edge needs both directions to clear
        ``beta`` against the *floored* noise at the receiving node."""
        positions, tx = deployment
        sgm = sparse_gain_model(positions, tx, MODEL, RADIO)
        indptr, indices = communication_csr(
            sgm.power, RADIO.noise_mw, RADIO.beta, budget_mw=sgm.floor_mw
        )
        p = sgm.power.toarray()
        need = RADIO.beta * (RADIO.noise_mw + sgm.floor_mw)
        fwd = p >= need[None, :]  # i -> j decodes at j's floored noise
        ok = fwd & fwd.T
        np.fill_diagonal(ok, False)
        for node in range(len(tx)):
            np.testing.assert_array_equal(
                csr_neighbors_of(indptr, indices, [node]),
                np.flatnonzero(ok[node]),
            )

    def test_csr_forest_reproduces_dense_forest(self):
        """Same graph, same seed => identical forest (RNG-stream identity)."""
        network = grid_network(8, 8, density_per_km2=1000.0)
        gateways = planned_gateways(8, 8, 4)
        adj = network.comm_adj
        sparse = build_sparse_power(
            network.positions, network.tx_power_mw, network.propagation, float("inf")
        )
        indptr, indices = communication_csr(sparse, RADIO.noise_mw, RADIO.beta)
        assert is_connected_csr(indptr, indices)
        dense_forest = build_routing_forest(adj, gateways, rng=spawn(9, "csr-f"))
        csr_forest = build_routing_forest_csr(
            indptr, indices, gateways, rng=spawn(9, "csr-f")
        )
        np.testing.assert_array_equal(csr_forest.parent, dense_forest.parent)
        np.testing.assert_array_equal(csr_forest.depth, dense_forest.depth)


class TestFloat32Verdicts:
    def test_float32_storage_flips_no_verdict_on_the_reference_grid(self):
        """Satellite: ``dtype=np.float32`` halves the dense footprint; on the
        paper's 8x8 grid every downstream *decision* — communication edges
        and the full greedy schedule — must be identical to float64."""
        network = grid_network(8, 8, density_per_km2=1000.0)
        p64 = network.power
        p32 = received_power_matrix(
            network.positions, network.tx_power_mw, network.propagation,
            dtype=np.float32,
        )
        assert p32.dtype == np.float32
        np.testing.assert_allclose(p32, p64, rtol=1e-6)
        assert gain_matrix(
            network.positions, network.propagation, dtype=np.float32
        ).dtype == np.float32

        adj64 = communication_adjacency(p64, RADIO.noise_mw, RADIO.beta)
        adj32 = communication_adjacency(p32, RADIO.noise_mw, RADIO.beta)
        np.testing.assert_array_equal(adj32, adj64)

        gateways = planned_gateways(8, 8, 4)
        forest = build_routing_forest(adj64, gateways, rng=spawn(3, "f32"))
        demand = np.ones(network.n_nodes, dtype=np.int64)
        demand[gateways] = 0
        links = forest_link_set(forest, demand)
        from repro.phy.interference import PhysicalInterferenceModel

        s64 = greedy_physical(links, network.model, "id")
        s32 = greedy_physical(
            links, PhysicalInterferenceModel(p32, RADIO), "id"
        )
        assert len(s64.slots) == len(s32.slots)
        for a, b in zip(s64.slots, s32.slots):
            assert a.links == b.links
