"""Grid-bucket spatial index over node positions.

The sparse interference stack needs one geometric primitive: "which nodes
sit within radius ``r`` of here?" — asked once per node when the near-field
entries of a :class:`~repro.phy.sparse.SparsePowerMatrix` are harvested, and
again by experiments that window deployments.  A uniform grid of square
cells answers it in O(occupants of the 3x3-ish cell stencil) with nothing
but lexsort and searchsorted: positions are bucketed once into cells of
``cell_size`` meters (keyed to the interference radius, so one stencil ring
covers the query radius), and every query inspects only the buckets the
query disc can touch.

Tree indexes (k-d, R-trees) win on wildly non-uniform data; mesh
deployments are density-bounded by construction (the paper deploys by
nodes/km²), which is exactly the regime where the grid's O(1) bucket math
beats tree pointer-chasing — the same structure Halldórsson & Mitra's
length-class analysis (arXiv:1104.5200) imposes on instances before
reasoning about them.

Everything is vectorized over numpy arrays; the property suite pins every
query against brute-force :func:`~repro.phy.gain.distance_matrix` answers,
including invariance of the results under cell-size changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.util.validation import check_positive


@dataclass(frozen=True)
class GridIndex:
    """Static spatial index: ``(n, 2)`` positions bucketed into square cells.

    Attributes
    ----------
    positions:
        ``(n, 2)`` float array of planar coordinates (meters).
    cell_size:
        Cell edge length in meters.  Pick the dominant query radius (the
        interference cutoff): then a radius-``r`` query touches at most a
        3x3 stencil and candidate lists stay within a small constant of
        the true answer.
    """

    positions: np.ndarray
    cell_size: float
    _cells: np.ndarray = field(init=False, repr=False)
    _order: np.ndarray = field(init=False, repr=False)
    _starts: np.ndarray = field(init=False, repr=False)
    _cell_keys: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        pos = np.asarray(self.positions, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ValueError(f"positions must be (n, 2), got {pos.shape}")
        check_positive("cell_size", self.cell_size)
        object.__setattr__(self, "positions", pos)
        cells = np.floor(pos / self.cell_size).astype(np.int64)
        # Bucketing: sort nodes by (cell_x, cell_y); each occupied cell is
        # one contiguous run of the sorted order.  Cell coordinates are
        # folded into a single sortable key via an offset-free pairing that
        # is stable for any deployment extent (int64 pair -> structured
        # lexsort, then run-length boundaries).
        order = np.lexsort((cells[:, 1], cells[:, 0]))
        sorted_cells = cells[order]
        if order.size:
            new_run = np.empty(order.size, dtype=bool)
            new_run[0] = True
            new_run[1:] = np.any(sorted_cells[1:] != sorted_cells[:-1], axis=1)
            starts = np.flatnonzero(new_run)
            keys = sorted_cells[starts]
        else:
            starts = np.empty(0, dtype=np.intp)
            keys = np.empty((0, 2), dtype=np.int64)
        object.__setattr__(self, "_cells", cells)
        object.__setattr__(self, "_order", order)
        object.__setattr__(self, "_starts", starts)
        object.__setattr__(self, "_cell_keys", keys)

    @property
    def n_nodes(self) -> int:
        return self.positions.shape[0]

    @cached_property
    def _bucket_of(self) -> dict[tuple[int, int], tuple[int, int]]:
        """Map (cell_x, cell_y) -> (start, stop) run into ``_order``."""
        stops = np.append(self._starts[1:], self._order.size)
        return {
            (int(cx), int(cy)): (int(a), int(b))
            for (cx, cy), a, b in zip(self._cell_keys, self._starts, stops)
        }

    def _stencil_members(self, cell_x: int, cell_y: int, reach: int) -> np.ndarray:
        """Node indices in the ``(2*reach+1)²`` stencil around a cell."""
        bucket_of = self._bucket_of
        runs = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                run = bucket_of.get((cell_x + dx, cell_y + dy))
                if run is not None:
                    runs.append(self._order[run[0] : run[1]])
        if not runs:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(runs)

    def query_radius(self, point: np.ndarray, radius: float) -> np.ndarray:
        """Indices of all nodes within ``radius`` of ``point``, ascending.

        Inclusive boundary (``distance <= radius``), matching the
        brute-force ``distance_matrix(...) <= radius`` predicate the
        property suite compares against.
        """
        check_positive("radius", radius)
        p = np.asarray(point, dtype=float).reshape(2)
        reach = int(np.ceil(radius / self.cell_size))
        cx, cy = np.floor(p / self.cell_size).astype(np.int64)
        cand = self._stencil_members(int(cx), int(cy), reach)
        if cand.size == 0:
            return cand
        deltas = self.positions[cand] - p
        hit = cand[np.einsum("ij,ij->i", deltas, deltas) <= radius * radius]
        return np.sort(hit)

    def k_nearest(self, point: np.ndarray, k: int) -> np.ndarray:
        """The ``k`` nodes nearest to ``point``, nearest first.

        Ties break by node index (ascending), so the answer is a pure
        function of the deployment — no dependence on bucket layout, which
        the cell-size-invariance property test relies on.  Expands the
        stencil ring by ring until the k-th candidate provably cannot be
        beaten by any node outside the searched square.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        k = min(k, self.n_nodes)
        p = np.asarray(point, dtype=float).reshape(2)
        cx, cy = (int(c) for c in np.floor(p / self.cell_size).astype(np.int64))
        reach = 1
        while True:
            cand = self._stencil_members(cx, cy, reach)
            if cand.size >= k:
                deltas = self.positions[cand] - p
                d2 = np.einsum("ij,ij->i", deltas, deltas)
                # A stencil of ``reach`` rings covers every point within
                # ``(reach - 1) * cell_size`` of the query cell, whatever
                # the query's offset inside it.  Safe radius in squared
                # meters:
                safe = (reach - 1) * self.cell_size
                sel = np.lexsort((cand, d2))[:k]
                if safe > 0 and float(np.sqrt(d2[sel[-1]])) <= safe:
                    return cand[sel]
            if cand.size >= self.n_nodes:
                deltas = self.positions[cand] - p
                d2 = np.einsum("ij,ij->i", deltas, deltas)
                return cand[np.lexsort((cand, d2))[:k]]
            reach += 1

    def pairs_within(self, radius: float) -> tuple[np.ndarray, np.ndarray]:
        """All ordered pairs ``(i, j)``, ``i != j``, with ``d(i, j) <= radius``.

        The harvest primitive of the sparse gain builder: returned arrays
        are lexsorted by ``(i, j)`` and symmetric as a set (``(i, j)``
        present iff ``(j, i)`` is).  Built cell-block by cell-block — for
        every occupied cell, candidates come from its stencil only — so
        the cost is O(n · occupancy · stencil²) instead of O(n²).
        """
        check_positive("radius", radius)
        reach = int(np.ceil(radius / self.cell_size))
        r2 = radius * radius
        pos = self.positions
        stops = np.append(self._starts[1:], self._order.size)
        heads: list[np.ndarray] = []
        tails: list[np.ndarray] = []
        for (cx, cy), a, b in zip(self._cell_keys, self._starts, stops):
            left = self._order[a:b]
            cand = self._stencil_members(int(cx), int(cy), reach)
            # Cross join of the cell's occupants against the stencil's.
            li = np.repeat(left, cand.size)
            rj = np.tile(cand, left.size)
            deltas = pos[li] - pos[rj]
            near = (np.einsum("ij,ij->i", deltas, deltas) <= r2) & (li != rj)
            heads.append(li[near])
            tails.append(rj[near])
        if not heads:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty
        i = np.concatenate(heads)
        j = np.concatenate(tails)
        order = np.lexsort((j, i))
        return i[order], j[order]
