"""Theorem 4 at full scale: FDD == GreedyPhysical on the paper's scenarios."""

import pytest

from repro.core.fdd import fdd_on_network
from repro.experiments.common import grid_scenario, uniform_scenario
from repro.scheduling import greedy_physical, verify_schedule


@pytest.mark.parametrize("density", [1000.0, 5000.0, 25000.0])
def test_fdd_matches_greedy_on_grid(density, paper_config):
    scenario = grid_scenario(density, rep=0, seed=99)
    central = greedy_physical(scenario.links, scenario.network.model)
    fdd = fdd_on_network(scenario.network, scenario.links, paper_config, rng=1)
    assert fdd.terminated
    assert fdd.schedule_length == central.length
    for a, b in zip(fdd.schedule.slots, central.slots):
        assert sorted(a.links) == sorted(b.links)


@pytest.mark.parametrize("density", [1000.0, 10000.0])
def test_fdd_matches_greedy_on_uniform(density, paper_config):
    scenario = uniform_scenario(density, rep=0, seed=99)
    central = greedy_physical(scenario.links, scenario.network.model)
    fdd = fdd_on_network(scenario.network, scenario.links, paper_config, rng=2)
    assert fdd.schedule_length == central.length
    for a, b in zip(fdd.schedule.slots, central.slots):
        assert sorted(a.links) == sorted(b.links)


def test_fdd_schedule_passes_independent_verification(paper_config):
    scenario = grid_scenario(2500.0, rep=1, seed=7)
    fdd = fdd_on_network(scenario.network, scenario.links, paper_config, rng=3)
    report = verify_schedule(fdd.schedule, scenario.network.model)
    assert report.ok


def test_afdd_matches_fdd_schedule_with_fewer_steps(paper_config):
    """The AFDD extension preserves the schedule and cuts election cost."""
    from repro.core.afdd import afdd_on_network

    scenario = grid_scenario(2500.0, rep=0, seed=11)
    fdd = fdd_on_network(scenario.network, scenario.links, paper_config, rng=4)
    afdd = afdd_on_network(scenario.network, scenario.links, paper_config, rng=4)
    assert afdd.schedule_length == fdd.schedule_length
    for a, b in zip(afdd.schedule.slots, fdd.schedule.slots):
        assert sorted(a.links) == sorted(b.links)
    assert afdd.tally.scream_slots < fdd.tally.scream_slots


def test_afdd_tally_structure(paper_config):
    """AFDD books one full election per slot plus cheap refreshes."""
    from repro.core.afdd import AFDD_REFRESH_SCREAMS, afdd_on_network

    scenario = grid_scenario(5000.0, rep=0, seed=13)
    afdd = afdd_on_network(scenario.network, scenario.links, paper_config, rng=8)
    fdd = fdd_on_network(scenario.network, scenario.links, paper_config, rng=8)
    # Same number of selection events, far fewer full elections.
    assert afdd.tally.elections < fdd.tally.elections
    assert afdd.tally.steps == fdd.tally.steps
    assert afdd.tally.rounds == fdd.tally.rounds
    # Scream volume sits strictly between "refresh only" and FDD's.
    assert afdd.tally.scream_slots < fdd.tally.scream_slots
    min_slots = paper_config.k * AFDD_REFRESH_SCREAMS * afdd.tally.steps
    assert afdd.tally.scream_slots > min_slots
