"""Pairwise channel-gain and received-power matrices.

These matrices are the central physical object in the reproduction: entry
``P[i, j]`` of the received-power matrix is the power (mW) that node ``j``
collects when node ``i`` transmits at its configured power.  Every SINR
computation, carrier-sense test, and graph construction reads from them.

Two scaling controls, both opt-in and default-neutral:

* ``dtype=np.float32`` halves the dense footprint for mid-size sweeps that
  don't need the sparse path (verdict-identity on the reference grid is
  pinned by the unit suite — float32 mantissas dwarf the SINR margins
  there, but it is an approximation and stays opt-in);
* distance-law matrices are assembled in row blocks, so the transient
  ``(n, n, 2)`` delta tensor (3× the matrix itself) never materializes —
  peak memory is the output plus one thin block.
"""

from __future__ import annotations

import numpy as np

from repro.phy.propagation import PropagationModel

#: Rows per block when assembling large matrices; bounds the transient
#: delta tensor to ``_BLOCK_ROWS * n * 2`` floats regardless of ``n``.
_BLOCK_ROWS = 2048


def distance_matrix(
    positions: np.ndarray, dtype: np.dtype | type = np.float64
) -> np.ndarray:
    """Euclidean distance matrix from an ``(n, 2)`` position array.

    Distances are always computed in float64 and rounded once into
    ``dtype`` on store, so a float32 matrix is the rounding of the exact
    one, not the result of accumulating error in float32 arithmetic.
    """
    pos = np.asarray(positions, dtype=float)
    if pos.ndim != 2 or pos.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {pos.shape}")
    n = pos.shape[0]
    out = np.empty((n, n), dtype=dtype)
    for lo in range(0, n, _BLOCK_ROWS):
        hi = min(lo + _BLOCK_ROWS, n)
        deltas = pos[lo:hi, None, :] - pos[None, :, :]
        out[lo:hi] = np.sqrt((deltas**2).sum(axis=2))
    return out


def gain_matrix(
    positions: np.ndarray,
    model: PropagationModel,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Channel power-gain matrix ``G[i, j]`` for all node pairs.

    Models carrying per-pair state (frozen shadowing, replayed archives)
    expose ``pair_gain`` and are queried through it; pure distance-law
    models are evaluated on the distance matrix.  The diagonal (self-gain,
    zero distance) clamps to the reference gain and is never used for
    communication.
    """
    pos = np.asarray(positions, dtype=float)
    if pos.ndim != 2 or pos.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {pos.shape}")
    pair_gain = getattr(model, "pair_gain", None)
    if pair_gain is not None:
        # Per-pair state is identified by the full index grid; evaluate
        # dense and round once into the requested storage dtype.
        return np.asarray(pair_gain(distance_matrix(pos)), dtype=dtype)
    n = pos.shape[0]
    out = np.empty((n, n), dtype=dtype)
    for lo in range(0, n, _BLOCK_ROWS):
        hi = min(lo + _BLOCK_ROWS, n)
        deltas = pos[lo:hi, None, :] - pos[None, :, :]
        out[lo:hi] = model.gain(np.sqrt((deltas**2).sum(axis=2)))
    return out


def received_power_matrix(
    positions: np.ndarray,
    tx_power_mw: np.ndarray,
    model: PropagationModel,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Received-power matrix ``P[i, j] = tx_power[i] * gain(i, j)`` in mW."""
    tx = np.asarray(tx_power_mw, dtype=float)
    pos = np.asarray(positions, dtype=float)
    if tx.ndim != 1 or tx.shape[0] != pos.shape[0]:
        raise ValueError(
            f"tx_power_mw must have one entry per node: got {tx.shape} powers "
            f"for {pos.shape[0]} nodes"
        )
    if np.any(tx <= 0):
        raise ValueError("transmit powers must be strictly positive")
    out = gain_matrix(pos, model, dtype=dtype)
    out *= tx[:, None]  # in place: gain_matrix's return is ours to reuse
    return out
