"""Node placement for the paper's deployment scenarios.

* :func:`grid_positions` — the *planned* scenario: a square lattice filling
  the region (Section IV-B.1 and the "Grid" experiments of Section VI).
* :func:`uniform_positions` — the *unplanned* scenario: uniform random
  placement (Section IV-B.2 and the "Uniform Random Placement" experiments).
* :func:`line_positions` — degenerate line networks, used by the
  impossibility construction of Theorem 1 (hop diameter Θ(n)).
"""

from __future__ import annotations

import numpy as np

from repro.topology.regions import SquareRegion
from repro.util.validation import check_integer_in_range


def grid_positions(rows: int, cols: int, region: SquareRegion) -> np.ndarray:
    """Positions of a ``rows x cols`` lattice spanning ``region``.

    Nodes sit at the lattice points of a square grid whose step is chosen so
    the outermost nodes lie on the region boundary; for an 8x8 grid in a
    square of side L the grid step is ``L / 7``.

    Returns an ``(rows * cols, 2)`` array in row-major node order.
    """
    check_integer_in_range("rows", rows, minimum=1)
    check_integer_in_range("cols", cols, minimum=1)
    xs = np.linspace(0.0, region.side, cols) if cols > 1 else np.array([region.side / 2])
    ys = np.linspace(0.0, region.side, rows) if rows > 1 else np.array([region.side / 2])
    xx, yy = np.meshgrid(xs, ys)
    return np.column_stack([xx.ravel(), yy.ravel()])


def grid_step(rows: int, cols: int, region: SquareRegion) -> float:
    """Lattice step of the grid produced by :func:`grid_positions`."""
    divisions = max(rows - 1, cols - 1, 1)
    return region.side / divisions


def uniform_positions(
    n: int, region: SquareRegion, rng: np.random.Generator
) -> np.ndarray:
    """``n`` positions uniform in the region (the unplanned scenario)."""
    check_integer_in_range("n", n, minimum=1)
    return rng.uniform(0.0, region.side, size=(n, 2))


def line_positions(n: int, spacing: float) -> np.ndarray:
    """``n`` nodes along the x axis with constant spacing.

    Produces the Θ(n) hop-diameter networks used in Theorem 1's
    impossibility construction ("nodes along a line").
    """
    check_integer_in_range("n", n, minimum=1)
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    xs = np.arange(n, dtype=float) * spacing
    return np.column_stack([xs, np.zeros(n)])
