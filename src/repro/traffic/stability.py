"""Throughput, delay, backlog-growth, and stability-region metrics.

A scheduler is *stable* at an arrival rate when queue backlogs stay bounded
— served work keeps up with offered work.  We detect instability from the
end-of-epoch backlog series: a least-squares slope that grows by more than a
tolerance fraction of the per-epoch arrivals (or a divergence early-stop in
the epoch loop) marks the operating point unstable.  Sweeping the arrival
rate upward and recording the last stable point before the first unstable
one locates the *knee* of the stability region — the per-scheduler capacity
the heavy-traffic evaluations compare (cf. arXiv:1106.1590, arXiv:1208.0902).

Operating points that sit *at* utilization ≈ 1 are genuinely marginal: their
verdict flips with the arrival sample path (the FDD λ=0.019 point on the 8×8
grid did exactly that).  :func:`stability_sweep` therefore re-evaluates
*borderline* points — those whose instability margin falls inside a
hysteresis band around the decision threshold — over several independent
arrival seeds and takes the majority verdict, so a knee is pinned by the
ensemble rather than by one lucky (or unlucky) sample path.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from repro.traffic.epoch import TrafficTrace

#: A backlog slope above this fraction of the mean per-epoch arrivals reads
#: as unbounded growth.  Chosen well above regression noise on stable runs
#: and well below the growth of even mildly overloaded ones.
STABILITY_TOLERANCE = 0.05

#: Magnitude gate on the slope test: a positive slope only counts as
#: instability once the final backlog itself reaches this fraction of one
#: epoch's arrivals.  A stable queue empties (almost) every epoch, so its
#: backlog series is small-integer noise whose fitted slope can spike; a
#: genuinely unstable queue accumulates epoch after epoch and clears the
#: gate within a few epochs.
BACKLOG_GATE_FRACTION = 0.5

#: Hysteresis band for borderline detection: a point whose instability
#: margin falls within ``[1/h, h]`` of the threshold is re-evaluated over
#: multiple arrival seeds before its verdict is trusted.
BORDERLINE_HYSTERESIS = 2.0

#: Independent arrival seeds used to resolve a borderline verdict by
#: majority (odd, so the vote cannot tie).
CONFIRM_SEEDS = 3


@dataclass(frozen=True)
class StabilityMetrics:
    """Steady-state metrics of one (scheduler, arrival-rate) operating point."""

    offered_rate: float  # packets per node per slot (the swept lambda)
    throughput: float  # delivered packets per slot
    mean_delay: float  # slots, over delivered packets (nan if none)
    p99_delay: float  # slots (nan if none delivered)
    backlog_final: int
    backlog_slope: float  # packets per epoch, least squares over the tail
    stable: bool
    overhead_slots: float = 0.0  # amortized protocol overhead, slots per epoch
    cache_hit_rate: float = 0.0  # epochs that avoided a full scheduler re-run
    confirm_seeds: int = 1  # arrival seeds behind the stable verdict
    # Multi-rate serving (repro.phy.radio.RateTable): realized packets per
    # play, served packet-hops over link-slot transmissions.  Exactly 1.0
    # on fixed-rate runs and under the degenerate table; above 1.0 when
    # links win higher MCS tiers.  Throughput/knee metrics need no separate
    # conversion — they were always counted in *delivered packets*, which
    # is precisely what rate-weighted serving inflates.
    mean_service_rate: float = 1.0
    # In-band control-plane accounting (repro.core.controlplane); both stay
    # at 0 on unpriced runs, so pre-pricing metrics compare unchanged.
    control_slots: float = 0.0  # amortized control share of the overhead, slots/epoch
    control_messages: float = 0.0  # control messages booked, per epoch
    # Flow-session SLA accounting (repro.traffic.admission); all three stay
    # at their defaults when the operating point carries no session layer.
    blocking_probability: float = float("nan")  # sessions rejected at arrival
    admitted_goodput: float = float("nan")  # delivered pkt/slot of admitted flows
    flow_p99_delay: float = float("nan")  # p99 over per-flow mean delays, slots

    def __str__(self) -> str:
        state = "stable" if self.stable else "UNSTABLE"
        if self.confirm_seeds > 1:
            state += f" ({self.confirm_seeds}-seed majority)"
        text = (
            f"lambda={self.offered_rate:g}: throughput={self.throughput:.3f} pkt/slot, "
            f"delay={self.mean_delay:.1f}/{self.p99_delay:.0f} slots (mean/p99), "
            f"backlog={self.backlog_final} ({self.backlog_slope:+.1f}/epoch, {state}), "
            f"overhead={self.overhead_slots:.1f} slots/epoch, "
            f"cache hits={self.cache_hit_rate:.0%}"
        )
        if self.mean_service_rate != 1.0:
            text += f", service rate={self.mean_service_rate:.2f} pkt/play"
        if self.control_messages > 0:
            text += (
                f", control={self.control_slots:.1f} slots/epoch "
                f"({self.control_messages:.0f} msgs/epoch)"
            )
        if not np.isnan(self.blocking_probability):
            text += (
                f", blocking={self.blocking_probability:.0%}, "
                f"goodput={self.admitted_goodput:.3f} pkt/slot, "
                f"flow p99 delay={self.flow_p99_delay:.0f} slots"
            )
        return text


def series_slope(series) -> float:
    """Least-squares slope of a 1-D series (0.0 for degenerate series).

    The single slope implementation behind :func:`backlog_slope` and the
    admission controllers' sliding windows.  Degenerate inputs (fewer than
    two points, or a constant series) return exactly 0.0 — and the fit
    runs through :class:`numpy.polynomial.Polynomial`, whose scaled-domain
    least squares stays well conditioned where a raw ``np.polyfit`` on a
    flat tail emits ``RankWarning`` noise.  ``.convert()`` maps the fit
    back from its scaled domain — and trims an exactly-zero linear term
    (e.g. a symmetric series like [3, 0, 3]), leaving a 1-coefficient
    constant: slope 0.
    """
    tail = np.asarray(series, dtype=float)
    if tail.size < 2 or np.all(tail == tail[0]):
        return 0.0
    x = np.arange(tail.size, dtype=float)
    coef = np.polynomial.Polynomial.fit(x, tail, 1).convert().coef
    return float(coef[1]) if coef.size > 1 else 0.0


def backlog_slope(trace: TrafficTrace, tail_fraction: float = 0.5) -> float:
    """Least-squares slope (packets/epoch) of the trailing backlog series."""
    series = trace.backlog_series()
    if series.size < 2:
        return 0.0
    start = int(series.size * (1.0 - tail_fraction))
    tail = series[start:]
    if tail.size < 2:
        tail = series
    return series_slope(tail)


def stability_margin(trace: TrafficTrace, tolerance: float = STABILITY_TOLERANCE) -> float:
    """How decisively the instability test resolves, as a ratio.

    Instability requires the backlog slope to clear its threshold *and* the
    final backlog to clear the magnitude gate; the margin is the smaller of
    the two ratios, so values ``> 1`` read unstable, ``< 1`` stable, and
    values near 1 are borderline.  Diverged traces return ``inf`` (the
    divergence guard only fires on decisive blow-ups); empty traces 0.
    """
    if trace.diverged:
        return float("inf")
    if trace.last_record is None:
        return 0.0
    arrivals_per_epoch = trace.arrivals_total / trace.n_epochs_run
    slope_ratio = backlog_slope(trace) / max(tolerance * arrivals_per_epoch, 1.0)
    gate_ratio = trace.last_record.backlog_end / max(
        BACKLOG_GATE_FRACTION * arrivals_per_epoch, 1.0
    )
    return min(slope_ratio, gate_ratio)


def is_stable(trace: TrafficTrace, tolerance: float = STABILITY_TOLERANCE) -> bool:
    """Bounded-backlog check.

    Unstable when the epoch loop's divergence guard fired, or when the
    trailing backlog slope exceeds ``tolerance`` of the per-epoch arrivals
    *and* the final backlog has actually accumulated past the
    :data:`BACKLOG_GATE_FRACTION` magnitude gate.
    """
    return stability_margin(trace, tolerance) <= 1.0


def is_borderline(
    trace: TrafficTrace,
    tolerance: float = STABILITY_TOLERANCE,
    hysteresis: float = BORDERLINE_HYSTERESIS,
) -> bool:
    """Is this verdict close enough to the threshold to flip with the
    arrival sample path?

    True when the instability margin falls inside ``[1/hysteresis,
    hysteresis]`` — the operating point sits near utilization 1, where a
    single seed's verdict is luck, not capacity.
    """
    if hysteresis < 1.0:
        raise ValueError("hysteresis must be >= 1")
    margin = stability_margin(trace, tolerance)
    return 1.0 / hysteresis <= margin <= hysteresis


def majority_stable(
    traces: Sequence[TrafficTrace], tolerance: float = STABILITY_TOLERANCE
) -> bool:
    """Majority :func:`is_stable` verdict over independent sample paths."""
    if not traces:
        raise ValueError("majority_stable needs at least one trace")
    votes = sum(1 for t in traces if is_stable(t, tolerance))
    return votes * 2 > len(traces)


def summarize_trace(
    trace: TrafficTrace,
    offered_rate: float,
    tolerance: float = STABILITY_TOLERANCE,
    session=None,
) -> StabilityMetrics:
    """Collapse a trace into one stability-region data point.

    ``session`` optionally attaches a
    :class:`~repro.traffic.flows.FlowWorkload` whose run produced the
    trace; its SLA accounting (blocking probability, admitted goodput,
    per-flow p99 delay) then populates the metrics' session fields.
    """
    slots = max(trace.total_slots, 1)
    epochs = max(trace.n_epochs_run, 1)
    delays = (
        trace.queues.delay_array() if trace.queues is not None else np.empty(0, np.int64)
    )
    mean_delay = float(delays.mean()) if delays.size else float("nan")
    p99_delay = float(np.percentile(delays, 99)) if delays.size else float("nan")
    if not delays.size and trace.queues is not None:
        # Streaming-deliveries mode (ObsConfig.stream_deliveries): the full
        # delivery log was never retained, but the O(1) stream carries the
        # same aggregates — mean exactly, p99 as a P² estimate.
        stream = getattr(trace.queues, "delivery_stream", None)
        if stream is not None and stream.count:
            mean_delay = stream.mean
            p99_delay = stream.quantile(0.99)
    throughput = trace.delivered_total / slots
    service_rate = 1.0
    if trace.queues is not None and trace.queues.plays_total > 0:
        service_rate = trace.queues.served_total / trace.queues.plays_total
    blocking = float("nan")
    goodput = float("nan")
    flow_p99 = float("nan")
    if session is not None:
        from repro.traffic.admission import flow_delay_percentile

        blocking = session.blocking_probability
        # Only admitted flows inject packets, so the trace's throughput
        # *is* the admitted goodput (the two diverge only if unadmitted
        # traffic ever reaches the queues).
        goodput = throughput
        if trace.queues is not None:
            flow_p99 = flow_delay_percentile(session, trace.queues)
    return StabilityMetrics(
        offered_rate=float(offered_rate),
        throughput=throughput,
        mean_delay=mean_delay,
        p99_delay=p99_delay,
        backlog_final=(trace.last_record.backlog_end if trace.last_record is not None else 0),
        backlog_slope=backlog_slope(trace),
        stable=is_stable(trace, tolerance),
        overhead_slots=trace.overhead_slots_total / epochs,
        cache_hit_rate=trace.cache_hit_rate,
        mean_service_rate=service_rate,
        control_slots=trace.control_slots_total / epochs,
        control_messages=trace.control_messages_total / epochs,
        blocking_probability=blocking,
        admitted_goodput=goodput,
        flow_p99_delay=flow_p99,
    )


def _accepts_seed_index(run_at: Callable) -> bool:
    """Can ``run_at`` be called as ``run_at(rate, seed_index=k)``?

    Requires a parameter literally named ``seed_index`` (or ``**kwargs``):
    merely having a second positional slot is not enough — binding the seed
    to an unrelated parameter (a closure default, a tolerance) would run
    every sweep point with a corrupted argument instead of failing loudly.
    """
    try:
        sig = inspect.signature(run_at)
    except (TypeError, ValueError):  # builtins / C callables: assume not
        return False
    params = sig.parameters
    if any(p.kind == p.VAR_KEYWORD for p in params.values()):
        return True
    seed = params.get("seed_index")
    return seed is not None and seed.kind in (
        seed.POSITIONAL_OR_KEYWORD,
        seed.KEYWORD_ONLY,
    )


def stability_sweep(
    rates: Sequence[float],
    run_at: Callable[..., TrafficTrace],
    tolerance: float = STABILITY_TOLERANCE,
    confirm_seeds: int = 1,
    hysteresis: float = BORDERLINE_HYSTERESIS,
) -> list[StabilityMetrics]:
    """Evaluate one scheduler across an ascending arrival-rate sweep.

    ``run_at(rate)`` runs the epoch loop at that offered rate (typically by
    scaling a template generator with
    :meth:`~repro.traffic.generators.TrafficGenerator.scaled`).

    With ``confirm_seeds > 1``, ``run_at`` must also accept a keyword
    argument named ``seed_index`` (0 for the base run) that selects an
    independent arrival sample path.  Borderline points — see
    :func:`is_borderline` — are then re-run on ``confirm_seeds - 1`` extra
    seeds and their verdict replaced by the majority over all runs, so
    operating points at utilization ≈ 1 no longer flip with a single sample
    path.  Decisive points are never re-run: the extra cost is paid only at
    the knee.
    """
    if confirm_seeds < 1:
        raise ValueError("confirm_seeds must be >= 1")
    if confirm_seeds > 1 and not _accepts_seed_index(run_at):
        raise TypeError(
            "confirm_seeds > 1 requires run_at(rate, seed_index=...); the "
            "seed_index keyword selects the independent arrival sample path"
        )
    swept = sorted(float(r) for r in rates)
    points: list[StabilityMetrics] = []
    for rate in swept:
        trace = run_at(rate, seed_index=0) if confirm_seeds > 1 else run_at(rate)
        point = summarize_trace(trace, rate, tolerance)
        if confirm_seeds > 1 and is_borderline(trace, tolerance, hysteresis):
            traces = [trace] + [
                run_at(rate, seed_index=k) for k in range(1, confirm_seeds)
            ]
            point = replace(
                point,
                stable=majority_stable(traces, tolerance),
                confirm_seeds=confirm_seeds,
            )
        points.append(point)
    return points


def stability_knee(points: Sequence[StabilityMetrics]) -> float | None:
    """The knee of the stability region: the last stable rate before the
    first unstable one (``None`` when even the lowest rate is unstable).

    When every swept point is stable the largest tested rate is returned —
    a lower bound on the true knee, as the sweep never found the boundary.
    """
    ordered = sorted(points, key=lambda m: m.offered_rate)
    knee: float | None = None
    for point in ordered:
        if not point.stable:
            break
        knee = point.offered_rate
    return knee


def find_knee(
    rates: Sequence[float],
    run_at: Callable[..., TrafficTrace],
    tolerance: float = STABILITY_TOLERANCE,
    confirm_seeds: int = CONFIRM_SEEDS,
    hysteresis: float = BORDERLINE_HYSTERESIS,
) -> tuple[float | None, list[StabilityMetrics]]:
    """Sweep and locate the knee in one call, de-flaked by default.

    Runs :func:`stability_sweep` with majority confirmation of borderline
    points (``confirm_seeds`` independent arrival seeds) and returns
    ``(knee, points)``.
    """
    points = stability_sweep(rates, run_at, tolerance, confirm_seeds, hysteresis)
    return stability_knee(points), points
