"""E9 — the sharded multi-region epoch engine vs the monolithic loop.

The first scenario family beyond a single region: 16x16 and 24x24 planned
grids, partitioned into spatial shards that each run their *own* FDD
instance on their own radio substrate (regional K and ID bits), with
guard-margin budgeted boundary links and a cross-shard reconciliation pass
(:mod:`repro.traffic.sharded`).

For each grid the harness sweeps arrival rates under both engines and
reports, per operating point: throughput, delay, protocol air overhead,
the *scheduling compute* the simulation performed (summed scheduler CPU
time), the *critical-path* scheduling time (per-epoch maximum over the
concurrently computing regions — what the scheduling phase costs when
every region has its own controller), the *wall-clock* the simulation
host actually spent in the scheduling fan-out, and the links serialized
by reconciliation.  Summary rows give each engine's stability knee and
the sharded speedups — including the **wall speedup**, the one number a
``ProcessPoolExecutor`` backend (``profile.sharded_executor``) changes:
compute/critical-path ratios are properties of the decomposition and hold
on any host, while the wall ratio only approaches the critical-path ratio
when workers genuinely run in parallel.  One operating point per grid is
re-run on the *other* backend and checked record-identical, so the sweep
itself proves executor equivalence every time it runs.

Expected headlines: on the 16x16 grid the sharded engine cuts the
critical-path scheduling wall-clock by well over 2x while keeping the
stability knee within one sweep step of the monolithic engine; on the
24x24 grid the monolithic backbone protocol (K >= ID(GS) = 8, 10-bit
elections) burns half of every epoch in control air time, so sharding not
only speeds the simulation up ~7x on the critical path but *extends* the
stability region — the federated deployment argument in one table.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from repro.analysis.tables import TextTable
from repro.core.config import ProtocolConfig
from repro.core.fdd import fdd_on_network
from repro.experiments.common import (
    PAPER_PROTOCOL,
    ExperimentProfile,
    finish_obs,
    obs_for,
)
from repro.routing import build_routing_forest, planned_gateways
from repro.scheduling.links import forest_link_set
from repro.topology.network import grid_network
from repro.traffic import (
    EpochConfig,
    PoissonArrivals,
    TrafficTrace,
    distributed_scheduler,
    plan_for_network,
    run_epochs,
    run_epochs_sharded,
    sharded_distributed_factory,
    stability_knee,
    stability_sweep,
)
from repro.util.rng import spawn


def backbone_protocol(network) -> ProtocolConfig:
    """The paper's protocol constants sized for a whole backbone.

    K follows the paper's correctness rule ``K >= ID(GS)`` and the ID width
    must cover every node — both grow with the deployment, which is exactly
    the cost the regional protocols of the sharded engine avoid.
    """
    diameter = network.interference_diameter()
    k = PAPER_PROTOCOL.k
    if math.isfinite(diameter):
        k = max(k, int(math.ceil(diameter)))
    id_bits = max(PAPER_PROTOCOL.id_bits, int(network.n_nodes - 1).bit_length())
    return replace(PAPER_PROTOCOL, k=k, id_bits=id_bits)


def _grid_case(profile: ExperimentProfile, rows: int, cols: int):
    """Network, gateways, forest links, and protocol config for one grid."""
    network = grid_network(rows, cols, density_per_km2=profile.traffic_density)
    gateways = planned_gateways(rows, cols, 4)
    forest = build_routing_forest(
        network.comm_adj, gateways, rng=spawn(profile.seed, "sharded-forest", rows)
    )
    links = forest_link_set(forest, np.zeros(network.n_nodes, dtype=np.int64))
    return network, gateways, links, backbone_protocol(network)


def _secs(value: float | None) -> str:
    """Render a thread-CPU timing cell; ``~`` when the clock was unavailable."""
    return "~" if value is None else f"{value:.2f}"


def sharded_experiment(profile: ExperimentProfile) -> TextTable:
    """E9: monolithic vs sharded epoch engine on multi-region grids."""
    obs = obs_for(profile, "sharded")
    table = TextTable(
        [
            "grid",
            "engine",
            "lambda (pkt/node/slot)",
            "throughput (pkt/slot)",
            "mean delay (slots)",
            "overhead (slots/epoch)",
            "compute (s)",
            "critical path (s)",
            "wall (s)",
            "wall speedup",
            "reconciled (/epoch)",
            "stable",
        ],
        title="Sharded multi-region epoch engine — FDD per region vs one "
        f"backbone protocol, density {profile.traffic_density:g}/km^2, "
        f"{profile.sharded_shards} shards, guard {profile.sharded_guard_factor:g}x "
        f"noise at radius {profile.sharded_radius_m:g} m, "
        f"T={profile.traffic_epoch_slots} slots/epoch, "
        f"{profile.sharded_epochs} epochs",
    )

    for (rows, cols), lambdas in zip(profile.sharded_grids, profile.sharded_lambdas):
        grid = f"{rows}x{cols}"
        network, gateways, links, protocol_cfg = _grid_case(profile, rows, cols)
        plan = plan_for_network(
            links,
            network,
            n_shards=profile.sharded_shards,
            interference_radius_m=profile.sharded_radius_m,
            guard_factor=profile.sharded_guard_factor,
        )
        config = EpochConfig(
            epoch_slots=profile.traffic_epoch_slots,
            n_epochs=profile.sharded_epochs,
            slot_seconds=profile.traffic_slot_seconds,
            divergence_factor=4.0,
        )

        def generator(rate: float, seed_index: int):
            key = ("sharded-gen", rows)
            if seed_index:
                key = (*key, seed_index)
            return PoissonArrivals(
                network.n_nodes, rate, gateways=gateways, seed=spawn(profile.seed, *key)
            )

        def run_mono(rate: float, seed_index: int = 0) -> TrafficTrace:
            scheduler = distributed_scheduler(
                network,
                fdd_on_network,
                config=protocol_cfg,
                seed=spawn(profile.seed, "sharded-fdd", rows),
            )
            return run_epochs(
                links, generator(rate, seed_index), scheduler, config, obs=obs
            )

        def run_sharded(
            rate: float, seed_index: int = 0, executor: str | None = None
        ) -> TrafficTrace:
            factory = sharded_distributed_factory(
                network,
                fdd_on_network,
                config=protocol_cfg,
                seed=spawn(profile.seed, "sharded-fdd", rows),
            )
            return run_epochs_sharded(
                plan,
                generator(rate, seed_index),
                factory,
                network.model,
                config,
                max_workers=profile.sharded_workers,
                executor=executor or profile.sharded_executor,
                obs=obs,
            )

        knees: dict[str, float | None] = {}
        compute: dict[str, float | None] = {}
        critical: dict[str, float | None] = {}
        wall: dict[str, float | None] = {}
        kept: dict[str, dict[float, TrafficTrace]] = {}
        for engine, run_at in (("monolithic", run_mono), ("sharded", run_sharded)):
            base_traces: dict[float, TrafficTrace] = {}
            kept[engine] = base_traces

            def run_and_keep(rate: float, seed_index: int = 0, run_at=run_at):
                trace = run_at(rate, seed_index=seed_index)
                if seed_index == 0:
                    base_traces[rate] = trace
                return trace

            points = stability_sweep(
                lambdas,
                run_and_keep,
                confirm_seeds=profile.traffic_confirm_seeds,
            )
            knees[engine] = stability_knee(points)
            # Timing fields are None on hosts without a thread-CPU clock
            # (satellite rule: never report a silent 0.0 as a measurement).
            secs = [t.scheduling_seconds for t in base_traces.values()]
            crit = [t.critical_path_seconds for t in base_traces.values()]
            walls = [t.scheduling_wall_seconds for t in base_traces.values()]
            compute[engine] = (
                sum(secs) if all(s is not None for s in secs) else None
            )
            critical[engine] = (
                sum(crit) if all(s is not None for s in crit) else None
            )
            wall[engine] = (
                sum(walls) if all(s is not None for s in walls) else None
            )
            for point in points:
                trace = base_traces[point.offered_rate]
                epochs = max(trace.n_epochs_run, 1)
                stable = "yes" if point.stable else "NO"
                if point.confirm_seeds > 1:
                    stable += f" ({point.confirm_seeds}-seed)"
                table.add_row(
                    grid,
                    engine,
                    f"{point.offered_rate:g}",
                    f"{point.throughput:.3f}",
                    f"{point.mean_delay:.1f}",
                    f"{point.overhead_slots:.1f}",
                    _secs(trace.scheduling_seconds),
                    _secs(trace.critical_path_seconds),
                    _secs(trace.scheduling_wall_seconds),
                    "-",
                    f"{trace.reconciled_total / epochs:.1f}",
                    stable,
                )
        for engine in ("monolithic", "sharded"):
            knee = knees[engine]
            table.add_row(
                grid,
                engine,
                "knee",
                "-",
                "-",
                "-",
                _secs(compute[engine]),
                _secs(critical[engine]),
                _secs(wall[engine]),
                "-",
                "-",
                "-" if knee is None else f"{knee:g}",
            )

        def speedup(totals: dict[str, float | None]) -> str:
            if totals["monolithic"] is None or totals["sharded"] is None:
                return "~"
            return f"{totals['monolithic'] / max(totals['sharded'], 1e-9):.2f}x"

        table.add_row(
            grid,
            "speedup",
            "-",
            "-",
            "-",
            "-",
            speedup(compute),
            speedup(critical),
            "-",
            speedup(wall),
            "-",
            "-",
        )

        # Executor equivalence: re-run one operating point on the backend the
        # sweep did NOT use and require a record-identical trace.  The process
        # pool must be an implementation detail of *where* schedulers run,
        # never of *what* they produce.
        check_rate = lambdas[0]
        other = "thread" if profile.sharded_executor == "process" else "process"
        cross = run_sharded(check_rate, executor=other)
        base = kept["sharded"][check_rate]
        if cross.records != base.records:
            raise AssertionError(
                f"sharded engine diverged across executors on {grid} at "
                f"lambda={check_rate:g}: {other!r} != "
                f"{profile.sharded_executor!r}"
            )
    finish_obs(obs)
    return table
