"""Unit tests for the flow-session layer (repro.traffic.flows) and the
admission controllers (repro.traffic.admission)."""

import numpy as np
import pytest

from repro.scheduling.links import LinkSet
from repro.traffic import (
    AdmissionController,
    Backpressure,
    EpochConfig,
    Flow,
    FlowConfig,
    FlowWorkload,
    KneeTracker,
    LinkQueues,
    NoAdmission,
    StaticCap,
    flow_delay_percentile,
    flow_delays,
    make_controller,
    route_of,
    run_epochs,
    serialized_scheduler,
)
from repro.traffic.epoch import EpochRecord


def chain_links(n=4):
    """A chain 3 -> 2 -> 1 -> 0 with node 0 the gateway."""
    heads = np.arange(1, n)
    tails = np.arange(0, n - 1)
    return LinkSet(
        heads=heads, tails=tails, demand=np.zeros(n - 1, np.int64), ids=heads
    )


def record(epoch=0, arrivals=0, served=0, delivered=0, backlog=0):
    return EpochRecord(
        epoch=epoch,
        arrivals=arrivals,
        served=served,
        delivered=delivered,
        backlog_end=backlog,
        demand_scheduled=0,
        schedule_length=0,
        overhead_slots=0,
    )


class TestRoutes:
    def test_route_follows_chain_to_gateway(self):
        links = chain_links()
        np.testing.assert_array_equal(route_of(links, 3), [2, 1, 0])
        np.testing.assert_array_equal(route_of(links, 1), [0])

    def test_gateway_has_no_route(self):
        with pytest.raises(ValueError, match="heads no link"):
            route_of(chain_links(), 0)


class TestFlowConfig:
    def test_offered_rate_round_trips(self):
        cfg = FlowConfig.for_offered_rate(0.02, n_sources=10, epoch_slots=100)
        assert cfg.offered_rate(10, 100) == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowConfig(session_rate=-1)
        with pytest.raises(ValueError):
            FlowConfig(size_alpha=1.0)
        with pytest.raises(ValueError):
            FlowConfig(cbr_fraction=1.5)

    def test_flow_validation(self):
        with pytest.raises(ValueError, match="klass"):
            Flow(0, 1, "video", 0.1, 10, 0, np.array([0]))
        with pytest.raises(ValueError, match="size"):
            Flow(0, 1, "cbr", 0.1, 0, 0, np.array([0]))


class TestFlowWorkload:
    def test_same_seed_replays_identically(self):
        links = chain_links(6)
        cfg = FlowConfig(session_rate=3.0)
        a = FlowWorkload(links, cfg, seed=5)
        b = FlowWorkload(links, cfg, seed=5)
        for epoch in range(6):
            np.testing.assert_array_equal(
                a.arrivals(epoch, 100), b.arrivals(epoch, 100)
            )

    def test_sequential_epochs_enforced_and_reset_rewinds(self):
        links = chain_links(6)
        wl = FlowWorkload(links, FlowConfig(session_rate=3.0), seed=5)
        first = wl.arrivals(0, 100)
        with pytest.raises(ValueError, match="expected epoch"):
            wl.arrivals(2, 100)
        wl.reset()
        np.testing.assert_array_equal(wl.arrivals(0, 100), first)

    def test_long_run_offered_rate_matches_config(self):
        links = chain_links(8)
        rate = 0.03
        wl = FlowWorkload(
            links,
            FlowConfig.for_offered_rate(rate, links.n_links, 100),
            seed=9,
        )
        total = sum(int(wl.arrivals(e, 100).sum()) for e in range(400))
        measured = total / (400 * 100 * links.n_links)
        # Tight tolerance on purpose: the size distribution's x_m is
        # calibrated for the *truncated* mean, so the offered rate must
        # not sit systematically below the nominal lambda.
        assert measured == pytest.approx(rate, rel=0.08)

    def test_gateway_never_sources(self):
        links = chain_links(6)
        wl = FlowWorkload(links, FlowConfig(session_rate=5.0), seed=5)
        for epoch in range(10):
            assert wl.arrivals(epoch, 100)[0] == 0  # node 0 is the gateway

    def test_scaled_scales_session_rate_only(self):
        links = chain_links(6)
        wl = FlowWorkload(links, FlowConfig(session_rate=2.0), seed=5)
        doubled = wl.scaled(2.0)
        assert doubled.config.session_rate == pytest.approx(4.0)
        assert doubled.config.mean_size == wl.config.mean_size

    def test_completed_flows_depart(self):
        links = chain_links(4)
        cfg = FlowConfig(
            session_rate=2.0, mean_size=3, elastic_rate=1.0, cbr_rate=1.0,
            max_size_factor=1.0,
        )
        wl = FlowWorkload(links, cfg, seed=5)
        for epoch in range(5):
            wl.arrivals(epoch, 50)
        done = [f for f in wl.flows if f.done_epoch is not None]
        assert done, "short flows at high rate should complete"
        for f in done:
            assert f.remaining == 0
            assert f.emitted == f.size


class TestControllers:
    def test_registry_and_unknown_name(self):
        assert isinstance(make_controller("none"), NoAdmission)
        assert isinstance(make_controller("knee-tracker"), KneeTracker)
        assert isinstance(make_controller("backpressure"), Backpressure)
        assert isinstance(make_controller("static-cap", cap=1.0), StaticCap)
        with pytest.raises(ValueError, match="unknown admission controller"):
            make_controller("erlang")
        with pytest.raises(ValueError, match="needs cap"):
            make_controller("static-cap")

    def test_static_cap_blocks_and_throttles(self):
        links = chain_links(6)
        wl = FlowWorkload(
            links,
            FlowConfig(session_rate=8.0, cbr_fraction=0.0, elastic_rate=0.5),
            controller=StaticCap(cap=1.0),
            seed=5,
        )
        for epoch in range(6):
            wl.arrivals(epoch, 100)
        assert wl.sessions_blocked > 0
        assert wl.admitted_rate() <= 1.0 + 1e-9

    def test_knee_tracker_caps_on_growth_and_probes_when_stable(self):
        tracker = KneeTracker(window=3)
        links = chain_links(4)
        wl = FlowWorkload(links, FlowConfig(), controller=tracker, seed=5)
        wl._epoch_slots = 100
        queues = LinkQueues(links)
        # Three epochs of hard backlog growth: the window fills, the gate
        # (1.5x arrivals) and slope both trip, and the cap snaps to the
        # best delivered rate seen (50 / 100 slots).
        for epoch, backlog in enumerate((500, 1000, 1500)):
            tracker.observe(
                record(epoch, arrivals=200, delivered=50, backlog=backlog),
                queues,
                wl,
            )
        assert tracker.cap == pytest.approx(0.5)
        # Cooldown holds the cap; afterwards flat backlog that still sits
        # far above the gate is a standing queue -> multiplicative dip.
        for epoch in range(3, 3 + tracker.window):
            tracker.observe(
                record(epoch, arrivals=100, delivered=50, backlog=1500),
                queues,
                wl,
            )
        assert tracker.cap == pytest.approx(0.5)  # cooldown held it
        tracker.observe(
            record(7, arrivals=100, delivered=50, backlog=1500), queues, wl
        )
        assert tracker.cap == pytest.approx(0.5 * tracker.decrease)

    def test_knee_tracker_cap_never_collapses_to_zero(self):
        """A growth signal over a window that delivered *nothing* must not
        snap the cap to 0 — both AIMD moves are multiplicative, so a zero
        cap would block every future session forever."""
        tracker = KneeTracker(window=2)
        links = chain_links(4)
        wl = FlowWorkload(links, FlowConfig(), controller=tracker, seed=5)
        wl._epoch_slots = 100
        queues = LinkQueues(links)
        for epoch, backlog in enumerate((800, 1600, 2400, 3200, 4000, 4800)):
            tracker.observe(
                record(epoch, arrivals=200, delivered=0, backlog=backlog),
                queues,
                wl,
            )
        assert tracker.cap == pytest.approx(tracker.cap_floor)
        assert tracker.cap > 0
        with pytest.raises(ValueError, match="cap_floor"):
            KneeTracker(cap_floor=0.0)

    def test_knee_tracker_probes_additively_when_healthy(self):
        tracker = KneeTracker(window=2, increase=0.1)
        tracker.cap = 1.0
        links = chain_links(4)
        wl = FlowWorkload(links, FlowConfig(), controller=tracker, seed=5)
        wl._epoch_slots = 100
        queues = LinkQueues(links)
        for epoch in range(3):
            tracker.observe(
                record(epoch, arrivals=100, delivered=90, backlog=10), queues, wl
            )
        assert tracker.cap > 1.0

    def test_backpressure_throttles_routes_through_hot_links(self):
        links = chain_links(6)
        bp = Backpressure(hot_fraction=0.5, slowdown=0.25, gate_packets=10)
        wl = FlowWorkload(links, FlowConfig(), controller=bp, seed=5)
        queues = LinkQueues(links)
        queues.backlog[:] = [100, 0, 0, 0, 0]  # link 0 (into the gateway) hot
        bp.observe(record(), queues, wl)
        through_hot = Flow(0, 5, "elastic", 0.1, 10, 0, route_of(links, 5))
        assert not bp.admit(through_hot, wl)
        assert bp.throttle(through_hot, wl) == pytest.approx(0.25)

    def test_feedback_hungry_controller_without_observe_raises(self):
        """A knee tracker whose observe() is never wired must fail loudly,
        not silently degrade to the 'none' baseline."""
        links = chain_links(6)
        wl = FlowWorkload(links, FlowConfig(), controller=KneeTracker(), seed=5)
        wl.arrivals(0, 100)
        with pytest.raises(RuntimeError, match="on_epoch=workload.observe"):
            wl.arrivals(1, 100)
        # Wired feedback clears the guard ...
        wl.reset()
        queues = LinkQueues(links)
        wl.arrivals(0, 100)
        wl.observe(record(0), queues)
        wl.arrivals(1, 100)
        # ... and feedback-free controllers never needed it.
        bare = FlowWorkload(
            links, FlowConfig(), controller=StaticCap(cap=1.0), seed=5
        )
        for epoch in range(3):
            bare.arrivals(epoch, 100)

    def test_fresh_controllers_carry_knobs_but_no_state(self):
        tracker = KneeTracker(window=5, increase=0.2, decrease=0.5, drain_horizon=9)
        tracker.cap = 0.7
        clone = tracker.fresh()
        assert (clone.window, clone.increase, clone.decrease, clone.drain_horizon) == (
            5, 0.2, 0.5, 9,
        )
        assert clone.cap == float("inf")
        bp = Backpressure(hot_fraction=0.2, slowdown=0.5, gate_packets=3)
        clone = bp.fresh()
        assert (clone.hot_fraction, clone.slowdown, clone.gate_packets) == (0.2, 0.5, 3)


class _AdmitAfter(AdmissionController):
    """Deterministic test controller: reject every offer before ``epoch``,
    admit everything from then on (reads the workload's epoch counter)."""

    name = "admit-after"

    def __init__(self, epoch):
        self.epoch = epoch

    def fresh(self):
        return _AdmitAfter(self.epoch)

    def admit(self, flow, session):
        # _next_epoch was already advanced when offers are processed, so the
        # epoch currently being generated is _next_epoch - 1.
        return session._next_epoch - 1 >= self.epoch


class TestBlockedSessionRetries:
    def _workload(self, retry_attempts, controller, session_rate=2.0, seed=5, **cfg):
        links = chain_links(6)
        config = FlowConfig(
            session_rate=session_rate,
            retry_attempts=retry_attempts,
            retry_base_epochs=1,
            retry_backoff=2.0,
            **cfg,
        )
        return FlowWorkload(links, config, controller=controller, seed=seed)

    def test_retry_config_validation(self):
        with pytest.raises(ValueError, match="retry_attempts"):
            FlowConfig(retry_attempts=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            FlowConfig(retry_backoff=0.5)
        with pytest.raises(ValueError, match="retry_base_epochs"):
            FlowConfig(retry_base_epochs=0)

    def test_no_retries_is_the_historical_block_forever(self):
        wl = self._workload(0, _AdmitAfter(10))
        for epoch in range(4):
            wl.arrivals(epoch, 100)
        assert wl.sessions_offered > 0
        assert wl.sessions_blocked == wl.sessions_offered
        assert wl.sessions_pending_retry == 0
        assert wl.retries_attempted == 0
        assert wl.blocking_probability == 1.0

    def test_blocked_sessions_come_back_and_get_admitted(self):
        # Everything offered in epochs 0-1 is rejected at first attempt but
        # retried (delays 1 then 2 epochs); the doors open at epoch 2, so
        # every retry landing at epoch >= 2 is admitted on its comeback.
        wl = self._workload(3, _AdmitAfter(2))
        for epoch in range(8):
            wl.arrivals(epoch, 100)
        assert wl.retries_attempted > 0
        assert wl.retry_admitted > 0
        assert wl.sessions_blocked == 0, "every session should make it in on retry"
        assert wl.sessions_pending_retry == 0
        assert wl.sessions_admitted == wl.sessions_offered
        assert wl.blocking_probability == 0.0

    def test_exhausted_attempts_finally_count_as_blocked(self):
        # Doors never open: with 2 retries each session is offered 3 times
        # total and only then booked as blocked.
        wl = self._workload(2, _AdmitAfter(10**6), session_rate=3.0)
        offered_epoch0 = 0
        for epoch in range(10):
            wl.arrivals(epoch, 100)
            if epoch == 0:
                offered_epoch0 = wl.sessions_offered
                # First attempts failed but nothing is blocked yet.
                assert wl.sessions_blocked == 0
                assert wl.sessions_pending_retry == offered_epoch0
        # Long after every backoff (1 + 2 epochs) has expired, the early
        # sessions have exhausted their three attempts.
        assert wl.sessions_blocked > 0
        assert (
            wl.sessions_offered
            == wl.sessions_admitted + wl.sessions_blocked + wl.sessions_pending_retry
        )
        assert wl.retries_attempted > 0
        assert wl.blocking_probability == wl.sessions_blocked / wl.sessions_offered
        assert "retries" in wl.summary()

    def test_geometric_backoff_schedules_the_due_epochs(self):
        wl = self._workload(3, _AdmitAfter(10**6), session_rate=4.0)
        wl.arrivals(0, 100)
        assert wl.sessions_offered > 0
        # First rejection at epoch 0 -> retry due at epoch 1 (base 1).
        assert all(due == 1 and attempts == 1 for due, attempts, _ in wl._retries)
        wl.arrivals(1, 100)
        # Epoch-0 sessions rejected again at epoch 1 -> due 1 + ceil(1*2^1)
        # = 3; epoch-1 newcomers enter the queue at their first delay.
        assert any(a == 2 for _, a, _ in wl._retries)
        assert all(due == 3 for due, a, _ in wl._retries if a == 2)
        assert all(due == 2 for due, a, _ in wl._retries if a == 1)
        wl.arrivals(2, 100)
        wl.arrivals(3, 100)
        # Third rejection of the originals at epoch 3 -> due 3 + ceil(1*2^2) = 7.
        assert any(a == 3 for _, a, _ in wl._retries)
        assert all(due == 7 for due, a, _ in wl._retries if a == 3)

    def test_retries_lower_measured_blocking_under_a_cap_with_churn(self):
        """Short flows depart and free cap headroom; retried sessions pick
        it up, so the final blocking probability drops vs no-retry."""

        def run(retry_attempts):
            wl = self._workload(
                retry_attempts,
                StaticCap(cap=0.2),
                session_rate=3.0,
                seed=7,
                mean_size=4,
                max_size_factor=1.0,
                cbr_fraction=0.0,
                elastic_rate=0.05,
            )
            for epoch in range(30):
                wl.arrivals(epoch, 100)
            return wl

        base = run(0)
        retried = run(4)
        assert base.sessions_blocked > 0
        assert retried.retry_admitted > 0
        assert retried.blocking_probability < base.blocking_probability

    def test_reset_clears_retry_state(self):
        wl = self._workload(3, _AdmitAfter(10**6))
        wl.arrivals(0, 100)
        wl.reset()
        assert wl.sessions_pending_retry == 0
        assert wl.retries_attempted == 0
        assert wl.retry_admitted == 0


class TestAdmittedRateAggregates:
    def test_aggregates_match_an_explicit_scan_under_churn(self):
        links = chain_links(8)
        wl = FlowWorkload(
            links,
            FlowConfig(session_rate=6.0, mean_size=5, max_size_factor=2.0),
            controller=StaticCap(cap=0.4),
            seed=11,
        )
        for epoch in range(12):
            wl.arrivals(epoch, 60)
            for klass in (None, "cbr", "elastic"):
                scanned = sum(
                    f.rate
                    for f in wl.active
                    if klass is None or f.klass == klass
                )
                assert wl.admitted_rate(klass) == pytest.approx(scanned, abs=1e-9)

    def test_rate_clamped_at_zero_after_full_departure(self):
        # Sizes are capped at 2 packets and each flow's bucket allows
        # rate x 50 = 50 per epoch, so every admitted session emits fully
        # and departs within its own arrival epoch — the active set is
        # empty (and the aggregate exactly zero) after every epoch.
        links = chain_links(4)
        wl = FlowWorkload(
            links,
            FlowConfig(
                session_rate=2.0, mean_size=2, max_size_factor=1.0,
                cbr_rate=1.0, elastic_rate=1.0,
            ),
            seed=3,
        )
        for epoch in range(8):
            wl.arrivals(epoch, 50)
            assert wl.active == []
            assert wl.admitted_rate() == 0.0
            assert wl.admitted_rate("cbr") == 0.0
            assert wl.admitted_rate("elastic") == 0.0
        assert wl.flows, "sessions should actually have churned through"

    def test_regionless_controller_has_no_regional_aggregate(self):
        links = chain_links(4)
        wl = FlowWorkload(links, FlowConfig(session_rate=2.0), seed=3)
        wl.arrivals(0, 50)
        assert wl.admitted_rate_in_region(0) == 0.0


class TestFlowDelays:
    def test_per_flow_delays_attributed_through_the_loop(self):
        links = chain_links(6)
        wl = FlowWorkload(
            links,
            FlowConfig(session_rate=4.0, mean_size=5, max_size_factor=2.0),
            seed=5,
        )
        # The serialized round-robin scheduler is enough to deliver packets.
        trace = run_epochs(
            links,
            wl,
            serialized_scheduler(),
            EpochConfig(epoch_slots=60, n_epochs=8),
            on_epoch=wl.observe,
        )
        delays = flow_delays(wl, trace.queues)
        assert delays, "some flow should have delivered packets"
        assert all(d >= 1 for d in delays.values())
        assert set(delays) <= {f.fid for f in wl.flows}
        p99 = flow_delay_percentile(wl, trace.queues)
        assert p99 >= min(delays.values())
        assert p99 <= max(delays.values()) + 1e-9

    def test_no_deliveries_gives_nan(self):
        links = chain_links(4)
        wl = FlowWorkload(links, FlowConfig(session_rate=1.0), seed=5)
        queues = LinkQueues(links)
        assert np.isnan(flow_delay_percentile(wl, queues))
