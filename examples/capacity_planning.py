"""Capacity planning for a city-scale mesh backbone.

The paper's motivating scenario: a wireless backbone carries client traffic
to a handful of Internet gateways, and the operator wants to know how much
the STDMA/SINR scheduler buys over serialized (TDMA round-robin) operation —
and how that changes with deployment density and gateway count.

This example sweeps both knobs on the unplanned (uniform, heterogeneous
power) deployment and prints a capacity table: schedule length, improvement,
and the effective per-node throughput share assuming 2 ms slots.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import (
    aggregate_demand,
    build_routing_forest,
    forest_link_set,
    greedy_physical,
    improvement_over_linear,
    random_gateways,
    uniform_network,
    uniform_node_demand,
    verify_schedule,
)
from repro.analysis.tables import TextTable
from repro.util.rng import spawn

SEED = 7
SLOT_SECONDS = 0.002
PACKET_BITS = 8 * 1024 * 8  # 8 KiB aggregated client burst per demand unit


def plan(density: float, n_gateways: int, reps: int = 3) -> dict:
    improvements = []
    lengths = []
    tds = []
    for rep in range(reps):
        network = uniform_network(
            64, density_per_km2=density, rng=spawn(SEED, "net", density, rep)
        )
        gws = random_gateways(64, n_gateways, spawn(SEED, "gw", density, rep))
        forest = build_routing_forest(
            network.comm_adj, gws, rng=spawn(SEED, "forest", density, rep)
        )
        demand = uniform_node_demand(
            64, spawn(SEED, "demand", density, rep), gateways=gws
        )
        links = forest_link_set(forest, aggregate_demand(forest, demand))
        schedule = greedy_physical(links, network.model)
        assert verify_schedule(schedule, network.model).ok
        improvements.append(improvement_over_linear(schedule))
        lengths.append(schedule.length)
        tds.append(links.total_demand)
    frame_s = float(np.mean(lengths)) * SLOT_SECONDS
    generated = float(np.mean(tds))
    return {
        "improvement": float(np.mean(improvements)),
        "schedule_slots": float(np.mean(lengths)),
        "frame_s": frame_s,
        "throughput_mbps": PACKET_BITS * generated / frame_s / 1e6,
    }


def main() -> None:
    table = TextTable(
        [
            "density (nodes/km^2)",
            "gateways",
            "schedule slots",
            "improvement (%)",
            "frame (s)",
            "backbone throughput (Mbit/s)",
        ],
        title="Mesh backbone capacity plan (64 nodes, unplanned deployment)",
    )
    for density in (1000.0, 5000.0, 15000.0):
        for n_gateways in (2, 4, 8):
            row = plan(density, n_gateways)
            table.add_row(
                f"{density:g}",
                n_gateways,
                f"{row['schedule_slots']:.0f}",
                f"{row['improvement']:.1f}",
                f"{row['frame_s']:.2f}",
                f"{row['throughput_mbps']:.1f}",
            )
    print(table.render())
    print(
        "\nReading: more gateways shorten routes (less aggregated demand), "
        "and lower density gives the SINR scheduler more spatial reuse; "
        "both compound into backbone throughput."
    )


if __name__ == "__main__":
    main()
