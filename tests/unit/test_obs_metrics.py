"""Unit tests for repro.obs.metrics: P² quantiles and the registry.

The headline guarantee (DESIGN.md §11): the five-marker P² estimator
tracks the exact p99 within 5% relative error on the distributions the
engines actually observe (delay-like: heavy-ish right tails), at O(1)
memory, and is *exact* while it has seen five or fewer samples.
"""

import math

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_QUANTILES,
    MetricsRegistry,
    P2Quantile,
    StreamingHistogram,
    label_key,
)


def _relerr(estimate: float, exact: float) -> float:
    return abs(estimate - exact) / max(abs(exact), 1e-12)


class TestP2Quantile:
    def test_exact_below_five_samples(self):
        # With <= 5 observations the estimate is the nearest order
        # statistic of the sorted sample — exact, no marker interpolation.
        est = P2Quantile(0.99)
        samples = [5.0, 1.0, 9.0, 3.0]
        for i, x in enumerate(samples):
            est.add(x)
            seen = sorted(samples[: i + 1])
            assert est.value == seen[round(0.99 * i)]
        assert est.value == 9.0  # the p99 of a 4-sample set is its max

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    @pytest.mark.parametrize("q", [0.5, 0.99, 0.999])
    @pytest.mark.parametrize(
        "dist",
        ["uniform", "exponential", "lognormal", "pareto"],
    )
    def test_accuracy_against_exact(self, q, dist):
        # Deterministic seed per case (str hashes are salted per process).
        seeds = {"uniform": 10, "exponential": 20, "lognormal": 30, "pareto": 40}
        rng = np.random.default_rng(seeds[dist] + int(q * 1000))
        n = 20000
        data = {
            "uniform": lambda: rng.uniform(0, 100, n),
            "exponential": lambda: rng.exponential(30.0, n),
            "lognormal": lambda: rng.lognormal(2.0, 0.7, n),
            "pareto": lambda: 10.0 * (1.0 + rng.pareto(3.0, n)),
        }[dist]()
        est = P2Quantile(q)
        for x in data:
            est.add(float(x))
        exact = float(np.quantile(data, q))
        # The headline bound is 5% on p99 and below; the extreme p999
        # tail of heavy-tailed draws gets 10% (DESIGN.md §11).
        bound = 0.10 if q > 0.99 else 0.05
        assert _relerr(est.value, exact) < bound, (dist, q, est.value, exact)

    def test_constant_memory(self):
        est = P2Quantile(0.99)
        for x in range(10000):
            est.add(float(x))
        assert len(est._heights) == 5
        assert len(est._positions) == 5

    def test_sorted_input_p50(self):
        est = P2Quantile(0.5)
        for x in range(1, 1001):
            est.add(float(x))
        assert _relerr(est.value, 500.5) < 0.05


class TestStreamingHistogram:
    def test_moments_exact(self):
        rng = np.random.default_rng(7)
        data = rng.exponential(10.0, 5000)
        hist = StreamingHistogram()
        hist.add_many(data)
        assert hist.count == data.size
        assert hist.mean == pytest.approx(float(data.mean()))
        assert hist.min == pytest.approx(float(data.min()))
        assert hist.max == pytest.approx(float(data.max()))

    def test_snapshot_keys(self):
        hist = StreamingHistogram()
        hist.add_many(np.arange(100.0))
        snap = hist.snapshot()
        for q in DEFAULT_QUANTILES:
            assert f"p{q:g}" in snap["quantiles"]
        assert snap["count"] == 100

    def test_quantile_matches_exact_tail(self):
        rng = np.random.default_rng(3)
        data = rng.lognormal(3.0, 0.5, 10000)
        hist = StreamingHistogram()
        hist.add_many(data)
        assert _relerr(hist.quantile(0.99), float(np.quantile(data, 0.99))) < 0.05


class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.counter("control.messages", 2, layer="sharded", cls="report")
        reg.counter("control.messages", 3, layer="sharded", cls="report")
        reg.counter("control.messages", 5, layer="admission", cls="signal")
        assert (
            reg.counter_value("control.messages", layer="sharded", cls="report") == 5
        )
        assert (
            reg.counter_value("control.messages", layer="admission", cls="signal") == 5
        )

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge("traffic.backlog", 10.0, engine="epoch")
        reg.gauge("traffic.backlog", 4.0, engine="epoch")
        assert reg.gauge_value("traffic.backlog", engine="epoch") == 4.0

    def test_label_key_order_insensitive(self):
        assert label_key({"a": 1, "b": 2}) == label_key({"b": 2, "a": 1})

    def test_observe_routes_to_histogram(self):
        reg = MetricsRegistry()
        reg.observe_many("traffic.delay_slots", np.arange(1000.0), region="all")
        hist = reg.histogram("traffic.delay_slots", region="all")
        assert hist.count == 1000

    def test_adopt_histogram_by_reference(self):
        reg = MetricsRegistry()
        hist = StreamingHistogram()
        reg.adopt_histogram("traffic.delay_slots", hist, region="shard0")
        hist.add(42.0)
        assert reg.histogram("traffic.delay_slots", region="shard0").count == 1

    def test_rows_typed(self):
        reg = MetricsRegistry()
        reg.counter("a", 1)
        reg.gauge("b", 2.0)
        reg.observe("c", 3.0)
        kinds = {row["name"]: row["kind"] for row in reg.rows()}
        assert kinds == {"a": "counter", "b": "gauge", "c": "histogram"}
        assert reg.n_series == 3
