"""Ablations over the design choices DESIGN.md calls out.

* A1 — truncated SCREAM (K below the interference diameter): quantifies
  multi-leader elections and schedule-feasibility violations, demonstrating
  *why* ``K >= ID(GS)`` is required;
* A2 — GreedyPhysical edge orderings: how much the (arbitrary, per the
  approximation bound) edge order matters in practice;
* A3 — the PDD slot-sealing ambiguity: both readings of the paper's
  pseudocode, compared on quality and step cost.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analysis.stats import mean_ci
from repro.analysis.tables import TextTable
from repro.core.config import ProtocolConfig
from repro.core.fdd import fdd_on_network
from repro.core.pdd import pdd_on_network
from repro.experiments.common import (
    PAPER_PROTOCOL,
    ExperimentProfile,
    grid_scenario,
    uniform_scenario,
)
from repro.scheduling import (
    EDGE_ORDERINGS,
    greedy_physical,
    improvement_over_linear,
    verify_schedule,
)
from repro.util.rng import spawn


def truncated_k_experiment(
    profile: ExperimentProfile, density: float = 1000.0
) -> TextTable:
    """A1 — protocol health as K drops below the interference diameter."""
    table = TextTable(
        [
            "K",
            "ID(GS)",
            "schedule length",
            "infeasible slots",
            "unmet-demand links",
            "multi-winner elections",
        ],
        title="Truncated SCREAM: FDD under K < ID(GS) (grid, low density)",
    )
    scenario = grid_scenario(density, 0, seed=profile.seed)
    net_id = int(scenario.network.interference_diameter())
    for k in range(1, max(net_id, 2) + 2):
        config = replace(PAPER_PROTOCOL, k=k, max_rounds=4 * scenario.total_demand)
        result = fdd_on_network(
            scenario.network,
            scenario.links,
            config,
            rng=spawn(profile.seed, "trunc", k),
        )
        report = verify_schedule(result.schedule, scenario.network.model)
        table.add_row(
            k,
            net_id,
            result.schedule_length,
            len(report.infeasible_slots),
            len(report.shortfall_links),
            result.tally.multi_winner_elections,
        )
    return table


def orderings_experiment(profile: ExperimentProfile) -> TextTable:
    """A2 — GreedyPhysical quality under different edge orderings."""
    table = TextTable(
        ["scenario"] + [f"{name} (%)" for name in EDGE_ORDERINGS],
        title="GreedyPhysical improvement over serialized schedule by edge "
        "ordering",
    )
    for label, scenario_fn in (("grid", grid_scenario), ("uniform", uniform_scenario)):
        cells: dict[str, list[float]] = {name: [] for name in EDGE_ORDERINGS}
        for density in profile.densities[:: max(1, len(profile.densities) // 3)]:
            for rep in range(profile.repetitions):
                scenario = scenario_fn(density, rep, seed=profile.seed)
                for name in EDGE_ORDERINGS:
                    schedule = greedy_physical(
                        scenario.links, scenario.network.model, ordering=name
                    )
                    cells[name].append(improvement_over_linear(schedule))
        table.add_row(label, *(str(mean_ci(cells[name])) for name in EDGE_ORDERINGS))
    return table


def uncompensated_skew_experiment(
    profile: ExperimentProfile, density: float = 2500.0, guard_s: float = 4e-6
) -> TextTable:
    """A4 — what uncompensated clock skew does to the computation.

    The compensated design (the paper's) stretches every step by 2x the
    skew bound and only pays *time*; this ablation fixes the guard and grows
    the actual skew past it, counting lost sensitivity edges, split
    elections, and verifier-detected schedule damage.
    """
    from repro.core.fast_runtime import FastRuntime
    from repro.core.fdd import run_fdd
    from repro.core.skew import critical_skew_estimate, degrade_sensitivity_graph
    from repro.core.timing import TimingModel
    from repro.simulation.clock import ClockModel

    timing = TimingModel(scream_bytes=PAPER_PROTOCOL.smbytes)
    burst_s = 8.0 * PAPER_PROTOCOL.smbytes / timing.bitrate_bps
    scenario = grid_scenario(density, 0, seed=profile.seed)
    network = scenario.network

    table = TextTable(
        [
            "skew bound (s)",
            "GS edges lost (%)",
            "multi-winner elections",
            "infeasible slots",
            "unmet-demand links",
        ],
        title=f"Uncompensated skew (guard fixed at {guard_s:g} s; "
        f"critical skew {critical_skew_estimate(guard_s):g} s)",
    )
    for factor in (0.5, 1.0, 2.0, 8.0, 64.0):
        skew = critical_skew_estimate(guard_s) * factor
        clock = ClockModel(
            network.n_nodes, skew, spawn(profile.seed, "skew-clock", factor)
        )
        degraded = degrade_sensitivity_graph(
            network.sens_adj, clock, burst_s, guard_s
        )
        config = replace(
            PAPER_PROTOCOL, max_rounds=4 * scenario.total_demand + 20
        )
        runtime = FastRuntime(
            model=network.model,
            sens_adj=degraded.sens_adj,
            ids=np.arange(network.n_nodes),
            config=config,
        )
        result = run_fdd(
            scenario.links, runtime, config, rng=spawn(profile.seed, "skew", factor)
        )
        report = verify_schedule(result.schedule, network.model)
        table.add_row(
            f"{skew:g}",
            f"{100 * degraded.loss_fraction:.1f}",
            result.tally.multi_winner_elections,
            len(report.infeasible_slots),
            len(report.shortfall_links),
        )
    return table


def seal_rule_experiment(
    profile: ExperimentProfile, density: float = 5000.0
) -> TextTable:
    """A3 — PDD under both readings of the slot-sealing pseudocode.

    ``drain`` (default): the slot seals once no DORMANT node remains.
    ``idle-step``: the slot seals after any step that selected no active.
    """
    table = TextTable(
        [
            "p_active",
            "improvement drain (%)",
            "improvement idle-step (%)",
            "steps drain",
            "steps idle-step",
        ],
        title="PDD slot-sealing rule ablation (grid)",
    )
    for p in profile.pdd_probabilities:
        improvements: dict[bool, list[float]] = {False: [], True: []}
        steps: dict[bool, list[int]] = {False: [], True: []}
        for rep in range(profile.repetitions):
            scenario = grid_scenario(density, rep, seed=profile.seed)
            for idle_seal in (False, True):
                config = replace(
                    PAPER_PROTOCOL, p_active=p, seal_on_idle_step=idle_seal
                )
                result = pdd_on_network(
                    scenario.network,
                    scenario.links,
                    config,
                    rng=spawn(profile.seed, "seal", p, rep, idle_seal),
                )
                improvements[idle_seal].append(
                    improvement_over_linear(result.schedule)
                )
                steps[idle_seal].append(result.tally.total_steps)
        table.add_row(
            f"{p:g}",
            str(mean_ci(improvements[False])),
            str(mean_ci(improvements[True])),
            f"{np.mean(steps[False]):.0f}",
            f"{np.mean(steps[True]):.0f}",
        )
    return table
