"""Gateway routing substrate: reverse trees, routing forest, demand aggregation.

Traffic in the paper's mesh flows from every node to its nearest gateway
along reverse shortest-path trees (Section II).  This subpackage builds the
routing forest and aggregates per-node demands onto tree links, producing the
link/demand sets the schedulers operate on.
"""

from repro.routing.gateways import (
    planned_gateways,
    random_gateways,
    corner_gateways,
)
from repro.routing.forest import RoutingForest, build_routing_forest
from repro.routing.demand import uniform_node_demand, aggregate_demand, total_demand
from repro.routing.placement import kcenter_gateways, coverage_radius, optimal_gateways

__all__ = [
    "planned_gateways",
    "random_gateways",
    "corner_gateways",
    "RoutingForest",
    "build_routing_forest",
    "uniform_node_demand",
    "aggregate_demand",
    "total_demand",
    "kcenter_gateways",
    "coverage_radius",
    "optimal_gateways",
]
