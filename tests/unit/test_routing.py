"""Routing substrate: gateways, forest construction, demand aggregation."""

import numpy as np
import pytest

from repro.routing.demand import aggregate_demand, total_demand, uniform_node_demand
from repro.routing.forest import RoutingForest, build_routing_forest
from repro.routing.gateways import corner_gateways, planned_gateways, random_gateways


class TestGateways:
    def test_planned_gateways_for_paper_grid(self):
        gws = planned_gateways(8, 8, 4)
        assert gws.tolist() == [2 * 8 + 2, 2 * 8 + 5, 5 * 8 + 2, 5 * 8 + 5]

    def test_planned_single_gateway_is_center(self):
        gws = planned_gateways(5, 5, 1)
        assert gws.tolist() == [2 * 5 + 2]

    def test_corner_gateways(self):
        assert corner_gateways(4, 4, 4).tolist() == [0, 3, 12, 15]

    def test_random_gateways_distinct_and_in_range(self):
        gws = random_gateways(20, 4, np.random.default_rng(0))
        assert len(set(gws.tolist())) == 4
        assert (gws >= 0).all() and (gws < 20).all()

    def test_too_many_gateways_rejected(self):
        with pytest.raises(ValueError):
            random_gateways(3, 4, np.random.default_rng(0))


class TestForest:
    def test_forest_structure(self, grid16):
        gws = planned_gateways(4, 4, 2)
        forest = build_routing_forest(grid16.comm_adj, gws, rng=1)
        forest.validate(grid16.comm_adj)
        assert forest.n_nodes == 16
        assert (forest.parent[gws] == -1).all()

    def test_depths_are_hop_distances(self, grid16):
        gws = planned_gateways(4, 4, 1)
        forest = build_routing_forest(grid16.comm_adj, gws, rng=2)
        dist = grid16.comm_hop_distance[:, gws[0]]
        assert np.array_equal(forest.depth, dist.astype(int))

    def test_routes_end_at_gateways(self, grid16):
        gws = planned_gateways(4, 4, 2)
        forest = build_routing_forest(grid16.comm_adj, gws, rng=3)
        for v in range(16):
            route = forest.route(v)
            assert route[-1] in set(gws.tolist())
            assert len(route) == forest.depth[v] + 1

    def test_root_of_consistency(self, grid16):
        gws = planned_gateways(4, 4, 2)
        forest = build_routing_forest(grid16.comm_adj, gws, rng=4)
        for v in range(16):
            assert forest.root_of[v] == forest.route(v)[-1]

    def test_tie_breaks_depend_on_rng(self, grid64):
        from repro.routing import planned_gateways as pg

        gws = pg(8, 8, 4)
        a = build_routing_forest(grid64.comm_adj, gws, rng=1)
        b = build_routing_forest(grid64.comm_adj, gws, rng=2)
        assert np.array_equal(a.depth, b.depth)  # depths are unique
        assert not np.array_equal(a.parent, b.parent)  # parents are not

    def test_unreachable_node_rejected(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = adj[1, 0] = True
        with pytest.raises(ValueError, match="cannot reach"):
            build_routing_forest(adj, np.array([0]), rng=0)

    def test_duplicate_gateways_rejected(self, grid16):
        with pytest.raises(ValueError):
            build_routing_forest(grid16.comm_adj, np.array([0, 0]), rng=0)

    def test_children_lists_inverse_of_parent(self, grid16):
        gws = planned_gateways(4, 4, 1)
        forest = build_routing_forest(grid16.comm_adj, gws, rng=5)
        children = forest.children_lists()
        for p, kids in enumerate(children):
            for c in kids:
                assert forest.parent[c] == p


class TestDemand:
    def test_uniform_demand_range_and_gateways(self):
        rng = np.random.default_rng(1)
        gws = np.array([0, 5])
        demand = uniform_node_demand(10, rng, low=1, high=10, gateways=gws)
        assert (demand[gws] == 0).all()
        others = np.delete(demand, gws)
        assert (others >= 1).all() and (others <= 10).all()

    def test_aggregation_conserves_demand(self, grid16):
        """Demand entering the gateways equals demand generated."""
        gws = planned_gateways(4, 4, 2)
        forest = build_routing_forest(grid16.comm_adj, gws, rng=6)
        demand = uniform_node_demand(
            16, np.random.default_rng(2), gateways=gws
        )
        link_demand = aggregate_demand(forest, demand)
        gateway_children = [
            v for v in range(16) if forest.parent[v] in set(gws.tolist())
        ]
        assert sum(link_demand[v] for v in gateway_children) == demand.sum()

    def test_aggregation_equals_route_sum(self, grid16):
        """Link demand == sum of demands whose route crosses the link."""
        gws = planned_gateways(4, 4, 2)
        forest = build_routing_forest(grid16.comm_adj, gws, rng=7)
        demand = uniform_node_demand(16, np.random.default_rng(3), gateways=gws)
        link_demand = aggregate_demand(forest, demand)
        manual = np.zeros(16, dtype=int)
        for v in range(16):
            for hop in forest.route(v)[:-1]:
                manual[hop] += demand[v]
        assert np.array_equal(link_demand, manual)

    def test_gateway_demand_rejected(self, grid16):
        gws = planned_gateways(4, 4, 1)
        forest = build_routing_forest(grid16.comm_adj, gws, rng=8)
        demand = np.ones(16, dtype=int)
        with pytest.raises(ValueError, match="gateways"):
            aggregate_demand(forest, demand)

    def test_total_demand(self):
        assert total_demand(np.array([3, 0, 4])) == 7
        with pytest.raises(ValueError):
            total_demand(np.array([-1]))
