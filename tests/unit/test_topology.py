"""Topology substrate: regions, deployments, graphs, diameter, Network."""

import numpy as np
import pytest

from repro.topology.commgraph import communication_adjacency, degree_sequence, is_connected
from repro.topology.deployment import grid_positions, grid_step, line_positions, uniform_positions
from repro.topology.diameter import (
    eccentricities,
    hop_distance_matrix,
    interference_diameter,
    neighbor_density,
)
from repro.topology.network import grid_network, uniform_network
from repro.topology.regions import SquareRegion, density_for_side, side_for_density
from repro.topology.sensitivity import sensitivity_adjacency, supergraph_check


class TestRegions:
    def test_density_side_roundtrip(self):
        side = side_for_density(64, 2500.0)
        assert density_for_side(64, side) == pytest.approx(2500.0)

    def test_diameter_is_diagonal(self):
        region = SquareRegion(side=100.0)
        assert region.diameter == pytest.approx(100.0 * np.sqrt(2))

    def test_contains(self):
        region = SquareRegion(side=10.0)
        inside = np.array([[5.0, 5.0], [0.0, 10.0]])
        outside = np.array([[-1.0, 5.0], [5.0, 11.0]])
        assert region.contains(inside).all()
        assert not region.contains(outside).any()


class TestDeployments:
    def test_grid_positions_count_and_extent(self):
        region = SquareRegion(side=70.0)
        pos = grid_positions(8, 8, region)
        assert pos.shape == (64, 2)
        assert pos.min() == 0.0
        assert pos.max() == pytest.approx(70.0)

    def test_grid_step(self):
        region = SquareRegion(side=70.0)
        assert grid_step(8, 8, region) == pytest.approx(10.0)

    def test_grid_row_major_order(self):
        region = SquareRegion(side=10.0)
        pos = grid_positions(2, 3, region)
        # First row varies x, fixed y=0.
        assert np.allclose(pos[:3, 1], 0.0)
        assert pos[1, 0] > pos[0, 0]

    def test_uniform_positions_inside_region(self):
        region = SquareRegion(side=50.0)
        pos = uniform_positions(200, region, np.random.default_rng(1))
        assert region.contains(pos).all()

    def test_line_positions_spacing(self):
        pos = line_positions(5, 7.0)
        assert np.allclose(np.diff(pos[:, 0]), 7.0)
        assert np.allclose(pos[:, 1], 0.0)


class TestGraphs:
    def test_communication_adjacency_symmetric_no_diagonal(self, grid16):
        adj = grid16.comm_adj
        assert (adj == adj.T).all()
        assert not np.diagonal(adj).any()

    def test_asymmetric_powers_drop_unidirectional_links(self):
        # Two nodes: one strong, one very weak -> no bidirectional link.
        power = np.array([[1.0, 1e-7], [1e-11, 1.0]])
        adj = communication_adjacency(power, noise_mw=1e-9, beta=10.0)
        assert not adj[0, 1] and not adj[1, 0]

    def test_connectivity_detection(self):
        adj = np.zeros((4, 4), dtype=bool)
        adj[0, 1] = adj[1, 0] = True
        adj[2, 3] = adj[3, 2] = True
        assert not is_connected(adj)
        adj[1, 2] = adj[2, 1] = True
        assert is_connected(adj)

    def test_degree_sequence(self):
        adj = np.array(
            [[0, 1, 1], [1, 0, 0], [1, 0, 0]], dtype=bool
        )
        assert degree_sequence(adj).tolist() == [2, 1, 1]

    def test_sensitivity_supergraph_of_communication(self, grid16):
        assert supergraph_check(grid16.comm_adj, grid16.sens_adj)

    def test_sensitivity_threshold_monotone(self, grid16):
        loose = sensitivity_adjacency(grid16.power, 1e-12)
        tight = sensitivity_adjacency(grid16.power, 1e-6)
        assert (loose | tight == loose).all()  # tight ⊆ loose


class TestDiameter:
    def test_path_graph_distances(self):
        adj = np.zeros((4, 4), dtype=bool)
        for i in range(3):
            adj[i, i + 1] = adj[i + 1, i] = True
        dist = hop_distance_matrix(adj)
        assert dist[0, 3] == 3
        assert interference_diameter(adj) == 3

    def test_directed_asymmetry(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = adj[1, 2] = adj[2, 0] = True  # directed 3-cycle
        dist = hop_distance_matrix(adj)
        assert dist[0, 2] == 2
        assert dist[2, 0] == 1

    def test_disconnected_is_infinite(self):
        adj = np.zeros((2, 2), dtype=bool)
        assert interference_diameter(adj) == float("inf")

    def test_eccentricities(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = adj[1, 0] = adj[1, 2] = adj[2, 1] = True
        assert eccentricities(adj).tolist() == [2, 1, 2]

    def test_neighbor_density_is_average_degree(self):
        adj = np.array([[0, 1, 1], [1, 0, 0], [1, 0, 0]], dtype=bool)
        assert neighbor_density(adj) == pytest.approx(4 / 3)


class TestNetwork:
    def test_grid_network_validates(self, grid16):
        grid16.validate()

    def test_uniform_network_connected(self, uniform32):
        assert uniform32.is_connected()
        uniform32.validate()

    def test_power_matrix_shape(self, grid16):
        assert grid16.power.shape == (16, 16)

    def test_comm_graph_nx_matches_adjacency(self, grid16):
        graph = grid16.comm_graph_nx()
        assert graph.number_of_nodes() == 16
        assert graph.number_of_edges() == int(grid16.comm_adj.sum()) // 2

    def test_uniform_network_deterministic_given_seed(self):
        a = uniform_network(16, density_per_km2=3000, rng=7)
        b = uniform_network(16, density_per_km2=3000, rng=7)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.tx_power_mw, b.tx_power_mw)

    def test_mismatched_power_vector_rejected(self, grid16):
        from repro.topology.network import Network

        with pytest.raises(ValueError):
            Network(
                grid16.positions,
                grid16.tx_power_mw[:-1],
                grid16.radio,
                grid16.propagation,
                grid16.region,
            )

    def test_impossible_uniform_density_raises(self):
        with pytest.raises(RuntimeError):
            uniform_network(64, density_per_km2=5.0, rng=1, max_retries=3)
