"""E10 — online admission control around the measured stability knee.

E7 located the FDD closed loop's capacity knee on the paper's 8x8 planned
grid (λ* = 0.019 pkt/node/slot, overhead-priced); E10 offers *session*
load well past it — 1.5x to 3x — and compares what each admission
controller (:mod:`repro.traffic.admission`) makes of the overload.  The
workload is the flow-session layer of :mod:`repro.traffic.flows`: Poisson
session churn, heavy-tailed transfer sizes, a CBR/elastic class mix, and
per-flow token-bucket policing, calibrated so the long-run offered rate
equals the swept multiple of the knee.

Per operating point the table reports the user-facing SLA triple the
per-node sweeps of E7–E9 could not: session blocking probability,
admitted goodput, and the p99 over *per-flow* mean delays — plus the
backlog-slope stability verdict.  The expected headlines:

* ``none`` (differential baseline) diverges at every offered load past
  the knee — exactly the uncontrolled engine;
* ``knee-tracker`` — which only sees observable signals (arrivals,
  backlog, delivered counts) and is never told λ* — holds the backlog
  slope near zero at 1.5–3x overload while keeping admitted goodput at or
  above the uncontrolled loop's knee throughput, shedding the excess as
  session blocking instead of unbounded queueing;
* ``static-cap`` (told the knee) is the ceiling the tracker chases;
* ``backpressure`` throttles spatially — flows crossing hot links — and
  sits between ``none`` and the rate-cap controllers on bursty overloads.
"""

from __future__ import annotations

import math

from repro.analysis.tables import TextTable
from repro.core.fdd import fdd_on_network
from repro.experiments.common import (
    PAPER_PROTOCOL,
    ExperimentProfile,
    finish_obs,
    obs_for,
)
from repro.experiments.heavy_traffic import _grid_mesh
from repro.traffic import (
    EpochConfig,
    FlowConfig,
    FlowWorkload,
    StabilityMetrics,
    distributed_scheduler,
    make_controller,
    run_epochs,
    summarize_trace,
)
from repro.util.rng import spawn


def session_config(profile: ExperimentProfile, rate: float, n_sources: int) -> FlowConfig:
    """The E10 session population offering ``rate`` pkt/node/slot."""
    return FlowConfig.for_offered_rate(
        rate,
        n_sources,
        profile.traffic_epoch_slots,
        mean_size=profile.admission_mean_flow_size,
        cbr_fraction=profile.admission_cbr_fraction,
        elastic_rate=profile.admission_elastic_rate,
        max_size_factor=profile.admission_max_size_factor,
    )


def build_controller(profile: ExperimentProfile, name: str, n_sources: int):
    """Instantiate a controller by name, sizing the static cap from the
    E7-measured knee (the one controller that is *told* λ*)."""
    if name == "static-cap":
        return make_controller(name, cap=profile.admission_knee_rate * n_sources)
    return make_controller(name)


def admission_point(
    profile: ExperimentProfile,
    links,
    scheduler,
    config: EpochConfig,
    controller_name: str,
    rate: float,
    seed_index: int = 0,
    obs=None,
) -> tuple[StabilityMetrics, FlowWorkload]:
    """Run one (controller, offered-rate) operating point; return its
    metrics (session fields populated) and the finished workload."""
    n_sources = links.n_links
    key = ("admission-wl",) if seed_index == 0 else ("admission-wl", seed_index)
    workload = FlowWorkload(
        links,
        session_config(profile, rate, n_sources),
        controller=build_controller(profile, controller_name, n_sources),
        seed=spawn(profile.seed, *key),
    )
    trace = run_epochs(
        links, workload, scheduler, config, on_epoch=workload.observe, obs=obs
    )
    return summarize_trace(trace, rate, session=workload), workload


def admission_experiment(profile: ExperimentProfile) -> TextTable:
    """E10: admission controllers vs offered loads past the FDD knee."""
    network, gateways, links = _grid_mesh(profile)
    obs = obs_for(profile, "admission")
    # The early-stop guard is looser than E7's (8x vs 4x the mean epoch
    # arrivals): a controller that caps *at* the estimated knee holds the
    # pre-control backlog as a standing, zero-slope queue — bounded, and
    # exactly what the stability verdict should judge, not the guard.
    # The demand cap bounds the backlog snapshot the scheduler sees in
    # overload: FDD's air time scales with the scheduled demand vector, and
    # cyclic replay re-serves a capped hot link every schedule cycle anyway,
    # so the cap trims protocol overhead in the overloaded regime without
    # costing served capacity (per-link backlogs at stable operating points
    # sit far below it).
    config = EpochConfig(
        epoch_slots=profile.traffic_epoch_slots,
        n_epochs=profile.admission_epochs,
        slot_seconds=profile.traffic_slot_seconds,
        divergence_factor=8.0,
        demand_cap=max(1, profile.traffic_epoch_slots // 10),
    )
    knee = profile.admission_knee_rate

    table = TextTable(
        [
            "controller",
            "offered (x knee)",
            "lambda (pkt/node/slot)",
            "goodput (pkt/slot)",
            "blocking (%)",
            "flow p99 delay (slots)",
            "mean delay (slots)",
            "backlog growth (pkt/epoch)",
            "overhead (slots/epoch)",
            "stable",
        ],
        title="Admission control at the stability knee — FDD (overhead-priced) "
        f"on the 8x8 planned grid, density {profile.traffic_density:g}/km^2, "
        f"flow sessions (Poisson churn, Pareto sizes, "
        f"{profile.admission_cbr_fraction:.0%} CBR), "
        f"knee lambda*={knee:g} from E7, "
        f"T={profile.traffic_epoch_slots} slots/epoch, "
        f"{profile.admission_epochs} epochs",
    )

    for name in profile.admission_controllers:
        for factor in profile.admission_load_factors:
            # A fresh overhead-priced FDD scheduler per operating point, on
            # E7's derivation path: identical protocol behaviour, and every
            # controller faces the same arrival sample path (common random
            # numbers — SLA differences are controller policy, not luck).
            scheduler = distributed_scheduler(
                network,
                fdd_on_network,
                config=PAPER_PROTOCOL,
                seed=spawn(profile.seed, "traffic-fdd"),
            )
            point, workload = admission_point(
                profile, links, scheduler, config, name, knee * factor, obs=obs
            )
            p99 = point.flow_p99_delay
            table.add_row(
                name,
                f"{factor:g}x",
                f"{point.offered_rate:g}",
                f"{point.admitted_goodput:.3f}",
                f"{point.blocking_probability:.0%}",
                "-" if math.isnan(p99) else f"{p99:.0f}",
                f"{point.mean_delay:.1f}",
                f"{point.backlog_slope:+.1f}",
                f"{point.overhead_slots:.1f}",
                "yes" if point.stable else "NO",
            )
    finish_obs(obs)
    return table
