"""STDMA scheduling substrate: schedules, feasibility, centralized baselines.

Contains the schedule data model shared by all algorithms, the incremental
SINR feasibility bookkeeping, the centralized GreedyPhysical algorithm of
Brar et al. (MobiCom 2006) — the baseline the paper compares against — and
the worst-case serialized schedule used as the normalization in the paper's
schedule-length figures.
"""

from repro.scheduling.links import LinkSet, forest_link_set
from repro.scheduling.schedule import Schedule, Slot
from repro.scheduling.feasibility import (
    SlotState,
    schedule_is_feasible,
    schedule_rates,
)
from repro.scheduling.orderings import (
    order_by_id,
    order_by_demand,
    order_by_length,
    order_by_interference_number,
    EDGE_ORDERINGS,
)
from repro.scheduling.greedy_physical import greedy_physical
from repro.scheduling.greedy_rate import greedy_rate, standalone_rates
from repro.scheduling.linear import linear_schedule
from repro.scheduling.metrics import improvement_over_linear, verify_schedule
from repro.scheduling.optimal import (
    OptimalResult,
    enumerate_maximal_feasible_sets,
    optimal_schedule,
)

__all__ = [
    "LinkSet",
    "forest_link_set",
    "Schedule",
    "Slot",
    "SlotState",
    "schedule_is_feasible",
    "schedule_rates",
    "order_by_id",
    "order_by_demand",
    "order_by_length",
    "order_by_interference_number",
    "EDGE_ORDERINGS",
    "greedy_physical",
    "greedy_rate",
    "standalone_rates",
    "linear_schedule",
    "improvement_over_linear",
    "verify_schedule",
    "OptimalResult",
    "enumerate_maximal_feasible_sets",
    "optimal_schedule",
]
