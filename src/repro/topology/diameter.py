"""Interference diameter (Definition 2) and neighbor density (Definition 6).

The interference diameter ``ID(GS)`` — the maximum directed hop distance in
the sensitivity graph — lower-bounds the ``K`` parameter of the SCREAM
primitive: a K-slot SCREAM implements a correct network-wide OR iff
``K >= ID(GS)``.  Exact values come from all-pairs BFS; the closed-form
bounds of Theorems 2 and 3 live in :mod:`repro.analysis.bounds`.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path


def hop_distance_matrix(adjacency: np.ndarray) -> np.ndarray:
    """All-pairs directed hop distances (``inf`` where unreachable).

    ``out[u, v]`` is the minimum number of directed edges on a path from
    ``u`` to ``v``; 0 on the diagonal.
    """
    adj = np.asarray(adjacency, dtype=bool)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {adj.shape}")
    if adj.shape[0] == 0:
        return np.zeros((0, 0))
    sparse = csr_matrix(adj.astype(np.int8))
    return shortest_path(sparse, method="D", directed=True, unweighted=True)


def interference_diameter(adjacency: np.ndarray) -> float:
    """``ID(GS)``: max hop distance over all ordered node pairs.

    Returns ``inf`` when the graph is not strongly connected, matching
    Definition 2.  A single-node graph has diameter 0.
    """
    dist = hop_distance_matrix(adjacency)
    if dist.size == 0:
        return 0.0
    longest = dist.max()
    return float(longest)


def eccentricities(adjacency: np.ndarray) -> np.ndarray:
    """Per-node eccentricity: max hop distance from the node to any other."""
    dist = hop_distance_matrix(adjacency)
    if dist.size == 0:
        return np.zeros(0)
    return dist.max(axis=1)


def neighbor_density(adjacency: np.ndarray) -> float:
    """Average node degree ``ρ(G)`` of an undirected graph (Definition 6)."""
    adj = np.asarray(adjacency, dtype=bool)
    n = adj.shape[0]
    if n == 0:
        return 0.0
    return float(adj.sum() / n)
