"""PacketRuntime: protocol primitives executed by per-node programs.

Implements the :class:`~repro.core.runtime.Runtime` interface by running the
generator programs of :mod:`repro.simulation.programs` on the lock-step
engine for every primitive invocation.  Nothing is computed globally: OR
results emerge from carrier-sensing floods, election winners from bitwise
elimination, handshake outcomes from actual data/ACK frames decoding (or
not) on the medium.

This substrate is orders of magnitude slower than
:class:`~repro.core.fast_runtime.FastRuntime` and exists to *validate* it:
integration tests run both on the same scenarios and assert identical
schedules and identical step tallies.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import NO_FAULTS, FaultConfig, ProtocolConfig
from repro.core.runtime import Runtime
from repro.phy.interference import PhysicalInterferenceModel
from repro.simulation.engine import SyncEngine
from repro.simulation.medium import Medium
from repro.simulation.programs import (
    handshake_program,
    leader_elect_program,
    scream_program,
)
from repro.topology.network import Network
from repro.util.rng import ensure_rng


class PacketRuntime(Runtime):
    """Execution substrate backed by the packet-level engine."""

    def __init__(
        self,
        model: PhysicalInterferenceModel,
        ids: np.ndarray,
        config: ProtocolConfig,
        faults: FaultConfig = NO_FAULTS,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        self._model = model
        self._ids = np.asarray(ids, dtype=np.int64)
        self.config = config
        if self._ids.shape != (model.n_nodes,):
            raise ValueError("ids must have one entry per node")
        self._medium = Medium(
            model,
            rng=ensure_rng(rng) if not faults.is_faultless else None,
            cs_miss_prob=faults.scream_miss_prob,
        )
        self._engine = SyncEngine(self._medium)

    @classmethod
    def for_network(
        cls,
        network: Network,
        config: ProtocolConfig,
        faults: FaultConfig = NO_FAULTS,
        rng: np.random.Generator | int | None = None,
        ids: np.ndarray | None = None,
    ) -> "PacketRuntime":
        node_ids = (
            np.arange(network.n_nodes, dtype=np.int64) if ids is None else ids
        )
        return cls(network.model, node_ids, config, faults=faults, rng=rng)

    @property
    def n_nodes(self) -> int:
        return self._model.n_nodes

    @property
    def ids(self) -> np.ndarray:
        return self._ids

    @property
    def slots_on_air(self) -> int:
        """Total medium slots actually resolved (engine ground truth)."""
        return self._engine.slots_elapsed

    def scream(self, inputs: np.ndarray) -> np.ndarray:
        arr = np.asarray(inputs, dtype=bool)
        self.tally.add_scream(self.config.k)
        programs = [
            scream_program(i, bool(arr[i]), self.config.k)
            for i in range(self.n_nodes)
        ]
        results = self._engine.run(programs)
        return np.asarray(results, dtype=bool)

    def leader_elect(self, participating: np.ndarray) -> np.ndarray:
        part = np.asarray(participating, dtype=bool)
        self.tally.elections += 1
        for _ in range(self.config.id_bits):
            self.tally.add_scream(self.config.k)
        programs = [
            leader_elect_program(
                i,
                int(self._ids[i]),
                bool(part[i]),
                self.config.id_bits,
                self.config.k,
            )
            for i in range(self.n_nodes)
        ]
        winners = np.asarray(self._engine.run(programs), dtype=bool)
        if int(winners.sum()) > 1:
            self.tally.multi_winner_elections += 1
        return winners

    def handshake(self, senders: np.ndarray, receivers: np.ndarray) -> np.ndarray:
        snd = np.asarray(senders, dtype=np.intp)
        rcv = np.asarray(receivers, dtype=np.intp)
        self.tally.add_handshake()
        if snd.size == 0:
            return np.zeros(0, dtype=bool)

        head_peer: dict[int, int] = {}
        for s, r in zip(snd, rcv):
            if int(s) in head_peer:
                raise ValueError(f"node {int(s)} heads two links in one handshake")
            head_peer[int(s)] = int(r)
        tails = {int(r) for r in rcv}

        programs = [
            handshake_program(i, head_peer.get(i), i in tails)
            for i in range(self.n_nodes)
        ]
        results = self._engine.run(programs)
        return np.asarray([results[int(s)] for s in snd], dtype=bool)
