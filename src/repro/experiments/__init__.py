"""Experiment harnesses: one runner per paper figure/table.

Each harness regenerates the rows/series of one evaluation artifact of the
paper (see DESIGN.md §4 for the index) and renders them as text tables.
Run them all with ``python -m repro.experiments all`` or individually, e.g.
``python -m repro.experiments grid``.
"""

from repro.experiments.common import (
    ExperimentProfile,
    QUICK,
    FULL,
    grid_scenario,
    uniform_scenario,
    Scenario,
)
from repro.experiments.schedule_quality import (
    grid_schedule_experiment,
    uniform_schedule_experiment,
)
from repro.experiments.exec_time import (
    exec_time_experiment,
    clock_skew_experiment,
)
from repro.experiments.mote_detection import (
    mote_error_experiment,
    mote_rssi_experiment,
)
from repro.experiments.theory import (
    id_scaling_experiment,
    fdd_equivalence_experiment,
    impossibility_demo,
    complexity_experiment,
)
from repro.experiments.approximation import approximation_experiment
from repro.experiments.heavy_traffic import (
    heavy_traffic_experiment,
    incremental_experiment,
)
from repro.experiments.ablations import (
    truncated_k_experiment,
    orderings_experiment,
    seal_rule_experiment,
    uncompensated_skew_experiment,
)

__all__ = [
    "ExperimentProfile",
    "QUICK",
    "FULL",
    "grid_scenario",
    "uniform_scenario",
    "Scenario",
    "grid_schedule_experiment",
    "uniform_schedule_experiment",
    "exec_time_experiment",
    "clock_skew_experiment",
    "mote_error_experiment",
    "mote_rssi_experiment",
    "id_scaling_experiment",
    "fdd_equivalence_experiment",
    "impossibility_demo",
    "complexity_experiment",
    "approximation_experiment",
    "heavy_traffic_experiment",
    "incremental_experiment",
    "truncated_k_experiment",
    "orderings_experiment",
    "seal_rule_experiment",
    "uncompensated_skew_experiment",
]
