"""The shared round machinery of PDD and FDD (Section III).

Both protocols run the same main loop: elect a controller for the slot,
greedily grow the slot's link set in steps (tentative actives, concurrent
two-way handshakes, SCREAM veto), seal the slot, update demands, and release
control when the controller's demand is met.  They differ only in
``SelectActive`` — probabilistic for PDD, election-based for FDD — which is
injected as a callable.

The node state machine follows Figure 1 of the paper; the pseudocode
ambiguities and our resolutions are documented in DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.config import NO_FAULTS, FaultConfig, ProtocolConfig
from repro.core.events import StepTally
from repro.core.runtime import Runtime
from repro.core.states import NodeState
from repro.scheduling.links import LinkSet
from repro.scheduling.schedule import Schedule, Slot
from repro.util.rng import ensure_rng

#: SelectActive strategy: given (state array, runtime, rng), return the mask
#: of nodes that turn ACTIVE this step.  Must only select DORMANT nodes.
SelectActiveFn = Callable[[np.ndarray, Runtime, np.random.Generator], np.ndarray]

#: Observer hook: called as ``observer(event, state_snapshot)`` at protocol
#: checkpoints.  Events: "election", "slot-reset", "select", "handshake",
#: "resolve", "seal", "demand-update", "terminate".  The snapshot is a copy;
#: observers cannot perturb the run.
ObserverFn = Callable[[str, np.ndarray], None]

#: Hard cap on slot-construction steps; hitting it indicates a logic error
#: (with any p_active > 0 every dormant node is eventually selected).
MAX_STEPS_PER_SLOT = 100_000


@dataclass
class RoundRecord:
    """Diagnostics for one protocol round (= one schedule slot)."""

    controllers: tuple[int, ...]
    members: tuple[int, ...]
    steps: int


@dataclass
class ProtocolResult:
    """Outcome of a full distributed protocol execution."""

    schedule: Schedule
    tally: StepTally
    rounds: int
    terminated: bool
    round_records: list[RoundRecord] = field(default_factory=list)

    @property
    def schedule_length(self) -> int:
        return self.schedule.length


def run_protocol(
    links: LinkSet,
    runtime: Runtime,
    config: ProtocolConfig,
    select_active: SelectActiveFn,
    rng: np.random.Generator | int | None = None,
    record_rounds: bool = False,
    observer: ObserverFn | None = None,
) -> ProtocolResult:
    """Execute the distributed scheduling main loop until termination.

    Parameters
    ----------
    links:
        Forest link set: one link per head node (the protocols' one-to-one
        node/edge mapping).  ``links.ids`` must agree with the runtime's
        per-node IDs on head nodes.
    runtime:
        Execution substrate providing scream / leader_elect / handshake.
    config:
        Protocol constants (K, id_bits, sealing rule, ...).
    select_active:
        The protocol-specific ``SelectActive`` strategy.
    rng:
        Randomness for the strategy (PDD's coin flips).
    record_rounds:
        Keep per-round diagnostics (controllers, members, step counts).
    observer:
        Optional hook receiving (event, state snapshot) at protocol
        checkpoints; used by tests to validate Figure 1's state machine.

    Returns
    -------
    ProtocolResult
        The computed schedule (one slot per round), consumed step tally, and
        diagnostics.  ``terminated`` is False only if the ``max_rounds``
        safety cap fired.
    """
    n = runtime.n_nodes
    generator = ensure_rng(rng)
    _check_link_ids(links, runtime)

    link_of_node = np.full(n, -1, dtype=np.intp)
    for k, head in enumerate(links.heads):
        link_of_node[head] = k

    state = np.full(n, NodeState.COMPLETE, dtype=np.int8)
    remaining = np.zeros(n, dtype=np.int64)
    with_demand = links.heads[links.demand > 0]
    state[with_demand] = NodeState.DORMANT
    remaining[with_demand] = links.demand[links.demand > 0]

    schedule = Schedule(link_set=links)
    records: list[RoundRecord] = []
    max_rounds = (
        config.max_rounds
        if config.max_rounds is not None
        else 10 * max(links.total_demand, 1) + 10
    )

    released = True
    terminated = False
    rounds = 0
    while rounds < max_rounds:
        if released:
            participating = state != NodeState.COMPLETE
            winners = runtime.leader_elect(participating)
            state[winners] = NodeState.CONTROL
            runtime.sync()
            term_view = runtime.scream(winners)
            if not term_view.any():
                state[:] = NodeState.TERMINATE
                terminated = True
                if observer is not None:
                    observer("terminate", state.copy())
                break
            if observer is not None:
                observer("election", state.copy())

        members, steps = _greedy_schedule_slot(
            state,
            links,
            link_of_node,
            runtime,
            config,
            select_active,
            generator,
            observer,
        )
        rounds += 1
        runtime.tally.rounds += 1
        slot = Slot(links=[int(link_of_node[m]) for m in members])
        schedule.slots.append(slot)

        remaining[members] -= 1
        controllers = np.flatnonzero(state == NodeState.CONTROL)
        allocated = members[state[members] == NodeState.ALLOCATED]
        state[allocated[remaining[allocated] <= 0]] = NodeState.COMPLETE

        # Control-release SCREAM: the controller(s) scream satisfaction.
        release_inputs = np.zeros(n, dtype=bool)
        release_inputs[controllers[remaining[controllers] <= 0]] = True
        runtime.sync()
        release_view = runtime.scream(release_inputs)
        released = bool(release_view.any())
        if released:
            done = controllers[remaining[controllers] <= 0]
            pending = controllers[remaining[controllers] > 0]
            state[done] = NodeState.COMPLETE
            state[pending] = NodeState.DORMANT
        if observer is not None:
            observer("demand-update", state.copy())

        if record_rounds:
            records.append(
                RoundRecord(
                    controllers=tuple(int(c) for c in controllers),
                    members=tuple(int(m) for m in members),
                    steps=steps,
                )
            )

    return ProtocolResult(
        schedule=schedule,
        tally=runtime.tally,
        rounds=rounds,
        terminated=terminated,
        round_records=records,
    )


def _greedy_schedule_slot(
    state: np.ndarray,
    links: LinkSet,
    link_of_node: np.ndarray,
    runtime: Runtime,
    config: ProtocolConfig,
    select_active: SelectActiveFn,
    rng: np.random.Generator,
    observer: ObserverFn | None = None,
) -> tuple[np.ndarray, int]:
    """Grow one slot greedily; return (member nodes, construction steps).

    Implements the ``GreedyScheduleSlot`` subroutine: every node outside
    COMPLETE/CONTROL returns to DORMANT, then steps of
    SelectActive -> handshake -> SCREAM veto -> SCREAM seal-check repeat
    until no further actives can arise.
    """
    # Enum member lookups go through the metaclass and are measurable inside
    # this innermost loop; bind the state codes once.
    DORMANT = int(NodeState.DORMANT)
    CONTROL = int(NodeState.CONTROL)
    ACTIVE = int(NodeState.ACTIVE)
    ALLOCATED = int(NodeState.ALLOCATED)
    TRIED = int(NodeState.TRIED)
    COMPLETE = int(NodeState.COMPLETE)

    reset = (state != COMPLETE) & (state != CONTROL)
    state[reset] = DORMANT
    if observer is not None:
        observer("slot-reset", state.copy())

    heads, tails = links.heads, links.tails
    steps = 0
    while True:
        steps += 1
        if steps > MAX_STEPS_PER_SLOT:
            raise RuntimeError(
                "slot construction exceeded the step cap; "
                "SelectActive appears unable to drain the dormant pool"
            )
        runtime.tally.steps += 1

        activated = select_active(state, runtime, rng)
        state[activated] = ACTIVE
        if observer is not None:
            observer("select", state.copy())

        # Handshake time step: every tentative/confirmed slot member
        # exercises its link concurrently.
        runtime.sync()
        hs_nodes = np.flatnonzero(
            (state == CONTROL) | (state == ALLOCATED) | (state == ACTIVE)
        )
        link_idx = link_of_node[hs_nodes]
        success = runtime.handshake(heads[link_idx], tails[link_idx])
        failed_nodes = hs_nodes[~success]

        # Verification time step: confirmed members (ALLOCATED|CONTROL)
        # scream their own handshake failure — veto power.
        veto_inputs = np.zeros(state.shape[0], dtype=bool)
        confirmed_failed = failed_nodes[
            (state[failed_nodes] == ALLOCATED) | (state[failed_nodes] == CONTROL)
        ]
        veto_inputs[confirmed_failed] = True
        veto = runtime.scream(veto_inputs)
        if confirmed_failed.size:
            runtime.tally.veto_steps += 1

        # Actives resolve: join unless their own handshake failed or they
        # hear a veto (DESIGN.md §2 on the pseudocode's HSfail overwrite).
        # failed_nodes is a subset of hs_nodes, so membership tests reuse
        # the per-node failure mask instead of np.isin's sort-based path.
        active_nodes = np.flatnonzero(state == ACTIVE)
        failed_mask = np.zeros(state.shape[0], dtype=bool)
        failed_mask[failed_nodes] = True
        fail = failed_mask[active_nodes] | veto[active_nodes]
        state[active_nodes[fail]] = TRIED
        state[active_nodes[~fail]] = ALLOCATED
        if observer is not None:
            observer("resolve", state.copy())

        # Seal-check SCREAM (DESIGN.md §2 on `stillActives`): by default a
        # node contributes "I could still become active" (DORMANT); the
        # alternative reading contributes "I was active this step".
        if config.seal_on_idle_step:
            contrib = np.zeros(state.shape[0], dtype=bool)
            contrib[active_nodes] = True
        else:
            contrib = state == DORMANT
        runtime.sync()
        still = runtime.scream(contrib)
        if not still.any():
            if observer is not None:
                observer("seal", state.copy())
            break

    members = np.flatnonzero((state == ALLOCATED) | (state == CONTROL))
    return members, steps


def run_on_network(
    network,
    links: LinkSet,
    runner: Callable[..., ProtocolResult],
    config: ProtocolConfig | None = None,
    faults: FaultConfig = NO_FAULTS,
    rng: np.random.Generator | int | None = None,
    record_rounds: bool = False,
    model=None,
) -> ProtocolResult:
    """Shared body of the ``fdd/pdd/afdd_on_network`` convenience wrappers.

    Builds a fresh :class:`~repro.core.fast_runtime.FastRuntime` on
    ``network`` and hands it to ``runner`` (``run_fdd`` / ``run_pdd`` /
    ``run_afdd``), deriving the runtime and protocol rng substreams
    exactly as the wrappers always did (``spawn(root, "runtime")`` /
    ``spawn(root, "protocol")``), so traces are bit-identical to the
    previous per-protocol copies.  ``model`` optionally replaces the
    network's feasibility oracle (e.g. a guard-margin budgeted oracle from
    the sharded epoch engine); handshake outcomes then reflect the
    substituted model.
    """
    # Imported here: fast_runtime is a sibling that higher layers pull in
    # through the protocol wrappers, keeping this module runtime-agnostic.
    from repro.core.fast_runtime import FastRuntime
    from repro.util.rng import ensure_rng, spawn

    cfg = config or ProtocolConfig()
    root = ensure_rng(rng)
    runtime = FastRuntime.for_network(
        network,
        cfg,
        faults=faults,
        rng=spawn(root, "runtime"),
        model=model,
    )
    return runner(
        links, runtime, cfg, rng=spawn(root, "protocol"), record_rounds=record_rounds
    )


def _check_link_ids(links: LinkSet, runtime: Runtime) -> None:
    """Links' head IDs must agree with the runtime's node IDs (elections)."""
    runtime_ids = getattr(runtime, "ids", None)
    if runtime_ids is None:
        return
    expected = np.asarray(runtime_ids)[links.heads]
    if not np.array_equal(expected, links.ids):
        raise ValueError(
            "LinkSet ids disagree with runtime node ids on head nodes; "
            "leader election and edge ordering would diverge"
        )
