"""Mica2 mote SCREAM testbed model (Section V of the paper).

The paper validates the SCREAM primitive's collision resilience on Crossbow
Mica2 motes (CC1000 radio, TinyOS): an Initiator screams every 100 ms, six
Relays re-scream on detection, and a Monitor two hops from the Initiator
detects screams by comparing a *moving average* of RSSI samples against a
-60 dBm threshold.  The measured quantity is the percentage of inter-scream
intervals outside ±5% of the 100 ms period, as a function of SCREAM size.

This subpackage reproduces that experiment in simulation: a continuous-time
RSSI sampling model (point samples on each mote's own sampling grid, powers
of concurrent transmissions adding in mW, dB-domain measurement noise and
dB-domain moving average — the processing the mote software performs).
"""

from repro.mote.cc1000 import CC1000, MoteLinkBudget
from repro.mote.rssi import (
    rssi_dbm,
    moving_average,
    threshold_crossings,
    TransmissionInterval,
)
from repro.mote.experiment import (
    ScreamExperiment,
    ExperimentResult,
    run_detection_error_sweep,
    miss_probability,
    monitor_rssi_trace,
)

__all__ = [
    "CC1000",
    "MoteLinkBudget",
    "rssi_dbm",
    "moving_average",
    "threshold_crossings",
    "TransmissionInterval",
    "ScreamExperiment",
    "ExperimentResult",
    "run_detection_error_sweep",
    "miss_probability",
    "monitor_rssi_trace",
]
