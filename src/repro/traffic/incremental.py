"""Incremental epoch rescheduling: schedule caching, drift metrics, patching.

The paper's economy argument is that SCREAM makes rescheduling cheap enough
to re-run "whenever traffic demands change" — but the epoch loop of
:mod:`repro.traffic.epoch` re-runs the full scheduler every epoch even when
backlogs barely drift, so distributed protocols pay their TimingModel-priced
air time T times for near-identical demand vectors.  This module amortizes
that cost the way heavy-traffic schedulers on interfering routes amortize
recomputation (cf. arXiv:1106.1590, arXiv:1208.0902):

* :class:`ScheduleCache` wraps any
  :data:`~repro.traffic.epoch.EpochSchedulerFn`.  It snapshots the demand
  vector each time the wrapped scheduler runs, and on later epochs measures
  the *drift* of the new backlog snapshot from that baseline (normalized
  L1 or L-infinity distance).  While drift stays under a configurable
  threshold the cached :class:`~repro.traffic.epoch.EpochSchedule` is
  reused at **zero protocol overhead** — no SCREAMs, no control air time.
* On a cache miss the ``patch`` policy first tries to *repair* the cached
  schedule in place: links whose backlog emptied are dropped from their
  slots (removal can only reduce interference, so feasibility is
  preserved), and newly backlogged links are greedily inserted into
  existing slots wherever the incremental SINR feasibility check
  (:class:`~repro.scheduling.feasibility.SlotState`) still passes.  Only
  when some newly backlogged link fits no slot does the cache fall back to
  a full re-run of the wrapped scheduler (paying its overhead once).

Drift is intentionally measured against the snapshot the cached schedule
was *built for*, not the previous epoch's — slow cumulative drift trips the
threshold instead of being rebased away.  At packet granularity a Poisson
workload wiggles hard epoch to epoch (normalized L1 around 0.5–1.0 even at
stable rates) while the demand *pattern* the schedule encodes barely moves;
what determines whether reuse is *safe* is not the wiggle itself but the
cached schedule's **service headroom** — how many full cycles of it fit in
an epoch.  A schedule that cycles 4x per epoch over-serves every link and
shrugs off large drift; a schedule that barely fits must track demand
closely.  :class:`ScheduleCache` therefore scales its drift threshold by
the measured headroom (when told the epoch length), which engages caching
aggressively at light load and conservatively at the stability knee — the
measured behaviour that keeps the knee of a cached FDD where the
re-run-every-epoch knee sits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import phase
from repro.phy.interference import PhysicalInterferenceModel
from repro.scheduling.feasibility import SlotState, slots_can_add
from repro.scheduling.links import LinkSet
from repro.scheduling.schedule import Schedule, Slot
from repro.traffic.epoch import EpochSchedule, EpochSchedulerFn

#: Rescheduling policies understood by the epoch loop.
#:
#: * ``"always"``        — re-run the scheduler every epoch (PR-1 behaviour);
#: * ``"drift-threshold"`` — reuse the cached schedule while drift stays under
#:   the threshold, full re-run otherwise;
#: * ``"patch"``         — like ``drift-threshold``, but on a miss first try
#:   to patch the cached schedule and only re-run when patching fails.
RESCHEDULE_POLICIES = ("always", "drift-threshold", "patch")

#: Default *base* drift threshold (normalized L1), before headroom scaling.
#: Chosen from measured drift on the 8x8 grid: with the threshold scaled by
#: the cached schedule's cycles-per-epoch headroom, 0.35 reuses schedules
#: freely at light load (headroom 4-5x lifts it past the 0.8-1.1 Poisson
#: wiggle) yet recomputes near the knee (headroom ~1 keeps it strict).
DEFAULT_DRIFT_THRESHOLD = 0.35


def drift_l1(current: np.ndarray, baseline: np.ndarray) -> float:
    """Normalized L1 distance: ``|current - baseline|_1 / max(|baseline|_1, 1)``.

    Measures the total packet mass that moved relative to the demand the
    cached schedule was built for.  0 means identical vectors; 1 means the
    change is as large as the baseline itself.
    """
    cur = np.asarray(current, dtype=np.int64)
    base = np.asarray(baseline, dtype=np.int64)
    return float(np.abs(cur - base).sum() / max(base.sum(), 1))


def drift_linf(current: np.ndarray, baseline: np.ndarray) -> float:
    """Normalized L-infinity distance: worst per-link change over the
    baseline's largest backlog, ``max|current - baseline| / max(max(baseline), 1)``.

    Sensitive to a single link's demand moving even when the aggregate is
    quiet — the right metric when one hot link dominates feasibility.
    """
    cur = np.asarray(current, dtype=np.int64)
    base = np.asarray(baseline, dtype=np.int64)
    if cur.size == 0:
        return 0.0
    return float(np.abs(cur - base).max() / max(base.max(), 1))


#: Drift metrics selectable through :class:`~repro.traffic.epoch.EpochConfig`.
DRIFT_METRICS = {"l1": drift_l1, "linf": drift_linf}


@dataclass(frozen=True)
class CacheDecision:
    """What the cache did for one scheduling request."""

    epoch: int
    drift: float  # measured drift vs the cached baseline (inf when no cache)
    hit: bool  # cached schedule reused verbatim, zero overhead
    patched: bool  # cached schedule repaired in place, zero overhead
    recomputed: bool  # wrapped scheduler re-run, its overhead charged


@dataclass
class CacheStats:
    """Cumulative cache accounting across an epoch-loop run."""

    requests: int = 0
    hits: int = 0
    patches: int = 0
    recomputes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered from cache (hit or patch)."""
        if self.requests == 0:
            return 0.0
        return (self.hits + self.patches) / self.requests


def patch_schedule(
    cached: Schedule,
    links: LinkSet,
    model: PhysicalInterferenceModel,
    max_length: int | None = None,
    table=None,
) -> Schedule | None:
    """Repair a cached schedule for a new demand vector, or ``None``.

    Without a ``table`` (the fixed-rate seed contract) the repaired
    schedule satisfies the new demand *exactly* — every link appears in
    exactly ``demand[k]`` slots, just as a fresh
    :func:`~repro.scheduling.greedy_physical.greedy_physical` run would
    allocate.  With a :class:`~repro.phy.radio.RateTable` the match is in
    **packets**: each membership is worth its slot's SINR-selected rate,
    and the repair guarantees every link's summed packet capacity covers
    its demand (over-grant bounded by one tier's worth of rounding — rates
    are integral).  Either way the edits are all feasibility-preserving:

    1. *Drop emptied and over-allocated memberships*: links whose demand
       fell lose memberships, latest slots first (removing a transmitter
       only lowers interference at every remaining receiver, so a feasible
       slot stays feasible); emptied links vanish entirely and slots left
       empty are deleted, shortening the cycle.  Under a ``table`` each
       kept membership retires demand at the *cached* slot's rate — a
       lower bound on its post-trim rate, since removals only raise SINR —
       so trimming never cuts below the new demand.
    2. *Insert under-allocated links*: newly backlogged links, and links
       whose demand grew past their cached capacity, are added greedily
       to the earliest slots where :meth:`SlotState.can_add` says the slot
       — including its ACK traffic — stays SINR-feasible (at most one
       membership per slot, mirroring the greedy invariant), with new
       slots opened at the end for whatever the packed slots cannot
       absorb, exactly as the greedy algorithm itself overflows.  Each
       insertion retires the rate the slot actually grants the new member.
    3. *Top-up* (``table`` only): an insertion can demote *other* members'
       tiers, shrinking capacity pass 2 had already counted.  Capacity is
       re-read from the final member sets and any shortfall is covered by
       fresh slots only — a fresh slot cannot degrade anyone, and grants
       its link the full standalone rate, so one round closes every gap.
       Under the degenerate table every rate is 1, passes 1–2 reduce to
       the membership arithmetic above, and pass 3 finds nothing to do —
       patching is bit-identical to the fixed-rate path.

    Maintaining demand-matched capacity is what keeps reuse *stable*: a
    patch that only guaranteed one slot per new link would serve stale
    demand proportions epoch after epoch and quietly starve growing queues.

    Returns ``None`` — the caller falls back to a full re-run — when some
    link is infeasible even alone (not a communication edge), or when the
    patched schedule would exceed ``max_length`` slots: repeated patching
    degrades slot packing relative to a fresh run, and a cycle longer than
    the epoch's playable window could not even serve every link once.  The
    cached schedule is never mutated.
    """
    if cached.link_set.n_links != links.n_links:
        raise ValueError(
            f"cannot patch a schedule for {cached.link_set.n_links} links "
            f"onto a {links.n_links}-link set; the link universe must be fixed"
        )
    demand = np.asarray(links.demand, dtype=np.int64)

    # Value of every cached membership, in packets (all ones when rate-
    # blind).  Computed against the *cached* member sets once, up front.
    if table is None:
        cached_rates = [np.ones(len(slot), dtype=np.int64) for slot in cached.slots]
    else:
        cached_rates = []
        for slot in cached.slots:
            idx = slot.as_array()
            if idx.size == 0:
                cached_rates.append(np.empty(0, dtype=np.int64))
            else:
                cached_rates.append(
                    model.link_rates(links.heads[idx], links.tails[idx], table)
                )

    # 1. Keep memberships until each link's demand is covered, earliest
    #    slots first (greedy packed the earliest slots densest; trimming
    #    from the tail preserves that structure), then rebuild per-slot
    #    feasibility state.
    keep_budget = demand.copy()
    states: list[SlotState] = []
    slots: list[Slot] = []
    allocated = np.zeros(links.n_links, dtype=np.int64)
    for slot, slot_rates in zip(cached.slots, cached_rates):
        kept = [
            (k, int(rate))
            for k, rate in zip(slot.links, slot_rates)
            if keep_budget[k] > 0
        ]
        if not kept:
            continue
        state = SlotState(model)
        new_slot = Slot()
        for k, rate in kept:
            state.add(int(links.heads[k]), int(links.tails[k]))
            new_slot.add(k)
            keep_budget[k] -= rate
            allocated[k] += rate
        states.append(state)
        slots.append(new_slot)

    def open_fresh_slot(k: int, sender: int, receiver: int) -> int | None:
        """Append a singleton slot for ``k``; return its granted rate."""
        state = SlotState(model)
        if not state.try_add(sender, receiver):
            return None  # infeasible even alone: not a communication edge
        slot = Slot()
        slot.add(k)
        states.append(state)
        slots.append(slot)
        if table is None:
            return 1
        return int(state.member_rates(table)[0])

    # 2. Greedily insert each link's remaining demand (largest deficit
    #    first: the hardest-to-serve links get first pick of the room),
    #    opening fresh slots for the overflow.
    deficit = demand - allocated
    for k in sorted(np.flatnonzero(deficit > 0), key=lambda k: -int(deficit[k])):
        k = int(k)
        sender, receiver = int(links.heads[k]), int(links.tails[k])
        remaining = int(deficit[k])
        if states:
            # One batched admission pass (slots are independent, so the
            # verdicts computed before this link's insertions match the
            # incremental slot-by-slot scan).  A slot already containing
            # ``k`` shares both endpoints and is rejected by the mask.
            for j in np.flatnonzero(slots_can_add(states, sender, receiver)):
                if remaining <= 0:
                    break
                state, slot = states[j], slots[j]
                state.add(sender, receiver)
                slot.add(k)
                # The newest member is last in the state's member order.
                granted = 1 if table is None else int(state.member_rates(table)[-1])
                remaining -= granted
        while remaining > 0:
            granted = open_fresh_slot(k, sender, receiver)
            if granted is None:
                return None
            remaining -= granted
            if max_length is not None and len(slots) > max_length:
                return None  # packing degraded past the playable window

    # 3. Rate top-up: pass 2's insertions may have demoted tiers of
    #    memberships whose packets were already counted.  Re-read capacity
    #    from the final member sets; cover any shortfall with fresh slots
    #    (which degrade nothing), so a single round suffices.
    if table is not None:
        capacity = np.zeros(links.n_links, dtype=np.int64)
        for state, slot in zip(states, slots):
            for k, rate in zip(slot.links, state.member_rates(table)):
                capacity[k] += int(rate)
        shortfall = demand - capacity
        for k in sorted(
            np.flatnonzero(shortfall > 0), key=lambda k: -int(shortfall[k])
        ):
            k = int(k)
            sender, receiver = int(links.heads[k]), int(links.tails[k])
            remaining = int(shortfall[k])
            while remaining > 0:
                granted = open_fresh_slot(k, sender, receiver)
                if granted is None:
                    return None
                remaining -= granted
                if max_length is not None and len(slots) > max_length:
                    return None

    if max_length is not None and len(slots) > max_length:
        return None
    return Schedule(link_set=links, slots=slots)


class ScheduleCache:
    """An :data:`~repro.traffic.epoch.EpochSchedulerFn` that amortizes the
    wrapped scheduler's protocol overhead across low-drift epochs.

    Parameters
    ----------
    base:
        The scheduler to wrap (any epoch scheduler adapter).
    policy:
        ``"drift-threshold"`` or ``"patch"`` (see :data:`RESCHEDULE_POLICIES`;
        ``"always"`` is the epoch loop *not* using a cache).
    drift_threshold:
        Reuse the cached schedule while the drift metric stays at or under
        this value.  0 reuses only on byte-identical snapshots.
    metric:
        Key into :data:`DRIFT_METRICS` (``"l1"`` or ``"linf"``).
    model:
        Physical-interference model, required by the ``patch`` policy for
        its SINR feasibility checks.
    rate_table:
        Optional :class:`~repro.phy.radio.RateTable`: patches then match
        demand in packet capacity instead of membership count (see
        :func:`patch_schedule`).  Pass the same table the epoch loop
        serves with (``EpochConfig.rate_table``) or patched schedules will
        be sized for the wrong contract.
    epoch_slots:
        When given, two safeguards engage.  First, the drift threshold is
        scaled by the cached schedule's *service headroom* — the number of
        full cycles that fit in an epoch, ``epoch_slots / length`` (never
        scaled below the base threshold): a schedule cycling 4x per epoch
        over-serves every link and can safely shrug off the large
        normalized drift that pure Poisson wiggle produces at light load,
        while a schedule that barely fits must track demand closely.
        Second, a patch that would grow past ``epoch_slots`` (a cycle too
        long to even serve every link once) falls back to a full re-run.

    Cache hits and successful patches return schedules with
    ``overhead_seconds == 0.0``: reuse costs no *protocol* air time.  A
    patch is a controller computation whose **distribution** is what costs
    air — unpriced by default (the historical idealization of DESIGN.md
    §7), priced per delta message along the routing forest once
    :meth:`bind_control` attaches a control ledger (DESIGN.md §10).  The
    last :class:`CacheDecision` and cumulative :class:`CacheStats` are
    exposed for per-epoch accounting.
    """

    def __init__(
        self,
        base: EpochSchedulerFn,
        policy: str = "drift-threshold",
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
        metric: str = "l1",
        model: PhysicalInterferenceModel | None = None,
        epoch_slots: int | None = None,
        rate_table=None,
    ):
        if policy not in ("drift-threshold", "patch"):
            raise ValueError(
                f"policy must be 'drift-threshold' or 'patch', got {policy!r}"
            )
        if drift_threshold < 0:
            raise ValueError("drift_threshold must be non-negative")
        if metric not in DRIFT_METRICS:
            raise ValueError(f"metric must be one of {sorted(DRIFT_METRICS)}")
        if policy == "patch" and model is None:
            raise ValueError("the 'patch' policy needs a PhysicalInterferenceModel")
        if epoch_slots is not None and epoch_slots <= 0:
            raise ValueError("epoch_slots must be positive when given")
        self._base = base
        self.policy = policy
        self.drift_threshold = float(drift_threshold)
        self._drift = DRIFT_METRICS[metric]
        self._model = model
        self._epoch_slots = epoch_slots
        self._rate_table = rate_table
        self._cached: EpochSchedule | None = None
        self._baseline: np.ndarray | None = None
        self._ledger = None
        self._depths: np.ndarray | None = None
        self._obs = None
        self._obs_labels: dict = {}
        self.last_decision: CacheDecision | None = None
        self.stats = CacheStats()

    def bind_control(self, ledger, depths=None) -> None:
        """Price patch distribution into ``ledger`` (repro.core.controlplane).

        Once bound, every successful patch books one ``patch`` message per
        membership edit — the repaired allocation differs from the cached
        one by exactly the L1 distance between the two demand vectors —
        multiplied by the link's hop ``depths`` from its gateway (the
        controller's fix must relay down the routing forest to reach the
        link's head; see :func:`~repro.core.controlplane.forest_depths`).
        Cache hits book nothing: "no message" *is* the keep-current-schedule
        signal, and full recomputes already pay the wrapped scheduler's own
        protocol air.

        The engines (re)bind this on every run from their ``control=``
        model — including ``bind_control(None)`` on unpriced runs, so a
        cache reused across runs never keeps charging a previous run's
        ledger.
        """
        self._ledger = ledger
        self._depths = (
            None
            if depths is None or ledger is None
            else np.asarray(depths, dtype=np.int64)
        )

    def bind_obs(self, obs, **labels) -> None:
        """Attach an observability handle (repro.obs); ``None`` unbinds.

        Once bound, every request books ``cache.requests`` plus one of
        ``cache.hits`` / ``cache.patches`` / ``cache.recomputes`` under the
        given labels (the sharded engine labels per shard), and patch
        repairs run inside an ``incremental.patch`` span.  Observe-only —
        the cache's decisions never depend on the handle — and rebound by
        the engines on every run, like :meth:`bind_control`.
        """
        self._obs = obs
        self._obs_labels = labels

    def invalidate(self) -> None:
        """Forget the cached schedule (the next call recomputes)."""
        self._cached = None
        self._baseline = None

    def effective_threshold(self) -> float:
        """The drift threshold after headroom scaling (see ``epoch_slots``)."""
        if (
            self._epoch_slots is None
            or self._cached is None
            or self._cached.schedule.length == 0
        ):
            return self.drift_threshold
        headroom = self._epoch_slots / self._cached.schedule.length
        return self.drift_threshold * max(1.0, headroom)

    def _book(self, outcome: str) -> None:
        if self._obs is not None:
            self._obs.counter("cache.requests", 1, **self._obs_labels)
            self._obs.counter(f"cache.{outcome}", 1, **self._obs_labels)

    def __call__(self, links: LinkSet, epoch: int) -> EpochSchedule:
        snapshot = np.array(links.demand, dtype=np.int64, copy=True)
        self.stats.requests += 1

        if self._cached is not None and self._baseline is not None:
            if self._baseline.shape != snapshot.shape:
                raise ValueError(
                    "demand snapshot shape changed between epochs; "
                    "ScheduleCache requires a fixed link universe"
                )
            drift = self._drift(snapshot, self._baseline)
            if drift <= self.effective_threshold():
                self.stats.hits += 1
                self._book("hits")
                self.last_decision = CacheDecision(
                    epoch=epoch, drift=drift, hit=True, patched=False, recomputed=False
                )
                return EpochSchedule(self._cached.schedule, overhead_seconds=0.0)
            if self.policy == "patch":
                with phase(
                    self._obs, "incremental.patch", epoch=epoch, **self._obs_labels
                ):
                    patched = patch_schedule(
                        self._cached.schedule,
                        links,
                        self._model,
                        max_length=self._epoch_slots,
                        table=self._rate_table,
                    )
                if patched is not None:
                    planned = EpochSchedule(patched, overhead_seconds=0.0)
                    if self._ledger is not None:
                        # One patch-delta message per membership edit (the
                        # exact-allocation repair adds/removes |new - old|
                        # memberships), each relayed depth hops down the
                        # forest from the gateway controller.
                        deltas = np.abs(snapshot - self._baseline)
                        if self._depths is not None:
                            messages = int((deltas * self._depths).sum())
                        else:
                            messages = int(deltas.sum())
                        self._ledger.charge(epoch, "incremental", "patch", messages)
                    # The patched schedule becomes the new cache entry, with
                    # the current snapshot as its baseline: it was repaired
                    # *for* this demand vector.
                    self._cached = planned
                    self._baseline = snapshot
                    self.stats.patches += 1
                    self._book("patches")
                    self.last_decision = CacheDecision(
                        epoch=epoch,
                        drift=drift,
                        hit=False,
                        patched=True,
                        recomputed=False,
                    )
                    return planned
        else:
            drift = float("inf")

        planned = self._base(links, epoch)
        self._cached = planned
        self._baseline = snapshot
        self.stats.recomputes += 1
        self._book("recomputes")
        self.last_decision = CacheDecision(
            epoch=epoch, drift=drift, hit=False, patched=False, recomputed=True
        )
        return planned
