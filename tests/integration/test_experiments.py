"""Smoke-level integration tests of every experiment harness and the CLI.

Each harness must run end-to-end on a tiny profile and produce the expected
table shape, with a few qualitative assertions on the science (FDD equals
the centralized baseline, error curves trend the right way, etc.).
"""

import pytest

from repro.experiments import (
    clock_skew_experiment,
    exec_time_experiment,
    fdd_equivalence_experiment,
    grid_schedule_experiment,
    id_scaling_experiment,
    impossibility_demo,
    mote_error_experiment,
    mote_rssi_experiment,
    complexity_experiment,
    orderings_experiment,
    seal_rule_experiment,
    truncated_k_experiment,
    uniform_schedule_experiment,
)
from repro.experiments.common import ExperimentProfile
from repro.experiments.exec_time import collect_tallies, skew_tolerance

TINY = ExperimentProfile(
    name="tiny",
    densities=(1000.0, 25000.0),
    repetitions=1,
    pdd_probabilities=(0.2,),
    mote_screams=60,
    mote_smbytes=(6, 12, 24),
    exec_time_sweep=(5, 20),
    skew_sweep_s=(1e-6, 1e-3),
    id_scaling_sizes=(16, 36),
    seed=77,
)


@pytest.fixture(scope="module")
def tallies():
    return collect_tallies(TINY, density=2500.0)


def _values(table, column):
    idx = table.columns.index(column)
    return [row[idx] for row in table._rows]


class TestScheduleQuality:
    def test_grid_table_shape_and_equivalence(self):
        table = grid_schedule_experiment(TINY)
        assert table.n_rows == len(TINY.densities)
        # FDD column equals the centralized column (Theorem 4).
        assert _values(table, "FDD") == _values(table, "Centralized")

    def test_uniform_table_runs(self):
        table = uniform_schedule_experiment(TINY)
        assert table.n_rows == len(TINY.densities)


class TestExecTime:
    def test_exec_time_monotone_in_both_sweeps(self, tallies):
        table = exec_time_experiment(TINY, tallies)
        for column in table.columns[1:]:
            means = [float(v.split(" ±")[0]) for v in _values(table, column)]
            assert means == sorted(means)

    def test_fdd_slower_than_pdd(self, tallies):
        table = exec_time_experiment(TINY, tallies)
        fdd = [float(v.split(" ±")[0]) for v in _values(table, "FDD vs SMBytes (s)")]
        pdd = [float(v.split(" ±")[0]) for v in _values(table, "PDD vs SMBytes (s)")]
        assert all(f > p for f, p in zip(fdd, pdd))

    def test_skew_curve_flat_then_linear(self, tallies):
        table = clock_skew_experiment(TINY, tallies)
        fdd = [float(v.split(" ±")[0]) for v in _values(table, "FDD (s)")]
        # At 1 ms skew the guard dominates: time must blow up vs 1 µs.
        assert fdd[-1] > 10 * fdd[0]

    def test_skew_tolerance_ordering(self, tallies):
        """PDD tolerates roughly an order of magnitude more skew than FDD."""
        fdd_tol = skew_tolerance(tallies.fdd[0])
        pdd_tol = skew_tolerance(tallies.pdd[0])
        assert pdd_tol > 2 * fdd_tol > 0


class TestMote:
    def test_error_table_trend(self):
        table = mote_error_experiment(TINY)
        errors = [float(v) for v in _values(table, "interval error (%)")]
        assert errors[0] >= errors[-1]
        assert errors[-1] < 5.0  # 24 bytes detects reliably

    def test_rssi_table_episode_count(self):
        table = mote_rssi_experiment(TINY, n_rounds=4)
        cells = dict(zip(_values(table, "quantity"), _values(table, "value")))
        assert cells["above-threshold episodes"] == cells["expected episodes"]


class TestTheory:
    def test_id_scaling_grid_matches_bound(self):
        table = id_scaling_experiment(TINY)
        measured = [float(v) for v in _values(table, "grid ID")]
        bounds = [float(v) for v in _values(table, "grid bound (Thm 2)")]
        for m, b in zip(measured, bounds):
            assert m <= b + 1e-9
            assert m == pytest.approx(b, rel=0.01)  # tight per the paper

    def test_fdd_equivalence_all_identical(self):
        table = fdd_equivalence_experiment(TINY)
        for cell in _values(table, "identical schedules"):
            done, total = cell.split("/")
            assert done == total

    def test_impossibility_flips(self):
        table = impossibility_demo()
        cells = dict(zip(_values(table, "quantity"), _values(table, "value")))
        assert cells["feasibility flips with far block"] == "yes"
        assert float(cells["hop distance l -> far block"]) > 8

    def test_complexity_ratio_bounded(self):
        table = complexity_experiment(TINY)
        ratios = [float(v) for v in _values(table, "ratio")]
        assert all(r < 10.0 for r in ratios)


class TestAblations:
    def test_truncated_k_recovers_at_full_k(self):
        table = truncated_k_experiment(TINY)
        last = table._rows[-1]  # K = ID + 1: must be clean
        assert last[3] == "0" and last[4] == "0" and last[5] == "0"

    def test_orderings_table_runs(self):
        table = orderings_experiment(TINY)
        assert table.n_rows == 2

    def test_seal_rule_table_runs(self):
        table = seal_rule_experiment(TINY)
        assert table.n_rows == len(TINY.pdd_probabilities)


class TestCli:
    def test_runner_writes_output_files(self, tmp_path, capsys):
        from repro.experiments.runner import main

        code = main(
            ["impossibility", "--profile", "quick", "--out", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "impossibility.txt").exists()
        assert "Theorem 1" in capsys.readouterr().out

    def test_runner_rejects_unknown_experiment(self, capsys):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["no-such-thing"])


class TestCliSeed:
    def test_seed_flag_changes_stochastic_results(self, capsys):
        from repro.experiments.runner import main

        main(["mote-error", "--profile", "quick", "--seed", "1"])
        out1 = capsys.readouterr().out
        main(["mote-error", "--profile", "quick", "--seed", "1"])
        out_same = capsys.readouterr().out
        main(["mote-error", "--profile", "quick", "--seed", "2"])
        out2 = capsys.readouterr().out

        def rows(text):
            return [
                line.strip()
                for line in text.splitlines()
                if line.strip() and line.strip()[0].isdigit()
            ]

        assert rows(out1) == rows(out_same)  # same seed -> same table
        assert rows(out1) != rows(out2)  # different seed -> different table


class TestApproximationAndSkewAblation:
    def test_approximation_experiment_shape(self):
        from repro.experiments.approximation import approximation_experiment

        table = approximation_experiment(TINY)
        assert table.n_rows == 2
        for row in table._rows:
            measured = float(row[2].split(" ±")[0])
            worst = float(row[3])
            bound = float(row[4])
            assert 1.0 <= measured <= worst <= bound

    def test_uncompensated_skew_onset(self):
        from repro.experiments.ablations import uncompensated_skew_experiment

        table = uncompensated_skew_experiment(TINY)
        # Below the critical skew (first row, factor 0.5): no edge loss.
        assert float(table._rows[0][1]) == 0.0
        # Well past it (last row): substantial loss.
        assert float(table._rows[-1][1]) > 50.0


class TestHeavyTraffic:
    def test_stability_table_shape_and_knee_rows(self):
        from dataclasses import replace

        from repro.experiments.heavy_traffic import heavy_traffic_experiment

        tiny = replace(
            TINY,
            traffic_lambdas=(0.004,),
            traffic_epochs=2,
            traffic_epoch_slots=80,
        )
        table = heavy_traffic_experiment(tiny)
        # 3 schedulers x 1 rate + 3 knee summary rows.
        assert table.n_rows == 6
        knees = {row[0]: row[-1] for row in table._rows if row[1] == "knee"}
        assert set(knees) == {"Serialized", "GreedyPhysical", "FDD"}
        # At a rate this low every scheduler is stable, so every knee is the
        # top of the sweep.
        assert all(value == "0.004" for value in knees.values())

    def test_admission_table_shape_and_sla_columns(self):
        from dataclasses import replace

        from repro.experiments.admission import admission_experiment

        tiny = replace(
            TINY,
            traffic_epoch_slots=80,
            admission_controllers=("none", "static-cap"),
            admission_load_factors=(1.0, 2.0),
            admission_epochs=3,
            admission_knee_rate=0.01,
        )
        table = admission_experiment(tiny)
        # 2 controllers x 2 offered loads.
        assert table.n_rows == 4
        rows = {(r[0], r[1]): r for r in table._rows}
        assert set(rows) == {
            ("none", "1x"),
            ("none", "2x"),
            ("static-cap", "1x"),
            ("static-cap", "2x"),
        }
        # The uncontrolled baseline never blocks; the cap blocks under
        # overload and reports it in the SLA column.
        assert rows[("none", "2x")][4] == "0%"
        assert rows[("static-cap", "2x")][4].endswith("%")
        assert float(rows[("static-cap", "2x")][4].rstrip("%")) > 0

    def test_incremental_table_shape_and_policy_axis(self):
        from dataclasses import replace

        from repro.experiments.heavy_traffic import incremental_experiment

        tiny = replace(
            TINY,
            traffic_lambdas=(0.004,),
            traffic_epochs=3,
            traffic_epoch_slots=80,
        )
        table = incremental_experiment(tiny)
        # 3 policies x 1 rate + 3 knee summary rows.
        assert table.n_rows == 6
        knees = {row[0]: row[-1] for row in table._rows if row[1] == "knee"}
        assert set(knees) == {"always", "drift-threshold", "patch"}
        assert all(value == "0.004" for value in knees.values())
        # The always policy never reports cache hits; caching policies pay
        # no more overhead than always does.
        hits = {row[0]: row[6] for row in table._rows if row[1] != "knee"}
        assert hits["always"] == "0%"
        totals = {row[0]: int(row[4]) for row in table._rows if row[1] != "knee"}
        assert totals["drift-threshold"] <= totals["always"]
        assert totals["patch"] <= totals["always"]
