"""Property tests pinning the GridIndex against brute-force geometry.

Every query the sparse interference stack asks of
:class:`repro.phy.spatial.GridIndex` is checked here against the O(n²)
answer computed from :func:`repro.phy.gain.distance_matrix`, over random
deployments *and* random cell sizes — the index must be a pure accelerator,
its answers a function of the deployment alone.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.phy.gain import distance_matrix
from repro.phy.spatial import GridIndex


@st.composite
def deployment(draw):
    """Random planar deployment + query radius + cell size.

    Coordinates may be negative (cells must floor correctly left of the
    origin) and may contain exact duplicates (zero-distance pairs).
    """
    n = draw(st.integers(min_value=1, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    span = draw(st.floats(min_value=10.0, max_value=500.0))
    positions = rng.uniform(-span, span, size=(n, 2))
    if n >= 2 and draw(st.booleans()):
        positions[1] = positions[0]  # exact co-location
    radius = draw(st.floats(min_value=1.0, max_value=400.0))
    cell = draw(st.floats(min_value=2.0, max_value=300.0))
    return positions, radius, cell


@given(deployment())
@settings(max_examples=80, deadline=None)
def test_query_radius_matches_brute_force(case):
    positions, radius, cell = case
    index = GridIndex(positions, cell_size=cell)
    dist = distance_matrix(positions)
    rng = np.random.default_rng(7)
    # Query at a node, near a node, and far outside the deployment.
    queries = [positions[0], positions[0] + rng.uniform(-radius, radius, 2),
               positions.max(axis=0) + 3 * radius]
    for q in queries:
        expected = np.flatnonzero(
            np.linalg.norm(positions - np.asarray(q), axis=1) <= radius
        )
        got = index.query_radius(q, radius)
        assert np.array_equal(got, expected)
    # Self-queries include the node itself (distance 0).
    assert 0 in index.query_radius(positions[0], radius)
    assert dist.shape == (len(positions), len(positions))


@given(deployment())
@settings(max_examples=80, deadline=None)
def test_pairs_within_matches_brute_force_and_is_symmetric(case):
    positions, radius, cell = case
    index = GridIndex(positions, cell_size=cell)
    heads, tails = index.pairs_within(radius)

    dist = distance_matrix(positions)
    mask = (dist <= radius) & ~np.eye(len(positions), dtype=bool)
    exp_heads, exp_tails = np.nonzero(mask)
    assert np.array_equal(heads, exp_heads)
    assert np.array_equal(tails, exp_tails)

    # Symmetric as a set: (i, j) stored iff (j, i) stored.
    fwd = set(zip(heads.tolist(), tails.tolist()))
    assert fwd == {(j, i) for i, j in fwd}
    # Never a self-pair.
    assert not np.any(heads == tails)


@given(deployment())
@settings(max_examples=60, deadline=None)
def test_answers_invariant_under_cell_size(case):
    """Cell size is a tuning knob, never a semantic one."""
    positions, radius, cell = case
    coarse = GridIndex(positions, cell_size=cell)
    fine = GridIndex(positions, cell_size=max(cell / 7.3, 0.5))
    q = positions[0] + 0.25 * radius
    assert np.array_equal(
        coarse.query_radius(q, radius), fine.query_radius(q, radius)
    )
    ch, ct = coarse.pairs_within(radius)
    fh, ft = fine.pairs_within(radius)
    assert np.array_equal(ch, fh)
    assert np.array_equal(ct, ft)
    k = min(5, len(positions))
    assert np.array_equal(coarse.k_nearest(q, k), fine.k_nearest(q, k))


@given(deployment())
@settings(max_examples=80, deadline=None)
def test_k_nearest_matches_brute_force(case):
    positions, radius, cell = case
    index = GridIndex(positions, cell_size=cell)
    rng = np.random.default_rng(11)
    q = positions[0] + rng.uniform(-cell, cell, 2)
    deltas = positions - q
    d2 = np.einsum("ij,ij->i", deltas, deltas)
    full_order = np.lexsort((np.arange(len(positions)), d2))
    for k in (1, 3, len(positions)):
        k = min(k, len(positions))
        got = index.k_nearest(q, k)
        assert np.array_equal(got, full_order[:k])
    # k larger than n clamps to all nodes.
    assert np.array_equal(index.k_nearest(q, len(positions) + 10), full_order)
