"""Property tests for the spatial partitioner of the sharded epoch engine.

Over random uniform deployments and random tilings/radii:

1. *Exact cover*: every link lands in exactly one shard and the union of
   shard link sets equals the input ``LinkSet`` (indices, heads, tails,
   demands).
2. *Boundary symmetry*: boundary detection depends only on the endpoints'
   distance to internal tile edges — it is invariant under swapping a
   link's direction, and monotone in the interference radius.
3. *Budget safety*: guard budgets never exceed the affordable per-node
   budget, so every communication edge stays feasible alone under its
   shard's budgeted oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import aggregate_demand, build_routing_forest, random_gateways, uniform_node_demand
from repro.scheduling.links import forest_link_set
from repro.topology.network import uniform_network
from repro.topology.regions import GridTiling
from repro.traffic import partition_links
from repro.traffic.sharded import affordable_budget
from repro.util.rng import spawn


def _deployment(seed: int):
    network = uniform_network(24, density_per_km2=4000.0, rng=spawn(seed, "net"))
    gws = random_gateways(24, 2, spawn(seed, "gw"))
    forest = build_routing_forest(network.comm_adj, gws, rng=spawn(seed, "forest"))
    demand = uniform_node_demand(24, spawn(seed, "demand"), gateways=gws)
    links = forest_link_set(forest, aggregate_demand(forest, demand))
    return network, links


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    nx=st.integers(min_value=1, max_value=4),
    ny=st.integers(min_value=1, max_value=4),
    radius=st.floats(min_value=0.0, max_value=120.0),
)
def test_partition_is_an_exact_cover(seed, nx, ny, radius):
    network, links = _deployment(seed)
    tiling = GridTiling(network.region, nx, ny)
    plan = partition_links(
        links, network.positions, tiling, network.model, radius
    )
    indices = [s.link_indices for s in plan.shards]
    flat = np.concatenate(indices) if indices else np.empty(0, dtype=np.intp)
    # Every link in exactly one shard.
    assert np.array_equal(np.sort(flat), np.arange(links.n_links))
    # The union of shard link sets is the input link set, field by field.
    heads = np.empty(links.n_links, dtype=np.intp)
    tails = np.empty(links.n_links, dtype=np.intp)
    demand = np.empty(links.n_links, dtype=np.int64)
    for shard in plan.shards:
        heads[shard.link_indices] = shard.links.heads
        tails[shard.link_indices] = shard.links.tails
        demand[shard.link_indices] = shard.links.demand
    assert np.array_equal(heads, links.heads)
    assert np.array_equal(tails, links.tails)
    assert np.array_equal(demand, links.demand)
    # Each link sits in the tile of its head node.
    tile_of_node = tiling.tile_of(network.positions)
    for shard in plan.shards:
        assert np.all(tile_of_node[shard.links.heads] == shard.tile)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    n_shards=st.sampled_from([1, 2, 4, 6, 9]),
    radius=st.floats(min_value=0.0, max_value=120.0),
)
def test_boundary_detection_symmetric_and_radius_monotone(seed, n_shards, radius):
    network, links = _deployment(seed)
    tiling = GridTiling.for_tiles(network.region, n_shards)
    plan = partition_links(
        links, network.positions, tiling, network.model, radius
    )
    near = tiling.internal_edge_distance(network.positions) <= radius
    mask = plan.boundary_mask()
    # Symmetric in the link's direction: computed from the endpoint set.
    np.testing.assert_array_equal(mask, near[links.heads] | near[links.tails])
    if n_shards == 1:
        assert not mask.any()
    # Growing the radius can only grow the boundary set.
    wider = partition_links(
        links, network.positions, tiling, network.model, radius + 40.0
    )
    assert np.all(mask <= wider.boundary_mask())


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    guard=st.floats(min_value=0.0, max_value=30.0),
)
def test_guard_budget_never_breaks_a_link(seed, guard):
    network, links = _deployment(seed)
    model = network.model
    plan = partition_links(
        links,
        network.positions,
        GridTiling.for_tiles(network.region, 4),
        model,
        interference_radius_m=100.0,
        guard_factor=guard,
    )
    afford = affordable_budget(links, model)
    noise = model.radio.noise_mw
    beta = model.radio.beta
    for shard in plan.shards:
        if shard.budget_mw is None:
            assert guard == 0.0 or not shard.boundary.any()
            continue
        assert np.all(shard.budget_mw >= 0.0)
        assert np.all(shard.budget_mw <= np.maximum(guard * noise, 0.0) + 1e-15)
        assert np.all(shard.budget_mw <= afford + 1e-15)
        # Standalone feasibility under the budgeted oracle: data and ACK
        # both clear beta against noise + budget.
        p = model.power
        h, t = shard.links.heads, shard.links.tails
        assert np.all(p[h, t] >= beta * (noise + shard.budget_mw[t]) - 1e-12)
        assert np.all(p[t, h] >= beta * (noise + shard.budget_mw[h]) - 1e-12)
