"""Command-line entry point: regenerate any (or all) paper artifacts.

Usage::

    python -m repro.experiments <name>... [--profile quick|full] [--out DIR]
    python -m repro.experiments all --profile quick

Each experiment prints its table and, when ``--out`` is given, also writes
``<out>/<name>.txt``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable

from repro.analysis.tables import TextTable
from repro.experiments import (
    ablations,
    admission,
    approximation,
    controlplane,
    exec_time,
    heavy_traffic,
    mote_detection,
    multirate,
    scale,
    schedule_quality,
    sharded,
    theory,
)
from repro.experiments.common import FULL, QUICK, ExperimentProfile

EXPERIMENTS: dict[str, tuple[str, Callable[[ExperimentProfile], TextTable]]] = {
    "grid": (
        "E3/Fig6 — schedule-length improvement vs density (planned grid)",
        schedule_quality.grid_schedule_experiment,
    ),
    "uniform": (
        "E4/Fig7 — schedule-length improvement vs density (unplanned uniform)",
        schedule_quality.uniform_schedule_experiment,
    ),
    "exec-time": (
        "E5/Fig8 — execution time vs SCREAM size and interference diameter",
        exec_time.exec_time_experiment,
    ),
    "clock-skew": (
        "E6/Fig9 — execution time vs clock-skew bound",
        exec_time.clock_skew_experiment,
    ),
    "heavy-traffic": (
        "E7 — stability regions under dynamic flows and online rescheduling",
        heavy_traffic.heavy_traffic_experiment,
    ),
    "incremental": (
        "E8 — incremental epoch rescheduling: schedule caching and patching",
        heavy_traffic.incremental_experiment,
    ),
    "sharded": (
        "E9 — sharded multi-region epoch engine vs the monolithic loop",
        sharded.sharded_experiment,
    ),
    "admission": (
        "E10 — flow-session admission control past the stability knee",
        admission.admission_experiment,
    ),
    "controlplane": (
        "E11 — in-band control-plane pricing across the E8/E9/E10 headlines",
        controlplane.controlplane_experiment,
    ),
    "multirate": (
        "E12 — adaptive multi-rate links: fixed-rate FDD vs rate-aware scheduling",
        multirate.multirate_experiment,
    ),
    "scale": (
        "E13 — sparse interference at scale: nodes vs peak RSS vs epoch wall",
        scale.scale_experiment,
    ),
    "mote-error": (
        "E1/Fig4 — SCREAM detection error vs SCREAM size (mote testbed)",
        mote_detection.mote_error_experiment,
    ),
    "mote-rssi": (
        "E2/Fig5 — monitor RSSI moving average (mote testbed)",
        mote_detection.mote_rssi_experiment,
    ),
    "id-scaling": (
        "T1/Thm2+3 — interference-diameter scaling vs bounds",
        theory.id_scaling_experiment,
    ),
    "fdd-equivalence": (
        "T2/Thm4 — FDD == GreedyPhysical slot-by-slot",
        theory.fdd_equivalence_experiment,
    ),
    "impossibility": (
        "T3/Thm1 — localized scheduling impossibility construction",
        lambda profile: theory.impossibility_demo(),
    ),
    "complexity": (
        "T4/Thm5 — FDD step-count scaling vs O(TD*ID*n*log n)",
        theory.complexity_experiment,
    ),
    "approximation": (
        "T5/Thm4 — measured greedy/optimal ratio vs the approximation bound",
        approximation.approximation_experiment,
    ),
    "truncated-k": (
        "A1 — protocol health under K < ID(GS)",
        ablations.truncated_k_experiment,
    ),
    "orderings": (
        "A2 — GreedyPhysical edge-ordering ablation",
        ablations.orderings_experiment,
    ),
    "seal-rule": (
        "A3 — PDD slot-sealing rule ablation",
        ablations.seal_rule_experiment,
    ),
    "uncompensated-skew": (
        "A4 — protocol damage when clock skew is not compensated",
        ablations.uncompensated_skew_experiment,
    ),
}


def run_experiment(
    name: str, profile: ExperimentProfile, out_dir: Path | None = None
) -> TextTable:
    """Run one experiment by name; print and optionally persist the table."""
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        )
    description, fn = EXPERIMENTS[name]
    started = time.perf_counter()
    table = fn(profile)
    elapsed = time.perf_counter() - started
    rendered = table.render()
    print(f"\n# {description}  [{elapsed:.1f}s, profile={profile.name}]")
    print(rendered)
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(rendered + "\n")
    return table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the SCREAM paper's tables and figures.",
    )
    parser.add_argument(
        "names",
        nargs="+",
        help=f"experiment names or 'all'; available: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--profile",
        choices=("quick", "full"),
        default="full",
        help="sweep fidelity (default: full)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for .txt result files (default: print only)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed for all randomness (default: the profile's seed)",
    )
    parser.add_argument(
        "--obs",
        choices=("off", "metrics", "spans"),
        default=None,
        help="instrumentation level for the engine runs (default: the "
        "profile's obs_level, normally off)",
    )
    parser.add_argument(
        "--obs-jsonl",
        type=Path,
        default=None,
        help="directory for JSONL run files (<experiment>.jsonl); implies "
        "--obs spans unless --obs is given",
    )
    args = parser.parse_args(argv)
    profile = FULL if args.profile == "full" else QUICK
    overrides: dict = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.obs is not None:
        overrides["obs_level"] = args.obs
    if args.obs_jsonl is not None:
        overrides["obs_jsonl"] = str(args.obs_jsonl)
        if args.obs is None:
            overrides["obs_level"] = "spans"
    if overrides:
        from dataclasses import replace

        profile = replace(profile, **overrides)

    names = list(EXPERIMENTS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")
    for name in names:
        run_experiment(name, profile, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
