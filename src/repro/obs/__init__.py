"""repro.obs — unified instrumentation for every engine layer.

One :class:`Obs` object rides through a run via the engines' ``obs=``
parameter and collects three kinds of signal:

* **metrics** — counters/gauges/streaming histograms in a
  :class:`~repro.obs.metrics.MetricsRegistry` (P² quantiles, O(1) memory);
* **spans** — nested phase timings (:mod:`repro.obs.spans`) with wall and
  thread-CPU clocks, streamed to a :class:`~repro.obs.spans.Recorder`;
* **run files** — a JSONL export (:mod:`repro.obs.export`) that
  ``python -m repro.obs summarize`` renders into per-phase breakdowns,
  control-air attribution, and SLA quantile tables.

Levels (:class:`ObsConfig.level`): ``off`` disables everything (engines
treat ``obs=None`` and a disabled Obs identically — the differential tests
prove the off path bit-identical to an un-instrumented run), ``metrics``
books counters/gauges/histograms only, ``spans`` adds phase tracing.

The cardinal rule, enforced by tests: observability is *passive*.  It
never consumes engine RNG, never mutates engine state, and its absence or
presence never changes a single record of a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from typing import Callable

from .export import JsonlRecorder, fingerprint, validate_run_file
from .metrics import DEFAULT_QUANTILES, MetricsRegistry, P2Quantile, StreamingHistogram
from .spans import NOOP_SPAN, BufferRecorder, NullRecorder, Recorder, Span

__all__ = [
    "Obs",
    "ObsConfig",
    "phase",
    "DeliveryStream",
    "MetricsRegistry",
    "StreamingHistogram",
    "P2Quantile",
    "Recorder",
    "NullRecorder",
    "BufferRecorder",
    "JsonlRecorder",
    "Span",
    "fingerprint",
    "validate_run_file",
]

LEVELS = ("off", "metrics", "spans")


@dataclass(frozen=True)
class ObsConfig:
    """What to instrument and where to put it.

    ``stream_deliveries`` switches :class:`~repro.traffic.queues.LinkQueues`
    from full per-packet delay-log retention to O(1) streaming aggregates
    per (flow-class, region) — the default stays full-log, and
    ``summarize_trace`` falls back to the streaming aggregates only when
    the logs were not kept.
    """

    level: str = "spans"
    jsonl_path: str | None = None
    run_name: str = "run"
    stream_deliveries: bool = False
    config: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.level not in LEVELS:
            raise ValueError(f"obs level must be one of {LEVELS}, got {self.level!r}")


class Obs:
    """The instrument handle engines carry.

    ``Obs.create(config)`` returns ``None`` for level ``off`` so call
    sites keep the plain ``obs is None`` fast path; an ``Obs`` instance
    therefore always has at least metrics enabled.
    """

    def __init__(self, config: ObsConfig | None = None):
        self.config = config or ObsConfig()
        if self.config.level == "off":
            raise ValueError("use Obs.create(); level 'off' has no Obs object")
        self.spans_enabled = self.config.level == "spans"
        self.registry = MetricsRegistry()
        if self.config.jsonl_path is not None:
            self.recorder: Recorder = JsonlRecorder(
                self.config.jsonl_path,
                self.config.run_name,
                config=dict(self.config.config),
            )
        else:
            self.recorder = NullRecorder()

    @classmethod
    def create(cls, config: ObsConfig | None = None) -> "Obs | None":
        """Build an Obs for a config, or ``None`` when level is off."""
        if config is None or config.level == "off":
            return None
        return cls(config)

    @property
    def stream_deliveries(self) -> bool:
        return self.config.stream_deliveries

    # -- metrics pass-throughs ----------------------------------------------

    def counter(self, name: str, value: float = 1.0, **labels) -> None:
        self.registry.counter(name, value, **labels)

    def gauge(self, name: str, value: float, **labels) -> None:
        self.registry.gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        self.registry.observe(name, value, **labels)

    def observe_many(self, name: str, values, **labels) -> None:
        self.registry.observe_many(name, values, **labels)

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, **labels) -> Span:
        """A recorded span (caller must hold a spans-level Obs)."""
        return Span(name, recorder=self.recorder, **labels)

    # -- export --------------------------------------------------------------

    def export(self) -> Path | None:
        """Flush metrics + summary to the JSONL file, if one was configured."""
        if isinstance(self.recorder, JsonlRecorder):
            return self.recorder.export(self.registry)
        return None


class DeliveryStream:
    """O(1) streaming replacement for the full per-packet delivery logs.

    Opted in via :attr:`ObsConfig.stream_deliveries`: instead of appending
    every delivered packet's (delay, birth, source) to the
    :class:`~repro.traffic.queues.LinkQueues` lists, the queues feed each
    delivery into streaming aggregates — one overall histogram plus one per
    delivery class (``classify`` maps the packet's source link to a class
    key; the sharded engine classifies by region, so the per-class series
    are per-(region) delay distributions).  ``summarize_trace`` reads the
    overall aggregate when the exact logs were not kept, so
    :class:`~repro.traffic.stability.StabilityMetrics` delay fields keep
    their meaning at O(1) memory — the first bite of the ROADMAP's
    100k-node streaming-accounting item.

    Not thread-safe by design: deliveries happen on the engine's serving
    thread only (both engines serve the global queues serially).
    """

    def __init__(
        self,
        classify: Callable[[int], object] | None = None,
        quantiles=DEFAULT_QUANTILES,
    ):
        self.classify = classify
        self.total = StreamingHistogram(quantiles)
        self.by_class: dict[str, StreamingHistogram] = {}
        self._quantiles = quantiles

    def record(self, delay: int, source: int) -> None:
        self.total.add(delay)
        if self.classify is not None:
            key = str(self.classify(source))
            hist = self.by_class.get(key)
            if hist is None:
                hist = self.by_class[key] = StreamingHistogram(self._quantiles)
            hist.add(delay)

    @property
    def count(self) -> int:
        return self.total.count

    @property
    def mean(self) -> float:
        return self.total.mean if self.total.count else float("nan")

    def quantile(self, q: float) -> float:
        return self.total.quantile(q)


def phase(obs: Obs | None, name: str, measure: bool = False, **labels):
    """The span entry point engines use.

    * obs at spans level → a recorded span;
    * otherwise, ``measure=True`` → an unrecorded measuring span (engines
      still need wall/CPU deltas to fill the public trace timing fields);
    * otherwise → a shared no-op (allocates nothing, times nothing).
    """
    if obs is not None and obs.spans_enabled:
        return Span(name, recorder=obs.recorder, **labels)
    if measure:
        return Span(name)
    return NOOP_SPAN
