"""FastRuntime vs PacketRuntime: bit-identical behaviour on small networks.

The vectorized runtime used by all experiments must be indistinguishable —
schedules AND step tallies — from the ground-truth per-node packet engine.
"""

import numpy as np
import pytest

from repro.core.fast_runtime import FastRuntime
from repro.core.fdd import run_fdd
from repro.core.pdd import run_pdd
from repro.simulation.packet_runtime import PacketRuntime
from tests.conftest import make_links


def _schedules_equal(a, b) -> bool:
    if a.schedule_length != b.schedule_length:
        return False
    return all(
        sorted(x.links) == sorted(y.links)
        for x, y in zip(a.schedule.slots, b.schedule.slots)
    )


def test_fdd_agreement(grid16, grid16_links, small_config):
    fast = run_fdd(
        grid16_links,
        FastRuntime.for_network(grid16, small_config),
        small_config,
        rng=9,
    )
    packet = run_fdd(
        grid16_links,
        PacketRuntime.for_network(grid16, small_config),
        small_config,
        rng=9,
    )
    assert _schedules_equal(fast, packet)
    assert fast.tally.as_dict() == packet.tally.as_dict()


@pytest.mark.parametrize("p_active", [0.3, 0.8])
def test_pdd_agreement(grid16, grid16_links, small_config, p_active):
    config = small_config.with_p(p_active)
    fast = run_pdd(
        grid16_links, FastRuntime.for_network(grid16, config), config, rng=17
    )
    packet = run_pdd(
        grid16_links, PacketRuntime.for_network(grid16, config), config, rng=17
    )
    assert _schedules_equal(fast, packet)
    assert fast.tally.as_dict() == packet.tally.as_dict()


def test_agreement_on_uniform_heterogeneous_network(uniform32, small_config):
    """Heterogeneous powers make the sensitivity graph asymmetric; the
    runtimes must still agree."""
    _, links = make_links(uniform32, 2, seed=23)
    config = small_config
    fast = run_fdd(
        links, FastRuntime.for_network(uniform32, config), config, rng=5
    )
    packet = run_fdd(
        links, PacketRuntime.for_network(uniform32, config), config, rng=5
    )
    assert _schedules_equal(fast, packet)
    assert fast.tally.as_dict() == packet.tally.as_dict()


def test_scream_primitive_agreement(grid16, small_config):
    """Primitive-level agreement: random scream inputs, both substrates."""
    fast = FastRuntime.for_network(grid16, small_config)
    packet = PacketRuntime.for_network(grid16, small_config)
    rng = np.random.default_rng(3)
    for _ in range(10):
        inputs = rng.random(16) < 0.2
        assert np.array_equal(fast.scream(inputs), packet.scream(inputs))


def test_truncated_scream_agreement(grid16):
    """With K=1 the flood truncates identically on both substrates."""
    from repro.core.config import ProtocolConfig

    config = ProtocolConfig(k=1, id_bits=5)
    fast = FastRuntime.for_network(grid16, config)
    packet = PacketRuntime.for_network(grid16, config)
    rng = np.random.default_rng(4)
    for _ in range(10):
        inputs = rng.random(16) < 0.15
        assert np.array_equal(fast.scream(inputs), packet.scream(inputs))


def test_leader_election_agreement(grid16, small_config):
    fast = FastRuntime.for_network(grid16, small_config)
    packet = PacketRuntime.for_network(grid16, small_config)
    rng = np.random.default_rng(5)
    for _ in range(6):
        part = rng.random(16) < 0.5
        assert np.array_equal(fast.leader_elect(part), packet.leader_elect(part))


def test_handshake_agreement_with_shared_nodes(grid16, small_config):
    """Parent-child chains (shared nodes) must resolve identically."""
    fast = FastRuntime.for_network(grid16, small_config)
    packet = PacketRuntime.for_network(grid16, small_config)
    # Chain: 1->0 and 5->1 share node 1; plus a distant pair.
    senders = np.array([1, 5, 15])
    receivers = np.array([0, 1, 14])
    assert np.array_equal(
        fast.handshake(senders, receivers), packet.handshake(senders, receivers)
    )
