"""Epoch-based online rescheduling: the closed traffic/scheduling loop.

Every epoch of ``epoch_slots`` data slots:

1. the workload generator emits this epoch's per-node packet arrivals,
   which enter the per-link queues;
2. the live backlogs are snapshot into a demand vector over the same link
   set, and a scheduler (centralized GreedyPhysical, the FDD/PDD
   distributed protocols, or the serialized baseline) is re-run on it;
3. the scheduler's *protocol overhead* — the air time its distributed
   computation consumed, priced by the :class:`~repro.core.timing.TimingModel`
   — is converted into data slots and charged against the epoch;
4. the remaining slots of the epoch play the computed schedule cyclically,
   each played slot serving one packet on every member link with backlog.

Slots are "data slots" of ``slot_seconds`` wall-clock seconds each (a slot
carries one aggregated traffic burst); the control plane's SCREAM microslots
are orders of magnitude shorter, which is what makes online rescheduling
affordable — exactly the paper's argument for recomputing schedules
"whenever traffic demands change".

Step 2 need not re-run the scheduler from scratch: with
``reschedule_policy`` set to ``"drift-threshold"`` or ``"patch"`` the loop
routes scheduling through a :class:`~repro.traffic.incremental.ScheduleCache`
that reuses (or locally repairs) the previous schedule while the backlog
snapshot has drifted little from the one the schedule was built for —
cache-hit epochs charge **zero** overhead slots, amortizing a distributed
protocol's air time across quiet epochs (see
:mod:`repro.traffic.incremental`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.core.config import ProtocolConfig
from repro.core.controlplane import ControlLedger, ControlPlaneModel, forest_depths
from repro.core.timing import TimingModel
from repro.obs import DeliveryStream, Obs, phase
from repro.obs import spans as obs_spans
from repro.phy.interference import PhysicalInterferenceModel
from repro.phy.radio import RateTable
from repro.scheduling.greedy_physical import greedy_physical
from repro.scheduling.greedy_rate import greedy_rate
from repro.scheduling.linear import linear_schedule
from repro.scheduling.links import LinkSet
from repro.scheduling.schedule import Schedule
from repro.topology.network import Network
from repro.traffic.generators import TrafficGenerator
from repro.traffic.queues import LinkQueues
from repro.util.rng import freeze_root, spawn


@dataclass(frozen=True)
class EpochSchedule:
    """A scheduler's answer for one epoch: the schedule plus its air cost."""

    schedule: Schedule
    overhead_seconds: float = 0.0


#: A scheduler usable by the epoch loop: ``(links_with_demand, epoch) ->``
#: :class:`EpochSchedule`.  ``links`` carries the backlog snapshot as its
#: demand vector; ``epoch`` lets distributed schedulers derive per-epoch rngs.
EpochSchedulerFn = Callable[[LinkSet, int], EpochSchedule]


@dataclass(frozen=True)
class EpochConfig:
    """Epoch-loop parameters.

    Attributes
    ----------
    epoch_slots:
        Data slots per epoch (the rescheduling period ``T``).
    n_epochs:
        Epochs to simulate.
    slot_seconds:
        Wall-clock duration of one data slot, used to convert a distributed
        scheduler's execution time into whole data slots of overhead.
    demand_cap:
        Optional per-link cap on the scheduled backlog snapshot (a link can
        serve at most ``epoch_slots`` packets per epoch anyway, so capping
        bounds scheduler cost in overload without changing stable behaviour).
    divergence_factor:
        When set, stop early once the end-of-epoch backlog exceeds this
        multiple of the *mean* per-epoch arrivals so far — the signature of
        an unstable operating point (the trace is marked ``diverged``).
        Averaging keeps one quiet epoch of a bursty workload from reading
        a draining post-burst backlog as divergence.
    reschedule_policy:
        ``"always"`` re-runs the scheduler every epoch (the default);
        ``"drift-threshold"`` reuses the cached schedule while the backlog
        snapshot's drift stays at or under ``drift_threshold``;
        ``"patch"`` additionally repairs the cached schedule on a miss
        before falling back to a full re-run.  See
        :mod:`repro.traffic.incremental`.
    drift_threshold:
        Base normalized drift at or under which the cached schedule is
        reused (0 reuses only byte-identical snapshots; ``None`` resolves
        to :data:`repro.traffic.incremental.DEFAULT_DRIFT_THRESHOLD`).
        The cache scales it by the cached schedule's service headroom —
        see :class:`repro.traffic.incremental.ScheduleCache`.
    drift_metric:
        ``"l1"`` or ``"linf"`` — see
        :data:`repro.traffic.incremental.DRIFT_METRICS`.
    rate_table:
        Optional :class:`~repro.phy.radio.RateTable` switching the serving
        contract from fixed-rate (every scheduled membership forwards one
        packet) to multi-rate: each played membership forwards the packets
        of its SINR-selected MCS tier, with hysteresis damping tier churn
        across epochs (see :class:`RateAnnotator`).  Requires ``model`` to
        be passed to the run.  ``None`` (the default) and the degenerate
        single-tier table are both bit-identical to the seed fixed-rate
        behaviour (the multirate differential suite pins the latter).
    retain_records:
        ``"full"`` (the default) keeps every :class:`EpochRecord` on the
        trace; ``"stream"`` keeps only O(1) running aggregates plus the
        latest record — the ``stream_deliveries`` memory trade (PR 6)
        applied to the record list itself, so a million-epoch run has
        bounded RSS.  Aggregate properties (totals, cache rates, the
        divergence guard) read identically in both modes;
        :meth:`TrafficTrace.backlog_series` needs the full list and fails
        loudly in streaming mode.
    """

    epoch_slots: int = 300
    n_epochs: int = 10
    slot_seconds: float = 0.04
    demand_cap: int | None = None
    divergence_factor: float | None = None
    reschedule_policy: str = "always"
    drift_threshold: float | None = None  # None -> DEFAULT_DRIFT_THRESHOLD
    drift_metric: str = "l1"
    rate_table: RateTable | None = None
    retain_records: str = "full"

    def __post_init__(self) -> None:
        if self.epoch_slots <= 0:
            raise ValueError("epoch_slots must be positive")
        if self.n_epochs <= 0:
            raise ValueError("n_epochs must be positive")
        if self.slot_seconds <= 0:
            raise ValueError("slot_seconds must be positive")
        if self.demand_cap is not None and self.demand_cap <= 0:
            raise ValueError("demand_cap must be positive when given")
        if self.divergence_factor is not None and self.divergence_factor <= 0:
            raise ValueError("divergence_factor must be positive when given")
        # Imported lazily: incremental.py imports EpochSchedule from here.
        from repro.traffic.incremental import (
            DEFAULT_DRIFT_THRESHOLD,
            DRIFT_METRICS,
            RESCHEDULE_POLICIES,
        )

        if self.reschedule_policy not in RESCHEDULE_POLICIES:
            raise ValueError(
                f"reschedule_policy must be one of {RESCHEDULE_POLICIES}, "
                f"got {self.reschedule_policy!r}"
            )
        if self.drift_threshold is None:
            object.__setattr__(self, "drift_threshold", DEFAULT_DRIFT_THRESHOLD)
        if self.drift_threshold < 0:
            raise ValueError("drift_threshold must be non-negative")
        if self.drift_metric not in DRIFT_METRICS:
            raise ValueError(
                f"drift_metric must be one of {sorted(DRIFT_METRICS)}, "
                f"got {self.drift_metric!r}"
            )
        if self.retain_records not in ("full", "stream"):
            raise ValueError(
                f"retain_records must be 'full' or 'stream', "
                f"got {self.retain_records!r}"
            )


@dataclass(frozen=True)
class EpochRecord:
    """Per-epoch accounting."""

    epoch: int
    arrivals: int
    served: int  # packet-hops transmitted this epoch
    delivered: int  # packets that reached a gateway this epoch
    backlog_end: int
    demand_scheduled: int
    schedule_length: int
    overhead_slots: int  # clamped to epoch_slots: overhead can eat at most the epoch
    cache_hit: bool = False  # schedule reused from cache, zero overhead
    patched: bool = False  # schedule repaired in place, zero overhead
    drift: float = 0.0  # snapshot drift vs the cached baseline (0 when uncached)
    # In-band control accounting (repro.core.controlplane): the slice of
    # overhead_slots attributable to priced control messages, and the
    # messages booked to this epoch.  Both stay 0 on unpriced runs, so
    # records compare epoch-for-epoch across priced-at-zero and bare runs.
    control_slots: int = 0
    control_messages: int = 0
    # Shard-aware accounting (repro.traffic.sharded); both stay at their
    # defaults on monolithic runs, so records compare epoch-for-epoch across
    # the two engines.
    n_shards: int = 1  # spatial shards that scheduled this epoch's demand
    reconciled: int = 0  # memberships serialized by the reconciliation pass


@dataclass
class TrafficTrace:
    """Outcome of a full epoch-loop run.

    ``scheduling_seconds`` is the measured thread-CPU time spent inside
    scheduler calls across the run; ``critical_path_seconds`` is the same
    quantity on the deployment's critical path — for the monolithic loop the
    two are equal (one scheduler, one controller), while the sharded engine
    records the per-epoch *maximum* over its concurrently computing regions
    (see :mod:`repro.traffic.sharded`), which is what wall-clock means when
    every region has its own controller.  Both are ``None`` — not a silent
    0.0 — when the platform provides no per-thread CPU clock
    (:data:`repro.obs.spans.CPU_CLOCK`), so "not measured" can never be
    mistaken for "free"; tables render the un-instrumented case as ``~``.

    ``scheduling_wall_seconds`` is the elapsed (``perf_counter``) time the
    *simulation host* spent in the scheduling phase each epoch, summed over
    the run — the number a process-pool backend actually improves.  For
    the monolithic loop it brackets ``scheduling_seconds`` from above
    (one thread, so wall >= CPU); for the sharded engine it measures the
    whole fan-out, dispatch and serialization included, and approaches
    ``critical_path_seconds`` only when the host has enough cores to run
    every shard concurrently.  Always measured (perf_counter needs no
    platform support) — ``None`` only on traces predating the field.
    """

    config: EpochConfig
    records: list[EpochRecord] = field(default_factory=list)
    diverged: bool = False
    queues: LinkQueues | None = None
    scheduling_seconds: float | None = None
    critical_path_seconds: float | None = None
    scheduling_wall_seconds: float | None = None
    #: In-band control-plane account of the run, or ``None`` when the
    #: engine ran unpriced (no ``control=`` model given).
    ledger: ControlLedger | None = None
    # O(1) running aggregates, maintained by :meth:`book`.  In streaming
    # mode (``config.retain_records == "stream"``) they are the *only*
    # account of the run; in full mode the properties below keep reading
    # the record list, so traces assembled by hand (tests, adapters that
    # append to ``records`` directly) behave exactly as before.
    _n_booked: int = field(default=0, repr=False)
    _arrivals: int = field(default=0, repr=False)
    _delivered: int = field(default=0, repr=False)
    _overhead_slots: int = field(default=0, repr=False)
    _control_slots: int = field(default=0, repr=False)
    _control_messages: int = field(default=0, repr=False)
    _cache_hits: int = field(default=0, repr=False)
    _patched: int = field(default=0, repr=False)
    _requests: int = field(default=0, repr=False)
    _reconciled: int = field(default=0, repr=False)
    _last_record: EpochRecord | None = field(default=None, repr=False)

    @property
    def streaming(self) -> bool:
        """True when the trace keeps aggregates instead of the record list."""
        return self.config.retain_records == "stream"

    def book(self, record: EpochRecord) -> EpochRecord:
        """Account one epoch's record; the engines' single booking point.

        Updates the O(1) aggregates and remembers the record as
        :attr:`last_record`; appends to :attr:`records` only in full mode.
        Returns the record for convenience.
        """
        self._n_booked += 1
        self._arrivals += record.arrivals
        self._delivered += record.delivered
        self._overhead_slots += record.overhead_slots
        self._control_slots += record.control_slots
        self._control_messages += record.control_messages
        self._cache_hits += 1 if record.cache_hit else 0
        self._patched += 1 if record.patched else 0
        self._requests += 1 if record.demand_scheduled > 0 else 0
        self._reconciled += record.reconciled
        self._last_record = record
        if not self.streaming:
            self.records.append(record)
        return record

    @property
    def last_record(self) -> EpochRecord | None:
        """The most recent epoch record, whatever the retention mode."""
        if self._last_record is not None:
            return self._last_record
        return self.records[-1] if self.records else None

    @property
    def n_epochs_run(self) -> int:
        return self._n_booked if self.streaming else len(self.records)

    @property
    def total_slots(self) -> int:
        return self.n_epochs_run * self.config.epoch_slots

    @property
    def delivered_total(self) -> int:
        if self.streaming:
            return self._delivered
        return sum(r.delivered for r in self.records)

    @property
    def arrivals_total(self) -> int:
        if self.streaming:
            return self._arrivals
        return sum(r.arrivals for r in self.records)

    @property
    def overhead_slots_total(self) -> int:
        """Protocol overhead paid across the run, in data slots."""
        if self.streaming:
            return self._overhead_slots
        return sum(r.overhead_slots for r in self.records)

    @property
    def control_slots_total(self) -> int:
        """Data slots of overhead attributable to priced control messages."""
        if self.streaming:
            return self._control_slots
        return sum(r.control_slots for r in self.records)

    @property
    def control_messages_total(self) -> int:
        """Control messages booked across the run (counted even when free)."""
        if self.streaming:
            return self._control_messages
        return sum(r.control_messages for r in self.records)

    @property
    def cache_hits(self) -> int:
        """Epochs served from the schedule cache (reused verbatim)."""
        if self.streaming:
            return self._cache_hits
        return sum(1 for r in self.records if r.cache_hit)

    @property
    def patched_epochs(self) -> int:
        """Epochs served by a patched (locally repaired) schedule."""
        if self.streaming:
            return self._patched
        return sum(1 for r in self.records if r.patched)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of *scheduling requests* answered from cache.

        Zero-demand epochs never invoke the scheduler, so they count
        neither way — a bursty workload that drains between bursts is not
        penalized for the epochs it asked nothing of the cache (matches
        :attr:`~repro.traffic.incremental.CacheStats.hit_rate`).
        """
        if self.streaming:
            requests = self._requests
        else:
            requests = sum(1 for r in self.records if r.demand_scheduled > 0)
        if requests == 0:
            return 0.0
        return (self.cache_hits + self.patched_epochs) / requests

    @property
    def reconciled_total(self) -> int:
        """Memberships serialized by cross-shard reconciliation (0 monolithic)."""
        if self.streaming:
            return self._reconciled
        return sum(r.reconciled for r in self.records)

    def backlog_series(self) -> np.ndarray:
        if self.streaming:
            raise RuntimeError(
                "backlog_series needs the full record list; this trace ran "
                "with retain_records='stream' — use the aggregate properties "
                "or last_record, or rerun with retain_records='full'"
            )
        return np.asarray([r.backlog_end for r in self.records], dtype=np.int64)

    def summary(self) -> str:
        tail = " DIVERGED" if self.diverged else ""
        last = self.last_record
        backlog = last.backlog_end if last is not None else 0
        return (
            f"TrafficTrace(epochs={self.n_epochs_run}, "
            f"arrivals={self.arrivals_total}, delivered={self.delivered_total}, "
            f"backlog={backlog}{tail})"
        )


def overhead_to_slots(overhead_seconds: float, config: EpochConfig) -> int:
    """Whole data slots a scheduler's air time consumes, clamped to the epoch.

    Shared by the monolithic and sharded loops: a scheduler slower than the
    epoch consumes the whole epoch and serves nothing — never a negative
    remainder, never a modulo wrap, and the recorded overhead never exceeds
    ``epoch_slots``.
    """
    return min(math.ceil(overhead_seconds / config.slot_seconds), config.epoch_slots)


def priced_overhead_slots(
    base_seconds: float,
    ledger: ControlLedger | None,
    epoch: int,
    config: EpochConfig,
) -> tuple[int, int]:
    """One epoch's ``(overhead_slots, control_slots)`` under in-band pricing.

    The epoch's control messages (whatever any layer booked to ``epoch`` in
    the ledger) serialize on the same air as the scheduler's own execution,
    so their seconds add to ``base_seconds`` before the slot conversion;
    ``control_slots`` is the resulting increment over the unpriced charge.
    Shared by the monolithic and sharded loops.  With no ledger — or a
    ledger whose model prices every class at zero — the charge is exactly
    the pre-pricing ``overhead_to_slots(base_seconds)``: a zero charge adds
    ``0.0`` seconds, which is the bit-identity behind the differential
    tests.
    """
    base_slots = overhead_to_slots(base_seconds, config)
    if ledger is None:
        return base_slots, 0
    total = overhead_to_slots(base_seconds + ledger.seconds_for(epoch), config)
    return total, total - base_slots


def trace_diverged(trace: TrafficTrace, config: EpochConfig) -> bool:
    """Has the end-of-epoch backlog crossed the divergence guard?

    True when ``config.divergence_factor`` is set and the latest recorded
    backlog exceeds that multiple of the mean per-epoch arrivals so far —
    the early-stop signature of an unstable operating point, shared by the
    monolithic and sharded loops.
    """
    last = trace.last_record
    if config.divergence_factor is None or last is None:
        return False
    mean_arrivals = trace.arrivals_total / trace.n_epochs_run
    return (
        mean_arrivals > 0
        and last.backlog_end > config.divergence_factor * mean_arrivals
    )


class RateAnnotator:
    """Per-run MCS selection state for multi-rate serving.

    Owns the hysteresis memory of :meth:`RateTable.select`: for every link
    it remembers the tier last granted, so a link whose slot SINR hovers on
    a tier edge cannot flap between tiers from one epoch's round to the
    next.  :meth:`annotate` turns one round's per-slot link-index arrays
    into per-slot tier and packets-per-slot arrays, evaluating each slot's
    concurrent SINR through the bound interference oracle (budgeted on
    sharded runs — guard budgets therefore cost rate tiers, not just
    feasibility).

    Tiers are clamped to the base tier: membership was established by the
    ``SINR >= β`` scheduling contract and the seed serves one packet per
    play regardless, so under the degenerate table every annotation is rate
    1 and serving is bit-identical to the fixed-rate path.
    """

    def __init__(
        self,
        links: LinkSet,
        model: PhysicalInterferenceModel,
        table: RateTable,
    ):
        self.table = table
        self._model = model
        self._heads = links.heads
        self._tails = links.tails
        self._prev = np.full(links.n_links, -1, dtype=np.int64)

    def annotate(
        self, slot_links: list[np.ndarray]
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per-slot (tiers, rates) arrays for one round, updating state."""
        table = self.table
        tiers: list[np.ndarray] = []
        rates: list[np.ndarray] = []
        for idx in slot_links:
            if idx.size == 0:
                t = np.empty(0, dtype=np.int64)
            else:
                data, ack = self._model.link_sinrs(
                    self._heads[idx], self._tails[idx]
                )
                selected = table.select(np.minimum(data, ack), self._prev[idx])
                t = np.maximum(selected, 0)
                self._prev[idx] = t
            tiers.append(t)
            rates.append(table.rates[t])
        return tiers, rates


def play_schedule(
    queues: LinkQueues,
    slot_links: list[np.ndarray],
    start: int,
    epoch_slots: int,
    overhead_slots: int,
    slot_rates: list[np.ndarray] | None = None,
) -> int:
    """Play a schedule cyclically over one epoch's remaining data slots.

    The single serving primitive shared by the monolithic loop and the
    sharded engine (:mod:`repro.traffic.sharded`), so the two serve queues
    with identical semantics: slots ``overhead_slots .. epoch_slots - 1``
    each serve every backlogged member link, cycling through ``slot_links``
    (per-slot arrays of link indices) from its first entry.  Each play
    forwards one packet per member (the seed contract) unless
    ``slot_rates`` — per-slot packets-per-slot arrays aligned with
    ``slot_links``, from :meth:`RateAnnotator.annotate` — grants more.
    Returns the packet-hops served.
    """
    served = 0
    if slot_links:
        n = len(slot_links)
        for t in range(overhead_slots, epoch_slots):
            i = (t - overhead_slots) % n
            served += queues.serve_slot(
                slot_links[i],
                start + t,
                rates=None if slot_rates is None else slot_rates[i],
            )
    return served


def book_epoch_obs(obs: Obs | None, record: EpochRecord, engine: str) -> None:
    """Book one epoch record's counters/gauges into an obs registry.

    The per-epoch metric surface shared by both engines: monotone counters
    for flow (arrivals/served/delivered), overhead and control slots, cache
    outcomes and reconciliations, plus a backlog gauge.  No-op when obs is
    off — and always passive either way.
    """
    if obs is None:
        return
    obs.counter("traffic.arrivals", record.arrivals, engine=engine)
    obs.counter("traffic.served", record.served, engine=engine)
    obs.counter("traffic.delivered", record.delivered, engine=engine)
    obs.counter("traffic.overhead_slots", record.overhead_slots, engine=engine)
    if record.control_slots:
        obs.counter("traffic.control_slots", record.control_slots, engine=engine)
    if record.reconciled:
        obs.counter("traffic.reconciled", record.reconciled, engine=engine)
    obs.gauge("traffic.backlog", record.backlog_end, engine=engine)
    obs.gauge("traffic.epochs_run", record.epoch + 1, engine=engine)


def book_rate_obs(
    obs: Obs | None,
    slot_tiers: list[np.ndarray] | None,
    served: int,
    plays: int,
    engine: str,
) -> None:
    """Book one epoch's multi-rate serving metrics.

    Per-tier ``rate.selected`` counters (how many memberships the round's
    annotation granted each MCS tier) plus a ``rate.delivered`` histogram
    observation of the epoch's realized packets per play — exactly 1.0
    under the degenerate table, drifting upward as links win higher tiers.
    No-op on fixed-rate runs (``slot_tiers is None``) or with obs off;
    always passive.
    """
    if obs is None or slot_tiers is None:
        return
    occupied = [t for t in slot_tiers if t.size]
    if occupied:
        tiers, counts = np.unique(np.concatenate(occupied), return_counts=True)
        for tier, count in zip(tiers, counts):
            obs.counter("rate.selected", int(count), engine=engine, tier=int(tier))
    if plays > 0:
        obs.observe("rate.delivered", served / plays, engine=engine)


def finish_run_obs(obs: Obs | None, trace: TrafficTrace, engine: str) -> None:
    """End-of-run bookings: delay distributions and run-level gauges.

    In full-log mode the exact per-packet delays feed a fresh registry
    histogram; in streaming mode (``ObsConfig.stream_deliveries``) the
    queues' :class:`~repro.obs.DeliveryStream` aggregates — overall and
    per region class — are adopted by reference instead (P² summaries
    cannot be merged after the fact).
    """
    if obs is None or trace.queues is None:
        return
    stream = trace.queues.delivery_stream
    if stream is not None:
        obs.registry.adopt_histogram(
            "traffic.delay_slots", stream.total, engine=engine, region="all"
        )
        for key, hist in stream.by_class.items():
            obs.registry.adopt_histogram(
                "traffic.delay_slots", hist, engine=engine, region=key
            )
    else:
        delays = trace.queues.delay_array()
        if delays.size:
            obs.observe_many(
                "traffic.delay_slots", delays, engine=engine, region="all"
            )
    if trace.diverged:
        obs.counter("traffic.diverged", 1, engine=engine)


def run_epochs(
    links: LinkSet,
    generator: TrafficGenerator,
    scheduler: EpochSchedulerFn,
    config: EpochConfig | None = None,
    model: PhysicalInterferenceModel | None = None,
    on_epoch: Callable[[EpochRecord, LinkQueues], None] | None = None,
    control: ControlPlaneModel | None = None,
    obs: Obs | None = None,
) -> TrafficTrace:
    """Run the closed arrival/reschedule/serve loop; return its trace.

    When ``config.reschedule_policy`` is not ``"always"`` the scheduler is
    wrapped in a fresh :class:`~repro.traffic.incremental.ScheduleCache`
    (``model`` is required for the ``"patch"`` policy's SINR checks); a
    :class:`~repro.traffic.incremental.ScheduleCache` passed directly as
    ``scheduler`` is used as-is, whatever the policy says, and its per-epoch
    decisions are recorded either way.

    ``on_epoch`` is the loop's observable feedback channel: called after
    every epoch's record is appended, with the record and the live queues.
    Admission controllers (:mod:`repro.traffic.admission`) hang off it —
    wire ``on_epoch=workload.observe`` — and it must not mutate the queues.

    ``control`` opts the run into in-band control-plane pricing
    (:mod:`repro.core.controlplane`): a :class:`ControlLedger` is opened on
    the trace, the schedule cache's patch distribution is priced along the
    routing forest, and a session workload with a ``bind_control`` hook
    (:class:`~repro.traffic.flows.FlowWorkload`) books its signaling and
    observable-collection messages into the same ledger.  Each epoch's
    booked control seconds ride the epoch's overhead
    (:func:`priced_overhead_slots`).  With all prices zero the run is
    bit-identical to ``control=None``.

    ``obs`` attaches a :class:`~repro.obs.Obs` instrument (metrics +
    phase spans + optional JSONL recording; see :mod:`repro.obs`).
    Observability is strictly passive — it consumes no RNG and mutates no
    engine state, so the trace is bit-identical with ``obs=None``, a null
    recorder, or an active JSONL recorder (the differential tests pin
    this).  The caller owns the handle: call ``obs.export()`` after the
    run(s) to flush the JSONL file.
    """
    # Imported here, not at module top: incremental.py imports EpochSchedule
    # from this module.
    from repro.traffic.incremental import ScheduleCache

    cfg = config or EpochConfig()
    ledger = ControlLedger(control) if control is not None else None
    if ledger is not None:
        ledger.bind_obs(obs)
    cache = scheduler if isinstance(scheduler, ScheduleCache) else None
    if cache is None and cfg.reschedule_policy != "always":
        cache = ScheduleCache(
            scheduler,
            policy=cfg.reschedule_policy,
            drift_threshold=cfg.drift_threshold,
            metric=cfg.drift_metric,
            model=model,
            epoch_slots=cfg.epoch_slots,
            rate_table=cfg.rate_table,
        )
        scheduler = cache
    # (Re)bind unconditionally: this run's control model — priced, free, or
    # absent — governs the run, so a cache or workload reused from an
    # earlier run must not keep charging that run's ledger.
    if cache is not None:
        cache.bind_control(ledger, forest_depths(links) if ledger else None)
        cache.bind_obs(obs, engine="epoch")
    bind = getattr(generator, "bind_control", None)
    if bind is not None:
        bind(ledger)
    bind_obs = getattr(generator, "bind_obs", None)
    if bind_obs is not None:
        bind_obs(obs)
    annotator = None
    if cfg.rate_table is not None:
        if model is None:
            raise ValueError(
                "config.rate_table needs the interference oracle: pass model= "
                "so served slots can be rate-annotated from their SINR"
            )
        annotator = RateAnnotator(links, model, cfg.rate_table)
    stream = (
        DeliveryStream()
        if obs is not None and obs.stream_deliveries
        else None
    )
    queues = LinkQueues(links, delivery_stream=stream)
    trace = TrafficTrace(config=cfg, queues=queues, ledger=ledger)
    if obs_spans.CPU_CLOCK is not None:
        trace.scheduling_seconds = 0.0
        trace.critical_path_seconds = 0.0
    trace.scheduling_wall_seconds = 0.0
    T = cfg.epoch_slots

    for epoch in range(cfg.n_epochs):
        start = epoch * T
        with phase(obs, "epoch.arrivals", engine="epoch", epoch=epoch):
            arrived = queues.arrive(generator.arrivals(epoch, T), start)

        snapshot = queues.backlog.copy()
        if cfg.demand_cap is not None:
            np.minimum(snapshot, cfg.demand_cap, out=snapshot)
        served = 0
        delivered_before = queues.delivered_total
        overhead_slots = 0
        control_slots = 0
        schedule_length = 0
        cache_hit = False
        patched = False
        drift = 0.0

        if snapshot.sum() > 0:
            demand_links = replace(links, demand=snapshot)
            # A measuring span replaces the historical ad-hoc clock pair:
            # its thread-CPU delta (not wall — the sharded engine times
            # each shard on its own worker thread, where wall time would
            # also charge the GIL waits of the *other* shards) feeds the
            # public trace fields, and at spans level it is recorded too.
            with phase(
                obs, "epoch.schedule", measure=True, engine="epoch", epoch=epoch
            ) as sched_span:
                planned = scheduler(demand_links, epoch)
            if sched_span.cpu_s is not None and trace.scheduling_seconds is not None:
                trace.scheduling_seconds += sched_span.cpu_s
                trace.critical_path_seconds += sched_span.cpu_s
            if sched_span.wall_s is not None:
                trace.scheduling_wall_seconds += sched_span.wall_s
            if cache is not None and cache.last_decision is not None:
                decision = cache.last_decision
                cache_hit = decision.hit
                patched = decision.patched
                drift = decision.drift if math.isfinite(decision.drift) else 0.0
            schedule_length = planned.schedule.length
            with phase(obs, "epoch.control", engine="epoch", epoch=epoch):
                overhead_slots, control_slots = priced_overhead_slots(
                    planned.overhead_seconds, ledger, epoch, cfg
                )
            # Only the first T - overhead slots can ever play (the cyclic
            # index stays below the window when the schedule is longer), so
            # don't materialize arrays for the unplayable tail.
            playable = T - overhead_slots
            slot_links = [s.as_array() for s in planned.schedule.slots[:playable]]
            slot_tiers = slot_rates = None
            if annotator is not None:
                slot_tiers, slot_rates = annotator.annotate(slot_links)
            plays_before = queues.plays_total
            with phase(obs, "epoch.serve", engine="epoch", epoch=epoch):
                served = play_schedule(
                    queues, slot_links, start, T, overhead_slots, slot_rates
                )
            book_rate_obs(
                obs,
                slot_tiers,
                served,
                queues.plays_total - plays_before,
                engine="epoch",
            )
        elif ledger is not None:
            # No demand, hence no scheduler run — but control messages
            # booked to this epoch (e.g. session signaling into an idle
            # mesh) still consumed air.
            overhead_slots, control_slots = priced_overhead_slots(
                0.0, ledger, epoch, cfg
            )

        record = trace.book(
            EpochRecord(
                epoch=epoch,
                arrivals=arrived,
                served=served,
                delivered=queues.delivered_total - delivered_before,
                backlog_end=queues.total_backlog(),
                demand_scheduled=int(snapshot.sum()),
                schedule_length=schedule_length,
                overhead_slots=overhead_slots,
                cache_hit=cache_hit,
                patched=patched,
                drift=drift,
                control_slots=control_slots,
                control_messages=(
                    ledger.messages_for(epoch) if ledger is not None else 0
                ),
            )
        )
        book_epoch_obs(obs, record, engine="epoch")
        if on_epoch is not None:
            on_epoch(record, queues)
        if trace_diverged(trace, cfg):
            trace.diverged = True
            break
    finish_run_obs(obs, trace, engine="epoch")
    return trace


# --------------------------------------------------------------------------
# Scheduler adapters
# --------------------------------------------------------------------------


def serialized_scheduler() -> EpochSchedulerFn:
    """The zero-overhead worst case: one link per slot (TDMA round-robin)."""

    def schedule(links: LinkSet, epoch: int) -> EpochSchedule:
        return EpochSchedule(linear_schedule(links))

    return schedule


def centralized_scheduler(
    model: PhysicalInterferenceModel,
    ordering: str = "id",
    overhead_seconds: float = 0.0,
) -> EpochSchedulerFn:
    """GreedyPhysical re-run on every epoch's backlog snapshot.

    ``overhead_seconds`` lets callers charge a fixed cost for shipping
    backlogs to and schedules from a central controller (0 models a free
    oracle, the usual baseline).
    """

    def schedule(links: LinkSet, epoch: int) -> EpochSchedule:
        return EpochSchedule(greedy_physical(links, model, ordering), overhead_seconds)

    return schedule


def rate_aware_scheduler(
    model: PhysicalInterferenceModel,
    table: RateTable,
    overhead_seconds: float = 0.0,
) -> EpochSchedulerFn:
    """GreedyRate re-run on every epoch's backlog snapshot.

    The multi-rate analogue of :func:`centralized_scheduler`: packs each
    slot to maximize total packets per slot under ``table`` instead of
    membership count (:func:`repro.scheduling.greedy_rate.greedy_rate`),
    and sizes the schedule so every link's *packet capacity* — not its
    membership count — covers its demand.  Pair it with
    ``EpochConfig(rate_table=table)`` so serving grants the same tiers the
    packer planned for.
    """

    def schedule(links: LinkSet, epoch: int) -> EpochSchedule:
        return EpochSchedule(greedy_rate(links, model, table), overhead_seconds)

    return schedule


def distributed_scheduler(
    network: Network,
    protocol: Callable[..., object],
    config: ProtocolConfig | None = None,
    timing: TimingModel | None = None,
    seed: int | np.random.Generator | None = None,
) -> EpochSchedulerFn:
    """A distributed protocol (``fdd_on_network`` / ``pdd_on_network`` /
    ``afdd_on_network``) re-run per epoch, with its execution time priced
    from the step tally it consumed.

    The protocol's schedule *is* the served schedule, and its measured air
    time becomes the epoch's overhead — the closed-loop cost of computing
    schedules distributedly instead of by a free centralized oracle.
    """
    cfg = config or ProtocolConfig()
    price = timing or TimingModel(scream_bytes=cfg.smbytes)
    root = freeze_root(seed)  # frozen so each epoch's rng is reproducible

    def schedule(links: LinkSet, epoch: int) -> EpochSchedule:
        result = protocol(network, links, cfg, rng=spawn(root, "epoch", epoch))
        return EpochSchedule(result.schedule, price.execution_time(result.tally))

    return schedule
