"""Benchmark fixtures: profiles and result persistence.

Every figure/table benchmark runs its experiment harness at the *bench*
profile (sized to keep the whole suite in minutes), prints the regenerated
series, and writes it under ``benchmarks/results/`` for inspection.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import ExperimentProfile

RESULTS_DIR = Path(__file__).parent / "results"

#: Reduced sweeps for benchmarking: full algorithm fidelity, fewer points.
BENCH = ExperimentProfile(
    name="bench",
    densities=(1000.0, 5000.0, 25000.0),
    repetitions=2,
    pdd_probabilities=(0.2, 0.8),
    mote_screams=400,
    mote_smbytes=(5, 8, 10, 15, 20, 24),
    exec_time_sweep=(5, 15, 30, 60),
    skew_sweep_s=(1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0),
    id_scaling_sizes=(16, 36, 64, 100),
    traffic_lambdas=(0.006, 0.0145, 0.019),
    traffic_epochs=10,
    traffic_epoch_slots=300,
    # E13 scale sweep: 2.5k and 10k nodes, dense baseline at both (10k is
    # where the >=5x end-to-end win is asserted; the 10^5 point is full-only).
    scale_grid_sides=(50, 100),
    scale_dense_max_nodes=10_000,
    scale_epochs=2,
    # Every bench run emits its observability run file (spans + metrics)
    # under benchmarks/results/<experiment>.jsonl; CI validates and
    # summarizes them (python -m repro.obs).  Passive by construction —
    # the differential tests prove obs never changes engine results.
    obs_level="spans",
    obs_jsonl=str(RESULTS_DIR),
    seed=20080617,
)


@pytest.fixture(scope="session")
def bench_profile() -> ExperimentProfile:
    return BENCH


@pytest.fixture(scope="session")
def save_table():
    """Persist a rendered table under benchmarks/results/<name>.txt.

    ``volatile`` names columns whose cells are not run-to-run reproducible
    (wall-clock timings, host-dependent speedups); they are masked with
    ``~`` in the *persisted* snapshot — via
    :meth:`~repro.analysis.tables.TextTable.redacted` — so committed
    results only ever diff when the science changes.  The full table,
    volatile cells included, is still printed to the log (and the caller
    keeps the unmasked object for assertions).
    """

    def _save(name: str, table, volatile: tuple[str, ...] = ()) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        persisted = table.redacted(volatile) if volatile else table
        (RESULTS_DIR / f"{name}.txt").write_text(persisted.render() + "\n")
        print(f"\n{table.render()}")

    return _save
