"""Square-grid lattice geometry (Definitions 7-11 and Theorem 2's machinery).

The paper's grid-diameter bound rests on a small geometric toolkit:

* **square grid augmentation** (Def. 7) — the set of lattice cells a line
  segment traverses;
* **upper/lower lattice paths** (Def. 8) — the staircase walks along the
  augmentation's lattice points above/below the segment;
* **square grid interior / convexity** (Defs. 9-10) — regions whose interior
  lattice points are always connected by one of those staircases;
* the **hop-length identity** used in Theorem 2's proof: both staircases of
  a segment of length ``l`` at angle ``β`` have hop length
  ``(l/s)(sin β + cos β)`` on a lattice of step ``s`` (up to the integer
  truncation of endpoints).

These are implemented exactly so the bound's proof steps can be validated
numerically (see ``tests/unit/test_lattice.py`` and the T1 experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive

_EPS = 1e-9


@dataclass(frozen=True)
class LatticeCell:
    """One unit cell of the lattice: ``[i*s, (i+1)*s] x [j*s, (j+1)*s]``."""

    i: int
    j: int

    def corners(self, step: float) -> np.ndarray:
        """The four lattice-point corners of the cell, (4, 2)."""
        base = np.array([self.i, self.j], dtype=float) * step
        offsets = np.array([[0, 0], [1, 0], [0, 1], [1, 1]], dtype=float) * step
        return base + offsets


def segment_augmentation(
    p: np.ndarray, q: np.ndarray, step: float = 1.0
) -> list[LatticeCell]:
    """Square grid augmentation of segment ``pq`` (Definition 7).

    Returns the lattice cells traversed by the segment, in traversal order
    from ``p`` to ``q`` (a supercover walk: cells whose closed interior the
    segment intersects in more than a point).
    """
    check_positive("step", step)
    p = np.asarray(p, dtype=float) / step
    q = np.asarray(q, dtype=float) / step
    if p.shape != (2,) or q.shape != (2,):
        raise ValueError("segment endpoints must be 2-vectors")

    # Amanatides-Woo style grid traversal in lattice units.
    direction = q - p
    length = float(np.hypot(*direction))
    if length < _EPS:
        return [LatticeCell(int(np.floor(p[0])), int(np.floor(p[1])))]

    cells: list[LatticeCell] = []
    t = 0.0
    cur = np.floor(p + _EPS * np.sign(direction)).astype(int)
    # Handle exact-start-on-gridline: bias the starting cell toward travel.
    for axis in range(2):
        if abs(p[axis] - round(p[axis])) < _EPS and direction[axis] < 0:
            cur[axis] = int(round(p[axis])) - 1
        elif abs(p[axis] - round(p[axis])) < _EPS:
            cur[axis] = int(round(p[axis]))
    end_cell = np.floor(q - _EPS * np.sign(direction)).astype(int)
    for axis in range(2):
        if abs(q[axis] - round(q[axis])) < _EPS and direction[axis] > 0:
            end_cell[axis] = int(round(q[axis])) - 1
        elif abs(q[axis] - round(q[axis])) < _EPS:
            end_cell[axis] = int(round(q[axis])) - (1 if direction[axis] > 0 else 0)

    step_sign = np.sign(direction).astype(int)
    with np.errstate(divide="ignore"):
        t_delta = np.where(direction != 0, 1.0 / np.abs(direction), np.inf)
        next_boundary = np.where(
            step_sign > 0, cur + 1.0, cur.astype(float)
        )
        t_max = np.where(
            direction != 0,
            (next_boundary - p) / direction,
            np.inf,
        )

    cells.append(LatticeCell(int(cur[0]), int(cur[1])))
    guard = 0
    while not np.array_equal(cur, end_cell):
        guard += 1
        if guard > 10_000_000:
            raise RuntimeError("lattice traversal failed to terminate")
        axis = 0 if t_max[0] <= t_max[1] else 1
        cur[axis] += step_sign[axis]
        t_max[axis] += t_delta[axis]
        cells.append(LatticeCell(int(cur[0]), int(cur[1])))
    return cells


def lattice_paths(
    p: np.ndarray, q: np.ndarray, step: float = 1.0
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """Upper and lower lattice paths of segment ``pq`` (Definition 8).

    Both endpoints must be lattice points.  Returns two walks over lattice
    points (in lattice units), each a sequence of unit horizontal/vertical
    hops from ``p``'s lattice point to ``q``'s: the *upper* path through the
    augmentation's points on/above the segment, the *lower* path through
    those on/below.  For a segment parallel to the y axis the paper defines
    upper = left, lower = right.
    """
    check_positive("step", step)
    p = np.asarray(p, dtype=float) / step
    q = np.asarray(q, dtype=float) / step
    for point in (p, q):
        if np.abs(point - np.round(point)).max() > _EPS:
            raise ValueError("lattice paths require lattice-point endpoints")
    p_i = np.round(p).astype(int)
    q_i = np.round(q).astype(int)

    dx = int(q_i[0] - p_i[0])
    dy = int(q_i[1] - p_i[1])
    # Reflect into the first quadrant (dx, dy >= 0); reflections are undone
    # when emitting points, and the upper/lower classification is done on
    # the original coordinates.
    rx = 1 if dx >= 0 else -1
    ry = 1 if dy >= 0 else -1
    adx, ady = abs(dx), abs(dy)

    def emit(x: int, y: int) -> tuple[int, int]:
        return (int(p_i[0] + rx * x), int(p_i[1] + ry * y))

    def cross(x: int, y: int) -> int:
        """Sign of the candidate's side in the reflected frame.

        Signed area of (q' - p') x (candidate - p') with p' = origin and
        q' = (adx, ady): positive = above the reflected segment.
        """
        return adx * y - ady * x

    def staircase(hug_above: bool) -> list[tuple[int, int]]:
        """The tight monotone staircase on one side of the segment.

        Above: climb as early as possible, move right only while the next
        point stays on/above the line.  Below: symmetric.  Both walks stay
        within one unit of the segment (so within its augmentation) and use
        exactly |dx| + |dy| unit hops.
        """
        path = [emit(0, 0)]
        x = y = 0
        while x < adx or y < ady:
            if hug_above:
                if x < adx and cross(x + 1, y) >= 0:
                    x += 1
                elif y < ady:
                    y += 1
                else:
                    x += 1
            else:
                if y < ady and cross(x, y + 1) <= 0:
                    y += 1
                elif x < adx:
                    x += 1
                else:
                    y += 1
            path.append(emit(x, y))
        return path

    first = staircase(True)
    second = staircase(False)

    def side_score(path: list[tuple[int, int]]) -> float:
        """Sum of (q-p) x (point-p): positive = left of the segment."""
        return sum((px - p[0]) * -dy + (py - p[1]) * dx for px, py in path)

    # Larger cross-product sum = more to the left of p->q = "upper" for
    # left-to-right segments; the paper's vertical-segment convention
    # (upper = left of the segment) coincides with the same sign test.
    if side_score(first) >= side_score(second):
        return first, second
    return second, first


def lattice_path_hop_length(p: np.ndarray, q: np.ndarray, step: float = 1.0) -> int:
    """Hop length of either lattice path (they are equal): the Manhattan
    distance in lattice units — Theorem 2's ``(l/s)(sin β + cos β)``."""
    check_positive("step", step)
    p = np.asarray(p, dtype=float) / step
    q = np.asarray(q, dtype=float) / step
    return int(round(abs(q[0] - p[0]) + abs(q[1] - p[1])))


def grid_interior(region_mask, lattice_points: np.ndarray) -> np.ndarray:
    """Square grid interior (Definition 9): lattice points inside a region.

    ``region_mask`` is a callable mapping an ``(m, 2)`` array of points to a
    boolean mask.
    """
    points = np.asarray(lattice_points, dtype=float)
    return points[np.asarray(region_mask(points), dtype=bool)]


def is_square_grid_convex(
    region_mask,
    lattice_points: np.ndarray,
    step: float = 1.0,
    sample_pairs: int | None = None,
    rng: np.random.Generator | None = None,
) -> bool:
    """Square grid convexity check (Definition 10).

    For every pair of interior lattice points (or a random sample of pairs),
    verify that at least one of the two lattice paths stays inside the
    region.  Exact for small point sets; sampling keeps large checks cheap.
    """
    interior = grid_interior(region_mask, lattice_points)
    m = interior.shape[0]
    if m < 2:
        return True
    pairs: list[tuple[int, int]] = [
        (a, b) for a in range(m) for b in range(a + 1, m)
    ]
    if sample_pairs is not None and sample_pairs < len(pairs):
        if rng is None:
            raise ValueError("rng required when sampling pairs")
        chosen = rng.choice(len(pairs), size=sample_pairs, replace=False)
        pairs = [pairs[i] for i in chosen]
    for a, b in pairs:
        upper, lower = lattice_paths(interior[a], interior[b], step)
        for path in (upper, lower):
            pts = np.asarray(path, dtype=float) * step
            if np.asarray(region_mask(pts), dtype=bool).all():
                break
        else:
            return False
    return True
