"""Packet-level substrate: medium resolution, engine lock-step, programs."""

import numpy as np
import pytest

from repro.simulation.clock import ClockModel
from repro.simulation.engine import SyncEngine
from repro.simulation.medium import Medium, Transmission
from repro.simulation.programs import leader_elect_program, scream_program


@pytest.fixture(scope="module")
def medium(grid16):
    return Medium(grid16.model)


class TestMedium:
    def test_empty_slot(self, medium):
        outcomes = medium.resolve([])
        assert len(outcomes) == 16
        assert not any(o.sensed for o in outcomes)

    def test_carrier_sense_near_transmitter(self, medium, grid16):
        outcomes = medium.resolve([Transmission(sender=5)])
        sensed = np.array([o.sensed for o in outcomes])
        expected = grid16.model.sense_mask(np.array([5]))
        assert np.array_equal(sensed, expected)

    def test_unicast_decode(self, medium, grid16):
        if grid16.comm_adj[0, 1]:
            outcomes = medium.resolve([Transmission(sender=0, dest=1, payload="x")])
            assert any(t.payload == "x" for t in outcomes[1].received)

    def test_transmitter_cannot_receive(self, medium):
        outcomes = medium.resolve(
            [
                Transmission(sender=0, dest=1, payload="a"),
                Transmission(sender=1, dest=0, payload="b"),
            ]
        )
        assert not outcomes[0].received
        assert not outcomes[1].received

    def test_double_transmission_rejected(self, medium):
        with pytest.raises(ValueError):
            medium.resolve([Transmission(sender=0), Transmission(sender=0)])

    def test_cs_miss_probability_one_blinds_listeners(self, grid16):
        medium = Medium(
            grid16.model, rng=np.random.default_rng(0), cs_miss_prob=1.0
        )
        outcomes = medium.resolve([Transmission(sender=5)])
        # Only the transmitter itself "senses".
        assert [i for i, o in enumerate(outcomes) if o.sensed] == [5]


class TestEngine:
    def test_scream_program_or_over_network(self, grid16):
        engine = SyncEngine(Medium(grid16.model))
        k = int(grid16.interference_diameter()) + 1
        programs = [scream_program(i, i == 3, k) for i in range(16)]
        results = engine.run(programs)
        assert all(results)
        assert engine.slots_elapsed == k

    def test_scream_program_silent_network(self, grid16):
        engine = SyncEngine(Medium(grid16.model))
        programs = [scream_program(i, False, 4) for i in range(16)]
        assert not any(engine.run(programs))

    def test_leader_elect_program_max_id(self, grid16):
        engine = SyncEngine(Medium(grid16.model))
        ids = np.arange(16)
        programs = [
            leader_elect_program(i, int(ids[i]), True, 4, 3) for i in range(16)
        ]
        winners = engine.run(programs)
        assert [i for i, w in enumerate(winners) if w] == [15]

    def test_program_count_must_match(self, grid16):
        engine = SyncEngine(Medium(grid16.model))
        with pytest.raises(ValueError):
            engine.run([scream_program(0, False, 1)])

    def test_desynchronized_programs_detected(self, grid16):
        def short(i):
            yield None
            return True

        def long(i):
            yield None
            yield None
            return True

        engine = SyncEngine(Medium(grid16.model))
        programs = [short(0)] + [long(i) for i in range(1, 16)]
        with pytest.raises(RuntimeError, match="desynchronized"):
            engine.run(programs)


class TestClockModel:
    def test_offsets_within_bound(self):
        clock = ClockModel(100, 1e-4, np.random.default_rng(1))
        assert (np.abs(clock.offsets) <= 1e-4).all()

    def test_zero_skew_all_aligned(self):
        clock = ClockModel(10, 0.0, np.random.default_rng(1))
        assert (clock.offsets == 0).all()
        assert clock.overlap_fraction(0, 1, 1e-3, 0.0) == 1.0

    def test_overlap_degrades_with_misalignment(self):
        clock = ClockModel(2, 1e-3, np.random.default_rng(3))
        clock.offsets[:] = [0.0, 1e-3]
        full = clock.overlap_fraction(0, 1, burst_s=1e-2, guard_s=2e-3)
        partial = clock.overlap_fraction(0, 1, burst_s=1e-2, guard_s=0.0)
        none = clock.overlap_fraction(0, 1, burst_s=5e-4, guard_s=0.0)
        assert full == 1.0
        assert 0.0 < partial < 1.0
        assert none == 0.0

    def test_detection_reliable_iff_guard_covers_skew(self):
        clock = ClockModel(2, 1e-3, np.random.default_rng(4))
        clock.offsets[:] = [0.0, 8e-4]
        assert clock.detection_reliable(0, 1, 1e-3, guard_s=1e-3)
        assert not clock.detection_reliable(0, 1, 1e-3, guard_s=1e-4)


class TestMediumWithClockSkew:
    """Emergent uncompensated-skew behaviour at the packet level."""

    def test_aligned_clocks_change_nothing(self, grid16):
        aligned = ClockModel(16, 0.0, np.random.default_rng(0))
        plain = Medium(grid16.model)
        skewed = Medium(grid16.model, clock=aligned, guard_s=0.0, burst_s=1e-5)
        tx = [Transmission(sender=5)]
        a = [o.sensed for o in plain.resolve(tx)]
        b = [o.sensed for o in skewed.resolve(tx)]
        assert a == b

    def test_severe_skew_blinds_listeners(self, grid16):
        clock = ClockModel(16, 1.0, np.random.default_rng(1))  # huge offsets
        medium = Medium(grid16.model, clock=clock, guard_s=0.0, burst_s=1e-5)
        outcomes = medium.resolve([Transmission(sender=5)])
        sensed = [i for i, o in enumerate(outcomes) if o.sensed]
        assert sensed == [5]  # only the transmitter itself

    def test_adequate_guard_restores_detection(self, grid16):
        skew = 1e-4
        clock = ClockModel(16, skew, np.random.default_rng(2))
        plain = Medium(grid16.model)
        guarded = Medium(
            grid16.model, clock=clock, guard_s=2 * skew, burst_s=1e-5
        )
        tx = [Transmission(sender=5)]
        assert [o.sensed for o in plain.resolve(tx)] == [
            o.sensed for o in guarded.resolve(tx)
        ]

    def test_clock_requires_burst_duration(self, grid16):
        clock = ClockModel(16, 1e-4, np.random.default_rng(3))
        with pytest.raises(ValueError, match="burst_s"):
            Medium(grid16.model, clock=clock)

    def test_scream_flood_truncates_under_skew(self, grid16):
        """Engine-level effect: a flood that saturates with aligned clocks
        stalls when offsets exceed the guard."""
        k = int(grid16.interference_diameter()) + 1
        clock = ClockModel(16, 0.5, np.random.default_rng(4))
        medium = Medium(grid16.model, clock=clock, guard_s=1e-6, burst_s=1e-5)
        engine = SyncEngine(medium)
        programs = [scream_program(i, i == 0, k) for i in range(16)]
        results = engine.run(programs)
        assert sum(results) < 16
