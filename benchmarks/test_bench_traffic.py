"""Bench for the heavy-traffic stability-region experiment (E7).

Runs the closed-loop epoch harness — dynamic Poisson flows, per-link
queues, per-epoch rescheduling for all three schedulers — at the bench
profile and records the stability table.  Also asserts the qualitative
science: FDD's measured stability knee must sit strictly above the
serialized baseline's even after paying its protocol overhead.
"""

import pytest

from repro.experiments.heavy_traffic import heavy_traffic_experiment


def _knee_cells(table):
    """Map scheduler -> knee cell from the table's summary rows."""
    return {row[0]: row[-1] for row in table._rows if row[1] == "knee"}


@pytest.mark.benchmark(group="traffic")
def test_heavy_traffic_stability(benchmark, bench_profile, save_table):
    table = benchmark.pedantic(
        heavy_traffic_experiment, args=(bench_profile,), rounds=1, iterations=1
    )
    save_table("heavy_traffic", table)
    rates = len(bench_profile.traffic_lambdas)
    assert table.n_rows == 3 * rates + 3  # 3 schedulers x rates + 3 knee rows

    knees = _knee_cells(table)
    assert set(knees) == {"Serialized", "GreedyPhysical", "FDD"}
    # A "-" cell means no swept rate was stable (knee is None).
    assert knees["Serialized"] != "-", "serialized baseline unstable everywhere"
    assert knees["FDD"] != "-", "FDD unstable even at the lowest swept rate"
    serialized = float(knees["Serialized"])
    fdd = float(knees["FDD"])
    assert fdd > serialized, (
        f"FDD knee {fdd} should exceed the serialized baseline's {serialized}"
    )
