"""Flow-level workload generators: per-node packet arrivals per epoch.

The static pipeline draws one demand vector and schedules it once; these
generators produce *evolving* demand — a sequence of per-node packet-arrival
counts, one vector per epoch — so the epoch loop
(:mod:`repro.traffic.epoch`) can re-schedule online against live backlogs.

All generators follow the library's seeding discipline
(:mod:`repro.util.rng`): arrivals are a deterministic function of the root
seed and the epoch index, so any epoch of any workload can be regenerated in
isolation (the one exception, the stateful :class:`ParetoOnOff` renewal
process, is deterministic given the root seed and the *sequence* of epochs
consumed, and documents it).  Rates are expressed in packets per node per
slot; gateways never generate traffic.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import freeze_root, spawn


def _source_rates(
    n_nodes: int,
    rate: float | np.ndarray,
    gateways: np.ndarray | None,
) -> np.ndarray:
    """Per-node rate vector with gateways silenced."""
    rates = np.broadcast_to(np.asarray(rate, dtype=float), (n_nodes,)).copy()
    if np.any(rates < 0):
        raise ValueError("arrival rates must be non-negative")
    if gateways is not None:
        rates[np.asarray(gateways, dtype=np.intp)] = 0.0
    return rates


class TrafficGenerator:
    """Base class: a per-node packet-arrival process observed per epoch.

    Subclasses implement :meth:`arrivals`; everything downstream (queues,
    epoch loop, stability sweeps) only needs that method plus
    :attr:`mean_rate` and :meth:`scaled` (used by rate sweeps to move along
    the load axis without re-plumbing constructor arguments).
    """

    def __init__(
        self,
        n_nodes: int,
        rate: float | np.ndarray,
        gateways: np.ndarray | None = None,
        seed: int | np.random.Generator | None = None,
    ):
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        self.n_nodes = int(n_nodes)
        self.rates = _source_rates(n_nodes, rate, gateways)
        self._gateways = None if gateways is None else np.array(gateways, dtype=np.intp)
        # Freezing the root (rather than storing a live generator) is what
        # makes arrivals(epoch, ...) a pure function of (seed, epoch).
        self._entropy = freeze_root(seed)

    @property
    def mean_rate(self) -> float:
        """Mean offered load in packets per node per slot, over sources only
        (gateways generate nothing and are excluded from the mean)."""
        sources = np.ones(self.n_nodes, dtype=bool)
        if self._gateways is not None:
            sources[self._gateways] = False
        if not sources.any():
            return 0.0
        return float(self.rates[sources].mean())

    def arrivals(self, epoch: int, n_slots: int) -> np.ndarray:
        """``(n_nodes,)`` integer packet arrivals during ``epoch``.

        ``n_slots`` is the epoch length; epochs are assumed uniform so slot
        ``epoch * n_slots`` is the epoch's first slot.
        """
        raise NotImplementedError

    def scaled(self, factor: float) -> "TrafficGenerator":
        """A fresh generator of the same kind with every rate scaled."""
        raise NotImplementedError

    def _rng(self, *key: int | str) -> np.random.Generator:
        return spawn(self._entropy, type(self).__name__, *key)


class ConstantBitRate(TrafficGenerator):
    """Deterministic fluid arrivals: ``rate`` packets per node per slot.

    Fractional rates accumulate exactly — node ``v`` has emitted
    ``floor(rate[v] * t)`` packets after ``t`` slots — so long-run throughput
    matches the nominal rate regardless of epoch length.
    """

    def arrivals(self, epoch: int, n_slots: int) -> np.ndarray:
        start, end = epoch * n_slots, (epoch + 1) * n_slots
        return (np.floor(self.rates * end) - np.floor(self.rates * start)).astype(
            np.int64
        )

    def scaled(self, factor: float) -> "ConstantBitRate":
        return ConstantBitRate(
            self.n_nodes, self.rates * factor, gateways=self._gateways, seed=self._entropy
        )


class PoissonArrivals(TrafficGenerator):
    """Memoryless arrivals: ``Poisson(rate * n_slots)`` packets per epoch."""

    def arrivals(self, epoch: int, n_slots: int) -> np.ndarray:
        return self._rng(epoch).poisson(self.rates * n_slots).astype(np.int64)

    def scaled(self, factor: float) -> "PoissonArrivals":
        return PoissonArrivals(
            self.n_nodes, self.rates * factor, gateways=self._gateways, seed=self._entropy
        )


class DiurnalLoad(TrafficGenerator):
    """Non-homogeneous Poisson with a sinusoidal daily load profile.

    The instantaneous rate of node ``v`` at slot ``t`` is::

        rate[v] * (1 + amplitude * sin(2 pi (t / period_slots + phase)))

    integrated exactly over each epoch window, so :attr:`mean_rate` is the
    long-run average and ``amplitude`` controls the peak-to-trough swing
    (``amplitude <= 1`` keeps the rate non-negative).
    """

    def __init__(
        self,
        n_nodes: int,
        rate: float | np.ndarray,
        gateways: np.ndarray | None = None,
        seed: int | np.random.Generator | None = None,
        amplitude: float = 0.5,
        period_slots: int = 2_000,
        phase: float = 0.0,
    ):
        super().__init__(n_nodes, rate, gateways, seed)
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if period_slots <= 0:
            raise ValueError("period_slots must be positive")
        self.amplitude = float(amplitude)
        self.period_slots = int(period_slots)
        self.phase = float(phase)

    def _integrated_profile(self, start: int, end: int) -> float:
        """Integral of the (unit-rate) modulation over ``[start, end)`` slots."""
        omega = 2.0 * np.pi / self.period_slots

        def antiderivative(t: float) -> float:
            return t - (self.amplitude / omega) * np.cos(omega * t + 2.0 * np.pi * self.phase)

        return antiderivative(end) - antiderivative(start)

    def arrivals(self, epoch: int, n_slots: int) -> np.ndarray:
        mass = self._integrated_profile(epoch * n_slots, (epoch + 1) * n_slots)
        return self._rng(epoch).poisson(self.rates * mass).astype(np.int64)

    def scaled(self, factor: float) -> "DiurnalLoad":
        return DiurnalLoad(
            self.n_nodes,
            self.rates * factor,
            gateways=self._gateways,
            seed=self._entropy,
            amplitude=self.amplitude,
            period_slots=self.period_slots,
            phase=self.phase,
        )


class ParetoOnOff(TrafficGenerator):
    """Bursty heavy-tailed on–off sources (Pareto sojourn times).

    Each node alternates between ON phases (emitting ``peak_rate`` packets
    per slot, fluid-accumulated like :class:`ConstantBitRate`) and silent OFF
    phases; both sojourn durations are Pareto with shape ``alpha`` (heavy
    tail, finite mean for ``alpha > 1``).  The ``rate`` constructor argument
    is the *long-run average*: ``peak_rate = rate / duty_cycle`` where
    ``duty_cycle = mean_on / (mean_on + mean_off)``.

    The process is a renewal process with real state, so unlike the other
    generators it must be stepped through epochs **in order** (the epoch
    argument is validated); :meth:`reset` rewinds to slot 0.  Two instances
    built with the same seed replay the identical sequence.
    """

    def __init__(
        self,
        n_nodes: int,
        rate: float | np.ndarray,
        gateways: np.ndarray | None = None,
        seed: int | np.random.Generator | None = None,
        alpha: float = 1.5,
        mean_on_slots: float = 50.0,
        mean_off_slots: float = 150.0,
    ):
        super().__init__(n_nodes, rate, gateways, seed)
        if alpha <= 1.0:
            raise ValueError("alpha must exceed 1 (finite-mean Pareto)")
        if mean_on_slots <= 0 or mean_off_slots <= 0:
            raise ValueError("mean sojourn times must be positive")
        self.alpha = float(alpha)
        self.mean_on_slots = float(mean_on_slots)
        self.mean_off_slots = float(mean_off_slots)
        self.duty_cycle = mean_on_slots / (mean_on_slots + mean_off_slots)
        self.peak_rates = self.rates / self.duty_cycle
        self.reset()

    def reset(self) -> None:
        """Rewind the renewal process to slot 0 (same seed, same replay)."""
        self._state_rng = spawn(self._entropy, type(self).__name__, "renewal")
        self._next_epoch = 0
        # Start every node in OFF with a fresh OFF sojourn so sources
        # desynchronize.
        self._on = np.zeros(self.n_nodes, dtype=bool)
        self._remaining = self._sojourn(self._on)
        self._on_credit = np.zeros(self.n_nodes, dtype=float)

    def _sojourn(self, on: np.ndarray) -> np.ndarray:
        """Pareto sojourn lengths (slots) for each node's *current* phase."""
        mean = np.where(on, self.mean_on_slots, self.mean_off_slots)
        scale = mean * (self.alpha - 1.0) / self.alpha  # Pareto minimum x_m
        u = self._state_rng.random(self.n_nodes)
        return scale / np.power(u, 1.0 / self.alpha)

    def arrivals(self, epoch: int, n_slots: int) -> np.ndarray:
        if epoch != self._next_epoch:
            raise ValueError(
                f"ParetoOnOff is a stateful renewal process: expected epoch "
                f"{self._next_epoch}, got {epoch}; call reset() to rewind"
            )
        self._next_epoch += 1

        counts = np.zeros(self.n_nodes, dtype=np.int64)
        left = np.full(self.n_nodes, float(n_slots))
        while np.any(left > 0):
            step = np.minimum(left, self._remaining)
            on_time = np.where(self._on, step, 0.0)
            # Fluid ON credit -> integer packets (remainder carried over).
            self._on_credit += self.peak_rates * on_time
            emitted = np.floor(self._on_credit)
            counts += emitted.astype(np.int64)
            self._on_credit -= emitted
            left -= step
            self._remaining -= step
            flip = self._remaining <= 1e-9
            if np.any(flip):
                self._on = np.where(flip, ~self._on, self._on)
                fresh = self._sojourn(self._on)
                self._remaining = np.where(flip, fresh, self._remaining)
        return counts

    def scaled(self, factor: float) -> "ParetoOnOff":
        return ParetoOnOff(
            self.n_nodes,
            self.rates * factor,
            gateways=self._gateways,
            seed=self._entropy,
            alpha=self.alpha,
            mean_on_slots=self.mean_on_slots,
            mean_off_slots=self.mean_off_slots,
        )
