"""Sensitivity graph construction (Definition 1).

Directed edge ``(u, v)`` belongs to the sensitivity graph ``GS`` iff node
``v`` can detect channel activity when ``u`` transmits alone — i.e. the
received power clears the carrier-sense threshold.  ``GS`` is a super-graph
of the communication graph (carrier sensing detects strictly weaker signals
than decoding), which is what makes the SCREAM flood complete within the
interference diameter.
"""

from __future__ import annotations

import numpy as np


def sensitivity_adjacency(power: np.ndarray, cs_threshold_mw: float) -> np.ndarray:
    """Boolean directed adjacency of the sensitivity graph.

    ``out[u, v]`` is True iff ``v`` senses ``u``'s lone transmission.  With
    homogeneous transmit powers and a deterministic propagation model the
    result is symmetric; with heterogeneous powers it generally is not
    (a strong node is heard farther than it hears).
    """
    p = np.asarray(power, dtype=float)
    if p.ndim != 2 or p.shape[0] != p.shape[1]:
        raise ValueError(f"power must be a square matrix, got shape {p.shape}")
    if cs_threshold_mw <= 0:
        raise ValueError(f"cs_threshold_mw must be positive, got {cs_threshold_mw}")
    adjacency = p >= cs_threshold_mw
    np.fill_diagonal(adjacency, False)
    return adjacency


def supergraph_check(comm_adj: np.ndarray, sens_adj: np.ndarray) -> bool:
    """Verify the paper's invariant: ``GS`` is a super-graph of ``G``.

    Every communication edge must be sensed in both directions.  Returns
    True when the invariant holds.
    """
    comm = np.asarray(comm_adj, dtype=bool)
    sens = np.asarray(sens_adj, dtype=bool)
    return bool(((~comm) | (sens & sens.T)).all())
