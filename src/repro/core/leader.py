"""Leader election via bitwise SCREAM elimination (Section III-B).

Nodes iterate over the bits of their unique IDs from most to least
significant.  In each iteration a network-wide OR (SCREAM) of the current
bit is computed; a node whose own bit is 0 while the OR is 1 is *voted out*
and participates passively from then on.  After ``id_bits`` iterations the
node(s) not voted out hold the maximum ID.

With an exact SCREAM the winner is unique (IDs are unique).  With a
truncated or faulty SCREAM, different regions can see different OR values
and elect *multiple* leaders — the pathology quantified in the truncated-K
ablation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

ScreamFn = Callable[[np.ndarray], np.ndarray]


def leader_elect(
    ids: np.ndarray,
    participating: np.ndarray,
    id_bits: int,
    scream: ScreamFn,
) -> np.ndarray:
    """Run the election; return the boolean winner mask.

    Parameters
    ----------
    ids:
        Per-node unique non-negative integer identifiers.
    participating:
        Boolean mask of nodes contending for leadership.  Non-participants
        behave exactly like the paper's ``LeaderElect(0)`` call: they relay
        screams but never contribute a 1 bit and can never win.
    id_bits:
        Number of ID bits to iterate over (must cover the largest
        participating ID).
    scream:
        The SCREAM primitive to use — one call per bit, each returning the
        per-node OR result.  Injecting the primitive keeps this module
        independent of the execution substrate (fast runtime, packet engine,
        or the exact oracle in tests).

    Returns
    -------
    numpy.ndarray
        Boolean mask of elected nodes.  Exactly one True under an exact
        SCREAM with unique IDs; possibly several under degraded SCREAMs;
        all-False when nobody participates.
    """
    id_arr = np.asarray(ids, dtype=np.int64)
    part = np.asarray(participating, dtype=bool)
    if id_arr.shape != part.shape or id_arr.ndim != 1:
        raise ValueError("ids and participating must be equal-length 1-D arrays")
    if np.any(id_arr < 0):
        raise ValueError("ids must be non-negative")
    active_ids = id_arr[part]
    if active_ids.size and int(active_ids.max()) >= (1 << id_bits):
        raise ValueError(
            f"id_bits={id_bits} cannot represent participating id "
            f"{int(active_ids.max())}"
        )

    voted_out = ~part
    for j in range(id_bits - 1, -1, -1):
        bit = (id_arr >> j) & 1 == 1
        contributes = bit & ~voted_out
        result = np.asarray(scream(contributes), dtype=bool)
        # A node is voted out when the OR is 1 but it did not contribute.
        voted_out |= result & ~contributes
    return part & ~voted_out
