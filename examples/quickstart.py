"""Quickstart: schedule a small mesh with FDD and inspect the result.

Builds the paper's planned scenario at reduced scale (a 6x6 grid with four
gateways), aggregates random demands along the routing forest, runs the FDD
distributed scheduler, verifies the schedule under the physical interference
model, and compares against the centralized baseline and the serialized
worst case.

Run:  python examples/quickstart.py
"""

from repro import (
    ProtocolConfig,
    TimingModel,
    aggregate_demand,
    build_routing_forest,
    fdd_on_network,
    forest_link_set,
    greedy_physical,
    grid_network,
    improvement_over_linear,
    planned_gateways,
    uniform_node_demand,
    verify_schedule,
)
from repro.util.rng import spawn

SEED = 42


def main() -> None:
    # 1. Deploy: a 6x6 planned grid at 1200 nodes/km^2 (~173 m on a side).
    network = grid_network(6, 6, density_per_km2=1200.0)
    print(f"network: {network.n_nodes} nodes, region {network.region.side:.0f} m")
    print(f"  communication graph degree: {network.neighbor_density():.1f}")
    print(f"  interference diameter ID(GS): {network.interference_diameter():.0f}")

    # 2. Route: every node joins a shortest-path tree toward the gateway.
    gateways = planned_gateways(6, 6, count=4)
    forest = build_routing_forest(network.comm_adj, gateways, rng=spawn(SEED, "f"))

    # 3. Demand: U[1, 10] packets per node, aggregated on tree links.
    demand = uniform_node_demand(
        network.n_nodes, spawn(SEED, "d"), gateways=gateways
    )
    links = forest_link_set(forest, aggregate_demand(forest, demand))
    print(f"  links to schedule: {links.n_links}, total demand TD={links.total_demand}")

    # 4. Schedule with the FDD distributed protocol (paper defaults: K=5,
    #    SMBytes=15) and verify under the exact SINR model.
    config = ProtocolConfig()
    result = fdd_on_network(network, links, config, rng=spawn(SEED, "p"))
    report = verify_schedule(result.schedule, network.model)
    print(f"\nFDD: {result.schedule.summary()}")
    print(f"  verification: {report}")
    print(f"  improvement over serialized: {improvement_over_linear(result.schedule):.1f}%")

    # 5. The distributed schedule equals the centralized GreedyPhysical
    #    baseline (Theorem 4) ...
    central = greedy_physical(links, network.model)
    assert central.length == result.schedule_length
    print(f"  == centralized GreedyPhysical length: {central.length} (Theorem 4)")

    # 6. ... and we know what it costs on air.
    timing = TimingModel(scream_bytes=config.smbytes)
    print(f"  distributed computation time: {timing.execution_time(result.tally):.3f} s")
    print(f"  steps: {result.tally}")


if __name__ == "__main__":
    main()
