"""Step tallies: counting the synchronized time steps a protocol consumes.

The distributed protocols advance in globally synchronized steps of four
kinds (SCREAM slots, data sub-slots, ACK sub-slots, bare sync barriers).
Execution time is a pure function of these tallies and the
:class:`~repro.core.timing.TimingModel`, which is exactly how the paper's
execution-time figures are produced: identical protocol executions re-priced
under different SCREAM sizes and clock-skew bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StepTally:
    """Counters of synchronized steps and semantic protocol events.

    Step counters (define execution time):

    * ``scream_slots`` — one per SCREAM slot (a SCREAM invocation adds K);
    * ``data_subslots`` / ``ack_subslots`` — handshake sub-slots;
    * ``syncs`` — bare GlobalSync barriers with no transmission.

    Semantic counters (diagnostics, complexity validation):

    * ``scream_calls`` — SCREAM invocations;
    * ``elections`` — leader elections;
    * ``handshakes`` — handshake steps (each = 1 data + 1 ACK sub-slot);
    * ``rounds`` — protocol rounds (= slots added to the schedule);
    * ``steps`` — greedy slot-construction iterations;
    * ``veto_steps`` — steps in which some allocated link vetoed;
    * ``multi_winner_elections`` — elections that produced >1 winner
      (possible only under truncated/faulty SCREAM).
    """

    scream_slots: int = 0
    data_subslots: int = 0
    ack_subslots: int = 0
    syncs: int = 0
    scream_calls: int = 0
    elections: int = 0
    handshakes: int = 0
    rounds: int = 0
    steps: int = 0
    veto_steps: int = 0
    multi_winner_elections: int = 0

    def add_scream(self, k: int) -> None:
        """Record one SCREAM invocation of K slots."""
        self.scream_calls += 1
        self.scream_slots += k

    def add_handshake(self) -> None:
        """Record one two-way handshake step (data + ACK sub-slots)."""
        self.handshakes += 1
        self.data_subslots += 1
        self.ack_subslots += 1

    def add_sync(self, count: int = 1) -> None:
        self.syncs += count

    @property
    def total_steps(self) -> int:
        """All synchronized time steps of any kind."""
        return self.scream_slots + self.data_subslots + self.ack_subslots + self.syncs

    def merged_with(self, other: "StepTally") -> "StepTally":
        """A new tally with the element-wise sum of both tallies."""
        merged = StepTally()
        for name in vars(self):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))

    def __str__(self) -> str:
        return (
            f"StepTally(rounds={self.rounds}, steps={self.steps}, "
            f"scream_slots={self.scream_slots}, handshakes={self.handshakes}, "
            f"syncs={self.syncs}, total_steps={self.total_steps})"
        )
