"""Mesh topologies: deployments, communication/sensitivity graphs, diameter.

Provides the two deployment families of the paper's evaluation (planned
square grids with homogeneous power, unplanned uniform-random placements with
heterogeneous power), the graphs derived from the physical layer, and the
interference-diameter machinery of Section IV-B.
"""

from repro.topology.regions import SquareRegion, side_for_density, density_for_side
from repro.topology.deployment import (
    grid_positions,
    uniform_positions,
    line_positions,
)
from repro.topology.network import Network, grid_network, uniform_network
from repro.topology.commgraph import communication_adjacency
from repro.topology.sensitivity import sensitivity_adjacency
from repro.topology.diameter import (
    hop_distance_matrix,
    interference_diameter,
    neighbor_density,
)
from repro.topology.lattice import (
    LatticeCell,
    segment_augmentation,
    lattice_paths,
    lattice_path_hop_length,
    is_square_grid_convex,
)

__all__ = [
    "SquareRegion",
    "side_for_density",
    "density_for_side",
    "grid_positions",
    "uniform_positions",
    "line_positions",
    "Network",
    "grid_network",
    "uniform_network",
    "communication_adjacency",
    "sensitivity_adjacency",
    "hop_distance_matrix",
    "interference_diameter",
    "neighbor_density",
    "LatticeCell",
    "segment_augmentation",
    "lattice_paths",
    "lattice_path_hop_length",
    "is_square_grid_convex",
]
