"""The :class:`Network` container: one deployed mesh with its physical layer.

A ``Network`` bundles everything downstream code needs about a deployed mesh:
positions, per-node transmit powers, the received-power matrix, the physical
interference model, and the communication / sensitivity graphs.  Builders are
provided for the paper's two evaluation scenarios:

* :func:`grid_network` — planned placement, homogeneous power;
* :func:`uniform_network` — unplanned placement, heterogeneous power.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.phy.gain import received_power_matrix
from repro.phy.interference import PhysicalInterferenceModel
from repro.phy.propagation import LogDistancePathLoss, PropagationModel
from repro.phy.radio import RadioConfig, heterogeneous_tx_power, uniform_tx_power
from repro.topology.commgraph import communication_adjacency, is_connected
from repro.topology.deployment import grid_positions, uniform_positions
from repro.topology.diameter import (
    hop_distance_matrix,
    interference_diameter,
    neighbor_density,
)
from repro.topology.regions import SquareRegion
from repro.topology.sensitivity import sensitivity_adjacency, supergraph_check
from repro.util.rng import ensure_rng


@dataclass(frozen=True)
class Network:
    """A deployed wireless mesh with its derived physical-layer structures.

    Instances are immutable; derived matrices (hop distances, diameters) are
    computed lazily and cached.
    """

    positions: np.ndarray
    tx_power_mw: np.ndarray
    radio: RadioConfig
    propagation: PropagationModel
    region: SquareRegion

    def __post_init__(self) -> None:
        pos = np.asarray(self.positions, dtype=float)
        tx = np.asarray(self.tx_power_mw, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ValueError(f"positions must be (n, 2), got {pos.shape}")
        if tx.shape != (pos.shape[0],):
            raise ValueError(
                f"tx_power_mw must have shape ({pos.shape[0]},), got {tx.shape}"
            )
        object.__setattr__(self, "positions", pos)
        object.__setattr__(self, "tx_power_mw", tx)

    @property
    def n_nodes(self) -> int:
        return self.positions.shape[0]

    @cached_property
    def power(self) -> np.ndarray:
        """Received-power matrix ``P[i, j]`` in mW."""
        return received_power_matrix(self.positions, self.tx_power_mw, self.propagation)

    @cached_property
    def model(self) -> PhysicalInterferenceModel:
        """The feasibility oracle bound to this network."""
        return PhysicalInterferenceModel(self.power, self.radio)

    @cached_property
    def comm_adj(self) -> np.ndarray:
        """Symmetric boolean adjacency of the communication graph ``G``."""
        return communication_adjacency(
            self.power, self.radio.noise_mw, self.radio.beta
        )

    @cached_property
    def sens_adj(self) -> np.ndarray:
        """Directed boolean adjacency of the sensitivity graph ``GS``."""
        return sensitivity_adjacency(self.power, self.radio.cs_threshold_mw)

    @cached_property
    def comm_hop_distance(self) -> np.ndarray:
        """All-pairs hop distances in the communication graph."""
        return hop_distance_matrix(self.comm_adj)

    @cached_property
    def sens_hop_distance(self) -> np.ndarray:
        """All-pairs directed hop distances in the sensitivity graph."""
        return hop_distance_matrix(self.sens_adj)

    def interference_diameter(self) -> float:
        """``ID(GS)`` of this deployment (inf if GS is not strongly connected)."""
        dist = self.sens_hop_distance
        return float(dist.max()) if dist.size else 0.0

    def is_connected(self) -> bool:
        """Is the communication graph connected?"""
        return is_connected(self.comm_adj)

    def neighbor_density(self) -> float:
        """Average degree ``ρ(G)`` of the communication graph."""
        return neighbor_density(self.comm_adj)

    def validate(self) -> None:
        """Check the paper's structural assumptions; raise if violated.

        * the communication graph is connected;
        * the sensitivity graph is a super-graph of the communication graph;
        * the interference diameter is finite.
        """
        if not self.is_connected():
            raise ValueError("communication graph is not connected")
        if not supergraph_check(self.comm_adj, self.sens_adj):
            raise ValueError("sensitivity graph is not a super-graph of G")
        if not np.isfinite(self.interference_diameter()):
            raise ValueError("sensitivity graph is not strongly connected")

    def comm_graph_nx(self):
        """The communication graph as a :class:`networkx.Graph`."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.n_nodes))
        rows, cols = np.nonzero(np.triu(self.comm_adj, k=1))
        graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
        return graph


def grid_network(
    rows: int = 8,
    cols: int = 8,
    density_per_km2: float = 5000.0,
    tx_power_dbm: float = 12.0,
    radio: RadioConfig | None = None,
    propagation: PropagationModel | None = None,
) -> Network:
    """The planned scenario: ``rows x cols`` lattice, homogeneous power.

    The region is sized from the paper's density parameter (nodes/km²);
    the default radio/propagation parameters give a ~54 m communication
    range, which covers the lattice step across the paper's density sweep
    (36 m at 1000 nodes/km² down to 7 m at 25000 nodes/km²) while keeping
    the graph genuinely multihop at the sparse end.
    """
    radio = radio or RadioConfig()
    propagation = propagation or LogDistancePathLoss(alpha=radio.alpha)
    n = rows * cols
    region = SquareRegion.for_density(n, density_per_km2)
    positions = grid_positions(rows, cols, region)
    tx = uniform_tx_power(n, tx_power_dbm)
    return Network(positions, tx, radio, propagation, region)


def uniform_network(
    n: int = 64,
    density_per_km2: float = 5000.0,
    rng: np.random.Generator | int | None = None,
    power_range_dbm: tuple[float, float] = (10.0, 14.0),
    radio: RadioConfig | None = None,
    propagation: PropagationModel | None = None,
    require_connected: bool = True,
    max_retries: int = 50,
) -> Network:
    """The unplanned scenario: uniform placement, heterogeneous power.

    Placement is resampled (deterministically, from the supplied generator)
    until the communication graph is connected, mirroring how simulation
    studies discard disconnected instances; set ``require_connected=False``
    to keep the first draw regardless.
    """
    generator = ensure_rng(rng)
    radio = radio or RadioConfig()
    propagation = propagation or LogDistancePathLoss(alpha=radio.alpha)
    region = SquareRegion.for_density(n, density_per_km2)
    low, high = power_range_dbm

    last: Network | None = None
    for _ in range(max_retries):
        positions = uniform_positions(n, region, generator)
        tx = heterogeneous_tx_power(n, generator, low_dbm=low, high_dbm=high)
        last = Network(positions, tx, radio, propagation, region)
        if not require_connected or last.is_connected():
            return last
    raise RuntimeError(
        f"could not draw a connected uniform network in {max_retries} tries "
        f"(n={n}, density={density_per_km2}/km^2); the density is likely too "
        "low for the configured radio range"
    )
