"""Physical-layer substrate: propagation, radio parameters, SINR feasibility.

This subpackage implements the physical interference model the paper builds
on (the two-sub-slot data + ACK variation of the model of Brar et al.,
MobiCom 2006) together with the radio propagation models needed to
instantiate it on concrete topologies.
"""

from repro.phy.units import dbm_to_mw, mw_to_dbm, db_to_linear, linear_to_db
from repro.phy.propagation import (
    PropagationModel,
    FreeSpace,
    LogDistancePathLoss,
    LogNormalShadowing,
)
from repro.phy.radio import RadioConfig, RateTable
from repro.phy.gain import received_power_matrix, gain_matrix
from repro.phy.sinr import sinr_for_links, min_sinr_margin, rates_for_links
from repro.phy.interference import (
    PhysicalInterferenceModel,
    link_feasible_alone,
)
from repro.phy.spatial import GridIndex
from repro.phy.sparse import (
    SparsePowerMatrix,
    SparseGainModel,
    build_sparse_power,
    far_field_floor_mw,
    interference_radius_m,
    sparse_gain_model,
)

__all__ = [
    "dbm_to_mw",
    "mw_to_dbm",
    "db_to_linear",
    "linear_to_db",
    "PropagationModel",
    "FreeSpace",
    "LogDistancePathLoss",
    "LogNormalShadowing",
    "RadioConfig",
    "RateTable",
    "received_power_matrix",
    "gain_matrix",
    "sinr_for_links",
    "min_sinr_margin",
    "rates_for_links",
    "PhysicalInterferenceModel",
    "link_feasible_alone",
    "GridIndex",
    "SparsePowerMatrix",
    "SparseGainModel",
    "build_sparse_power",
    "far_field_floor_mw",
    "interference_radius_m",
    "sparse_gain_model",
]
