"""The SCREAM primitive: a carrier-sensing flood computing a network-wide OR.

Section III-A of the paper.  Every node holding ``true`` transmits
("screams") in every slot; silent nodes listen, and start relaying from the
slot after they first detect activity.  Detection is based on *energy*, so
concurrent screams reinforce rather than collide — the primitive is
collision-resilient by construction.

After ``K`` slots, node ``v`` holds ``true`` iff some initially-true node
``u`` satisfies ``d_GS(u, v) <= K``; hence ``K >= ID(GS)`` makes the result
the exact network-wide OR (every node reachable), and ``K < ID(GS)``
truncates propagation — the failure mode the localized-impossibility and
ablation experiments exercise.
"""

from __future__ import annotations

import numpy as np


def scream_exact(inputs: np.ndarray) -> np.ndarray:
    """The idealized SCREAM outcome: every node learns ``OR(inputs)``.

    Valid when ``K >= ID(GS)`` and carrier sensing is error-free.
    """
    arr = np.asarray(inputs, dtype=bool)
    return np.full(arr.shape, bool(arr.any()))


def scream_flood(
    sens_adj: np.ndarray,
    inputs: np.ndarray,
    k: int,
    rng: np.random.Generator | None = None,
    miss_prob: float = 0.0,
) -> np.ndarray:
    """Slot-by-slot SCREAM flood over the sensitivity graph.

    Parameters
    ----------
    sens_adj:
        Directed boolean adjacency of the sensitivity graph
        (``sens_adj[u, v]`` = v senses u's transmission).
    inputs:
        Per-node boolean variables (``var(i)`` in the paper).
    k:
        Number of SCREAM slots.
    rng, miss_prob:
        Optional carrier-sense fault model: each listening node
        independently fails to detect activity in a slot with probability
        ``miss_prob`` (detector noise; concurrent screamers still count as
        one detection opportunity because energies add).

    Returns
    -------
    numpy.ndarray
        Per-node boolean results (``relay`` after K slots).
    """
    adj = np.asarray(sens_adj, dtype=bool)
    relay = np.asarray(inputs, dtype=bool).copy()
    if relay.shape != (adj.shape[0],):
        raise ValueError(
            f"inputs must have shape ({adj.shape[0]},), got {relay.shape}"
        )
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if miss_prob and rng is None:
        raise ValueError("rng is required when miss_prob > 0")

    for _ in range(k):
        if relay.all():
            break  # flood saturated; remaining slots change nothing
        heard = adj[relay].any(axis=0) if relay.any() else np.zeros_like(relay)
        if miss_prob:
            heard &= rng.random(relay.shape[0]) >= miss_prob
        relay |= heard
    return relay


def scream_reach_exactly(
    sens_hop_distance: np.ndarray, inputs: np.ndarray, k: int
) -> np.ndarray:
    """Closed-form fault-free flood result from precomputed hop distances.

    Equivalent to :func:`scream_flood` with ``miss_prob=0``: node ``v`` ends
    true iff some true source lies within ``k`` directed hops.  Used by the
    fast runtime and as the property-test oracle.
    """
    dist = np.asarray(sens_hop_distance, dtype=float)
    src = np.asarray(inputs, dtype=bool)
    if not src.any():
        return np.zeros_like(src)
    reach = dist[src].min(axis=0) <= k
    return reach | src
