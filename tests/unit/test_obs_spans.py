"""Unit tests for phase spans, recorders, and the JSONL run-file schema."""

import json

import pytest

from repro.obs import (
    BufferRecorder,
    JsonlRecorder,
    NullRecorder,
    Obs,
    ObsConfig,
    Span,
    phase,
    validate_run_file,
)
from repro.obs import spans as obs_spans
from repro.obs.export import SCHEMA_VERSION, load_run_file
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NOOP_SPAN


class TestSpan:
    def test_measures_wall_and_cpu(self):
        with Span("work") as span:
            sum(range(1000))
        assert span.wall_s is not None and span.wall_s >= 0.0
        assert span.cpu_s is not None and span.cpu_s >= 0.0

    def test_nesting_depth_and_parent(self):
        rec = BufferRecorder()
        with Span("outer", recorder=rec):
            with Span("inner", recorder=rec):
                pass
        inner, outer = rec.spans
        assert (inner.name, inner.depth, inner.parent) == ("inner", 1, "outer")
        assert (outer.name, outer.depth, outer.parent) == ("outer", 0, None)
        assert inner.seq > outer.seq  # open order

    def test_cpu_clock_unavailable_yields_none(self, monkeypatch):
        monkeypatch.setattr(obs_spans, "CPU_CLOCK", None)
        with Span("work") as span:
            pass
        assert span.wall_s is not None
        assert span.cpu_s is None
        assert span.row()["cpu_s"] is None

    def test_row_schema_keys(self):
        with Span("x", epoch=3, engine="epoch") as span:
            pass
        row = span.row()
        assert row["type"] == "span"
        assert row["labels"] == {"epoch": 3, "engine": "epoch"}
        assert set(row) >= {"name", "labels", "seq", "depth", "parent", "wall_s", "cpu_s"}

    def test_exception_unwinds_stack(self):
        with pytest.raises(RuntimeError):
            with Span("outer"):
                with Span("inner"):
                    raise RuntimeError("boom")
        with Span("after") as span:
            pass
        assert span.depth == 0  # stack fully unwound


class TestPhase:
    def test_off_path_is_shared_noop(self):
        assert phase(None, "anything") is NOOP_SPAN
        with phase(None, "anything") as span:
            assert span.wall_s is None

    def test_measure_without_obs_times_without_recording(self):
        with phase(None, "timed", measure=True) as span:
            pass
        assert span is not NOOP_SPAN
        assert span.cpu_s is not None or obs_spans.CPU_CLOCK is None

    def test_metrics_level_obs_does_not_record_spans(self):
        obs = Obs.create(ObsConfig(level="metrics"))
        assert phase(obs, "x") is NOOP_SPAN

    def test_spans_level_obs_records(self, tmp_path):
        obs = Obs.create(
            ObsConfig(level="spans", jsonl_path=str(tmp_path / "r.jsonl"))
        )
        with phase(obs, "x", epoch=0):
            pass
        obs.export()
        rows = load_run_file(tmp_path / "r.jsonl")
        assert [r["name"] for r in rows if r["type"] == "span"] == ["x"]


class TestRecorders:
    def test_null_recorder_drops(self):
        rec = NullRecorder()
        with Span("x", recorder=rec):
            pass  # nothing to assert beyond "no error, no storage"
        assert not hasattr(rec, "spans")

    def test_obs_create_off_is_none(self):
        assert Obs.create(ObsConfig(level="off")) is None
        assert Obs.create(None) is None

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            ObsConfig(level="verbose")


class TestJsonlSchema:
    def _emit(self, tmp_path, n_spans=2):
        rec = JsonlRecorder(tmp_path / "run.jsonl", "t", config={"k": 1})
        for i in range(n_spans):
            with Span(f"s{i}", recorder=rec):
                pass
        reg = MetricsRegistry()
        reg.counter("c", 2, engine="epoch")
        reg.observe("h", 1.0)
        rec.export(reg)
        return tmp_path / "run.jsonl"

    def test_round_trip_valid(self, tmp_path):
        path = self._emit(tmp_path)
        assert validate_run_file(path) == []
        rows = load_run_file(path)
        assert rows[0]["type"] == "run" and rows[0]["schema"] == SCHEMA_VERSION
        assert rows[-1] == {"type": "summary", "n_spans": 2, "n_metrics": 2}

    def test_nan_becomes_null(self, tmp_path):
        rec = JsonlRecorder(tmp_path / "run.jsonl", "t")
        reg = MetricsRegistry()
        reg.gauge("g", float("nan"))
        rec.export(reg)
        rows = load_run_file(tmp_path / "run.jsonl")
        gauge = next(r for r in rows if r.get("kind") == "gauge")
        assert gauge["value"] is None

    def test_truncated_file_detected(self, tmp_path):
        path = self._emit(tmp_path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop the summary
        assert any("summary" in p for p in validate_run_file(path))

    def test_miscounted_summary_detected(self, tmp_path):
        path = self._emit(tmp_path)
        lines = path.read_text().splitlines()
        summary = json.loads(lines[-1])
        summary["n_spans"] += 1
        lines[-1] = json.dumps(summary)
        path.write_text("\n".join(lines) + "\n")
        assert any("spans" in p for p in validate_run_file(path))

    def test_garbage_line_detected(self, tmp_path):
        path = self._emit(tmp_path)
        path.write_text(path.read_text() + "{not json\n")
        assert validate_run_file(path)

    def test_unknown_line_type_detected(self, tmp_path):
        path = self._emit(tmp_path)
        lines = path.read_text().splitlines()
        lines.insert(1, json.dumps({"type": "mystery"}))
        path.write_text("\n".join(lines) + "\n")
        assert any("unknown line type" in p for p in validate_run_file(path))

    def test_export_idempotent(self, tmp_path):
        rec = JsonlRecorder(tmp_path / "run.jsonl", "t")
        rec.export(None)
        rec.export(None)  # second call is a no-op, not a corrupted file
        assert validate_run_file(tmp_path / "run.jsonl") == []
