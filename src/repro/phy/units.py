"""Power unit conversions (dBm <-> mW, dB <-> linear ratio).

All internal computations in the library use *linear* milliwatts so that
interference powers can simply be summed; dBm appears only at configuration
boundaries (radio parameters, logs, documentation).
"""

from __future__ import annotations

import numpy as np


def dbm_to_mw(dbm):
    """Convert a power level in dBm to milliwatts.

    Works element-wise on arrays.

    >>> dbm_to_mw(0.0)
    1.0
    >>> round(dbm_to_mw(20.0), 6)
    100.0
    """
    return np.power(10.0, np.asarray(dbm, dtype=float) / 10.0).item() if np.isscalar(
        dbm
    ) else np.power(10.0, np.asarray(dbm, dtype=float) / 10.0)


def mw_to_dbm(mw):
    """Convert a power level in milliwatts to dBm (element-wise on arrays).

    >>> mw_to_dbm(1.0)
    0.0
    """
    arr = np.asarray(mw, dtype=float)
    if np.any(arr <= 0):
        raise ValueError("power in mW must be strictly positive to express in dBm")
    out = 10.0 * np.log10(arr)
    return out.item() if np.isscalar(mw) else out


def db_to_linear(db):
    """Convert a ratio expressed in dB to a linear ratio (element-wise)."""
    out = np.power(10.0, np.asarray(db, dtype=float) / 10.0)
    return out.item() if np.isscalar(db) else out


def linear_to_db(ratio):
    """Convert a linear ratio to dB (element-wise)."""
    arr = np.asarray(ratio, dtype=float)
    if np.any(arr <= 0):
        raise ValueError("ratio must be strictly positive to express in dB")
    out = 10.0 * np.log10(arr)
    return out.item() if np.isscalar(ratio) else out
