"""Vectorized slot-faithful runtime (the experiments' execution substrate).

Resolves each protocol primitive with numpy over the network's precomputed
matrices while preserving per-slot semantics:

* fault-free SCREAMs use the closed-form reachability result (node true iff
  a true source lies within K directed hops of the sensitivity graph), which
  equals the slot-by-slot flood exactly;
* faulty SCREAMs run the flood slot by slot with Bernoulli detection misses;
* handshakes evaluate the exact two-sub-slot SINR model;
* every primitive books the synchronized steps it would occupy on air.

This is the standard protocol-simulation fidelity level: behaviour is
bit-identical to the per-node packet engine (asserted by integration tests)
at a small fraction of the cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import NO_FAULTS, FaultConfig, ProtocolConfig
from repro.core.runtime import Runtime
from repro.core.scream import scream_flood
from repro.phy.interference import PhysicalInterferenceModel
from repro.topology.diameter import hop_distance_matrix
from repro.topology.network import Network
from repro.util.rng import ensure_rng


class FastRuntime(Runtime):
    """Numpy-vectorized execution substrate bound to one network."""

    def __init__(
        self,
        model: PhysicalInterferenceModel,
        sens_adj: np.ndarray,
        ids: np.ndarray,
        config: ProtocolConfig,
        faults: FaultConfig = NO_FAULTS,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        self._model = model
        self._sens_adj = np.asarray(sens_adj, dtype=bool)
        self._ids = np.asarray(ids, dtype=np.int64)
        self.config = config
        self.faults = faults
        self._rng = ensure_rng(rng)
        if self._ids.shape != (model.n_nodes,):
            raise ValueError("ids must have one entry per node")
        if np.any(self._ids < 0):
            # The generic leader_elect rejected negative ids per call; the
            # inlined election validates once here (ids never change) — a
            # negative id would sign-extend to 1 on every high bit and
            # silently win elections it should lose.
            raise ValueError("ids must be non-negative")
        if self._sens_adj.shape != (model.n_nodes, model.n_nodes):
            raise ValueError("sens_adj shape must match the model's node count")

        self._sens_dist: np.ndarray | None = None
        self._within_k: np.ndarray | None = None
        self._saturated = False
        if faults.is_faultless:
            self._sens_dist = hop_distance_matrix(self._sens_adj)
            # Boolean K-hop reachability: one OR-reduction per fault-free
            # SCREAM instead of a float min — SCREAMs are the innermost
            # protocol operation (id_bits per election), so this matrix is
            # the difference between overhead-bound and size-bound cost.
            self._within_k = self._sens_dist <= config.k
            # K at least the substrate's interference diameter: every SCREAM
            # saturates, so elections resolve in closed form (see
            # leader_elect).  Small regional substrates saturate long before
            # a backbone does — the property that makes sharded protocol
            # simulation scale.
            self._saturated = bool(self._within_k.all())
        # Per-bit contribution masks for leader elections, most significant
        # bit first; ids are fixed per runtime, so the shifts happen once.
        self._id_bit_masks = [
            (self._ids >> j) & 1 == 1 for j in range(config.id_bits - 1, -1, -1)
        ]

    @classmethod
    def for_network(
        cls,
        network: Network,
        config: ProtocolConfig,
        faults: FaultConfig = NO_FAULTS,
        rng: np.random.Generator | int | None = None,
        ids: np.ndarray | None = None,
        model: PhysicalInterferenceModel | None = None,
    ) -> "FastRuntime":
        """Construct from a :class:`~repro.topology.network.Network`.

        ``model`` overrides the network's own feasibility oracle — the hook
        the sharded epoch engine uses to run protocol handshakes under a
        budgeted (guard-margin) oracle; see
        :meth:`repro.phy.interference.PhysicalInterferenceModel.with_budget`.
        """
        node_ids = (
            np.arange(network.n_nodes, dtype=np.int64) if ids is None else ids
        )
        return cls(
            model=network.model if model is None else model,
            sens_adj=network.sens_adj,
            ids=node_ids,
            config=config,
            faults=faults,
            rng=rng,
        )

    @property
    def n_nodes(self) -> int:
        return self._model.n_nodes

    @property
    def ids(self) -> np.ndarray:
        return self._ids

    def scream(self, inputs: np.ndarray) -> np.ndarray:
        """One K-slot SCREAM; exact reachability or faulty flood."""
        self.tally.add_scream(self.config.k)
        arr = np.asarray(inputs, dtype=bool)
        if self._within_k is not None:
            # Fault-free closed form (same result as scream_reach_exactly,
            # boolean OR instead of float min): v hears iff a source lies
            # within K directed hops, and sources always hear themselves.
            if not arr.any():
                return np.zeros_like(arr)
            return self._within_k[arr].any(axis=0) | arr
        return scream_flood(
            self._sens_adj,
            arr,
            self.config.k,
            rng=self._rng,
            miss_prob=self.faults.scream_miss_prob,
        )

    def leader_elect(self, participating: np.ndarray) -> np.ndarray:
        """Bitwise election; one SCREAM per ID bit.

        Inlines :func:`repro.core.leader.leader_elect` against the cached
        per-bit contribution masks (ids never change within a runtime) —
        identical outcomes and identical tally accounting, minus the
        per-election bit-shift and validation overhead of the generic path.
        """
        self.tally.elections += 1
        part = np.asarray(participating, dtype=bool)
        if part.shape != self._ids.shape:
            raise ValueError("participating mask must have one entry per node")
        active_ids = self._ids[part]
        if active_ids.size and int(active_ids.max()) >= (1 << self.config.id_bits):
            raise ValueError(
                f"id_bits={self.config.id_bits} cannot represent participating "
                f"id {int(active_ids.max())}"
            )
        bits = len(self._id_bit_masks)
        alive = int(part.sum())
        # The shortcuts below are exact only on the fault-free substrate;
        # a faulty runtime must *execute* every scream so the shared fault
        # RNG stream advances identically to the unshortcut simulation
        # (skipping draws would silently change every later miss).
        faultless = self._within_k is not None
        if faultless and (self._saturated or alive <= 1):
            # Exact shortcuts, identical air time.  (a) ``alive <= 1``: a
            # lone participant hears itself on its 1-bits and nobody
            # contributes on its 0-bits, so it survives; an empty pool
            # never changes.  (b) saturated substrate: every node hears
            # every contributor, so each bit eliminates exactly the alive
            # nodes whose bit is 0 while some alive bit is 1 — the classic
            # max-ID elimination.  Either way the full id_bits SCREAMs are
            # still charged: the shortcut is the simulator's, not the
            # protocol's.
            for _ in range(bits):
                self.tally.add_scream(self.config.k)
            if alive == 0:
                return np.zeros_like(part)
            winners = part & (self._ids == int(active_ids.max()))
        else:
            voted_out = ~part
            done = 0
            for bit in self._id_bit_masks:
                contributes = bit & ~voted_out
                result = self.scream(contributes)
                voted_out |= result & ~contributes
                done += 1
                if not faultless:
                    continue
                alive = int(part.sum()) - int((part & voted_out).sum())
                if alive <= 1:
                    # The survivor set can no longer change (contributors
                    # are always alive participants); charge the remaining
                    # SCREAMs without simulating them.
                    for _ in range(bits - done):
                        self.tally.add_scream(self.config.k)
                    break
            winners = part & ~voted_out
        if int(winners.sum()) > 1:
            self.tally.multi_winner_elections += 1
        return winners

    def handshake(self, senders: np.ndarray, receivers: np.ndarray) -> np.ndarray:
        """Concurrent two-way handshakes under the exact SINR model.

        Uses the conditional-ACK semantics (a receiver that misses the data
        packet sends no ACK), matching the packet engine exactly.
        """
        self.tally.add_handshake()
        snd = np.asarray(senders, dtype=np.intp)
        rcv = np.asarray(receivers, dtype=np.intp)
        if snd.size == 0:
            return np.zeros(0, dtype=bool)
        return self._model.handshake_mask(snd, rcv)
