"""The centralized GreedyPhysical algorithm (Brar et al., MobiCom 2006).

The baseline of the paper's evaluation and the algorithm FDD reproduces
distributedly.  Edges are considered in a fixed order; each edge is
allocated greedily to the earliest slots of the current schedule that remain
feasible with it, opening new slots at the end until its demand is met.

Polynomial time: with :class:`~repro.scheduling.feasibility.SlotState`
bookkeeping each (link, slot) test costs O(k) in the slot's occupancy.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.phy.interference import PhysicalInterferenceModel
from repro.scheduling.feasibility import SlotState
from repro.scheduling.links import LinkSet
from repro.scheduling.orderings import EDGE_ORDERINGS
from repro.scheduling.schedule import Schedule, Slot


def greedy_physical(
    links: LinkSet,
    model: PhysicalInterferenceModel,
    ordering: str | Callable[[LinkSet, PhysicalInterferenceModel], np.ndarray] = "id",
) -> Schedule:
    """Compute a feasible schedule with the centralized greedy algorithm.

    Parameters
    ----------
    links:
        The links to schedule with their demands.
    model:
        Physical interference feasibility oracle.
    ordering:
        Name from :data:`~repro.scheduling.orderings.EDGE_ORDERINGS` or a
        callable ``(links, model) -> indices``.  The default ``"id"``
        (decreasing head IDs) is the ordering FDD realizes (Theorem 4).

    Returns
    -------
    Schedule
        A feasible schedule satisfying every link's demand.  Links with zero
        demand receive no slots.

    Raises
    ------
    ValueError
        If some link cannot even be scheduled alone in a slot (i.e. it is
        not a communication-graph edge), which would make its demand
        unsatisfiable.
    """
    order_fn = EDGE_ORDERINGS[ordering] if isinstance(ordering, str) else ordering
    order = order_fn(links, model)

    schedule = Schedule(link_set=links)
    states: list[SlotState] = []

    for k in order:
        k = int(k)
        remaining = int(links.demand[k])
        sender = int(links.heads[k])
        receiver = int(links.tails[k])
        slot_idx = 0
        while remaining > 0:
            if slot_idx == len(states):
                states.append(SlotState(model))
                schedule.slots.append(Slot())
                if not states[slot_idx].can_add(sender, receiver):
                    raise ValueError(
                        f"link {sender}->{receiver} is infeasible even alone; "
                        "it is not a valid communication edge"
                    )
            if states[slot_idx].try_add(sender, receiver):
                schedule.slots[slot_idx].add(k)
                remaining -= 1
            slot_idx += 1
    return schedule
