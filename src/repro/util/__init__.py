"""Shared utilities: reproducible RNG management and argument validation.

Persistence helpers live in :mod:`repro.util.persist`; they are re-exported
from the top-level :mod:`repro` package rather than here to keep this
package import-light (propagation models import validation helpers from it).
"""

from repro.util.rng import ensure_rng, spawn, spawn_many
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_integer_in_range,
)

__all__ = [
    "ensure_rng",
    "spawn",
    "spawn_many",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_integer_in_range",
]
