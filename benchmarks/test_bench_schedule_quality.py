"""Benches for the schedule-length figures (E3/Fig6 grid, E4/Fig7 uniform).

Regenerates the paper's series — % improvement over the serialized schedule
vs density for Centralized / FDD / PDD — and measures the end-to-end cost of
producing each figure.
"""

import pytest

from repro.experiments.schedule_quality import (
    grid_schedule_experiment,
    uniform_schedule_experiment,
)


@pytest.mark.benchmark(group="figures")
def test_fig6_grid_schedule_length(benchmark, bench_profile, save_table):
    table = benchmark.pedantic(
        grid_schedule_experiment, args=(bench_profile,), rounds=1, iterations=1
    )
    save_table("fig6_grid_schedule", table)
    assert table.n_rows == len(bench_profile.densities)


@pytest.mark.benchmark(group="figures")
def test_fig7_uniform_schedule_length(benchmark, bench_profile, save_table):
    table = benchmark.pedantic(
        uniform_schedule_experiment, args=(bench_profile,), rounds=1, iterations=1
    )
    save_table("fig7_uniform_schedule", table)
    assert table.n_rows == len(bench_profile.densities)
