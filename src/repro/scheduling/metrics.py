"""Schedule quality metrics and full verification.

``improvement_over_linear`` is the y-axis of the paper's schedule-length
figures; :func:`verify_schedule` is the independent checker used by tests
and by the failure-injection experiments to detect infeasible schedules
produced under degraded conditions (K < ID, detection errors).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.interference import PhysicalInterferenceModel
from repro.scheduling.schedule import Schedule


def improvement_over_linear(schedule: Schedule) -> float:
    """Percentage schedule-length improvement over the serialized schedule.

    ``100 * (TD - T) / TD`` where ``TD`` is the total demand and ``T`` the
    schedule length.  0 means no spatial reuse at all; values approaching
    100 mean massive reuse.
    """
    td = schedule.link_set.total_demand
    if td == 0:
        return 0.0
    return 100.0 * (td - schedule.length) / td


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of full schedule verification."""

    feasible: bool
    demand_satisfied: bool
    infeasible_slots: tuple[int, ...]
    shortfall_links: tuple[int, ...]

    @property
    def ok(self) -> bool:
        return self.feasible and self.demand_satisfied

    def __str__(self) -> str:
        if self.ok:
            return "schedule OK (feasible, demand satisfied)"
        parts = []
        if not self.feasible:
            parts.append(f"infeasible slots: {list(self.infeasible_slots)}")
        if not self.demand_satisfied:
            parts.append(f"links with unmet demand: {list(self.shortfall_links)}")
        return "schedule INVALID — " + "; ".join(parts)


def verify_schedule(
    schedule: Schedule, model: PhysicalInterferenceModel
) -> VerificationReport:
    """Independently verify feasibility of every slot and demand satisfaction.

    Recomputes every slot's SINRs from the exact model (no incremental
    state), so it catches any bookkeeping bug in the schedulers as well as
    genuine protocol failures under degraded SCREAM conditions.
    """
    bad_slots: list[int] = []
    for t in range(schedule.length):
        snd, rcv = schedule.slot_members(t)
        if snd.size and not model.is_feasible(snd, rcv):
            bad_slots.append(t)
        if np.unique(np.concatenate([snd, rcv])).size != snd.size + rcv.size:
            # A node appearing twice in a slot (two roles) cannot happen for
            # half-duplex radios; flag the slot.
            if t not in bad_slots:
                bad_slots.append(t)

    allocations = schedule.allocations()
    shortfall = np.flatnonzero(allocations < schedule.link_set.demand)
    return VerificationReport(
        feasible=not bad_slots,
        demand_satisfied=shortfall.size == 0,
        infeasible_slots=tuple(bad_slots),
        shortfall_links=tuple(int(k) for k in shortfall),
    )
