"""Communication graph construction (Section II).

An edge ``(u, v)`` belongs to the communication graph iff the link closes in
*both* directions in the absence of any other transmission: the data packet
and the link-layer ACK must each clear the SINR threshold against background
noise alone.  Unidirectional links are discarded, exactly as the paper does
("we assume that unidirectional links are not used even if they are present").
"""

from __future__ import annotations

import numpy as np


def communication_adjacency(
    power: np.ndarray, noise_mw: float, beta: float
) -> np.ndarray:
    """Boolean symmetric adjacency of the communication graph.

    Parameters
    ----------
    power:
        ``(n, n)`` received-power matrix in mW.
    noise_mw, beta:
        Background noise and SINR decode threshold.

    Returns
    -------
    numpy.ndarray
        ``(n, n)`` boolean matrix, False on the diagonal, symmetric.
    """
    p = np.asarray(power, dtype=float)
    if p.ndim != 2 or p.shape[0] != p.shape[1]:
        raise ValueError(f"power must be a square matrix, got shape {p.shape}")
    if noise_mw <= 0 or beta <= 0:
        raise ValueError("noise_mw and beta must be positive")
    forward = p / noise_mw >= beta
    adjacency = forward & forward.T
    np.fill_diagonal(adjacency, False)
    return adjacency


def is_connected(adjacency: np.ndarray) -> bool:
    """Is the (undirected) graph connected?  BFS from node 0."""
    adj = np.asarray(adjacency, dtype=bool)
    n = adj.shape[0]
    if n == 0:
        return True
    visited = np.zeros(n, dtype=bool)
    frontier = np.zeros(n, dtype=bool)
    frontier[0] = True
    visited[0] = True
    while frontier.any():
        reached = adj[frontier].any(axis=0) & ~visited
        visited |= reached
        frontier = reached
    return bool(visited.all())


def degree_sequence(adjacency: np.ndarray) -> np.ndarray:
    """Per-node degree of the undirected communication graph."""
    return np.asarray(adjacency, dtype=bool).sum(axis=1)
