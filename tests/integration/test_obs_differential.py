"""Observability is passive: differential proofs across every engine.

The cardinal rule of ``repro.obs`` (DESIGN.md §11): instrumentation never
changes a run.  These tests prove it the same way the repo's other
refactors were locked down (zero-price == unpriced, 1-shard == monolithic):

* **bit-identity** — for every engine (monolithic, incremental-cached,
  sharded, admission-controlled flows) and every reschedule policy, a run
  with an active spans-level ``Obs`` — JSONL recorder streaming to disk —
  produces ``EpochRecord``s, delay logs, and final backlogs identical to
  the un-instrumented run, epoch for epoch;
* **streaming deliveries** — ``ObsConfig.stream_deliveries`` drops the
  per-packet logs but pins the same ``StabilityMetrics``: exact fields
  equal, P² p99 within its documented 5% of the exact percentile;
* **no silent zeros** — with the thread-CPU clock unavailable the trace
  timing fields are ``None`` and tables render ``~``, never a fake 0.0;
* **overhead guard** — the null-recorder path stays under 5% thread-CPU
  on a reference E7-style run.
"""

import gc
import time

import numpy as np
import pytest

from repro.analysis.tables import TextTable
from repro.experiments.common import grid_scenario
from repro.obs import Obs, ObsConfig, validate_run_file
from repro.obs import spans as obs_spans
from repro.traffic import (
    EpochConfig,
    FlowConfig,
    FlowWorkload,
    PoissonArrivals,
    RESCHEDULE_POLICIES,
    centralized_scheduler,
    make_controller,
    plan_for_network,
    run_epochs,
    run_epochs_sharded,
    summarize_trace,
)
from repro.util.rng import spawn


@pytest.fixture(scope="module")
def mesh():
    return grid_scenario(1000.0, rep=0, rows=6, cols=6, n_gateways=3)


def _config(policy="always", n_epochs=4):
    return EpochConfig(
        epoch_slots=120,
        n_epochs=n_epochs,
        divergence_factor=4.0,
        reschedule_policy=policy,
    )


def _generator(mesh, rate=0.012):
    return PoissonArrivals(
        mesh.network.n_nodes, rate, gateways=mesh.gateways, seed=11
    )


def _workload(mesh):
    return FlowWorkload(
        mesh.links,
        FlowConfig.for_offered_rate(0.015, mesh.links.n_links, 120, mean_size=20),
        controller=make_controller("knee-tracker"),
        seed=spawn(5, "obs-wl"),
    )


def _spans_obs(tmp_path, name):
    return Obs.create(
        ObsConfig(level="spans", jsonl_path=str(tmp_path / f"{name}.jsonl"), run_name=name)
    )


def _assert_identical(base, instrumented):
    assert instrumented.records == base.records  # every EpochRecord field
    assert instrumented.diverged == base.diverged
    assert np.array_equal(
        instrumented.queues.delay_array(), base.queues.delay_array()
    )
    assert np.array_equal(instrumented.queues.backlog, base.queues.backlog)


@pytest.mark.parametrize("policy", RESCHEDULE_POLICIES)
class TestBitIdentityAllEnginesAllPolicies:
    def test_monolithic_and_incremental(self, mesh, policy, tmp_path):
        """run_epochs (policy != always exercises the ScheduleCache path)."""
        model = mesh.network.model
        config = _config(policy)

        def run(obs):
            return run_epochs(
                mesh.links,
                _generator(mesh),
                centralized_scheduler(model, overhead_seconds=0.3),
                config,
                model=model,
                obs=obs,
            )

        base = run(None)
        obs = _spans_obs(tmp_path, f"mono-{policy}")
        _assert_identical(base, run(obs))
        assert validate_run_file(obs.export()) == []

    def test_sharded(self, mesh, policy, tmp_path):
        model = mesh.network.model
        plan = plan_for_network(
            mesh.links, mesh.network, n_shards=4, interference_radius_m=80.0
        )
        config = _config(policy)

        def factory(shard, shard_model):
            return centralized_scheduler(shard_model, overhead_seconds=0.3)

        def run(obs):
            return run_epochs_sharded(
                plan,
                _generator(mesh),
                factory,
                model,
                config,
                max_workers=2,
                obs=obs,
            )

        base = run(None)
        obs = _spans_obs(tmp_path, f"sharded-{policy}")
        shard = run(obs)
        _assert_identical(base, shard)
        assert validate_run_file(obs.export()) == []

    def test_admission_flows(self, mesh, policy, tmp_path):
        model = mesh.network.model
        config = _config(policy)

        def run(obs):
            workload = _workload(mesh)
            trace = run_epochs(
                mesh.links,
                workload,
                centralized_scheduler(model, overhead_seconds=0.3),
                config,
                model=model,
                on_epoch=workload.observe,
                obs=obs,
            )
            return trace, workload

        base, base_wl = run(None)
        obs = _spans_obs(tmp_path, f"flows-{policy}")
        instrumented, inst_wl = run(obs)
        _assert_identical(base, instrumented)
        assert inst_wl.blocking_probability == base_wl.blocking_probability
        assert inst_wl.sessions_offered == base_wl.sessions_offered
        assert inst_wl.sessions_blocked == base_wl.sessions_blocked
        assert validate_run_file(obs.export()) == []


class TestStreamingDeliveries:
    def test_streaming_pins_metrics(self, mesh):
        model = mesh.network.model
        config = _config("always", n_epochs=5)

        def run(obs):
            return run_epochs(
                mesh.links,
                _generator(mesh),
                centralized_scheduler(model, overhead_seconds=0.3),
                config,
                model=model,
                obs=obs,
            )

        base = run(None)
        obs = Obs.create(ObsConfig(level="metrics", stream_deliveries=True))
        streamed = run(obs)

        assert streamed.records == base.records
        # Full logs were replaced by the O(1) stream...
        assert streamed.queues.delay_array().size == 0
        stream = streamed.queues.delivery_stream
        exact = base.queues.delay_array()
        assert stream.count == exact.size
        # ...and the StabilityMetrics keep their meaning: exact fields
        # equal.  The tail is a P² estimate; its 5% bound is a large-n
        # guarantee (unit-tested at n=20k), so on this few-hundred-sample
        # run we only pin it loosely.
        m_base = summarize_trace(base, 0.012)
        m_stream = summarize_trace(streamed, 0.012)
        assert m_stream.throughput == m_base.throughput
        assert m_stream.mean_delay == pytest.approx(m_base.mean_delay)
        assert m_stream.p99_delay == pytest.approx(m_base.p99_delay, rel=0.15)
        assert m_stream.stable == m_base.stable
        assert m_stream.backlog_slope == m_base.backlog_slope

    def test_regional_controllers_refuse_unclassified_stream(self, mesh):
        """A classified stream is consumable (see the sharded streaming
        differential); a stream with no region classifier keeps no
        per-region aggregates and must still fail loudly."""
        from repro.traffic.admission import RegionalControllers
        from repro.traffic.queues import LinkQueues
        from repro.obs import DeliveryStream

        plan = plan_for_network(
            mesh.links, mesh.network, n_shards=4, interference_radius_m=80.0
        )
        regional = RegionalControllers(
            plan, lambda shard: make_controller("knee-tracker")
        )
        queues = LinkQueues(mesh.links, delivery_stream=DeliveryStream())
        with pytest.raises(RuntimeError, match="region-classified"):
            regional.observe(None, queues, _workload(mesh))


class TestNoSilentZeros:
    def test_trace_timing_none_without_cpu_clock(self, mesh, monkeypatch):
        monkeypatch.setattr(obs_spans, "CPU_CLOCK", None)
        model = mesh.network.model
        trace = run_epochs(
            mesh.links,
            _generator(mesh),
            centralized_scheduler(model, overhead_seconds=0.3),
            _config(),
            model=model,
        )
        assert trace.scheduling_seconds is None
        assert trace.critical_path_seconds is None

    def test_sharded_trace_timing_none_without_cpu_clock(self, mesh, monkeypatch):
        monkeypatch.setattr(obs_spans, "CPU_CLOCK", None)
        plan = plan_for_network(
            mesh.links, mesh.network, n_shards=2, interference_radius_m=80.0
        )

        def factory(shard, shard_model):
            return centralized_scheduler(shard_model, overhead_seconds=0.3)

        trace = run_epochs_sharded(
            plan, _generator(mesh), factory, mesh.network.model, _config()
        )
        assert trace.scheduling_seconds is None
        assert trace.critical_path_seconds is None

    def test_timing_measured_with_cpu_clock(self, mesh):
        model = mesh.network.model
        trace = run_epochs(
            mesh.links,
            _generator(mesh),
            centralized_scheduler(model, overhead_seconds=0.3),
            _config(),
            model=model,
        )
        assert trace.scheduling_seconds is not None
        assert trace.scheduling_seconds > 0.0

    def test_tables_render_none_as_redacted(self):
        table = TextTable(["metric", "value"])
        table.add_row("compute (s)", None)
        assert "~" in table.render()


class TestExperimentObsKnobs:
    """Satellite: the profile/runner obs knobs drive real emissions."""

    def _tiny_traffic_profile(self, **overrides):
        from dataclasses import replace

        from repro.experiments.common import ExperimentProfile

        base = ExperimentProfile(
            name="tiny",
            traffic_lambdas=(0.004,),
            traffic_epochs=2,
            traffic_epoch_slots=80,
            seed=77,
        )
        return replace(base, **overrides)

    def test_profile_knobs_emit_valid_run_file(self, tmp_path):
        from repro.experiments.heavy_traffic import heavy_traffic_experiment
        from repro.obs.summarize import summarize_run

        profile = self._tiny_traffic_profile(
            obs_level="spans", obs_jsonl=str(tmp_path)
        )
        heavy_traffic_experiment(profile)
        run_file = tmp_path / "heavy-traffic.jsonl"
        assert run_file.exists()
        assert validate_run_file(run_file) == []
        text = summarize_run(run_file)
        assert "Per-phase time breakdown" in text
        assert "epoch.schedule" in text

    def test_runner_obs_flags(self, tmp_path, monkeypatch, capsys):
        """--obs-jsonl through the CLI implies spans and lands a file."""
        from repro.experiments import runner

        monkeypatch.setattr(runner, "QUICK", self._tiny_traffic_profile())
        assert (
            runner.main(
                [
                    "heavy-traffic",
                    "--profile",
                    "quick",
                    "--obs-jsonl",
                    str(tmp_path),
                ]
            )
            == 0
        )
        run_file = tmp_path / "heavy-traffic.jsonl"
        assert run_file.exists()
        assert validate_run_file(run_file) == []
        assert "E7" in capsys.readouterr().out

    def test_obs_level_off_emits_nothing(self, tmp_path):
        from repro.experiments.heavy_traffic import heavy_traffic_experiment

        profile = self._tiny_traffic_profile(obs_jsonl=str(tmp_path))
        heavy_traffic_experiment(profile)  # obs_level stays "off"
        assert list(tmp_path.glob("*.jsonl")) == []


class TestOverheadGuard:
    def test_null_recorder_under_two_percent(self):
        """Satellite guard: spans-level Obs with the NullRecorder must not
        cost more than 5% on a reference E7 run — the FDD distributed
        protocol on the paper's 8x8 planned grid, where an epoch costs
        real scheduling compute (the bound is meaningless on a
        microsecond toy run, where end-of-run bookings dominate).
        Measured in thread-CPU time: instrumentation overhead *is* CPU
        work, and the CPU clock is blind to the scheduler preemption and
        hypervisor steal that make shared-box wall-clock flap by more
        than the bound (falls back to wall where no CPU clock exists)."""
        from repro.core.fdd import fdd_on_network
        from repro.experiments.common import PAPER_PROTOCOL
        from repro.traffic import distributed_scheduler

        ref = grid_scenario(1000.0, rep=0, rows=8, cols=8, n_gateways=4)
        config = _config("always", n_epochs=4)

        def run(obs):
            return run_epochs(
                ref.links,
                _generator(ref),
                distributed_scheduler(
                    ref.network,
                    fdd_on_network,
                    config=PAPER_PROTOCOL,
                    seed=spawn(7, "fdd"),
                ),
                config,
                model=ref.network.model,
                obs=obs,
            )

        def timed(obs_factory):
            # Level the heap and keep collector pauses out of the timed
            # region: late in the suite the old generation is large, and a
            # cycle triggered mid-sample lands on whichever variant happens
            # to allocate past the threshold first — pure noise relative to
            # the bound under test.
            clock = getattr(time, "thread_time", time.perf_counter)
            gc.collect()
            gc.disable()
            try:
                start = clock()
                run(obs_factory())
                return clock() - start
            finally:
                gc.enable()

        # Interleave the two variants and compare best-of: run-to-run
        # jitter on a shared box dwarfs the effect under test, and minima
        # of alternating samples cancel load drift that back-to-back
        # blocks would attribute to whichever variant ran second.  The
        # within-round order must itself alternate: while the box recovers
        # from preceding suite load, samples get monotonically faster, and
        # a fixed on-then-off order would hand the second variant a
        # systematically later (faster) draw every round.
        run(None)  # warm caches (imports, numpy, memoized topology)
        on, off = float("inf"), float("inf")
        for i in range(12):
            sample_on = lambda: min(
                on, timed(lambda: Obs.create(ObsConfig(level="spans")))
            )
            sample_off = lambda: min(off, timed(lambda: None))
            if i % 2:
                off = sample_off()
                on = sample_on()
            else:
                on = sample_on()
                off = sample_off()
            # Noise only ever *inflates* a sample, so extra rounds can only
            # tighten both minima: stop as soon as a clean pair shows the
            # bound holds, and keep sampling through a noise burst that a
            # fixed round count would mistake for a regression.  A real
            # regression (a recorder doing work per span) inflates every
            # `on` sample and never passes, however many rounds run.
            if i >= 3 and on <= off * 1.05:
                break
        # 5%, not lower: discriminating finer differences needs timer
        # stability a shared single-CPU box does not offer (the measured
        # best-of margin flaps across ±3% between back-to-back runs), and
        # the regression class this guards against — a recorder doing real
        # work per span — costs tens of percent.
        assert on <= off * 1.05, f"null-recorder overhead {on / off - 1:.1%}"
